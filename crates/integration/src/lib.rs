//! Host crate for the cross-crate integration tests.
//!
//! The test sources live at the repository root (`/tests`) and are wired
//! in as `[[test]]` targets of this crate; see `Cargo.toml`. There is no
//! library code here.
