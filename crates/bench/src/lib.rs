//! Host crate for the Criterion benchmarks reproducing the paper's
//! evaluation; see `benches/` and the repository's EXPERIMENTS.md.
//!
//! The one piece of library code here is [`legacy_region`]: the
//! pre-sweep region algebra, kept so the E9 benchmark and the ablation
//! suite can measure the rewrite against its true predecessor instead
//! of a strawman.

pub mod legacy_region {
    //! The region `combine` this repository shipped before the
    //! band-merge sweep: cut the plane into elementary y-slabs from
    //! every edge of both operands, rebuild each slab's interval set
    //! from scratch (`slab_intervals` rescans every rect), and classify
    //! each elementary x-interval with linear `inside_a`/`inside_b`
    //! probes. Preserved verbatim, operating on the banded rect list
    //! directly (the old `Region` was exactly such a `Vec<Rect>`), so
    //! none of the measured work routes through the new sweep.

    use atk_graphics::Rect;

    /// Set-operation selector matching the private `Op` in
    /// `atk_graphics::region`.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub enum Op {
        Union,
        Intersect,
        Subtract,
    }

    fn slab_intervals(rects: &[Rect], top: i32, bot: i32) -> Vec<(i32, i32)> {
        let mut iv: Vec<(i32, i32)> = rects
            .iter()
            .filter(|r| r.y <= top && r.bottom() >= bot)
            .map(|r| (r.x, r.right()))
            .collect();
        iv.sort_unstable();
        let mut merged: Vec<(i32, i32)> = Vec::with_capacity(iv.len());
        for (a, b) in iv {
            match merged.last_mut() {
                Some((_, pb)) if *pb >= a => *pb = (*pb).max(b),
                _ => merged.push((a, b)),
            }
        }
        merged
    }

    fn combine_intervals(a: &[(i32, i32)], b: &[(i32, i32)], op: Op) -> Vec<(i32, i32)> {
        let mut events: Vec<i32> = Vec::with_capacity((a.len() + b.len()) * 2);
        for &(s, e) in a.iter().chain(b.iter()) {
            events.push(s);
            events.push(e);
        }
        events.sort_unstable();
        events.dedup();

        let inside_a = |x: i32| a.iter().any(|&(s, e)| s <= x && x < e);
        let inside_b = |x: i32| b.iter().any(|&(s, e)| s <= x && x < e);

        let mut out: Vec<(i32, i32)> = Vec::new();
        for w in events.windows(2) {
            let (s, e) = (w[0], w[1]);
            let ia = inside_a(s);
            let ib = inside_b(s);
            let keep = match op {
                Op::Union => ia || ib,
                Op::Intersect => ia && ib,
                Op::Subtract => ia && !ib,
            };
            if keep {
                match out.last_mut() {
                    Some((_, pe)) if *pe == s => *pe = e,
                    _ => out.push((s, e)),
                }
            }
        }
        out
    }

    fn coalesce_with_previous_band(out: &mut [Rect], band: &mut Vec<Rect>) {
        if band.is_empty() || out.is_empty() {
            return;
        }
        let band_top = band[0].y;
        let prev_end = out.len();
        let prev_start = out[..prev_end]
            .iter()
            .rposition(|r| r.y != out[prev_end - 1].y)
            .map(|i| i + 1)
            .unwrap_or(0);
        let prev = &out[prev_start..prev_end];
        if prev.len() != band.len()
            || prev[0].bottom() != band_top
            || !prev
                .iter()
                .zip(band.iter())
                .all(|(p, b)| p.x == b.x && p.width == b.width)
        {
            return;
        }
        let grow = band[0].height;
        for r in &mut out[prev_start..prev_end] {
            r.height += grow;
        }
        band.clear();
    }

    /// The old `Region::combine`, verbatim, on banded rect lists.
    pub fn combine(ar: &[Rect], br: &[Rect], op: Op) -> Vec<Rect> {
        let mut ys: Vec<i32> = Vec::with_capacity((ar.len() + br.len()) * 2);
        for r in ar.iter().chain(br.iter()) {
            ys.push(r.y);
            ys.push(r.bottom());
        }
        ys.sort_unstable();
        ys.dedup();

        let mut out: Vec<Rect> = Vec::new();
        for w in ys.windows(2) {
            let (top, bot) = (w[0], w[1]);
            let ia = slab_intervals(ar, top, bot);
            let ib = slab_intervals(br, top, bot);
            let combined = combine_intervals(&ia, &ib, op);
            let mut band: Vec<Rect> = combined
                .into_iter()
                .map(|(x0, x1)| Rect::new(x0, top, x1 - x0, bot - top))
                .collect();
            coalesce_with_previous_band(&mut out, &mut band);
            out.append(&mut band);
        }
        out
    }

    /// The old damage-accumulation pattern: one `combine(Union)` per
    /// posted rect, exactly what `World::take_damage_region` used to do
    /// via repeated `Region::add_rect`.
    pub fn add_rect_loop<I: IntoIterator<Item = Rect>>(rects: I) -> Vec<Rect> {
        let mut acc: Vec<Rect> = Vec::new();
        for r in rects {
            if r.is_empty() {
                continue;
            }
            acc = combine(&acc, &[r], Op::Union);
        }
        acc
    }
}
