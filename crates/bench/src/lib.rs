//! Host crate for the Criterion benchmarks reproducing the paper's
//! evaluation; see `benches/` and the repository's EXPERIMENTS.md. There
//! is no library code here.
