//! E4 — dynamic loading and `runapp` (paper §6–7).
//!
//! Series:
//! * `startup/` — application startup under dynamic loading vs. the
//!   static-link baseline (simulated load latency included);
//! * `sharing/` — resident bytes after launching 1..6 applications in
//!   one runapp image vs. the sum of per-application static images;
//! * `first_use/` — the "slight delay" of a component's first
//!   instantiation vs. warm instantiation.
//!
//! Expected shape: dynamic startup ≪ static startup; runapp residency
//! grows by one app module per app while static images multiply the
//! whole inventory; first use pays once.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use atk_apps::{register_app_modules, register_components, standard_apps};
use atk_class::{CostModel, LinkPolicy};
use atk_core::{Catalog, World};

fn world_with(policy: LinkPolicy) -> World {
    let catalog = Catalog::new(policy, CostModel::vice_afs());
    let mut world = World::with_catalog(catalog);
    register_components(&mut world.catalog);
    register_app_modules(&mut world.catalog);
    world
}

fn bench_startup(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4/startup");
    for policy in [LinkPolicy::Dynamic, LinkPolicy::Static] {
        let label = match policy {
            LinkPolicy::Dynamic => "dynamic",
            LinkPolicy::Static => "static",
        };
        g.bench_function(BenchmarkId::new("ez_first_window", label), |b| {
            b.iter(|| {
                let mut world = world_with(policy);
                let registry = standard_apps();
                let mut ws = atk_wm::x11sim::X11Sim::new();
                let out = registry
                    .launch("ez", &mut world, &mut ws, &[])
                    .expect("ez runs");
                // Report includes simulated load time; return both so the
                // optimizer keeps everything.
                black_box((
                    out.events_handled,
                    world.catalog.loader.stats().total_simulated_ns,
                ))
            })
        });
    }
    g.finish();

    // Print the simulated-latency side channel once (criterion measures
    // wall clock; the cost model carries the 1988 numbers).
    for policy in [LinkPolicy::Dynamic, LinkPolicy::Static] {
        let mut world = world_with(policy);
        let registry = standard_apps();
        let mut ws = atk_wm::x11sim::X11Sim::new();
        registry.launch("ez", &mut world, &mut ws, &[]).unwrap();
        let s = world.catalog.loader.stats();
        println!(
            "e4/startup[{:?}]: {} modules, {} KB resident, {:.1} ms simulated load",
            policy,
            s.resident_modules,
            s.resident_bytes / 1024,
            s.total_simulated_ns as f64 / 1e6
        );
    }
}

fn bench_sharing(c: &mut Criterion) {
    let apps = ["ez", "help", "messages", "typescript", "console", "preview"];
    // Not a timing benchmark: a table the harness prints, like the
    // paper's qualitative §7 list.
    println!("e4/sharing: runapp resident bytes vs per-app static images");
    let registry = standard_apps();
    let mut world = world_with(LinkPolicy::Dynamic);
    let per_app_static = world.catalog.loader.inventory_bytes();
    for (i, app) in apps.iter().enumerate() {
        let mut ws = atk_wm::x11sim::X11Sim::new();
        let _ = registry.launch(app, &mut world, &mut ws, &[]);
        let shared = world.catalog.loader.stats().resident_bytes;
        let static_sum = per_app_static * (i as u64 + 1);
        println!(
            "  after {:>10}: runapp {:>7} KB | {} static images {:>7} KB | saving {:>5.1}x",
            app,
            shared / 1024,
            i + 1,
            static_sum / 1024,
            static_sum as f64 / shared as f64
        );
    }

    // And one measured series: marginal launch cost of the Nth app.
    let mut g = c.benchmark_group("e4/sharing");
    g.bench_function("marginal_app_launch_warm_toolkit", |b| {
        let registry = standard_apps();
        let mut world = world_with(LinkPolicy::Dynamic);
        let mut ws = atk_wm::x11sim::X11Sim::new();
        registry.launch("ez", &mut world, &mut ws, &[]).unwrap();
        b.iter(|| {
            let mut ws = atk_wm::x11sim::X11Sim::new();
            registry
                .launch(black_box("console"), &mut world, &mut ws, &[])
                .unwrap()
        })
    });
    g.finish();
}

fn bench_first_use(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4/first_use");
    g.bench_function("cold_component_instantiation", |b| {
        b.iter(|| {
            let mut world = world_with(LinkPolicy::Dynamic);
            black_box(world.new_data("animation").unwrap())
        })
    });
    g.bench_function("warm_component_instantiation", |b| {
        let mut world = world_with(LinkPolicy::Dynamic);
        world.new_data("animation").unwrap();
        b.iter(|| black_box(world.new_data("animation").unwrap()))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_startup, bench_sharing, bench_first_use
}
criterion_main!(benches);
