//! E9 — linear-time region algebra and batched damage accumulation.
//!
//! The update pipeline unions every posted damage rect into one region
//! per redraw pass (paper §2's delayed update), so region union is on
//! the hot path of every keystroke. This experiment measures the
//! band-merge sweep rewrite against the algorithm it replaced.
//!
//! Series, each over n ∈ {10, 100, 1000, 10000} damage rects:
//! * `union_scattered/legacy_add_rect_loop` — the pre-rewrite slab
//!   algorithm (elementary y-slabs, per-slab rescans, linear
//!   `inside_a`/`inside_b` probes), one union per rect, exactly how
//!   `World::take_damage_region` used to accumulate damage. Capped at
//!   n ≤ 1000: the quadratic blow-up makes 10⁴ impractical to sample.
//! * `union_scattered/sweep_add_rect_loop` — the new sweep, same
//!   one-union-per-rect call pattern.
//! * `union_scattered/sweep_from_rects` — the new bulk constructor
//!   (sort + divide-and-conquer pairwise union), the call pattern
//!   `take_damage_region` uses now.
//! * `union_scanline/` — the fast-path-friendly workload: rects posted
//!   in row-major order, as a text view damaging successive line strips
//!   does; `add_rect`'s append/extend fast paths should make the loop
//!   itself linear.
//! * `binary_ops/` — intersect and subtract of two pre-built scattered
//!   regions, legacy vs. sweep, at matched operand sizes.
//!
//! Acceptance (EXPERIMENTS.md E9): sweep ≥ 5× the legacy loop when
//! unioning 10³ scattered rects.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::hint::black_box;

use atk_bench::legacy_region;
use atk_graphics::{Rect, Region};

/// Scattered damage: small rects spread over a large desktop, the worst
/// case for coalescing (many independent bands).
fn scattered(n: usize, seed: u64) -> Vec<Rect> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Rect::new(
                rng.gen_range(0..4000),
                rng.gen_range(0..4000),
                rng.gen_range(4..64),
                rng.gen_range(4..32),
            )
        })
        .collect()
}

/// Row-major line strips, like a text view damaging successive lines.
fn scanline(n: usize) -> Vec<Rect> {
    (0..n as i32)
        .map(|i| Rect::new(0, i * 14, 640, 14))
        .collect()
}

fn bench_union_scattered(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9/union_scattered");
    for n in [10usize, 100, 1000, 10_000] {
        let rects = scattered(n, 9);
        if n <= 1000 {
            g.bench_with_input(
                BenchmarkId::new("legacy_add_rect_loop", n),
                &rects,
                |b, rects| {
                    b.iter(|| black_box(legacy_region::add_rect_loop(rects.iter().copied())))
                },
            );
        }
        g.bench_with_input(
            BenchmarkId::new("sweep_add_rect_loop", n),
            &rects,
            |b, rects| {
                b.iter(|| {
                    let mut acc = Region::new();
                    for &r in rects {
                        acc.add_rect(r);
                    }
                    black_box(acc)
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("sweep_from_rects", n),
            &rects,
            |b, rects| b.iter(|| black_box(Region::from_rects(rects.iter().copied()))),
        );
    }
    g.finish();
}

fn bench_union_scanline(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9/union_scanline");
    for n in [100usize, 1000, 10_000] {
        let rects = scanline(n);
        g.bench_with_input(
            BenchmarkId::new("sweep_add_rect_loop", n),
            &rects,
            |b, rects| {
                b.iter(|| {
                    let mut acc = Region::new();
                    for &r in rects {
                        acc.add_rect(r);
                    }
                    black_box(acc)
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("sweep_from_rects", n),
            &rects,
            |b, rects| b.iter(|| black_box(Region::from_rects(rects.iter().copied()))),
        );
    }
    g.finish();
}

fn bench_binary_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9/binary_ops");
    for n in [100usize, 1000] {
        let a = Region::from_rects(scattered(n, 17));
        let b_reg = Region::from_rects(scattered(n, 23));
        let (ar, br) = (a.rects().to_vec(), b_reg.rects().to_vec());
        g.bench_with_input(BenchmarkId::new("legacy_intersect", n), &n, |bch, _| {
            bch.iter(|| {
                black_box(legacy_region::combine(
                    &ar,
                    &br,
                    legacy_region::Op::Intersect,
                ))
            })
        });
        g.bench_with_input(BenchmarkId::new("sweep_intersect", n), &n, |bch, _| {
            bch.iter(|| black_box(a.intersect(&b_reg)))
        });
        g.bench_with_input(BenchmarkId::new("legacy_subtract", n), &n, |bch, _| {
            bch.iter(|| {
                black_box(legacy_region::combine(
                    &ar,
                    &br,
                    legacy_region::Op::Subtract,
                ))
            })
        });
        g.bench_with_input(BenchmarkId::new("sweep_subtract", n), &n, |bch, _| {
            bch.iter(|| black_box(a.subtract(&b_reg)))
        });
    }
    g.finish();
}

/// Prints the headline ratio the acceptance bar asks for, outside
/// criterion's own statistics: wall-clock of one legacy pass vs. one
/// sweep pass unioning 10³ scattered rects.
fn print_headline_speedup() {
    let rects = scattered(1000, 9);
    let t0 = std::time::Instant::now();
    let legacy = legacy_region::add_rect_loop(rects.iter().copied());
    let t_legacy = t0.elapsed();
    let t1 = std::time::Instant::now();
    let swept = Region::from_rects(rects.iter().copied());
    let t_sweep = t1.elapsed();
    assert_eq!(legacy, swept.rects(), "legacy and sweep unions disagree");
    println!(
        "e9 headline: legacy {:?} vs sweep {:?} on 10^3 scattered rects ({:.1}x)",
        t_legacy,
        t_sweep,
        t_legacy.as_secs_f64() / t_sweep.as_secs_f64().max(1e-9),
    );
}

fn benches_with_headline(c: &mut Criterion) {
    print_headline_speedup();
    bench_union_scattered(c);
    bench_union_scanline(c);
    bench_binary_ops(c);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = benches_with_headline
}
criterion_main!(benches);
