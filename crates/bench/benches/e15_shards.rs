//! E15 — the event-driven shard engine vs. thread-per-connection.
//!
//! The server's dispatch question: N worker shards, each one thread
//! hosting many sessions behind a poll-style readiness loop, against
//! the legacy one-thread-per-connection ablation. Both paths funnel
//! through the same `Server::finish_batch`, so any difference here is
//! pure dispatch cost.
//!
//! Series:
//! * `dispatch/` — one full loadgen fleet (connect, replay, goodbye)
//!   over the in-memory transport at 1, 2, 4, and 8 shards plus the
//!   `thread_per_conn` baseline; sessions/s is the criterion
//!   throughput.
//! * The headline printed outside criterion: saturation sessions/s and
//!   client p99 for every dispatch mode on the same fleet — the table
//!   EXPERIMENTS.md E15 reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use atk_serve::{run_loadgen_mem, LoadConfig, Profile};

const FLEET: usize = 32;

/// `shards == 0` selects the thread-per-connection ablation.
fn fleet_cfg(shards: usize) -> LoadConfig {
    let mut cfg = LoadConfig {
        sessions: FLEET,
        steps: 20,
        scene: "fig1".into(),
        profile: Profile::Mixed,
        shards,
        ..LoadConfig::default()
    };
    cfg.server.max_sessions = FLEET;
    cfg
}

fn bench_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("e15/dispatch");
    g.sample_size(10);
    g.throughput(Throughput::Elements(FLEET as u64));
    for shards in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &shards| {
            let cfg = fleet_cfg(shards);
            b.iter(|| {
                let report = run_loadgen_mem(black_box(&cfg)).unwrap();
                assert_eq!(report.completed, FLEET, "errors: {:?}", report.errors);
                report
            })
        });
    }
    g.bench_function(BenchmarkId::new("thread_per_conn", FLEET), |b| {
        let cfg = fleet_cfg(0);
        b.iter(|| {
            let report = run_loadgen_mem(black_box(&cfg)).unwrap();
            assert_eq!(report.completed, FLEET, "errors: {:?}", report.errors);
            report
        })
    });
    g.finish();
}

/// The E15 table: sessions/s and client p99 per dispatch mode.
fn print_headline() {
    println!("e15 headline: {FLEET}-session mixed fleet on fig1, per dispatch mode:");
    for shards in [0usize, 1, 2, 4, 8] {
        let report = run_loadgen_mem(&fleet_cfg(shards)).unwrap();
        assert!(report.errors.is_empty(), "errors: {:?}", report.errors);
        let mode = match shards {
            0 => "thread-per-conn".to_string(),
            n => format!("{n} shard(s)"),
        };
        println!(
            "  {mode:>15}: {:7.1} sessions/s, p99 {:.2} ms",
            report.sessions_per_s,
            report.p99_us as f64 / 1000.0,
        );
    }
}

fn benches_with_headline(c: &mut Criterion) {
    print_headline();
    bench_dispatch(c);
}

criterion_group!(benches, benches_with_headline);
criterion_main!(benches);
