//! E6 — the paper's figures as full-scene renders.
//!
//! Series: construction + first full render time of each of figures 1–5,
//! on both window systems. Regenerating the images themselves is
//! `cargo run --example snapshots`.
//!
//! Expected shape: every scene builds and paints in milliseconds; the
//! compound figure-5 document (table ⊃ {text, equation, animation,
//! spreadsheet} inside text) is the most expensive, as it is in any real
//! toolkit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use atk_apps::scenes::{self, Scene};
use atk_wm::WindowSystem;

type Builder = fn(&mut dyn WindowSystem) -> Result<Scene, String>;

fn builders() -> Vec<(&'static str, Builder)> {
    vec![
        ("fig1_view_tree", scenes::fig1_view_tree as Builder),
        ("fig2_help", scenes::fig2_help as Builder),
        (
            "fig3_messages_reading",
            scenes::fig3_messages_reading as Builder,
        ),
        (
            "fig4_messages_compose",
            scenes::fig4_messages_compose as Builder,
        ),
        ("fig5_ez_compound", scenes::fig5_ez_compound as Builder),
    ]
}

fn bench_build_and_render(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6/build_and_render");
    g.sample_size(10);
    for (name, builder) in builders() {
        for backend in ["x11sim", "awmsim"] {
            g.bench_with_input(BenchmarkId::new(name, backend), &backend, |b, backend| {
                b.iter(|| {
                    let mut ws = atk_wm::open_window_system(Some(backend)).unwrap();
                    let scene = builder(ws.as_mut()).unwrap();
                    black_box(scene.im.stats().updates)
                })
            });
        }
    }
    g.finish();
}

fn bench_repaint(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6/full_repaint");
    g.sample_size(20);
    for (name, builder) in builders() {
        let mut ws = atk_wm::x11sim::X11Sim::new();
        let mut scene = builder(&mut ws).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| scene.im.redraw_full(black_box(&mut scene.world)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_build_and_render, bench_repaint);
criterion_main!(benches);
