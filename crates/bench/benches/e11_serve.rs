//! E11 — serving sessions over the wire (§8 taken one step further:
//! the window system behind the porting layer becomes a *remote*
//! process).
//!
//! Series:
//! * `fleet/` — one full loadgen run (connect, replay, goodbye) over
//!   the in-memory transport at 1, 8, and 64 concurrent sessions,
//!   mixed-profile scripts; sessions/s is the criterion throughput.
//! * `shipping/` — bytes-on-wire for a typing-heavy session with
//!   region diffing vs. the always-keyframe ablation; the headline
//!   printed outside criterion is the compression ratio the
//!   acceptance bar asks for (≥ 5×).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use atk_serve::{run_loadgen_mem, LoadConfig, Profile};

fn fleet_cfg(sessions: usize) -> LoadConfig {
    LoadConfig {
        sessions,
        steps: 30,
        scene: "fig1".into(),
        profile: Profile::Mixed,
        ..LoadConfig::default()
    }
}

fn typing_cfg(keyframe_only: bool) -> LoadConfig {
    let mut cfg = LoadConfig {
        sessions: 4,
        steps: 50,
        scene: "fig5".into(),
        profile: Profile::Typing,
        ..LoadConfig::default()
    };
    cfg.server.session.keyframe_only = keyframe_only;
    cfg
}

fn bench_fleet(c: &mut Criterion) {
    let mut g = c.benchmark_group("e11/fleet");
    g.sample_size(10);
    for sessions in [1usize, 8, 64] {
        g.throughput(Throughput::Elements(sessions as u64));
        g.bench_with_input(
            BenchmarkId::new("mem_sessions", sessions),
            &sessions,
            |b, &sessions| {
                let cfg = fleet_cfg(sessions);
                b.iter(|| {
                    let report = run_loadgen_mem(black_box(&cfg)).unwrap();
                    assert_eq!(report.completed, sessions, "errors: {:?}", report.errors);
                    report
                })
            },
        );
    }
    g.finish();
}

fn bench_shipping(c: &mut Criterion) {
    let mut g = c.benchmark_group("e11/shipping");
    g.sample_size(10);
    for (label, keyframe_only) in [("diff", false), ("keyframe_only", true)] {
        g.bench_function(BenchmarkId::from_parameter(label), |b| {
            let cfg = typing_cfg(keyframe_only);
            b.iter(|| run_loadgen_mem(black_box(&cfg)).unwrap())
        });
    }
    g.finish();
}

/// The acceptance headline: bytes on the wire, diffing vs. the
/// always-keyframe ablation, on the typing workload.
fn print_headline() {
    let diff = run_loadgen_mem(&typing_cfg(false)).unwrap();
    let keyed = run_loadgen_mem(&typing_cfg(true)).unwrap();
    assert!(diff.errors.is_empty() && keyed.errors.is_empty());
    println!(
        "e11 headline: typing fig5, diff shipping {} bytes vs always-keyframe {} bytes \
         ({:.1}x fewer; client-side ratio {:.1}x)",
        diff.bytes_on_wire,
        keyed.bytes_on_wire,
        keyed.bytes_on_wire as f64 / diff.bytes_on_wire.max(1) as f64,
        diff.compression_ratio,
    );
}

fn benches_with_headline(c: &mut Criterion) {
    print_headline();
    bench_fleet(c);
    bench_shipping(c);
}

criterion_group!(benches, benches_with_headline);
criterion_main!(benches);
