//! E12 — incremental text layout (edit-local relayout).
//!
//! Series:
//! * `e12/insert_char` — full keystroke path (edit → change record →
//!   edit-local re-wrap → damage strip) on plain documents of 1k, 10k,
//!   and 100k characters. Expected shape: flat — the re-wrap visits a
//!   couple of lines regardless of document size;
//! * `ablation/incremental_layout` — the same keystroke with
//!   [`TextView::set_incremental_layout`] off, forcing the pre-E12
//!   from-scratch re-wrap on every change record. Expected shape:
//!   linear in document size. The toggle keeps the old path reachable
//!   as the differential oracle's reference (like `legacy_region`);
//! * `ablation/measure_cache` — the keystroke with the shared font
//!   measurement cache on vs. off (off re-derives a width table per
//!   style run per wrap instead of indexing the shared one).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use atk_apps::{corpus, standard_world};
use atk_core::{ViewId, World};
use atk_graphics::Rect;
use atk_text::TextView;
use atk_wm::Key;

/// A standard world with one laid-out text view over a `chars`-character
/// plain document, caret mid-document, damage drained.
fn typing_world(chars: usize) -> (World, ViewId) {
    let mut world = standard_world();
    let doc = corpus::plain_text_doc(&mut world, 12, chars);
    let view = world.new_view("textview").unwrap();
    world.with_view(view, |v, w| v.set_data_object(w, doc));
    world.set_view_bounds(view, Rect::new(0, 0, 400, 300));
    world.with_view(view, |v, w| {
        let tv = v.as_any_mut().downcast_mut::<TextView>().unwrap();
        tv.ensure_layout(w);
        tv.set_caret(w, chars / 2);
    });
    let _ = world.take_damage_region();
    (world, view)
}

/// Type a character and delete it again, flushing notifications and
/// draining damage, so the document stays at its nominal size.
fn keystroke(world: &mut World, view: ViewId) {
    world.with_view(view, |v, w| {
        v.key(w, black_box(Key::Char('x')));
        v.key(w, Key::Backspace);
    });
    world.flush_notifications();
    let _ = world.take_damage_region();
}

fn set_incremental(world: &mut World, view: ViewId, on: bool) {
    world.with_view(view, |v, _| {
        v.as_any_mut()
            .downcast_mut::<TextView>()
            .unwrap()
            .set_incremental_layout(on)
    });
}

fn bench_insert_char(c: &mut Criterion) {
    let mut g = c.benchmark_group("e12/insert_char");
    for chars in [1_000usize, 10_000, 100_000] {
        let (mut world, view) = typing_world(chars);
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::new("incremental", chars), &chars, |b, _| {
            b.iter(|| keystroke(&mut world, view))
        });
    }
    g.finish();
}

fn bench_ablation_incremental(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/incremental_layout");
    for chars in [1_000usize, 10_000, 100_000] {
        let (mut world, view) = typing_world(chars);
        set_incremental(&mut world, view, false);
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::new("full_relayout", chars), &chars, |b, _| {
            b.iter(|| keystroke(&mut world, view))
        });
    }
    g.finish();
}

fn bench_ablation_measure_cache(c: &mut Criterion) {
    // Criterion runs targets sequentially on one thread, so flipping the
    // process-global cache around a series is safe here (and nowhere
    // else: tests run in parallel).
    let mut g = c.benchmark_group("ablation/measure_cache");
    let (mut world, view) = typing_world(10_000);
    g.bench_function("cache_on", |b| b.iter(|| keystroke(&mut world, view)));
    atk_graphics::font::set_measure_cache_enabled(false);
    g.bench_function("cache_off", |b| b.iter(|| keystroke(&mut world, view)));
    atk_graphics::font::set_measure_cache_enabled(true);
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_insert_char, bench_ablation_incremental, bench_ablation_measure_cache
}
criterion_main!(benches);
