//! Ablations: the substrate design choices DESIGN.md §5 commits to,
//! measured against the naive alternatives.
//!
//! * gap buffer vs. `String` insertion for localized editing;
//! * run-length style assignment vs. a per-character style vector;
//! * banded-region damage vs. single bounding-box damage (overdraw
//!   proxy: pixels a repaint would touch for two distant dirty spots);
//! * band-merge sweep vs. the old elementary-slab region combine
//!   (per-slab rescans + linear interval probes) on damage-union
//!   workloads — the E9 rewrite, isolated from the pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::hint::black_box;

use atk_bench::legacy_region;
use atk_graphics::{Rect, Region};
use atk_text::{GapBuffer, Style, StyleRuns, StyleTable};

fn bench_buffer(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/buffer");
    for size in [10_000usize, 100_000] {
        let base = "x".repeat(size);
        g.bench_with_input(
            BenchmarkId::new("gap_buffer_local_inserts", size),
            &size,
            |b, &size| {
                let mut buf = GapBuffer::from_str(&base);
                let mid = size / 2;
                let mut i = 0;
                b.iter(|| {
                    // Clustered edits, like typing: the gap stays nearby.
                    buf.insert(black_box(mid + (i % 50)), "y");
                    i += 1;
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("string_local_inserts", size),
            &size,
            |b, &size| {
                let mut buf = base.clone();
                let mid = size / 2;
                let mut i = 0;
                b.iter(|| {
                    // `String::insert` shifts the whole tail every time.
                    buf.insert(black_box(mid + (i % 50)), 'y');
                    i += 1;
                })
            },
        );
    }
    g.finish();
}

fn bench_styles(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/styles");
    const LEN: usize = 50_000;
    g.bench_function("run_length_apply_and_query", |b| {
        let mut table = StyleTable::new();
        let bold = table.intern(Style::body().bolded());
        let mut runs = StyleRuns::new(LEN);
        let mut i = 0usize;
        b.iter(|| {
            let at = (i * 131) % (LEN - 60);
            runs.apply(at, at + 40, bold);
            i += 1;
            black_box(runs.style_at(at + 20))
        })
    });
    g.bench_function("per_char_vector_apply_and_query", |b| {
        let mut styles = vec![0usize; LEN];
        let mut i = 0usize;
        b.iter(|| {
            let at = (i * 131) % (LEN - 60);
            for s in &mut styles[at..at + 40] {
                *s = 1;
            }
            i += 1;
            black_box(styles[at + 20])
        })
    });
    // The part the vector can't do cheaply: insertion in the middle.
    g.bench_function("run_length_insert_mid", |b| {
        let mut runs = StyleRuns::new(LEN);
        b.iter(|| runs.adjust_insert(black_box(LEN / 2), 1))
    });
    g.bench_function("per_char_vector_insert_mid", |b| {
        let mut styles = vec![0usize; LEN];
        b.iter(|| styles.insert(black_box(styles.len() / 2), 0))
    });
    g.finish();
}

fn bench_damage_region(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/damage");
    // Two small dirty spots far apart on a 1024x800 window.
    let a = Rect::new(10, 10, 40, 12);
    let b_r = Rect::new(900, 700, 40, 12);
    g.bench_function("banded_region_union", |b| {
        b.iter(|| {
            let mut r = Region::new();
            r.add_rect(black_box(a));
            r.add_rect(black_box(b_r));
            black_box(r.area())
        })
    });
    g.bench_function("bounding_box_union", |b| {
        b.iter(|| black_box(a.union(b_r).area()))
    });
    // Report the overdraw the bounding box would repaint.
    let mut r = Region::new();
    r.add_rect(a);
    r.add_rect(b_r);
    println!(
        "ablation/damage overdraw: region {} px vs bbox {} px ({}x)",
        r.area(),
        a.union(b_r).area(),
        a.union(b_r).area() / r.area().max(1)
    );
    g.finish();
}

fn bench_region_combine(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/region_combine");
    // A damage-drain's worth of scattered dirty rects, unioned one at a
    // time (the accumulation pattern `World::take_damage_region` had
    // before bulk coalescing).
    for n in [50usize, 500] {
        let mut rng = StdRng::seed_from_u64(41);
        let rects: Vec<Rect> = (0..n)
            .map(|_| {
                Rect::new(
                    rng.gen_range(0..2000),
                    rng.gen_range(0..2000),
                    rng.gen_range(4..64),
                    rng.gen_range(4..32),
                )
            })
            .collect();
        g.bench_with_input(
            BenchmarkId::new("elementary_slab_old", n),
            &rects,
            |b, rects| b.iter(|| black_box(legacy_region::add_rect_loop(rects.iter().copied()))),
        );
        g.bench_with_input(
            BenchmarkId::new("band_merge_sweep", n),
            &rects,
            |b, rects| {
                b.iter(|| {
                    let mut acc = Region::new();
                    for &r in rects {
                        acc.add_rect(r);
                    }
                    black_box(acc)
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("band_merge_bulk", n),
            &rects,
            |b, rects| b.iter(|| black_box(Region::from_rects(rects.iter().copied()))),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_buffer, bench_styles, bench_damage_region, bench_region_combine
}
criterion_main!(benches);
