//! E14 — parallel band paint and the compressed wire.
//!
//! Series:
//! * `paint/` — replaying one recorded fig5-sized repaint's command
//!   list (full-window mix of fills, text, lines, ovals, polygons)
//!   across 1/2/4/8 rasterizer threads. `threads=1` is the serial
//!   reference path the byte-identity oracle pins the others to.
//! * `encode/` — one full typing-profile loadgen run over the
//!   in-memory transport with the per-frame raw-vs-RLE wire encoder
//!   on (`rle`) vs pinned raw (`raw`); the pair is the encoder
//!   ablation.
//!
//! Headlines printed outside criterion: the paint speedup at 4
//! threads (bar: ≥1.5× on fig5-sized damage) and the typing-profile
//! bytes-on-wire ratio raw ÷ encoded (bar: ≥2×).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

use atk_graphics::{Color, FontDesc, Framebuffer, Point, RasterOp, Rect};
use atk_serve::{run_loadgen_mem, LoadConfig, Profile};
use atk_wm::paint::{replay_bands_timed, replay_parallel, replay_serial, DrawOp, PaintCmd};

/// Fig5's window is 560×560; one full-window repaint of a compound
/// document is on the order of a few hundred resolved primitives.
const W: i32 = 560;
const H: i32 = 560;

/// A deterministic stand-in for a recorded full-window fig5 repaint:
/// ruled table cells, styled text rows, an equation-ish polygon, an
/// animation wedge — the op mix the ez compound scene actually emits.
fn fig5_sized_cmds() -> Vec<PaintCmd> {
    let mut cmds = Vec::new();
    let mut push = |op: DrawOp| cmds.push(PaintCmd::new(None, op));
    push(DrawOp::FillRect {
        r: Rect::new(0, 0, W, H),
        color: Color::WHITE,
        rop: RasterOp::Copy,
    });
    let font = FontDesc::default_body();
    // Text body: the document is mostly glyphs — 43 visible lines, and
    // each line lands as several styled runs (the ez compound doc
    // re-rasterizes runs per style change), so ~5 text ops per line.
    for row in 0..43 {
        for run in 0..5 {
            push(DrawOp::Text {
                origin: Point::new(8 + run * 110, 4 + row * 13),
                text: "the quick brown fox jumps over the lazy dog 0123456789 ".into(),
                font: font.clone(),
                color: Color::BLACK,
            });
        }
    }
    // Table rules: a 12×8 grid of cells.
    for i in 0..=12 {
        push(DrawOp::Line {
            a: Point::new(40 + i * 40, 180),
            b: Point::new(40 + i * 40, 420),
            width: 1,
            color: Color::BLACK,
        });
    }
    for j in 0..=8 {
        push(DrawOp::Line {
            a: Point::new(40, 180 + j * 30),
            b: Point::new(520, 180 + j * 30),
            width: 1,
            color: Color::BLACK,
        });
    }
    // Cell contents.
    for i in 0..12 {
        for j in 0..8 {
            push(DrawOp::Text {
                origin: Point::new(46 + i * 40, 186 + j * 30),
                text: format!("{}", (i + 1) * (j + 1)),
                font: font.clone(),
                color: Color::BLACK,
            });
        }
    }
    // The embedded animation and equation.
    for k in 0..12 {
        push(DrawOp::Wedge {
            r: Rect::new(420, 440, 100, 100),
            start_deg: (k * 30) as f64,
            end_deg: (k * 30 + 20) as f64,
            color: Color(0xFF3366 + k as u32 * 11),
        });
        push(DrawOp::Oval {
            r: Rect::new(30 + k * 20, 450, 18, 18),
            color: Color::BLACK,
            fill: k % 2 == 0,
        });
    }
    push(DrawOp::Polygon {
        pts: vec![
            Point::new(200, 450),
            Point::new(260, 470),
            Point::new(240, 530),
            Point::new(180, 520),
        ],
        color: Color::LIGHT_GRAY,
    });
    cmds
}

fn bench_paint(c: &mut Criterion) {
    let cmds = fig5_sized_cmds();
    let mut g = c.benchmark_group("e14/paint");
    for threads in [1usize, 2, 4, 8] {
        g.bench_function(BenchmarkId::from_parameter(threads), |b| {
            let mut fb = Framebuffer::new(W, H, Color::WHITE);
            b.iter(|| {
                if threads == 1 {
                    replay_serial(&mut fb, black_box(&cmds));
                } else {
                    replay_parallel(&mut fb, black_box(&cmds), threads);
                }
            })
        });
    }
    g.finish();
}

fn typing_cfg(encode: bool) -> LoadConfig {
    let mut cfg = LoadConfig {
        sessions: 4,
        steps: 60,
        scene: "fig5".into(),
        profile: Profile::Typing,
        ..LoadConfig::default()
    };
    cfg.server.session.encode = encode;
    cfg
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("e14/encode");
    g.sample_size(10);
    for (label, encode) in [("rle", true), ("raw", false)] {
        g.bench_function(BenchmarkId::from_parameter(label), |b| {
            let cfg = typing_cfg(encode);
            b.iter(|| {
                let report = run_loadgen_mem(black_box(&cfg)).unwrap();
                assert!(report.errors.is_empty(), "{:?}", report.errors);
                report
            })
        });
    }
    g.finish();
}

/// The acceptance headlines: paint speedup at 4 threads and the
/// typing-profile bytes-on-wire ratio.
///
/// The paint speedup is wall-clock when the host has at least as many
/// cores as bands. On core-starved hosts (CI containers are often
/// pinned to one CPU) wall-clock only measures the scheduler
/// time-slicing a single core, so the headline instead reports the
/// partition's critical path — each band replayed sequentially and
/// timed via `replay_bands_timed`, with `serial / max(band cost)` as
/// the speedup a fully parallel replay approaches. Both paths replay
/// the identical command list and produce identical pixels.
fn print_headline() {
    let cmds = fig5_sized_cmds();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let serial_us = || -> f64 {
        let mut samples = Vec::with_capacity(9);
        for _ in 0..9 {
            let mut fb = Framebuffer::new(W, H, Color::WHITE);
            let t0 = Instant::now();
            replay_serial(&mut fb, &cmds);
            samples.push(t0.elapsed().as_secs_f64() * 1e6);
            black_box(&fb);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        samples[samples.len() / 2]
    };
    let parallel_us = |threads: usize| -> (f64, &'static str) {
        let mut samples = Vec::with_capacity(9);
        for _ in 0..9 {
            let mut fb = Framebuffer::new(W, H, Color::WHITE);
            if cores >= threads {
                let t0 = Instant::now();
                replay_parallel(&mut fb, &cmds, threads);
                samples.push(t0.elapsed().as_secs_f64() * 1e6);
            } else {
                let costs = replay_bands_timed(&mut fb, &cmds, threads);
                samples.push(costs.into_iter().max().unwrap_or(0) as f64);
            }
            black_box(&fb);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let kind = if cores >= threads {
            "wall-clock"
        } else {
            "critical-path"
        };
        (samples[samples.len() / 2], kind)
    };
    let serial = serial_us();
    for threads in [2usize, 4, 8] {
        let (par, kind) = parallel_us(threads);
        println!(
            "e14 headline: fig5-sized repaint {} cmds, {threads} threads: \
             {par:.0} us vs serial {serial:.0} us ({:.2}x {kind}, {cores} \
             core(s){})",
            cmds.len(),
            serial / par,
            if threads == 4 { "; bar: >=1.5x" } else { "" }
        );
    }

    let rle = run_loadgen_mem(&typing_cfg(true)).unwrap();
    assert!(rle.errors.is_empty(), "{:?}", rle.errors);
    println!(
        "e14 headline: typing fig5 wire: {} raw bytes -> {} encoded \
         ({:.1}x; bar: >=2x)",
        rle.bytes_on_wire, rle.encoded_bytes, rle.encode_ratio
    );
}

fn benches_with_headline(c: &mut Criterion) {
    print_headline();
    bench_paint(c);
    bench_encode(c);
}

criterion_group!(benches, benches_with_headline);
criterion_main!(benches);
