//! E2 — multiple views on one data object, and the chart's two-hop
//! relay (paper §2).
//!
//! Series: notification fan-out cost vs. number of attached views
//! (1–64), and the table → chart-data → chart-view relay.
//!
//! Expected shape: linear in the observer count, sub-microsecond per
//! observer — supporting the paper's claim that the separation's costs
//! are manageable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use atk_apps::standard_world;
use atk_graphics::Rect;
use atk_table::{CellInput, ChartData, PieChartView, TableData};
use atk_text::{TextData, TextView};

fn bench_fanout(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2/fanout");
    for n in [1usize, 4, 16, 64] {
        let mut world = standard_world();
        let doc = world.insert_data(Box::new(TextData::from_str(&"line\n".repeat(50))));
        for _ in 0..n {
            let v = world.insert_view(Box::new(TextView::new()));
            world.with_view(v, |view, w| view.set_data_object(w, doc));
            world.set_view_bounds(v, Rect::new(0, 0, 300, 200));
            world.with_view(v, |view, w| {
                view.as_any_mut()
                    .downcast_mut::<TextView>()
                    .unwrap()
                    .ensure_layout(w);
            });
        }
        let _ = world.take_damage_region();
        g.bench_with_input(BenchmarkId::new("views", n), &n, |b, _| {
            b.iter(|| {
                // Insert then delete so the document size stays constant
                // across iterations.
                let rec = world
                    .data_mut::<TextData>(doc)
                    .unwrap()
                    .insert(black_box(10), "x");
                world.notify(doc, rec);
                let rec = world.data_mut::<TextData>(doc).unwrap().delete(10, 1);
                world.notify(doc, rec);
                let delivered = world.flush_notifications();
                let _ = world.take_damage_region();
                delivered
            })
        });
    }
    g.finish();
}

fn bench_chart_relay(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2/chart_relay");
    let mut world = standard_world();
    let table = world.insert_data(Box::new(TableData::new(4, 4)));
    let chart = world.insert_data(Box::new(ChartData::new()));
    world.with_data(chart, |d, w| {
        d.as_any_mut()
            .downcast_mut::<ChartData>()
            .unwrap()
            .bind(w, chart, table, (0, 0, 3, 3));
    });
    let pie = world.insert_view(Box::new(PieChartView::new()));
    world.with_view(pie, |v, w| v.set_data_object(w, chart));
    world.set_view_bounds(pie, Rect::new(0, 0, 100, 100));
    world.flush_notifications();
    let _ = world.take_damage_region();

    g.bench_function("table_edit_to_chart_view", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let rec = world.data_mut::<TableData>(table).unwrap().set_cell(
                0,
                0,
                CellInput::Raw(format!("{}", i % 100)),
            );
            world.notify(table, rec);
            world.flush_notifications();
            let _ = world.take_damage_region();
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_fanout, bench_chart_relay
}
criterion_main!(benches);
