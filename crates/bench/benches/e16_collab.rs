//! E16 — replicated shared documents: what does fanout cost?
//!
//! One writer edits a shared document; N silent replicas each apply
//! every op off the document's log and receive an ordinary diff frame.
//! The paper's collaboration story only works if adding watchers is
//! much cheaper than adding sessions — replication happens on shard
//! threads in parallel, so per-op wall time must grow far slower than
//! replica count.
//!
//! Series:
//! * `fanout/` — a full collab fleet (attach, merged edit stream,
//!   converge, goodbye) at 0, 2, 4, and 8 watchers on an 8-shard
//!   server; throughput is ops/s.
//! * The headline printed outside criterion: per-op wall time at 0 and
//!   8 watchers, their ratio (the sub-linearity claim E16 records), fanout
//!   p99, replay lag, and the diff-vs-keyframe wire ablation for the
//!   watcher fan-out bytes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use atk_serve::{run_loadgen_mem, LoadConfig, LoadReport, Profile};

const STEPS: usize = 160;
const SHARDS: usize = 8;

fn collab_cfg(watchers: usize) -> LoadConfig {
    let mut cfg = LoadConfig {
        docs: 1,
        writers: 1,
        watchers,
        steps: STEPS,
        scene: "fig2".into(),
        profile: Profile::Collab,
        shards: SHARDS,
        window: 8,
        ..LoadConfig::default()
    };
    cfg.server.max_sessions = 16;
    cfg
}

fn run(cfg: &LoadConfig) -> LoadReport {
    let report = run_loadgen_mem(cfg).unwrap();
    assert!(report.errors.is_empty(), "errors: {:?}", report.errors);
    assert_eq!(report.divergences, Some(0), "replicas diverged");
    report
}

fn bench_fanout(c: &mut Criterion) {
    let mut g = c.benchmark_group("e16/fanout");
    g.sample_size(10);
    g.throughput(Throughput::Elements(STEPS as u64));
    for watchers in [0usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("watchers", watchers),
            &watchers,
            |b, &watchers| {
                let cfg = collab_cfg(watchers);
                b.iter(|| run(black_box(&cfg)))
            },
        );
    }
    g.finish();
}

/// The E16 numbers: per-op wall time with and without the 8-watcher
/// fanout, the ratio the claim is about, and the wire ablation.
fn print_headline() {
    let per_op = |r: &LoadReport| r.wall_s * 1e6 / STEPS as f64;
    // Best-of-5 tames scheduler noise the same way criterion's own
    // sampling would; each run is a whole fleet lifecycle, and a single
    // stalled run (fanout p99 in the milliseconds) must not decide the
    // ratio on a loaded host.
    let best = |watchers: usize| -> (f64, LoadReport) {
        (0..5)
            .map(|_| {
                let r = run(&collab_cfg(watchers));
                (per_op(&r), r)
            })
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .unwrap()
    };
    let (solo_us, _) = best(0);
    let (fan_us, fan) = best(8);
    let ratio = fan_us / solo_us;
    println!("e16 headline: 1 writer, {STEPS} merged ops on fig2, {SHARDS} shards:");
    println!("  single replica: {solo_us:.0} us/op");
    println!(
        "  + 8 watchers:   {fan_us:.0} us/op ({ratio:.2}x; fanout p99 {:.3} ms, \
         replay lag p99 {} op(s))",
        fan.fanout_p99_us.unwrap_or(0) as f64 / 1000.0,
        fan.replay_lag_p50_p99.map_or(0, |(_, p99)| p99),
    );
    // Healthy is ~6.7x on a quiet host (the number E16 records) and
    // 7-9x on a loaded single-CPU one — session forking (E17)
    // cheapened the solo baseline's boot, which nudged the ratio up.
    // The regression this guards — fanout that serializes or stops
    // sharing the serialized op, making a watcher cost a full
    // session's apply — lands well past 10x, so the guard sits there
    // rather than on a noise-width margin.
    assert!(
        ratio < 10.0,
        "fanning out to 8 watchers must cost far less than 8 extra \
         sessions' applies, got {ratio:.2}x (healthy ~7x, serialized \
         fanout >10x)"
    );

    // Ablation: watcher updates as diffs vs. keyframe-only shipping.
    let mut keyed = collab_cfg(8);
    keyed.server.session.keyframe_only = true;
    let keyed = run(&keyed);
    println!(
        "  wire ablation: diffs {} bytes vs keyframe-only {} bytes ({:.1}x)",
        fan.bytes_on_wire,
        keyed.bytes_on_wire,
        keyed.bytes_on_wire as f64 / fan.bytes_on_wire.max(1) as f64,
    );
}

fn benches_with_headline(c: &mut Criterion) {
    print_headline();
    bench_fanout(c);
}

criterion_group!(benches, benches_with_headline);
criterion_main!(benches);
