//! E5 — window-system independence (paper §8, §4).
//!
//! Series:
//! * `indirection/` — primitive draw cost straight into the framebuffer
//!   vs. through the Graphic trait (the graphics layer's overhead);
//! * `backends/` — the same full-scene draw on `x11sim` (immediate) and
//!   `awmsim` (record + replay);
//! * `printer/` — the same draw into the PostScript drawable.
//!
//! Expected shape: the layer adds a small constant per op (the paper
//! banked on "simple transformations"); the display-list backend defers
//! cost from record to replay.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use atk_graphics::{Color, Framebuffer, Point, Rect, Size};
use atk_wm::{Graphic, WindowSystem};

const OPS: usize = 200;

fn raw_scene(fb: &mut Framebuffer) {
    for i in 0..OPS {
        let i = i as i32;
        fb.fill_rect(Rect::new(i % 100, (i * 7) % 100, 20, 10), Color::BLACK);
        fb.draw_line(
            Point::new(i % 120, 0),
            Point::new(0, i % 120),
            1,
            Color::GRAY,
        );
    }
}

fn layered_scene(g: &mut dyn Graphic) {
    for i in 0..OPS {
        let i = i as i32;
        g.set_foreground(Color::BLACK);
        g.fill_rect(Rect::new(i % 100, (i * 7) % 100, 20, 10));
        g.set_foreground(Color::GRAY);
        g.draw_line(Point::new(i % 120, 0), Point::new(0, i % 120));
    }
}

fn bench_indirection(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5/indirection");
    g.throughput(Throughput::Elements(2 * OPS as u64));
    g.bench_function("direct_framebuffer", |b| {
        let mut fb = Framebuffer::new(160, 160, Color::WHITE);
        b.iter(|| raw_scene(black_box(&mut fb)))
    });
    g.bench_function("through_graphic_trait", |b| {
        let mut ws = atk_wm::x11sim::X11Sim::new();
        let mut win = ws.open_window("t", Size::new(160, 160));
        b.iter(|| layered_scene(black_box(win.graphic())))
    });
    g.finish();
}

fn bench_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5/backends");
    g.throughput(Throughput::Elements(2 * OPS as u64));
    for name in ["x11sim", "awmsim"] {
        g.bench_function(format!("{name}/record"), |b| {
            b.iter(|| {
                let mut ws = atk_wm::open_window_system(Some(name)).unwrap();
                let mut win = ws.open_window("t", Size::new(160, 160));
                layered_scene(win.graphic());
                win.op_count()
            })
        });
        g.bench_function(format!("{name}/record_and_pixels"), |b| {
            b.iter(|| {
                let mut ws = atk_wm::open_window_system(Some(name)).unwrap();
                let mut win = ws.open_window("t", Size::new(160, 160));
                layered_scene(win.graphic());
                win.snapshot().map(|fb| fb.width())
            })
        });
    }
    g.finish();
}

fn bench_printer(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5/printer");
    g.throughput(Throughput::Elements(2 * OPS as u64));
    g.bench_function("postscript_drawable", |b| {
        b.iter(|| {
            let mut ps = atk_wm::printer::PostScriptGraphic::new(612, 792);
            layered_scene(&mut ps);
            ps.document().len()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_indirection, bench_backends, bench_printer
}
criterion_main!(benches);
