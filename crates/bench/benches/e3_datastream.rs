//! E3 — the datastream external representation (paper §5).
//!
//! Series: write and read throughput vs. document size; nesting depth
//! scaling; the skip-scan (find an object's extent without parsing) vs.
//! a full component parse of the same bytes.
//!
//! Expected shape: linear in document size; skip-scan several times
//! cheaper than parsing — the property that makes unknown-object
//! passthrough and partial recovery practical.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use atk_apps::corpus::{self, Mix};
use atk_apps::standard_world;
use atk_core::{document_to_string, read_document, DatastreamReader, Token};

fn bench_write_read(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3/write_read");
    for words in [200usize, 1000, 5000] {
        let mut world = standard_world();
        let doc = corpus::compound_document(&mut world, 42, words, Mix::paper_intro());
        let stream = document_to_string(&world, doc);
        g.throughput(Throughput::Bytes(stream.len() as u64));
        g.bench_with_input(BenchmarkId::new("write", words), &words, |b, _| {
            b.iter(|| document_to_string(&world, black_box(doc)))
        });
        g.bench_with_input(BenchmarkId::new("read", words), &words, |b, _| {
            b.iter(|| {
                let mut w2 = standard_world();
                read_document(&mut w2, black_box(&stream)).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_nesting(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3/nesting");
    for depth in [4usize, 16, 32] {
        let mut world = standard_world();
        let doc = corpus::nested_document(&mut world, depth);
        let stream = document_to_string(&world, doc);
        g.bench_with_input(BenchmarkId::new("read_depth", depth), &depth, |b, _| {
            b.iter(|| {
                let mut w2 = standard_world();
                read_document(&mut w2, black_box(&stream)).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_skip_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3/skip_vs_parse");
    let mut world = standard_world();
    let doc = corpus::compound_document(&mut world, 7, 3000, Mix::paper_intro());
    let stream = document_to_string(&world, doc);
    g.throughput(Throughput::Bytes(stream.len() as u64));

    // Skip scan: find the root object's extent without parsing anything.
    g.bench_function("skip_scan", |b| {
        b.iter(|| {
            let mut r = DatastreamReader::new(black_box(&stream));
            match r.next_token().unwrap() {
                Some(Token::BeginData { .. }) => {}
                other => panic!("unexpected {other:?}"),
            }
            let lines = r.skip_to_matching_end().unwrap();
            lines.len()
        })
    });
    // Full parse through every component's read_body.
    g.bench_function("full_parse", |b| {
        b.iter(|| {
            let mut w2 = standard_world();
            read_document(&mut w2, black_box(&stream)).unwrap()
        })
    });
    g.finish();
}

fn bench_escaping(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3/escaping");
    let nasty: String = "text with \\backslashes\\ and café unicode ∑ mixed in ".repeat(40);
    g.throughput(Throughput::Bytes(nasty.len() as u64));
    g.bench_function("escape", |b| {
        b.iter(|| atk_core::datastream::escape_content(black_box(&nasty)))
    });
    let escaped = atk_core::datastream::escape_content(&nasty).join("");
    g.bench_function("unescape", |b| {
        b.iter(|| atk_core::datastream::unescape_content(black_box(&escaped)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_write_read, bench_nesting, bench_skip_scan, bench_escaping
}
criterion_main!(benches);
