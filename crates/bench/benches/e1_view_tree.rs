//! E1 — event routing through the view tree (paper §3, figure 1).
//!
//! Series reported:
//! * `fig1/` — mouse dispatch through the paper's exact window (frame ⊃
//!   scrollbar ⊃ text ⊃ table);
//! * `depth/` — dispatch latency vs. tree depth (nested boxes), showing
//!   the cost of parental authority is linear and tiny;
//! * `global/` — the flat global-physical baseline at matching sizes.
//!
//! Expected shape: both dispatchers are microseconds-class; the tree
//! grows with depth, the global model with registered-rectangle count —
//! and only the tree gets the semantics right (see tests).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use atk_apps::scenes;
use atk_components::boxes::Extent;
use atk_components::{BoxView, Orientation};
use atk_core::baseline::GlobalDispatcher;
use atk_core::World;
use atk_graphics::{Point, Rect, Size};
use atk_wm::{Button, MouseAction};

fn bench_fig1(c: &mut Criterion) {
    let mut ws = atk_wm::x11sim::X11Sim::new();
    let mut scene = scenes::fig1_view_tree(&mut ws).unwrap();
    let mut g = c.benchmark_group("e1/fig1");
    g.bench_function("mouse_down_into_text", |b| {
        let root = scene.im.root();
        b.iter(|| {
            scene.world.with_view(root, |v, w| {
                v.mouse(
                    w,
                    MouseAction::Down(Button::Left),
                    black_box(Point::new(120, 40)),
                )
            })
        })
    });
    g.bench_function("mouse_down_into_embedded_table", |b| {
        let root = scene.im.root();
        b.iter(|| {
            scene.world.with_view(root, |v, w| {
                v.mouse(
                    w,
                    MouseAction::Down(Button::Left),
                    black_box(Point::new(180, 70)),
                )
            })
        })
    });
    g.bench_function("movement_with_cursor_negotiation", |b| {
        b.iter(|| {
            scene.im.dispatch(
                &mut scene.world,
                atk_wm::WindowEvent::Mouse {
                    action: MouseAction::Movement,
                    pos: black_box(Point::new(120, 40)),
                },
            )
        })
    });
    g.finish();
}

/// Builds a chain of nested vertical boxes `depth` deep with a leaf probe.
fn deep_tree(depth: usize) -> (World, atk_core::ViewId) {
    let mut world = World::new();
    atk_components::register(&mut world.catalog);
    let mut root = world.insert_view(Box::new(BoxView::new(Orientation::Vertical)));
    world.set_view_bounds(root, Rect::new(0, 0, 400, 400));
    let top = root;
    for _ in 0..depth {
        let child = world.insert_view(Box::new(BoxView::new(Orientation::Vertical)));
        world.with_view(root, |v, w| {
            v.as_any_mut().downcast_mut::<BoxView>().unwrap().add_child(
                w,
                child,
                Extent::Weight(1.0),
            );
        });
        // Re-run layout so bounds cascade.
        let b = world.view_bounds(root);
        world.set_view_bounds(root, Rect::new(b.x, b.y, b.width, b.height));
        world.with_view(root, |v, w| v.layout(w));
        root = child;
    }
    (world, top)
}

fn bench_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1/depth");
    for depth in [2usize, 4, 8, 16] {
        let (mut world, top) = deep_tree(depth);
        g.bench_with_input(BenchmarkId::new("tree_dispatch", depth), &depth, |b, _| {
            b.iter(|| {
                world.with_view(top, |v, w| {
                    v.mouse(
                        w,
                        MouseAction::Down(Button::Left),
                        black_box(Point::new(200, 200)),
                    )
                })
            })
        });
    }
    g.finish();
}

fn bench_global(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1/global");
    for n in [4usize, 16, 64, 256] {
        let mut disp = GlobalDispatcher::new();
        for i in 0..n {
            let x = (i % 16) as i32 * 25;
            let y = (i / 16) as i32 * 25;
            disp.register(i as u32, Rect::new(x, y, 24, 24), i as i32);
        }
        g.bench_with_input(BenchmarkId::new("flat_dispatch", n), &n, |b, _| {
            b.iter(|| disp.dispatch(black_box(Point::new(200, 200))))
        });
    }
    g.finish();
    let _ = Size::ZERO;
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_fig1, bench_depth, bench_global
}
criterion_main!(benches);
