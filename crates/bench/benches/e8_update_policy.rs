//! E8 — the delayed-update protocol (paper §2 calls coordinating data
//! objects and views via delayed update "the trickiest challenge").
//!
//! Series:
//! * `policy/` — cost of one edit + screen settle under three policies:
//!   incremental (change records → line-strip damage, the toolkit's
//!   design), full-invalidate (every change damages the whole view), and
//!   immediate (redraw synchronously on every edit, no batching) — each
//!   with 1, 8, and 32 attached views;
//! * `batching/` — N edits then one settle vs. N edits each settled;
//! * `instrumentation/` — the same edit+settle with the atk-trace
//!   collector disabled (default: one atomic load per site) vs. enabled
//!   (counters + spans recorded). The acceptance bar is enabled within
//!   5% of disabled; the enabled run's collector summary is printed
//!   alongside the criterion output.
//!
//! Expected shape: incremental < full-invalidate < immediate, with the
//! gap widening in the view count — the reason the paper accepts the
//! delayed-update complexity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use atk_trace::{text_summary, Collector};

use atk_apps::standard_world;
use atk_core::{ChangeRec, InteractionManager, World};
use atk_graphics::Size;
use atk_text::TextData;
use atk_wm::WindowSystem;

struct Rig {
    world: World,
    ims: Vec<InteractionManager>,
    doc: atk_core::DataId,
}

/// N windows, each with a text view on the same 60-line document.
fn rig(views: usize) -> Rig {
    let mut world = standard_world();
    let doc = world.insert_data(Box::new(TextData::from_str(&"line of text\n".repeat(60))));
    let mut ws = atk_wm::x11sim::X11Sim::new();
    let mut ims = Vec::new();
    for _ in 0..views {
        let tv = world.new_view("textview").unwrap();
        world.with_view(tv, |v, w| v.set_data_object(w, doc));
        let win = ws.open_window("w", Size::new(320, 240));
        let mut im = InteractionManager::new(&mut world, win, tv);
        im.pump(&mut world);
        ims.push(im);
    }
    Rig { world, ims, doc }
}

fn settle_all(rig: &mut Rig) {
    for im in &mut rig.ims {
        im.settle(&mut rig.world);
    }
}

fn bench_policy(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8/policy");
    g.sample_size(20);
    for views in [1usize, 8, 32] {
        // Incremental: the toolkit's real path (typed change records).
        g.bench_with_input(
            BenchmarkId::new("incremental", views),
            &views,
            |b, &views| {
                let mut r = rig(views);
                b.iter(|| {
                    let rec = r
                        .world
                        .data_mut::<TextData>(r.doc)
                        .unwrap()
                        .insert(black_box(400), "x");
                    r.world.notify(r.doc, rec);
                    settle_all(&mut r);
                })
            },
        );
        // Full invalidation: same edit, but the change record is Full,
        // so every view repaints everything.
        g.bench_with_input(
            BenchmarkId::new("full_invalidate", views),
            &views,
            |b, &views| {
                let mut r = rig(views);
                b.iter(|| {
                    let _ = r
                        .world
                        .data_mut::<TextData>(r.doc)
                        .unwrap()
                        .insert(black_box(400), "x");
                    r.world.notify(r.doc, ChangeRec::Full);
                    settle_all(&mut r);
                })
            },
        );
        // Immediate: no batching at all — the edit is announced and
        // every window fully, synchronously repainted (the
        // pre-delayed-update strawman).
        g.bench_with_input(BenchmarkId::new("immediate", views), &views, |b, &views| {
            let mut r = rig(views);
            b.iter(|| {
                let rec = r
                    .world
                    .data_mut::<TextData>(r.doc)
                    .unwrap()
                    .insert(black_box(400), "x");
                r.world.notify(r.doc, rec);
                r.world.flush_notifications();
                let _ = r.world.take_damage_region();
                for im in &mut r.ims {
                    im.redraw_full(&mut r.world);
                }
            })
        });
    }
    g.finish();
}

fn bench_batching(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8/batching");
    g.sample_size(20);
    const EDITS: usize = 16;
    g.bench_function("16_edits_one_settle", |b| {
        let mut r = rig(4);
        b.iter(|| {
            for i in 0..EDITS {
                let rec = r
                    .world
                    .data_mut::<TextData>(r.doc)
                    .unwrap()
                    .insert(black_box(100 + i), "y");
                r.world.notify(r.doc, rec);
            }
            settle_all(&mut r);
        })
    });
    g.bench_function("16_edits_16_settles", |b| {
        let mut r = rig(4);
        b.iter(|| {
            for i in 0..EDITS {
                let rec = r
                    .world
                    .data_mut::<TextData>(r.doc)
                    .unwrap()
                    .insert(black_box(100 + i), "y");
                r.world.notify(r.doc, rec);
                settle_all(&mut r);
            }
        })
    });
    g.finish();
}

/// One incremental edit + settle — the workload the instrumentation
/// ablation holds fixed while varying the collector state.
fn edit_and_settle(r: &mut Rig) {
    let rec = r
        .world
        .data_mut::<TextData>(r.doc)
        .unwrap()
        .insert(black_box(400), "x");
    r.world.notify(r.doc, rec);
    settle_all(r);
}

/// Collector-overhead ablation: identical workload, collector off/on.
fn bench_instrumentation(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8/instrumentation");
    g.sample_size(20);
    g.bench_function("collector_off", |b| {
        let mut r = rig(8);
        // A fresh, disabled collector (not the shared global), so the
        // baseline measures the pure fast path.
        r.world.set_collector(Arc::new(Collector::new()));
        b.iter(|| edit_and_settle(&mut r))
    });
    let collector = Arc::new(Collector::new());
    collector.enable();
    g.bench_function("collector_on", |b| {
        let mut r = rig(8);
        r.world.set_collector(Arc::clone(&collector));
        b.iter(|| edit_and_settle(&mut r))
    });
    g.finish();
    println!("collector summary (enabled run):");
    print!("{}", text_summary(&collector.snapshot()));
    println!();
}

/// Damage-area side channel: how many pixels each policy touches.
fn report_damage_areas() {
    for views in [1usize, 8] {
        let mut r = rig(views);
        let rec = r
            .world
            .data_mut::<TextData>(r.doc)
            .unwrap()
            .insert(100, "x");
        r.world.notify(r.doc, rec);
        r.world.flush_notifications();
        let mut area = 0i64;
        for im in &r.ims {
            let _ = im;
        }
        // All views share the world's damage list; measure before settle.
        let region = r.world.take_damage_region();
        area += region.area();
        println!("e8/damage_area[incremental, {views} views]: {area} px");

        let mut r = rig(views);
        r.world.notify(r.doc, ChangeRec::Full);
        r.world.flush_notifications();
        let region = r.world.take_damage_region();
        println!(
            "e8/damage_area[full_invalidate, {views} views]: {} px",
            region.area()
        );
    }
}

fn bench_all(c: &mut Criterion) {
    report_damage_areas();
    bench_policy(c);
    bench_batching(c);
    bench_instrumentation(c);
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
