//! E13 — end-to-end frame latency attribution (the observability story
//! for §2's update pipeline: where does a keystroke's frame time go?).
//!
//! Series:
//! * `attribution/` — one full typing-profile loadgen run over the
//!   in-memory transport with frame tracing on (`traced`) vs off
//!   (`untraced`); the pair is the attribution-overhead ablation.
//! * `stats/` — the same run with the post-run `Stats` wire probe, so
//!   snapshot merging and JSON export are on the measured path.
//!
//! The headline printed outside criterion is the per-stage ~p50/~p99
//! breakdown (decode → apply → settle → paint → diff → ship) from the
//! server-wide merged histograms, plus the traced-vs-untraced frames/s
//! delta the acceptance bar asks to stay within 5%.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use atk_serve::{run_loadgen_mem, LoadConfig, Profile};

fn typing_cfg(frame_trace: bool) -> LoadConfig {
    let mut cfg = LoadConfig {
        sessions: 4,
        steps: 60,
        scene: "fig5".into(),
        profile: Profile::Typing,
        ..LoadConfig::default()
    };
    cfg.server.session.frame_trace = frame_trace;
    cfg
}

fn bench_attribution(c: &mut Criterion) {
    let mut g = c.benchmark_group("e13/attribution");
    g.sample_size(10);
    for (label, frame_trace) in [("traced", true), ("untraced", false)] {
        g.bench_function(BenchmarkId::from_parameter(label), |b| {
            let cfg = typing_cfg(frame_trace);
            b.iter(|| {
                let report = run_loadgen_mem(black_box(&cfg)).unwrap();
                assert!(report.errors.is_empty(), "{:?}", report.errors);
                report
            })
        });
    }
    g.finish();
}

fn bench_stats_probe(c: &mut Criterion) {
    let mut g = c.benchmark_group("e13/stats");
    g.sample_size(10);
    g.bench_function("probe", |b| {
        let mut cfg = typing_cfg(true);
        cfg.stats_probe = true;
        b.iter(|| {
            let report = run_loadgen_mem(black_box(&cfg)).unwrap();
            assert!(report.stats_reply.is_some());
            report
        })
    });
    g.finish();
}

/// Median frames/s over interleaved traced/untraced runs — pairing the
/// runs cancels machine drift, the median sheds scheduler outliers.
fn ablation_frames_per_s(pairs: usize) -> (f64, f64) {
    let (on_cfg, off_cfg) = (typing_cfg(true), typing_cfg(false));
    let mut on = Vec::with_capacity(pairs);
    let mut off = Vec::with_capacity(pairs);
    for _ in 0..pairs {
        on.push(run_loadgen_mem(&on_cfg).unwrap().frames_per_s);
        off.push(run_loadgen_mem(&off_cfg).unwrap().frames_per_s);
    }
    let median = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    };
    (median(&mut on), median(&mut off))
}

/// The acceptance headline: the stage breakdown on the typing profile,
/// and the cost of collecting it.
fn print_headline() {
    let traced = run_loadgen_mem(&typing_cfg(true)).unwrap();
    assert!(traced.errors.is_empty(), "{:?}", traced.errors);
    assert!(
        !traced.stage_us.is_empty(),
        "typing run must produce stage histograms"
    );
    let breakdown: Vec<String> = traced
        .stage_us
        .iter()
        .map(|(name, p50, p99)| format!("{name} {p50}/{p99}"))
        .collect();
    println!(
        "e13 headline: typing fig5 stage ~p50/~p99 us: {}",
        breakdown.join(" | ")
    );

    let (on, off) = ablation_frames_per_s(5);
    let delta_pct = (on - off).abs() / off.max(1e-9) * 100.0;
    println!(
        "e13 ablation: frames/s traced {on:.0} vs untraced {off:.0} \
         ({delta_pct:.1}% median delta; bar: within 5%)"
    );
}

fn benches_with_headline(c: &mut Criterion) {
    print_headline();
    bench_attribution(c);
    bench_stats_probe(c);
}

criterion_group!(benches, benches_with_headline);
criterion_main!(benches);
