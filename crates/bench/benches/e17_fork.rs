//! E17 — session boot: cold `build_scene` vs template fork.
//!
//! The paper's runapp story (§7) is one shared base image every
//! application dynamically loads into; the serving analogue is a
//! pre-warmed template world per `(scene, backend)` that sessions fork
//! from instead of replaying class resolution, datastream parsing, and
//! layout per connection.
//!
//! Series:
//! * `boot/` — per scene: one cold `build_scene` against one
//!   `TemplateRegistry::fork_session` off a warm template. The ratio is
//!   the whole point of the subsystem.
//! * The headline printed outside criterion: the per-scene
//!   cold-vs-fork table (median microseconds and speedup), then a
//!   512-session ramp storm (connect + first keyframe only) with and
//!   without forking — wall time and TTFF percentiles. The same
//!   numbers are emitted as one machine-readable `BENCH_E17_JSON:`
//!   line for `scripts/bench_report.sh` to track across PRs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use atk_apps::scenes::{build_scene, scene_names};
use atk_apps::TemplateRegistry;
use atk_serve::{run_loadgen_mem, LoadConfig, LoadReport, Profile};
use atk_trace::Collector;

const BACKEND: &str = "x11sim";
const RAMP_SESSIONS: usize = 512;

fn bench_boot(c: &mut Criterion) {
    let mut g = c.benchmark_group("e17/boot");
    g.sample_size(10);
    for scene in scene_names() {
        g.bench_with_input(BenchmarkId::new("cold", scene), &scene, |b, scene| {
            b.iter(|| build_scene(black_box(scene), BACKEND).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("fork", scene), &scene, |b, scene| {
            let mut registry = TemplateRegistry::new(Arc::new(Collector::new()));
            registry
                .fork_session(scene, BACKEND)
                .expect("template warms");
            b.iter(|| registry.fork_session(black_box(scene), BACKEND).unwrap())
        });
    }
    g.finish();
}

fn median_us(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn time_us(mut f: impl FnMut()) -> u64 {
    let start = Instant::now();
    f();
    start.elapsed().as_micros() as u64
}

fn ramp_cfg(fork: bool) -> LoadConfig {
    let mut cfg = LoadConfig {
        sessions: RAMP_SESSIONS,
        scene: "fig5".into(),
        profile: Profile::Mixed,
        shards: 4,
        ramp: true,
        ..LoadConfig::default()
    };
    cfg.server.fork = fork;
    cfg.server.max_sessions = RAMP_SESSIONS;
    cfg
}

fn run_ramp(fork: bool) -> LoadReport {
    let report = run_loadgen_mem(&ramp_cfg(fork)).unwrap();
    assert!(
        report.errors.is_empty() && report.completed == RAMP_SESSIONS,
        "ramp (fork={fork}): completed {} of {RAMP_SESSIONS}, errors: {:?}",
        report.completed,
        report.errors
    );
    report
}

/// The E17 table + the `BENCH_E17_JSON:` line bench_report.sh captures.
fn print_headline() {
    const SAMPLES: usize = 9;
    println!("e17 headline: session boot per scene, cold build vs template fork:");
    let mut scenes_json = Vec::new();
    for scene in scene_names() {
        let cold_us = median_us(
            (0..SAMPLES)
                .map(|_| time_us(|| drop(black_box(build_scene(scene, BACKEND).unwrap()))))
                .collect(),
        );
        let mut registry = TemplateRegistry::new(Arc::new(Collector::new()));
        registry
            .fork_session(scene, BACKEND)
            .expect("template warms");
        let fork_us = median_us(
            (0..SAMPLES)
                .map(|_| {
                    time_us(|| drop(black_box(registry.fork_session(scene, BACKEND).unwrap())))
                })
                .collect(),
        );
        let speedup = cold_us as f64 / fork_us.max(1) as f64;
        println!("  {scene}: cold {cold_us:>6} us, fork {fork_us:>5} us, {speedup:>6.1}x");
        scenes_json.push(format!(
            "\"{scene}\":{{\"cold_us\":{cold_us},\"fork_us\":{fork_us},\"speedup\":{speedup:.2}}}"
        ));
    }

    let forked = run_ramp(true);
    let cold = run_ramp(false);
    println!("e17 ramp: {RAMP_SESSIONS}-session admission storm on fig5, 4 shards:");
    println!(
        "     fork: wall {:.3} s, ttff p50 {:.2} ms, p99 {:.2} ms ({} forks, {} template builds)",
        forked.wall_s,
        forked.ttff_p50_us as f64 / 1000.0,
        forked.ttff_p99_us as f64 / 1000.0,
        forked.forks.unwrap_or(0),
        forked.template_builds.unwrap_or(0),
    );
    println!(
        "  no-fork: wall {:.3} s, ttff p50 {:.2} ms, p99 {:.2} ms",
        cold.wall_s,
        cold.ttff_p50_us as f64 / 1000.0,
        cold.ttff_p99_us as f64 / 1000.0,
    );

    let ramp_side = |r: &LoadReport| {
        format!(
            "{{\"wall_s\":{:.3},\"ttff_p50_us\":{},\"ttff_p99_us\":{}}}",
            r.wall_s, r.ttff_p50_us, r.ttff_p99_us
        )
    };
    let json = format!(
        "{{\"scenes\":{{{}}},\"ramp\":{{\"sessions\":{RAMP_SESSIONS},\"fork\":{},\"no_fork\":{}}}}}",
        scenes_json.join(","),
        ramp_side(&forked),
        ramp_side(&cold),
    );
    atk_trace::validate_json(&json).expect("BENCH_E17_JSON must be valid JSON");
    println!("BENCH_E17_JSON: {json}");
}

fn benches_with_headline(c: &mut Criterion) {
    print_headline();
    bench_boot(c);
}

criterion_group!(benches, benches_with_headline);
criterion_main!(benches);
