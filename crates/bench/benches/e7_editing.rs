//! E7 — interactive editing throughput (paper §9: EZ replaced emacs for
//! 3000 campus users).
//!
//! Series:
//! * `keystrokes/` — full keystroke path (key → keymap → buffer edit →
//!   change record → notification → incremental damage) on documents up
//!   to 100k characters, plain and compound;
//! * `recalc/` — spreadsheet recalculation vs. sheet size (the Pascal's
//!   Triangle dependency chain);
//! * `session/` — a scripted mixed editing session through the whole
//!   interaction manager.
//!
//! Expected shape: keystroke cost roughly flat in document size (gap
//! buffer + incremental damage); recalc linear in formula count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use atk_apps::corpus::{self, Mix};
use atk_apps::standard_world;
use atk_core::InteractionManager;
use atk_graphics::{Rect, Size};
use atk_table::{coord_to_a1, CellInput, TableData};
use atk_text::{TextData, TextView};
use atk_wm::{Key, WindowSystem};

fn bench_keystrokes(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7/keystrokes");
    for chars in [1_000usize, 10_000, 100_000] {
        let mut world = standard_world();
        let doc = corpus::plain_text_doc(&mut world, 1, chars);
        let view = world.new_view("textview").unwrap();
        world.with_view(view, |v, w| v.set_data_object(w, doc));
        world.set_view_bounds(view, Rect::new(0, 0, 400, 300));
        world.with_view(view, |v, w| {
            let tv = v.as_any_mut().downcast_mut::<TextView>().unwrap();
            tv.ensure_layout(w);
            tv.set_caret(w, chars / 2);
        });
        let _ = world.take_damage_region();
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::new("insert_char", chars), &chars, |b, _| {
            b.iter(|| {
                // Type a character, then delete it, so the document size
                // stays at the series' nominal value.
                world.with_view(view, |v, w| {
                    v.key(w, black_box(Key::Char('x')));
                    v.key(w, Key::Backspace);
                });
                world.flush_notifications();
                let _ = world.take_damage_region();
            })
        });
    }
    // The compound case: same keystroke inside a document with embedded
    // components.
    let mut world = standard_world();
    let doc = corpus::compound_document(&mut world, 3, 2_000, Mix::paper_intro());
    let view = world.new_view("textview").unwrap();
    world.with_view(view, |v, w| v.set_data_object(w, doc));
    world.set_view_bounds(view, Rect::new(0, 0, 400, 300));
    world.with_view(view, |v, w| {
        v.as_any_mut()
            .downcast_mut::<TextView>()
            .unwrap()
            .ensure_layout(w);
    });
    let _ = world.take_damage_region();
    g.bench_function("insert_char_compound_doc", |b| {
        b.iter(|| {
            world.with_view(view, |v, w| {
                v.key(w, black_box(Key::Char('x')));
                v.key(w, Key::Backspace);
            });
            world.flush_notifications();
            let _ = world.take_damage_region();
        })
    });
    g.finish();
}

fn pascal_sheet(n: usize) -> TableData {
    let mut t = TableData::new(n, n);
    for i in 0..n {
        t.set_cell(i, 0, CellInput::Raw("1".into()));
        t.set_cell(0, i, CellInput::Raw("1".into()));
    }
    for r in 1..n {
        for c in 1..n {
            let above = coord_to_a1((r - 1, c));
            let left = coord_to_a1((r, c - 1));
            t.set_cell(r, c, CellInput::Raw(format!("={above}+{left}")));
        }
    }
    t
}

fn bench_recalc(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7/recalc");
    for n in [5usize, 10, 20, 40] {
        let mut sheet = pascal_sheet(n);
        g.throughput(Throughput::Elements((n * n) as u64));
        g.bench_with_input(BenchmarkId::new("pascal", n), &n, |b, _| {
            b.iter(|| {
                sheet.recalc();
                black_box(sheet.value(n - 1, n - 1))
            })
        });
    }
    g.finish();
}

fn bench_session(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7/session");
    g.sample_size(10);
    g.bench_function("scripted_200_events_through_im", |b| {
        let script = corpus::editing_script(9, 200);
        b.iter(|| {
            let mut world = standard_world();
            let doc = world.insert_data(Box::new(TextData::from_str(&corpus::lorem(2, 400))));
            let (frame, tv) = atk_apps::EzApp::build_tree(&mut world, doc).unwrap();
            let mut ws = atk_wm::x11sim::X11Sim::new();
            let win = ws.open_window("bench", Size::new(500, 350));
            let mut im = InteractionManager::new(&mut world, win, frame);
            world.request_focus(tv);
            im.pump(&mut world);
            script.run(&mut im, &mut world);
            black_box(im.stats().events)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_keystrokes, bench_recalc, bench_session
}
criterion_main!(benches);
