//! Run-time class registry: names, ancestry, versions, method inventories.
//!
//! The Class preprocessor generated, for every class, a run-time descriptor
//! holding its name, its superclass, a version stamp, and a table of object
//! methods (overridable, like C++ virtuals) and class procedures (not
//! overridable, like Smalltalk class methods). The run-time library could
//! answer "is this object a kind of `view`?" and "what does `textview`
//! override?". This module provides the same queries.

use std::collections::HashMap;
use std::fmt;

/// Dense identifier for a registered class.
///
/// Identifiers are assigned in registration order and never reused; they
/// index the registry's internal tables directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub(crate) u32);

impl ClassId {
    /// Returns the raw index of this class id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The flavour of a method entry, mirroring the Class language (paper §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodKind {
    /// An object method: dispatched through the instance, overridable in
    /// subclasses (like a C++ virtual function).
    Object,
    /// A class procedure: bound to the class itself and *not* overridable
    /// (like a Smalltalk class method).
    ClassProcedure,
}

/// A single entry in a class' method table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodInfo {
    /// Method name as it appeared in the class header (`.ch`) file.
    pub name: String,
    /// Whether this is an overridable object method or a class procedure.
    pub kind: MethodKind,
}

/// The run-time descriptor for one class.
#[derive(Debug, Clone)]
pub struct ClassInfo {
    /// Unique class name (e.g. `"textview"`).
    pub name: String,
    /// Superclass, or `None` for a root class.
    pub parent: Option<ClassId>,
    /// Version stamp; the Class system used these to detect stale `.ih`
    /// files at dynamic-link time.
    pub version: u32,
    /// Methods introduced *or overridden* by this class (inherited methods
    /// are resolved through the ancestry chain).
    pub methods: Vec<MethodInfo>,
}

/// Errors returned by registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassError {
    /// A class with this name is already registered.
    Duplicate(String),
    /// The named class (or parent id) is not registered.
    Unknown(String),
    /// A dynamic link was attempted against a mismatched class version.
    VersionMismatch {
        /// Class whose versions disagreed.
        class: String,
        /// Version compiled into the importer.
        wanted: u32,
        /// Version actually registered.
        found: u32,
    },
}

impl fmt::Display for ClassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClassError::Duplicate(n) => write!(f, "class `{n}` already registered"),
            ClassError::Unknown(n) => write!(f, "unknown class `{n}`"),
            ClassError::VersionMismatch {
                class,
                wanted,
                found,
            } => write!(
                f,
                "class `{class}` version mismatch: importer wants {wanted}, registry has {found}"
            ),
        }
    }
}

impl std::error::Error for ClassError {}

/// The registry of all classes known to the running toolkit.
///
/// # Examples
///
/// ```
/// use atk_class::{ClassRegistry, MethodKind};
///
/// let mut reg = ClassRegistry::new();
/// let dataobj = reg.define_root("dataobject", 1).unwrap();
/// let text = reg
///     .define("text", "dataobject", 3)
///     .unwrap();
/// reg.add_method(text, "InsertCharacters", MethodKind::Object).unwrap();
///
/// assert!(reg.is_a(text, dataobj));
/// assert!(!reg.is_a(dataobj, text));
/// assert_eq!(reg.ancestry(text).count(), 2);
/// ```
#[derive(Debug, Default, Clone)]
pub struct ClassRegistry {
    classes: Vec<ClassInfo>,
    by_name: HashMap<String, ClassId>,
}

impl ClassRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a root class (one with no superclass).
    pub fn define_root(&mut self, name: &str, version: u32) -> Result<ClassId, ClassError> {
        self.insert(name, None, version)
    }

    /// Registers `name` as a subclass of the already-registered `parent`.
    pub fn define(
        &mut self,
        name: &str,
        parent: &str,
        version: u32,
    ) -> Result<ClassId, ClassError> {
        let pid = self.id_of(parent)?;
        self.insert(name, Some(pid), version)
    }

    fn insert(
        &mut self,
        name: &str,
        parent: Option<ClassId>,
        version: u32,
    ) -> Result<ClassId, ClassError> {
        if self.by_name.contains_key(name) {
            return Err(ClassError::Duplicate(name.to_string()));
        }
        let id = ClassId(self.classes.len() as u32);
        self.classes.push(ClassInfo {
            name: name.to_string(),
            parent,
            version,
            methods: Vec::new(),
        });
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Appends a method entry to `class`' method table.
    pub fn add_method(
        &mut self,
        class: ClassId,
        method: &str,
        kind: MethodKind,
    ) -> Result<(), ClassError> {
        let info = self
            .classes
            .get_mut(class.index())
            .ok_or_else(|| ClassError::Unknown(format!("#{}", class.0)))?;
        info.methods.push(MethodInfo {
            name: method.to_string(),
            kind,
        });
        Ok(())
    }

    /// Looks up a class id by name.
    pub fn id_of(&self, name: &str) -> Result<ClassId, ClassError> {
        atk_trace::global().count("class.lookups", 1);
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| ClassError::Unknown(name.to_string()))
    }

    /// Returns the descriptor for `id`, if registered.
    pub fn info(&self, id: ClassId) -> Option<&ClassInfo> {
        self.classes.get(id.index())
    }

    /// Returns the descriptor for a class name, if registered.
    pub fn info_by_name(&self, name: &str) -> Option<&ClassInfo> {
        self.by_name.get(name).and_then(|id| self.info(*id))
    }

    /// True if `class` is `ancestor` or a (transitive) subclass of it.
    ///
    /// This is Class' `class_IsType` query, used pervasively by the toolkit
    /// to ask e.g. "can this object be embedded?" (`is_a(x, dataobject)`).
    pub fn is_a(&self, class: ClassId, ancestor: ClassId) -> bool {
        self.ancestry(class).any(|c| c == ancestor)
    }

    /// Iterates `class` and then each superclass up to the root.
    pub fn ancestry(&self, class: ClassId) -> Ancestry<'_> {
        Ancestry {
            registry: self,
            next: Some(class),
        }
    }

    /// Returns the class that introduces or most recently overrides
    /// `method` for `class`, searching up the ancestry chain.
    ///
    /// Class procedures are *not* inherited (paper §6: "they may not be
    /// overridden"), so they only match on the class itself.
    pub fn resolve_method(&self, class: ClassId, method: &str) -> Option<(ClassId, &MethodInfo)> {
        atk_trace::global().count("class.method_resolutions", 1);
        for (depth, cid) in self.ancestry(class).enumerate() {
            let info = self.info(cid)?;
            if let Some(m) = info.methods.iter().find(|m| m.name == method) {
                match m.kind {
                    MethodKind::Object => return Some((cid, m)),
                    MethodKind::ClassProcedure if depth == 0 => return Some((cid, m)),
                    MethodKind::ClassProcedure => continue,
                }
            }
        }
        None
    }

    /// Checks that the registered version of `name` equals `wanted`,
    /// mirroring the stale-import check done at dynamic-link time.
    pub fn check_version(&self, name: &str, wanted: u32) -> Result<(), ClassError> {
        let info = self
            .info_by_name(name)
            .ok_or_else(|| ClassError::Unknown(name.to_string()))?;
        if info.version != wanted {
            return Err(ClassError::VersionMismatch {
                class: name.to_string(),
                wanted,
                found: info.version,
            });
        }
        Ok(())
    }

    /// Number of registered classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True if no classes are registered.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Iterates all registered class descriptors in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (ClassId, &ClassInfo)> {
        self.classes
            .iter()
            .enumerate()
            .map(|(i, c)| (ClassId(i as u32), c))
    }
}

/// Iterator over a class and its superclasses; see [`ClassRegistry::ancestry`].
pub struct Ancestry<'a> {
    registry: &'a ClassRegistry,
    next: Option<ClassId>,
}

impl Iterator for Ancestry<'_> {
    type Item = ClassId;

    fn next(&mut self) -> Option<ClassId> {
        let cur = self.next?;
        self.next = self.registry.info(cur).and_then(|i| i.parent);
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toolkit_registry() -> (ClassRegistry, ClassId, ClassId, ClassId, ClassId) {
        let mut reg = ClassRegistry::new();
        let dobj = reg.define_root("dataobject", 1).unwrap();
        let view = reg.define_root("view", 1).unwrap();
        let text = reg.define("text", "dataobject", 2).unwrap();
        let textview = reg.define("textview", "view", 2).unwrap();
        (reg, dobj, view, text, textview)
    }

    #[test]
    fn ancestry_walks_to_root() {
        let (reg, dobj, _, text, _) = toolkit_registry();
        let chain: Vec<_> = reg.ancestry(text).collect();
        assert_eq!(chain, vec![text, dobj]);
    }

    #[test]
    fn is_a_is_reflexive_and_respects_hierarchy() {
        let (reg, dobj, view, text, textview) = toolkit_registry();
        assert!(reg.is_a(text, text));
        assert!(reg.is_a(text, dobj));
        assert!(reg.is_a(textview, view));
        assert!(!reg.is_a(text, view));
        assert!(!reg.is_a(dobj, text));
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let (mut reg, ..) = toolkit_registry();
        assert_eq!(
            reg.define_root("view", 9),
            Err(ClassError::Duplicate("view".into()))
        );
    }

    #[test]
    fn unknown_parent_is_rejected() {
        let mut reg = ClassRegistry::new();
        assert_eq!(
            reg.define("scrollview", "view", 1),
            Err(ClassError::Unknown("view".into()))
        );
    }

    #[test]
    fn object_methods_resolve_through_inheritance() {
        let (mut reg, _, view, _, textview) = toolkit_registry();
        reg.add_method(view, "FullUpdate", MethodKind::Object)
            .unwrap();
        reg.add_method(textview, "FullUpdate", MethodKind::Object)
            .unwrap();
        let scroll = reg.define("scrollview", "view", 1).unwrap();

        // The subclass override wins for textview...
        let (owner, _) = reg.resolve_method(textview, "FullUpdate").unwrap();
        assert_eq!(owner, textview);
        // ...while scrollview inherits the base implementation.
        let (owner, _) = reg.resolve_method(scroll, "FullUpdate").unwrap();
        assert_eq!(owner, view);
    }

    #[test]
    fn class_procedures_do_not_inherit() {
        let (mut reg, _, view, _, textview) = toolkit_registry();
        reg.add_method(view, "Create", MethodKind::ClassProcedure)
            .unwrap();
        assert!(reg.resolve_method(view, "Create").is_some());
        assert!(reg.resolve_method(textview, "Create").is_none());
    }

    #[test]
    fn version_check_matches_paper_link_semantics() {
        let (reg, ..) = toolkit_registry();
        assert!(reg.check_version("text", 2).is_ok());
        assert_eq!(
            reg.check_version("text", 1),
            Err(ClassError::VersionMismatch {
                class: "text".into(),
                wanted: 1,
                found: 2
            })
        );
        assert!(matches!(
            reg.check_version("music", 1),
            Err(ClassError::Unknown(_))
        ));
    }
}
