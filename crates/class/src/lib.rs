//! The Andrew Class System, reimagined for Rust.
//!
//! The 1988 Andrew Toolkit was written in C with a small preprocessor
//! ("Class") that provided single-inheritance objects *and* — crucially —
//! dynamic loading/linking of component code (paper §6). The toolkit's
//! extension story rests on it: a music component written years after EZ
//! shipped can be embedded in any document, and EZ loads its code on first
//! use without being recompiled, relinked, or otherwise modified.
//!
//! Rust gives us the object system (traits) at compile time, so this crate
//! implements the two pieces Rust does *not* give us at run time:
//!
//! * a **class registry** ([`ClassRegistry`]): class names, single-inheritance
//!   ancestry, versions, and per-class method inventories, queryable at run
//!   time (`is_a`, `ancestry`, `lookup`) exactly the way Class' run-time
//!   library was;
//! * a **simulated dynamic loader** ([`Loader`]): components live in
//!   [`ModuleSpec`]s carrying code size and dependency lists. A module is
//!   *known* (its factory is registered in the inventory) but **not loaded**
//!   until something `require`s it, at which point the loader resolves
//!   dependencies transitively and charges a [`CostModel`] — the "slight
//!   delay to load the code" the paper describes. [`LoadStats`] make the
//!   behaviour measurable, which is what benchmark E4 does.
//!
//! Real `dlopen` of arbitrary Rust component code is unsound and
//! unportable; the paper's measurable claims are about *when* code loads,
//! *what* has to be rebuilt (nothing), and *how much* is shared (runapp).
//! This simulation exercises exactly those code paths. The substitution is
//! documented in DESIGN.md §2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loader;
pub mod registry;

pub use loader::{
    CostModel, LinkPolicy, LoadError, LoadEvent, LoadStats, Loader, ModuleId, ModuleSpec,
};
pub use registry::{ClassError, ClassId, ClassInfo, ClassRegistry, MethodInfo, MethodKind};
