//! Simulated dynamic loading/linking of component modules.
//!
//! The toolkit's dynamic loader (paper §6–7) let an application discover,
//! at the moment a document mentioned an unfamiliar component, that it
//! needed the component's code, pull that code off the (distributed) file
//! system, link it into the running image, and continue — with the user
//! noticing nothing but "a slight delay to load the code". The same
//! mechanism powered `runapp`, a single base image that loaded each
//! *application* dynamically so every toolkit program shared one copy of
//! the toolkit's code.
//!
//! This module simulates that machinery so its behaviour can be tested and
//! measured (experiment E4):
//!
//! * a [`ModuleSpec`] describes a unit of loadable code: name, code size in
//!   bytes, the classes it provides, and the modules it depends on;
//! * a [`Loader`] holds the *inventory* of known modules (the analogue of
//!   `.do` files on the search path) and tracks which are resident;
//! * [`Loader::require`] resolves a module and its dependencies
//!   depth-first, charging a [`CostModel`] for every module that was not
//!   already resident and recording a [`LoadEvent`] per load;
//! * [`LinkPolicy`] switches between the paper's world (`Dynamic`) and the
//!   baseline it argues against (`Static`, everything resident at startup),
//!   so benchmarks can compare startup cost, resident bytes, and first-use
//!   latency between the two.

use std::collections::HashMap;
use std::fmt;

/// Dense identifier for a module in a [`Loader`]'s inventory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModuleId(u32);

impl ModuleId {
    /// Raw index of this module id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Description of one dynamically loadable module.
#[derive(Debug, Clone)]
pub struct ModuleSpec {
    /// Module name, conventionally the principal class it provides
    /// (e.g. `"table"` provides classes `table` and `tablev`).
    pub name: String,
    /// Size of the module's object code in bytes. Used by the cost model
    /// and by the resident-set accounting.
    pub code_bytes: u64,
    /// Class names this module provides.
    pub provides: Vec<String>,
    /// Names of modules that must be resident before this one runs.
    pub deps: Vec<String>,
}

impl ModuleSpec {
    /// Convenience constructor.
    pub fn new(name: &str, code_bytes: u64, provides: &[&str], deps: &[&str]) -> Self {
        ModuleSpec {
            name: name.to_string(),
            code_bytes,
            provides: provides.iter().map(|s| s.to_string()).collect(),
            deps: deps.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// How module code is bound into the running image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkPolicy {
    /// The paper's model: nothing is resident until first use.
    Dynamic,
    /// The baseline the paper argues against: every known module is linked
    /// into the image at startup (static linking, no sharing).
    Static,
}

/// Cost model for a simulated load, standing in for `read(2)` + relocation
/// over the campus distributed file system.
///
/// The simulated latency of loading one module is
/// `fixed_ns + code_bytes * ns_per_byte`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Per-load fixed overhead (open, symbol resolution), nanoseconds.
    pub fixed_ns: u64,
    /// Transfer + relocation cost per code byte, nanoseconds.
    pub ns_per_byte: f64,
}

impl CostModel {
    /// A model calibrated to the paper's era: ~25 ms fixed (file open over
    /// the Andrew File System) plus ~1 µs/KB-ish transfer.
    pub fn vice_afs() -> Self {
        CostModel {
            fixed_ns: 25_000_000,
            ns_per_byte: 1_000.0 / 1024.0,
        }
    }

    /// A zero-cost model, useful in unit tests.
    pub fn free() -> Self {
        CostModel {
            fixed_ns: 0,
            ns_per_byte: 0.0,
        }
    }

    /// Simulated nanoseconds to load a module of `code_bytes` bytes.
    pub fn load_ns(&self, code_bytes: u64) -> u64 {
        self.fixed_ns + (code_bytes as f64 * self.ns_per_byte) as u64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::vice_afs()
    }
}

/// One completed load, recorded in [`LoadStats::events`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadEvent {
    /// Module that was loaded.
    pub module: String,
    /// Module (or the application itself) whose `require` triggered it.
    pub requested_by: String,
    /// Code bytes brought in.
    pub code_bytes: u64,
    /// Simulated latency charged, nanoseconds.
    pub simulated_ns: u64,
}

/// Aggregate accounting for a [`Loader`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadStats {
    /// Modules currently resident.
    pub resident_modules: usize,
    /// Total code bytes resident.
    pub resident_bytes: u64,
    /// All load events in order.
    pub events: Vec<LoadEvent>,
    /// Total simulated load latency, nanoseconds.
    pub total_simulated_ns: u64,
}

/// Errors returned by loader operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// No module of this name is in the inventory — the paper's case of a
    /// document mentioning a component whose code cannot be found on the
    /// search path.
    NotFound(String),
    /// A dependency cycle among modules was detected.
    Cycle(Vec<String>),
    /// A module of this name is already in the inventory.
    Duplicate(String),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::NotFound(n) => write!(f, "no loadable module named `{n}`"),
            LoadError::Cycle(path) => write!(f, "module dependency cycle: {}", path.join(" -> ")),
            LoadError::Duplicate(n) => write!(f, "module `{n}` already in inventory"),
        }
    }
}

impl std::error::Error for LoadError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ModState {
    Known,
    Loading,
    Resident,
}

/// The simulated dynamic loader.
///
/// # Examples
///
/// ```
/// use atk_class::{CostModel, LinkPolicy, Loader, ModuleSpec};
///
/// let mut loader = Loader::new(LinkPolicy::Dynamic, CostModel::free());
/// loader.add_module(ModuleSpec::new("view", 40_000, &["view"], &[])).unwrap();
/// loader.add_module(ModuleSpec::new("text", 90_000, &["text"], &["view"])).unwrap();
///
/// // Nothing resident until first use.
/// assert_eq!(loader.stats().resident_modules, 0);
/// loader.require("text", "ez").unwrap();
/// // The dependency came in transitively.
/// assert_eq!(loader.stats().resident_modules, 2);
/// // A second require is free: already resident.
/// loader.require("text", "messages").unwrap();
/// assert_eq!(loader.stats().events.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Loader {
    policy: LinkPolicy,
    cost: CostModel,
    modules: Vec<ModuleSpec>,
    states: Vec<ModState>,
    by_name: HashMap<String, ModuleId>,
    class_to_module: HashMap<String, ModuleId>,
    stats: LoadStats,
}

impl Loader {
    /// Creates a loader with an empty inventory.
    pub fn new(policy: LinkPolicy, cost: CostModel) -> Self {
        Loader {
            policy,
            cost,
            modules: Vec::new(),
            states: Vec::new(),
            by_name: HashMap::new(),
            class_to_module: HashMap::new(),
            stats: LoadStats::default(),
        }
    }

    /// Creates a dynamic loader with the default (AFS-calibrated) cost model.
    pub fn dynamic() -> Self {
        Loader::new(LinkPolicy::Dynamic, CostModel::default())
    }

    /// The loader's link policy.
    pub fn policy(&self) -> LinkPolicy {
        self.policy
    }

    /// Adds a module to the inventory (the analogue of installing a `.do`
    /// file on the search path). Under [`LinkPolicy::Static`] the module is
    /// immediately made resident, charging its load cost as startup cost.
    pub fn add_module(&mut self, spec: ModuleSpec) -> Result<ModuleId, LoadError> {
        if self.by_name.contains_key(&spec.name) {
            return Err(LoadError::Duplicate(spec.name));
        }
        let id = ModuleId(self.modules.len() as u32);
        self.by_name.insert(spec.name.clone(), id);
        for class in &spec.provides {
            self.class_to_module.insert(class.clone(), id);
        }
        self.modules.push(spec);
        self.states.push(ModState::Known);
        if self.policy == LinkPolicy::Static {
            self.load_one(id, "startup");
        }
        Ok(id)
    }

    /// Looks up the module providing `class`, if any.
    pub fn module_for_class(&self, class: &str) -> Option<&ModuleSpec> {
        self.class_to_module
            .get(class)
            .map(|id| &self.modules[id.index()])
    }

    /// Returns the inventory entry named `name`.
    pub fn module(&self, name: &str) -> Option<&ModuleSpec> {
        self.by_name.get(name).map(|id| &self.modules[id.index()])
    }

    /// True if the named module is resident.
    pub fn is_resident(&self, name: &str) -> bool {
        self.by_name
            .get(name)
            .map(|id| self.states[id.index()] == ModState::Resident)
            .unwrap_or(false)
    }

    /// Ensures the module named `name` (and, transitively, its
    /// dependencies) is resident. `requested_by` labels the load events.
    ///
    /// Returns the simulated nanoseconds charged by this call (0 if
    /// everything was already resident).
    pub fn require(&mut self, name: &str, requested_by: &str) -> Result<u64, LoadError> {
        let collector = atk_trace::global();
        let _span = collector.span("class.require");
        collector.count("class.requires", 1);
        let id = *self
            .by_name
            .get(name)
            .ok_or_else(|| LoadError::NotFound(name.to_string()))?;
        let before = self.stats.total_simulated_ns;
        self.require_rec(id, requested_by, &mut Vec::new())?;
        Ok(self.stats.total_simulated_ns - before)
    }

    /// Ensures the module *providing class* `class` is resident — this is
    /// the entry point the datastream reader uses when a document mentions
    /// a component (`\begindata{music,…}`).
    pub fn require_class(&mut self, class: &str, requested_by: &str) -> Result<u64, LoadError> {
        let collector = atk_trace::global();
        let _span = collector.span("class.require");
        collector.count("class.requires", 1);
        let id = *self
            .class_to_module
            .get(class)
            .ok_or_else(|| LoadError::NotFound(class.to_string()))?;
        let before = self.stats.total_simulated_ns;
        self.require_rec(id, requested_by, &mut Vec::new())?;
        Ok(self.stats.total_simulated_ns - before)
    }

    fn require_rec(
        &mut self,
        id: ModuleId,
        requested_by: &str,
        path: &mut Vec<String>,
    ) -> Result<(), LoadError> {
        match self.states[id.index()] {
            ModState::Resident => return Ok(()),
            ModState::Loading => {
                let mut cycle = path.clone();
                cycle.push(self.modules[id.index()].name.clone());
                return Err(LoadError::Cycle(cycle));
            }
            ModState::Known => {}
        }
        self.states[id.index()] = ModState::Loading;
        path.push(self.modules[id.index()].name.clone());
        let deps: Vec<String> = self.modules[id.index()].deps.clone();
        for dep in deps {
            let did = *self
                .by_name
                .get(&dep)
                .ok_or_else(|| LoadError::NotFound(dep.clone()))?;
            self.require_rec(did, requested_by, path)?;
        }
        path.pop();
        self.load_one(id, requested_by);
        Ok(())
    }

    fn load_one(&mut self, id: ModuleId, requested_by: &str) {
        let spec = &self.modules[id.index()];
        let ns = self.cost.load_ns(spec.code_bytes);
        let collector = atk_trace::global();
        collector.count("class.modules_loaded", 1);
        collector.observe("class.module_bytes", spec.code_bytes);
        collector.observe("class.load_ns", ns);
        self.stats.events.push(LoadEvent {
            module: spec.name.clone(),
            requested_by: requested_by.to_string(),
            code_bytes: spec.code_bytes,
            simulated_ns: ns,
        });
        self.stats.resident_modules += 1;
        self.stats.resident_bytes += spec.code_bytes;
        self.stats.total_simulated_ns += ns;
        self.states[id.index()] = ModState::Resident;
    }

    /// Current accounting.
    pub fn stats(&self) -> &LoadStats {
        &self.stats
    }

    /// Total code bytes across the whole inventory (what a statically
    /// linked image of *everything* would weigh — the per-application file
    /// size the paper says runapp avoids).
    pub fn inventory_bytes(&self) -> u64 {
        self.modules.iter().map(|m| m.code_bytes).sum()
    }

    /// Number of modules in the inventory.
    pub fn inventory_len(&self) -> usize {
        self.modules.len()
    }

    /// Unloads everything, returning the loader to its startup state
    /// (inventory intact, nothing resident, stats cleared). Under
    /// [`LinkPolicy::Static`] all modules are immediately re-loaded.
    pub fn reset(&mut self) {
        for s in &mut self.states {
            *s = ModState::Known;
        }
        self.stats = LoadStats::default();
        if self.policy == LinkPolicy::Static {
            for i in 0..self.modules.len() {
                self.load_one(ModuleId(i as u32), "startup");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inventory(loader: &mut Loader) {
        loader
            .add_module(ModuleSpec::new("class", 20_000, &["class"], &[]))
            .unwrap();
        loader
            .add_module(ModuleSpec::new("view", 40_000, &["view", "im"], &["class"]))
            .unwrap();
        loader
            .add_module(ModuleSpec::new(
                "text",
                90_000,
                &["text", "textview"],
                &["view"],
            ))
            .unwrap();
        loader
            .add_module(ModuleSpec::new(
                "table",
                70_000,
                &["table", "tablev"],
                &["view"],
            ))
            .unwrap();
    }

    #[test]
    fn dynamic_loads_on_first_use_only() {
        let mut loader = Loader::new(LinkPolicy::Dynamic, CostModel::free());
        inventory(&mut loader);
        assert_eq!(loader.stats().resident_modules, 0);
        loader.require("text", "ez").unwrap();
        assert!(loader.is_resident("text"));
        assert!(loader.is_resident("view"));
        assert!(loader.is_resident("class"));
        assert!(!loader.is_resident("table"));
        assert_eq!(loader.stats().resident_bytes, 150_000);
    }

    #[test]
    fn second_require_is_free() {
        let mut loader = Loader::new(LinkPolicy::Dynamic, CostModel::vice_afs());
        inventory(&mut loader);
        let first = loader.require("text", "ez").unwrap();
        assert!(first > 0);
        let second = loader.require("text", "messages").unwrap();
        assert_eq!(second, 0);
        assert_eq!(loader.stats().events.len(), 3);
    }

    #[test]
    fn static_policy_loads_everything_at_startup() {
        let mut loader = Loader::new(LinkPolicy::Static, CostModel::free());
        inventory(&mut loader);
        assert_eq!(loader.stats().resident_modules, 4);
        assert_eq!(loader.stats().resident_bytes, loader.inventory_bytes());
        // And require is then always free.
        assert_eq!(loader.require("table", "ez").unwrap(), 0);
    }

    #[test]
    fn require_by_class_name() {
        let mut loader = Loader::new(LinkPolicy::Dynamic, CostModel::free());
        inventory(&mut loader);
        loader.require_class("tablev", "ez").unwrap();
        assert!(loader.is_resident("table"));
    }

    #[test]
    fn missing_module_is_reported() {
        let mut loader = Loader::new(LinkPolicy::Dynamic, CostModel::free());
        inventory(&mut loader);
        assert_eq!(
            loader.require("music", "ez"),
            Err(LoadError::NotFound("music".into()))
        );
    }

    #[test]
    fn dependency_cycles_are_detected() {
        let mut loader = Loader::new(LinkPolicy::Dynamic, CostModel::free());
        loader
            .add_module(ModuleSpec::new("a", 1, &["a"], &["b"]))
            .unwrap();
        loader
            .add_module(ModuleSpec::new("b", 1, &["b"], &["a"]))
            .unwrap();
        assert!(matches!(
            loader.require("a", "test"),
            Err(LoadError::Cycle(_))
        ));
    }

    #[test]
    fn cost_model_charges_fixed_plus_per_byte() {
        let cost = CostModel {
            fixed_ns: 100,
            ns_per_byte: 2.0,
        };
        assert_eq!(cost.load_ns(50), 100 + 100);
    }

    #[test]
    fn reset_returns_to_startup_state() {
        let mut loader = Loader::new(LinkPolicy::Dynamic, CostModel::free());
        inventory(&mut loader);
        loader.require("text", "ez").unwrap();
        loader.reset();
        assert_eq!(loader.stats().resident_modules, 0);
        assert_eq!(loader.inventory_len(), 4);
    }
}
