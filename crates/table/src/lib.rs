//! # atk-table — tables, spreadsheets, and charts
//!
//! The table component of paper §1: a grid that is simultaneously a
//! layout device, a spreadsheet (figure 5 builds Pascal's Triangle with
//! its formulas), and a multi-media container (cells can embed arbitrary
//! components). The [`chart`] module implements §2's auxiliary-data-object
//! worked example verbatim: a chart data object that observes the table
//! and carries the stable view state (title, labels) that would otherwise
//! be lost on save.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod data;
pub mod formula;
pub mod view;

pub use chart::{rebind_after_read, BarChartView, ChartData, PieChartView};
pub use data::{Cell, CellInput, TableData, DEFAULT_COL_WIDTH, DEFAULT_ROW_HEIGHT};
pub use formula::{col_to_letters, coord_to_a1, parse, parse_a1, Expr, FormulaError};
pub use view::TableView;

use atk_class::ModuleSpec;
use atk_core::Catalog;

/// Registers the table and chart components (modules `"table"` and
/// `"chart"`).
pub fn register(catalog: &mut Catalog) {
    let _ = catalog.add_module(ModuleSpec::new(
        "table",
        72_000,
        &["table", "tablev", "spread"],
        &["components"],
    ));
    let _ = catalog.add_module(ModuleSpec::new(
        "chart",
        24_000,
        &["chart", "piechartv", "barchartv"],
        &["table"],
    ));
    catalog.register_data("table", || Box::new(TableData::new(3, 3)));
    catalog.register_view("tablev", || Box::new(TableView::new()));
    // "spread" is the historical name used in the paper's §5 example.
    catalog.register_view("spread", || Box::new(TableView::new()));
    catalog.set_default_view("table", "tablev");
    catalog.register_data("chart", || Box::new(ChartData::new()));
    catalog.register_view("piechartv", || Box::new(PieChartView::new()));
    catalog.register_view("barchartv", || Box::new(BarChartView::new()));
    catalog.set_default_view("chart", "piechartv");
}
