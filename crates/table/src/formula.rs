//! The spreadsheet formula engine.
//!
//! The paper's figure 5 shows "an implementation of Pascal's Triangle
//! using the spreadsheet facilities of the table object" — so the table
//! component needs a real formula language. This module provides one:
//! A1-style references, ranges, arithmetic, comparisons, and the
//! classic aggregate functions, parsed with a Pratt parser into an
//! [`Expr`] that can report its cell dependencies (for the recalculation
//! engine) and evaluate against a cell-value lookup.

use std::fmt;

/// A cell coordinate: `(row, col)`, zero-based.
pub type Coord = (usize, usize);

/// Formula evaluation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormulaError {
    /// Lexical or syntax error.
    Parse(String),
    /// Reference to a cell outside the table.
    BadRef(String),
    /// A reference cycle involves this cell.
    Cycle,
    /// Division by zero or a domain error.
    Domain(String),
    /// Unknown function name.
    UnknownFunction(String),
}

impl fmt::Display for FormulaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormulaError::Parse(m) => write!(f, "parse error: {m}"),
            FormulaError::BadRef(r) => write!(f, "bad reference {r}"),
            FormulaError::Cycle => write!(f, "reference cycle"),
            FormulaError::Domain(m) => write!(f, "domain error: {m}"),
            FormulaError::UnknownFunction(n) => write!(f, "unknown function {n}"),
        }
    }
}

impl std::error::Error for FormulaError {}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Exponentiation.
    Pow,
    /// Equality (1/0).
    Eq,
    /// Inequality.
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
}

/// A parsed formula expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal number.
    Num(f64),
    /// Cell reference.
    Ref(Coord),
    /// Rectangular range (inclusive corners, normalized).
    Range(Coord, Coord),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Function call.
    Call(String, Vec<Expr>),
}

/// Converts column letters to an index (`A`→0, `Z`→25, `AA`→26).
pub fn col_from_letters(s: &str) -> Option<usize> {
    if s.is_empty() {
        return None;
    }
    let mut n = 0usize;
    for c in s.chars() {
        let c = c.to_ascii_uppercase();
        if !c.is_ascii_uppercase() {
            return None;
        }
        n = n * 26 + (c as usize - 'A' as usize + 1);
    }
    Some(n - 1)
}

/// Converts a column index to letters (`0`→`A`, `26`→`AA`).
pub fn col_to_letters(mut col: usize) -> String {
    let mut s = String::new();
    loop {
        s.insert(0, (b'A' + (col % 26) as u8) as char);
        if col < 26 {
            break;
        }
        col = col / 26 - 1;
    }
    s
}

/// Formats a coordinate as an A1 reference.
pub fn coord_to_a1(coord: Coord) -> String {
    format!("{}{}", col_to_letters(coord.1), coord.0 + 1)
}

// --- Lexer -------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Num(f64),
    Ident(String),
    Op(char),
    Le,
    Ge,
    Ne,
    LParen,
    RParen,
    Comma,
    Colon,
}

fn lex(src: &str) -> Result<Vec<Tok>, FormulaError> {
    let mut toks = Vec::new();
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' => {
                chars.next();
            }
            '0'..='9' | '.' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() || d == '.' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let n: f64 = s
                    .parse()
                    .map_err(|_| FormulaError::Parse(format!("bad number {s}")))?;
                toks.push(Tok::Num(n));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Ident(s));
            }
            '+' | '-' | '*' | '/' | '^' | '=' => {
                chars.next();
                toks.push(Tok::Op(c));
            }
            '<' => {
                chars.next();
                match chars.peek() {
                    Some('=') => {
                        chars.next();
                        toks.push(Tok::Le);
                    }
                    Some('>') => {
                        chars.next();
                        toks.push(Tok::Ne);
                    }
                    _ => toks.push(Tok::Op('<')),
                }
            }
            '>' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    toks.push(Tok::Ge);
                } else {
                    toks.push(Tok::Op('>'));
                }
            }
            '(' => {
                chars.next();
                toks.push(Tok::LParen);
            }
            ')' => {
                chars.next();
                toks.push(Tok::RParen);
            }
            ',' => {
                chars.next();
                toks.push(Tok::Comma);
            }
            ':' => {
                chars.next();
                toks.push(Tok::Colon);
            }
            other => {
                return Err(FormulaError::Parse(format!("unexpected `{other}`")));
            }
        }
    }
    Ok(toks)
}

// --- Parser -------------------------------------------------------------------

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: Tok) -> Result<(), FormulaError> {
        match self.next() {
            Some(t) if t == want => Ok(()),
            other => Err(FormulaError::Parse(format!(
                "expected {want:?}, found {other:?}"
            ))),
        }
    }

    fn parse_expr(&mut self, min_bp: u8) -> Result<Expr, FormulaError> {
        let mut lhs = self.parse_prefix()?;
        loop {
            let (op, bp) = match self.peek() {
                Some(Tok::Op('=')) => (BinOp::Eq, 1),
                Some(Tok::Ne) => (BinOp::Ne, 1),
                Some(Tok::Op('<')) => (BinOp::Lt, 1),
                Some(Tok::Le) => (BinOp::Le, 1),
                Some(Tok::Op('>')) => (BinOp::Gt, 1),
                Some(Tok::Ge) => (BinOp::Ge, 1),
                Some(Tok::Op('+')) => (BinOp::Add, 3),
                Some(Tok::Op('-')) => (BinOp::Sub, 3),
                Some(Tok::Op('*')) => (BinOp::Mul, 5),
                Some(Tok::Op('/')) => (BinOp::Div, 5),
                Some(Tok::Op('^')) => (BinOp::Pow, 7),
                _ => break,
            };
            if bp < min_bp {
                break;
            }
            self.next();
            // Right-associative for ^, left for the rest.
            let rhs = self.parse_expr(if op == BinOp::Pow { bp } else { bp + 1 })?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_prefix(&mut self) -> Result<Expr, FormulaError> {
        match self.next() {
            Some(Tok::Num(n)) => Ok(Expr::Num(n)),
            Some(Tok::Op('-')) => Ok(Expr::Neg(Box::new(self.parse_expr(6)?))),
            Some(Tok::Op('+')) => self.parse_expr(6),
            Some(Tok::LParen) => {
                let e = self.parse_expr(0)?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                if self.peek() == Some(&Tok::LParen) {
                    self.next();
                    let mut args = Vec::new();
                    if self.peek() != Some(&Tok::RParen) {
                        loop {
                            args.push(self.parse_expr(0)?);
                            match self.peek() {
                                Some(Tok::Comma) => {
                                    self.next();
                                }
                                _ => break,
                            }
                        }
                    }
                    self.expect(Tok::RParen)?;
                    Ok(Expr::Call(name.to_ascii_uppercase(), args))
                } else {
                    let start =
                        parse_a1(&name).ok_or_else(|| FormulaError::BadRef(name.clone()))?;
                    if self.peek() == Some(&Tok::Colon) {
                        self.next();
                        match self.next() {
                            Some(Tok::Ident(end_name)) => {
                                let end =
                                    parse_a1(&end_name).ok_or(FormulaError::BadRef(end_name))?;
                                let r0 = start.0.min(end.0);
                                let r1 = start.0.max(end.0);
                                let c0 = start.1.min(end.1);
                                let c1 = start.1.max(end.1);
                                Ok(Expr::Range((r0, c0), (r1, c1)))
                            }
                            other => Err(FormulaError::Parse(format!(
                                "expected range end, found {other:?}"
                            ))),
                        }
                    } else {
                        Ok(Expr::Ref(start))
                    }
                }
            }
            other => Err(FormulaError::Parse(format!("unexpected {other:?}"))),
        }
    }
}

/// Parses an A1-style reference (`B3` → `(2, 1)`).
pub fn parse_a1(s: &str) -> Option<Coord> {
    let letters: String = s.chars().take_while(|c| c.is_ascii_alphabetic()).collect();
    let digits: String = s.chars().skip(letters.len()).collect();
    if letters.is_empty() || digits.is_empty() || !digits.chars().all(|c| c.is_ascii_digit()) {
        return None;
    }
    let col = col_from_letters(&letters)?;
    let row: usize = digits.parse().ok()?;
    if row == 0 {
        return None;
    }
    Some((row - 1, col))
}

/// Parses a formula body (without the leading `=`).
pub fn parse(src: &str) -> Result<Expr, FormulaError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.parse_expr(0)?;
    if p.pos != p.toks.len() {
        return Err(FormulaError::Parse(format!(
            "trailing input at token {}",
            p.pos
        )));
    }
    Ok(e)
}

impl Expr {
    /// Every cell this expression reads (ranges expanded).
    pub fn deps(&self) -> Vec<Coord> {
        let mut out = Vec::new();
        self.collect_deps(&mut out);
        out
    }

    fn collect_deps(&self, out: &mut Vec<Coord>) {
        match self {
            Expr::Num(_) => {}
            Expr::Ref(c) => out.push(*c),
            Expr::Range(a, b) => {
                for r in a.0..=b.0 {
                    for c in a.1..=b.1 {
                        out.push((r, c));
                    }
                }
            }
            Expr::Bin(_, l, r) => {
                l.collect_deps(out);
                r.collect_deps(out);
            }
            Expr::Neg(e) => e.collect_deps(out),
            Expr::Call(_, args) => {
                for a in args {
                    a.collect_deps(out);
                }
            }
        }
    }

    /// Evaluates against a cell-value lookup.
    pub fn eval(&self, lookup: &dyn Fn(Coord) -> f64) -> Result<f64, FormulaError> {
        match self {
            Expr::Num(n) => Ok(*n),
            Expr::Ref(c) => Ok(lookup(*c)),
            Expr::Range(..) => Err(FormulaError::Domain(
                "range used outside a function".to_string(),
            )),
            Expr::Neg(e) => Ok(-e.eval(lookup)?),
            Expr::Bin(op, l, r) => {
                let a = l.eval(lookup)?;
                let b = r.eval(lookup)?;
                Ok(match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => {
                        if b == 0.0 {
                            return Err(FormulaError::Domain("division by zero".to_string()));
                        }
                        a / b
                    }
                    BinOp::Pow => a.powf(b),
                    BinOp::Eq => (a == b) as i32 as f64,
                    BinOp::Ne => (a != b) as i32 as f64,
                    BinOp::Lt => (a < b) as i32 as f64,
                    BinOp::Le => (a <= b) as i32 as f64,
                    BinOp::Gt => (a > b) as i32 as f64,
                    BinOp::Ge => (a >= b) as i32 as f64,
                })
            }
            Expr::Call(name, args) => {
                // Flatten args: ranges contribute every covered cell.
                let values = |args: &[Expr]| -> Result<Vec<f64>, FormulaError> {
                    let mut out = Vec::new();
                    for a in args {
                        match a {
                            Expr::Range(from, to) => {
                                for r in from.0..=to.0 {
                                    for c in from.1..=to.1 {
                                        out.push(lookup((r, c)));
                                    }
                                }
                            }
                            other => out.push(other.eval(lookup)?),
                        }
                    }
                    Ok(out)
                };
                match name.as_str() {
                    "SUM" => Ok(values(args)?.iter().sum()),
                    "AVG" | "AVERAGE" => {
                        let v = values(args)?;
                        if v.is_empty() {
                            return Err(FormulaError::Domain("AVG of nothing".to_string()));
                        }
                        Ok(v.iter().sum::<f64>() / v.len() as f64)
                    }
                    "MIN" => {
                        let v = values(args)?;
                        v.into_iter()
                            .fold(None::<f64>, |m, x| Some(m.map_or(x, |m| m.min(x))))
                            .ok_or_else(|| FormulaError::Domain("MIN of nothing".to_string()))
                    }
                    "MAX" => {
                        let v = values(args)?;
                        v.into_iter()
                            .fold(None::<f64>, |m, x| Some(m.map_or(x, |m| m.max(x))))
                            .ok_or_else(|| FormulaError::Domain("MAX of nothing".to_string()))
                    }
                    "COUNT" => Ok(values(args)?.len() as f64),
                    "ABS" => {
                        let v = values(args)?;
                        match v.as_slice() {
                            [x] => Ok(x.abs()),
                            _ => Err(FormulaError::Domain("ABS takes one arg".to_string())),
                        }
                    }
                    "SQRT" => {
                        let v = values(args)?;
                        match v.as_slice() {
                            [x] if *x >= 0.0 => Ok(x.sqrt()),
                            [_] => Err(FormulaError::Domain("SQRT of negative".to_string())),
                            _ => Err(FormulaError::Domain("SQRT takes one arg".to_string())),
                        }
                    }
                    "ROUND" => {
                        let v = values(args)?;
                        match v.as_slice() {
                            [x] => Ok(x.round()),
                            _ => Err(FormulaError::Domain("ROUND takes one arg".to_string())),
                        }
                    }
                    "IF" => match args.as_slice() {
                        [cond, then, els] => {
                            if cond.eval(lookup)? != 0.0 {
                                then.eval(lookup)
                            } else {
                                els.eval(lookup)
                            }
                        }
                        _ => Err(FormulaError::Domain("IF takes three args".to_string())),
                    },
                    other => Err(FormulaError::UnknownFunction(other.to_string())),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_const(src: &str) -> f64 {
        parse(src).unwrap().eval(&|_| 0.0).unwrap()
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(eval_const("1+2*3"), 7.0);
        assert_eq!(eval_const("(1+2)*3"), 9.0);
        assert_eq!(eval_const("2^3^2"), 512.0); // Right associative.
        assert_eq!(eval_const("-3+5"), 2.0);
        assert_eq!(eval_const("10-2-3"), 5.0);
        assert_eq!(eval_const("7/2"), 3.5);
    }

    #[test]
    fn comparisons_yield_booleans() {
        assert_eq!(eval_const("1 < 2"), 1.0);
        assert_eq!(eval_const("2 <= 1"), 0.0);
        assert_eq!(eval_const("3 = 3"), 1.0);
        assert_eq!(eval_const("3 <> 3"), 0.0);
    }

    #[test]
    fn a1_references() {
        assert_eq!(parse_a1("A1"), Some((0, 0)));
        assert_eq!(parse_a1("B3"), Some((2, 1)));
        assert_eq!(parse_a1("AA10"), Some((9, 26)));
        assert_eq!(parse_a1("A0"), None);
        assert_eq!(parse_a1("1A"), None);
        assert_eq!(col_to_letters(0), "A");
        assert_eq!(col_to_letters(26), "AA");
        assert_eq!(coord_to_a1((2, 1)), "B3");
    }

    #[test]
    fn refs_evaluate_through_lookup() {
        let e = parse("A1 + B2 * 2").unwrap();
        let v = e
            .eval(&|c| match c {
                (0, 0) => 10.0,
                (1, 1) => 5.0,
                _ => 0.0,
            })
            .unwrap();
        assert_eq!(v, 20.0);
        let mut deps = e.deps();
        deps.sort_unstable();
        assert_eq!(deps, vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn ranges_and_aggregates() {
        let e = parse("SUM(A1:A3) + MAX(B1, B2)").unwrap();
        let v = e
            .eval(&|(r, c)| {
                if c == 0 {
                    (r + 1) as f64
                } else {
                    10.0 * (r + 1) as f64
                }
            })
            .unwrap();
        assert_eq!(v, 6.0 + 20.0);
        assert_eq!(e.deps().len(), 5);
        assert_eq!(eval_const("COUNT(A1:B2)"), 4.0);
        assert_eq!(eval_const("AVG(2, 4, 6)"), 4.0);
        assert_eq!(eval_const("MIN(3, 1, 2)"), 1.0);
    }

    #[test]
    fn conditionals_and_functions() {
        assert_eq!(eval_const("IF(1 < 2, 10, 20)"), 10.0);
        assert_eq!(eval_const("IF(1 > 2, 10, 20)"), 20.0);
        assert_eq!(eval_const("ABS(-4)"), 4.0);
        assert_eq!(eval_const("SQRT(16)"), 4.0);
        assert_eq!(eval_const("ROUND(2.6)"), 3.0);
    }

    #[test]
    fn errors_are_reported() {
        assert!(matches!(parse("1 +"), Err(FormulaError::Parse(_))));
        assert!(matches!(parse("@"), Err(FormulaError::Parse(_))));
        assert!(matches!(parse("1 2"), Err(FormulaError::Parse(_))));
        assert!(matches!(
            parse("NOPE(1)").unwrap().eval(&|_| 0.0),
            Err(FormulaError::UnknownFunction(_))
        ));
        assert!(matches!(
            parse("1/0").unwrap().eval(&|_| 0.0),
            Err(FormulaError::Domain(_))
        ));
        assert!(matches!(
            parse("SQRT(-1)").unwrap().eval(&|_| 0.0),
            Err(FormulaError::Domain(_))
        ));
    }

    #[test]
    fn pascals_triangle_formula_shape() {
        // The paper's own example: v[i,j] = v[i-1,j] + v[i,j-1] becomes,
        // in A1 terms for cell B2: =B1 + A2.
        let e = parse("B1 + A2").unwrap();
        let v = e
            .eval(&|c| match c {
                (0, 1) => 3.0,
                (1, 0) => 3.0,
                _ => 0.0,
            })
            .unwrap();
        assert_eq!(v, 6.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn col_letters_round_trip(col in 0usize..10_000) {
            prop_assert_eq!(col_from_letters(&col_to_letters(col)), Some(col));
        }

        #[test]
        fn a1_round_trip(r in 0usize..5_000, c in 0usize..5_000) {
            prop_assert_eq!(parse_a1(&coord_to_a1((r, c))), Some((r, c)));
        }

        #[test]
        fn parser_never_panics(src in "[A-Za-z0-9+\\-*/^(), :.<>=]{0,40}") {
            let _ = parse(&src);
        }
    }
}
