//! Charts: the paper's worked example of auxiliary data objects and the
//! observer mechanism (§2).
//!
//! > "In the chart example, the underlying data object is a table of
//! > values … the user may have set certain parameters in the chart, such
//! > as the way to label the axes … Our solution consists of two parts:
//! > additional data objects and the idea of an observer. The chart view
//! > would be viewing not a table data object but an auxiliary chart data
//! > object … In addition, the chart data object would be an observer of
//! > the table data object. As information in the table changed, the
//! > chart data object would be notified and it, in turn, would notify
//! > the chart view."
//!
//! [`ChartData`] is that auxiliary object: it holds the *stable view
//! state* (title, labels, source range — which would otherwise be lost on
//! save, the exact problem §2 describes), observes its [`TableData`], and
//! relays changes to its own observers. [`PieChartView`] and
//! [`BarChartView`] are two different view classes on the same chart data
//! object.

use std::any::Any;
use std::io;

use atk_graphics::{Color, FontDesc, Point, Rect, Size};
use atk_wm::Graphic;

use atk_core::{
    ChangeRec, DataId, DataObject, DatastreamReader, DatastreamWriter, DsError, MenuItem,
    ObserverRef, Token, Update, View, ViewBase, ViewId, World,
};

use crate::data::TableData;

/// The auxiliary chart data object.
#[derive(Clone)]
pub struct ChartData {
    /// The observed table.
    pub table: Option<DataId>,
    /// Source range in the table (inclusive).
    pub range: (usize, usize, usize, usize),
    /// Chart title — stable view state that survives save/load.
    pub title: String,
    /// Value-axis label.
    pub value_label: String,
    /// Relayed notifications (instrumentation for tests/benches).
    pub relays: u64,
}

impl ChartData {
    /// An unbound chart.
    pub fn new() -> ChartData {
        ChartData {
            table: None,
            range: (0, 0, 0, 0),
            title: String::new(),
            value_label: String::new(),
            relays: 0,
        }
    }

    /// Points the chart at a table range and registers it as an observer
    /// of the table. `me` is this chart's own data id.
    pub fn bind(
        &mut self,
        world: &mut World,
        me: DataId,
        table: DataId,
        range: (usize, usize, usize, usize),
    ) {
        if let Some(old) = self.table {
            world.remove_observer(old, ObserverRef::Data(me));
        }
        self.table = Some(table);
        self.range = range;
        world.add_observer(table, ObserverRef::Data(me));
    }

    /// Current values of the charted range.
    pub fn values(&self, world: &World) -> Vec<f64> {
        let Some(table) = self.table.and_then(|t| world.data::<TableData>(t)) else {
            return Vec::new();
        };
        let (r0, c0, r1, c1) = self.range;
        table.range_values(r0, c0, r1, c1)
    }
}

impl Default for ChartData {
    fn default() -> Self {
        ChartData::new()
    }
}

impl DataObject for ChartData {
    fn class_name(&self) -> &'static str {
        "chart"
    }

    fn write_body(&self, w: &mut DatastreamWriter, world: &World) -> io::Result<()> {
        w.write_line(&format!("title {}", self.title))?;
        w.write_line(&format!("valuelabel {}", self.value_label))?;
        let (r0, c0, r1, c1) = self.range;
        w.write_line(&format!("range {r0} {c0} {r1} {c1}"))?;
        if let Some(table) = self.table {
            // Written once per document; a shared table reuses its sid.
            let sid = w.write_embedded(world, table)?;
            w.write_line(&format!("source {sid}"))?;
        }
        Ok(())
    }

    fn read_body(
        &mut self,
        r: &mut DatastreamReader<'_>,
        world: &mut World,
    ) -> Result<(), DsError> {
        let bad = |l: &str| DsError::Malformed(format!("chart body: {l}"));
        loop {
            let tok = r.next_token()?.ok_or(DsError::UnexpectedEof)?;
            match tok {
                Token::EndData { .. } => break,
                Token::BeginData { class, sid } => {
                    r.read_object_body(world, &class, sid)?;
                }
                Token::ViewRef { .. } => {}
                Token::Line(line) => {
                    let mut words = line.split_whitespace();
                    match words.next() {
                        Some("title") => {
                            self.title = line.strip_prefix("title ").unwrap_or("").to_string();
                        }
                        Some("valuelabel") => {
                            self.value_label =
                                line.strip_prefix("valuelabel ").unwrap_or("").to_string();
                        }
                        Some("range") => {
                            let v: Vec<usize> = words.filter_map(|x| x.parse().ok()).collect();
                            if v.len() == 4 {
                                self.range = (v[0], v[1], v[2], v[3]);
                            }
                        }
                        Some("source") => {
                            let sid: u32 = words
                                .next()
                                .and_then(|x| x.parse().ok())
                                .ok_or_else(|| bad(&line))?;
                            self.table =
                                Some(r.lookup_sid(sid).ok_or(DsError::DanglingViewRef(sid))?);
                        }
                        _ => return Err(bad(&line)),
                    }
                }
            }
        }
        // Re-register as an observer of the restored table. The reader
        // inserts us after read_body, so the registration happens in
        // `rebind_after_read`, called by whoever placed the chart. We do
        // the cheap part here: nothing.
        Ok(())
    }

    fn embedded(&self) -> Vec<DataId> {
        self.table.into_iter().collect()
    }

    fn observed_changed(
        &mut self,
        world: &mut World,
        me: DataId,
        _source: DataId,
        _change: &ChangeRec,
    ) {
        // The table changed: relay to the chart's own observers (chart
        // views) — the two-hop update path of §2.
        self.relays += 1;
        world.notify(me, ChangeRec::Meta);
    }

    fn fork(&self) -> Option<Box<dyn DataObject>> {
        Some(Box::new(self.clone()))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Re-registers a freshly deserialized chart as an observer of its table.
/// (During `read_body` the chart does not yet know its own id.)
pub fn rebind_after_read(world: &mut World, chart_id: DataId) {
    let table = world.data::<ChartData>(chart_id).and_then(|c| c.table);
    if let Some(table) = table {
        world.add_observer(table, ObserverRef::Data(chart_id));
    }
}

/// Common plumbing for the two chart views.
#[derive(Clone)]
struct ChartBase {
    base: ViewBase,
    data: Option<DataId>,
}

impl ChartBase {
    fn new() -> ChartBase {
        ChartBase {
            base: ViewBase::new(),
            data: None,
        }
    }

    fn bind(&mut self, world: &mut World, data: DataId, me: ViewId) {
        if let Some(old) = self.data {
            world.remove_observer(old, ObserverRef::View(me));
        }
        self.data = Some(data);
        world.add_observer(data, ObserverRef::View(me));
        world.post_damage_full(me);
    }

    fn snapshot(&self, world: &World) -> (String, Vec<f64>) {
        let Some(chart) = self.data.and_then(|d| world.data::<ChartData>(d)) else {
            return (String::new(), Vec::new());
        };
        (chart.title.clone(), chart.values(world))
    }
}

/// A pie chart over a [`ChartData`] — "one table data object and two
/// views, a normal table view and a pie chart view" (§2).
#[derive(Clone)]
pub struct PieChartView {
    inner: ChartBase,
}

impl PieChartView {
    /// An unbound pie chart view.
    pub fn new() -> PieChartView {
        PieChartView {
            inner: ChartBase::new(),
        }
    }
}

impl Default for PieChartView {
    fn default() -> Self {
        PieChartView::new()
    }
}

impl View for PieChartView {
    fn class_name(&self) -> &'static str {
        "piechartv"
    }
    fn id(&self) -> ViewId {
        self.inner.base.id
    }
    fn set_id(&mut self, id: ViewId) {
        self.inner.base.id = id;
    }
    fn data_object(&self) -> Option<DataId> {
        self.inner.data
    }
    fn set_data_object(&mut self, world: &mut World, data: DataId) -> bool {
        let me = self.inner.base.id;
        self.inner.bind(world, data, me);
        true
    }

    fn desired_size(&mut self, _world: &mut World, budget: i32) -> Size {
        let side = budget.clamp(60, 120);
        Size::new(side, side)
    }

    fn draw(&mut self, world: &mut World, g: &mut dyn Graphic, _update: Update) {
        let size = world.view_bounds(self.inner.base.id).size();
        let (title, values) = self.inner.snapshot(world);
        let total: f64 = values.iter().map(|v| v.abs()).sum();
        let chart_rect = Rect::new(4, 12, size.width - 8, size.height - 16);
        g.set_font(FontDesc::new("andy", Default::default(), 10));
        g.set_foreground(Color::BLACK);
        g.draw_string(Point::new(3, 1), &title);
        if total <= 0.0 {
            g.draw_oval(chart_rect);
            return;
        }
        let mut angle = 0.0;
        for (i, v) in values.iter().enumerate() {
            let sweep = v.abs() / total * 360.0;
            g.set_foreground(Color::chart(i));
            g.fill_wedge(chart_rect, angle, angle + sweep);
            angle += sweep;
        }
        g.set_foreground(Color::BLACK);
        g.draw_oval(chart_rect);
    }

    fn observed_changed(&mut self, world: &mut World, _source: DataId, _change: &ChangeRec) {
        world.post_damage_full(self.inner.base.id);
    }

    fn menus(&self, _world: &World) -> Vec<MenuItem> {
        vec![MenuItem::new("Chart", "Recompute", "chart-recompute")]
    }

    fn fork(&self) -> Option<Box<dyn View>> {
        Some(Box::new(self.clone()))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A bar chart over the same [`ChartData`] — the "two different types of
/// views displaying information contained in the one data object" case.
#[derive(Clone)]
pub struct BarChartView {
    inner: ChartBase,
}

impl BarChartView {
    /// An unbound bar chart view.
    pub fn new() -> BarChartView {
        BarChartView {
            inner: ChartBase::new(),
        }
    }
}

impl Default for BarChartView {
    fn default() -> Self {
        BarChartView::new()
    }
}

impl View for BarChartView {
    fn class_name(&self) -> &'static str {
        "barchartv"
    }
    fn id(&self) -> ViewId {
        self.inner.base.id
    }
    fn set_id(&mut self, id: ViewId) {
        self.inner.base.id = id;
    }
    fn data_object(&self) -> Option<DataId> {
        self.inner.data
    }
    fn set_data_object(&mut self, world: &mut World, data: DataId) -> bool {
        let me = self.inner.base.id;
        self.inner.bind(world, data, me);
        true
    }

    fn desired_size(&mut self, _world: &mut World, budget: i32) -> Size {
        Size::new(budget.clamp(80, 160), 80)
    }

    fn draw(&mut self, world: &mut World, g: &mut dyn Graphic, _update: Update) {
        let size = world.view_bounds(self.inner.base.id).size();
        let (title, values) = self.inner.snapshot(world);
        g.set_font(FontDesc::new("andy", Default::default(), 10));
        g.set_foreground(Color::BLACK);
        g.draw_string(Point::new(3, 1), &title);
        let plot = Rect::new(4, 12, size.width - 8, size.height - 18);
        g.draw_line(
            Point::new(plot.x, plot.bottom()),
            Point::new(plot.right(), plot.bottom()),
        );
        if values.is_empty() {
            return;
        }
        let max = values.iter().cloned().fold(f64::MIN, f64::max).max(1e-9);
        let bw = (plot.width / values.len() as i32).max(2);
        for (i, v) in values.iter().enumerate() {
            let h = ((v / max).max(0.0) * (plot.height as f64)) as i32;
            let r = Rect::new(plot.x + i as i32 * bw + 1, plot.bottom() - h, bw - 2, h);
            g.set_foreground(Color::chart(i));
            g.fill_rect(r);
            g.set_foreground(Color::BLACK);
            g.draw_rect(r);
        }
    }

    fn observed_changed(&mut self, world: &mut World, _source: DataId, _change: &ChangeRec) {
        world.post_damage_full(self.inner.base.id);
    }

    fn fork(&self) -> Option<Box<dyn View>> {
        Some(Box::new(self.clone()))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::CellInput;

    fn setup() -> (World, DataId, DataId, ViewId) {
        let mut world = World::new();
        world
            .catalog
            .register_data("table", || Box::new(TableData::new(1, 1)));
        world
            .catalog
            .register_data("chart", || Box::new(ChartData::new()));
        let table = world.insert_data(Box::new(TableData::new(1, 3)));
        for c in 0..3 {
            let rec = world.data_mut::<TableData>(table).unwrap().set_cell(
                0,
                c,
                CellInput::Raw(format!("{}", (c + 1) * 10)),
            );
            world.notify(table, rec);
        }
        world.flush_notifications();
        let chart = world.insert_data(Box::new(ChartData::new()));
        world.with_data(chart, |d, w| {
            d.as_any_mut()
                .downcast_mut::<ChartData>()
                .unwrap()
                .bind(w, chart, table, (0, 0, 0, 2));
        });
        let pie = world.insert_view(Box::new(PieChartView::new()));
        world.with_view(pie, |v, w| v.set_data_object(w, chart));
        world.set_view_bounds(pie, Rect::new(0, 0, 100, 100));
        let _ = world.take_damage_region();
        (world, table, chart, pie)
    }

    #[test]
    fn chart_reads_table_range() {
        let (world, _, chart, _) = setup();
        let c = world.data::<ChartData>(chart).unwrap();
        assert_eq!(c.values(&world), vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn table_change_relays_through_chart_to_view() {
        // The paper's two-hop path: table -> chart data -> chart view.
        let (mut world, table, chart, _pie) = setup();
        let rec =
            world
                .data_mut::<TableData>(table)
                .unwrap()
                .set_cell(0, 0, CellInput::Raw("99".into()));
        world.notify(table, rec);
        world.flush_notifications();
        assert_eq!(world.data::<ChartData>(chart).unwrap().relays, 1);
        // The chart view posted damage as a result.
        assert!(world.has_damage());
    }

    #[test]
    fn chart_title_is_stable_view_state() {
        // Save a table+chart, reload, and the title (which lives in no
        // table cell) survives — the §2 problem solved.
        let (mut world, _table, chart, _) = setup();
        world.data_mut::<ChartData>(chart).unwrap().title = "Expenses".to_string();
        let doc = atk_core::document_to_string(&world, chart);
        assert!(doc.contains("title Expenses"));

        let mut world2 = World::new();
        world2
            .catalog
            .register_data("table", || Box::new(TableData::new(1, 1)));
        world2
            .catalog
            .register_data("chart", || Box::new(ChartData::new()));
        let chart2 = atk_core::read_document(&mut world2, &doc).unwrap();
        rebind_after_read(&mut world2, chart2);
        let c2 = world2.data::<ChartData>(chart2).unwrap();
        assert_eq!(c2.title, "Expenses");
        assert_eq!(c2.values(&world2), vec![10.0, 20.0, 30.0]);
        // And the observer link is live again.
        let table2 = c2.table.unwrap();
        let rec = world2.data_mut::<TableData>(table2).unwrap().set_cell(
            0,
            1,
            CellInput::Raw("7".into()),
        );
        world2.notify(table2, rec);
        world2.flush_notifications();
        assert_eq!(world2.data::<ChartData>(chart2).unwrap().relays, 1);
    }

    #[test]
    fn pie_and_bar_render_ink() {
        let (mut world, _, chart, pie) = setup();
        let bar = world.insert_view(Box::new(BarChartView::new()));
        world.with_view(bar, |v, w| v.set_data_object(w, chart));
        world.set_view_bounds(bar, Rect::new(0, 0, 120, 80));

        use atk_wm::WindowSystem;
        let mut ws = atk_wm::x11sim::X11Sim::new();
        for (view, wpx, hpx) in [(pie, 100, 100), (bar, 120, 80)] {
            let mut win = ws.open_window("t", Size::new(wpx, hpx));
            world.with_view(view, |v, w| v.draw(w, win.graphic(), Update::Full));
            let snap = win.snapshot().unwrap();
            let colored = (0..wpx)
                .flat_map(|x| (0..hpx).map(move |y| (x, y)))
                .filter(|&(x, y)| {
                    let c = snap.get(x, y);
                    c != Color::WHITE && c != Color::BLACK
                })
                .count();
            assert!(
                colored > 50,
                "chart should have colored area, got {colored}"
            );
        }
    }
}
