//! The table data object: a grid of cells with spreadsheet recalculation
//! and embedded components.
//!
//! "The text and table components are multi-media components, in that
//! they allow the embedding \[of\] other components within their
//! description" (paper §1) — a cell can hold text, a number, a formula,
//! or an arbitrary embedded data object (the paper's figure 5 puts an
//! equation and an animation inside table cells).
//!
//! Formula cells form a dependency graph; [`TableData::recalc`] orders it
//! topologically (depth-first with cycle detection) and re-evaluates, so
//! the Pascal's-Triangle spreadsheet from figure 5 works the way a 1988
//! user would expect.

use std::any::Any;
use std::collections::HashMap;
use std::io;

use atk_core::{
    ChangeRec, DataId, DataObject, DatastreamReader, DatastreamWriter, DsError, Token, World,
};

use crate::formula::{parse, Coord, Expr, FormulaError};

/// Default column width in pixels.
pub const DEFAULT_COL_WIDTH: i32 = 64;
/// Default row height in pixels.
pub const DEFAULT_ROW_HEIGHT: i32 = 16;

/// One cell of the table.
#[derive(Debug, Clone, Default)]
pub enum Cell {
    /// Nothing.
    #[default]
    Empty,
    /// A text label.
    Text(String),
    /// A literal number.
    Number(f64),
    /// A formula with its parse and latest value.
    Formula {
        /// Source, without the leading `=`.
        src: String,
        /// Parsed expression (`None` when the source is malformed).
        ast: Option<Expr>,
        /// Latest computed value.
        value: Result<f64, FormulaError>,
    },
    /// An embedded component (drawing, equation, animation, …).
    Embedded {
        /// The embedded data object.
        data: DataId,
        /// View class displaying it.
        view_class: String,
    },
}

impl Cell {
    /// The numeric value other formulas see (text/empty/error → 0).
    pub fn numeric(&self) -> f64 {
        match self {
            Cell::Number(n) => *n,
            Cell::Formula { value: Ok(v), .. } => *v,
            _ => 0.0,
        }
    }

    /// Display string for the cell.
    pub fn display(&self) -> String {
        match self {
            Cell::Empty => String::new(),
            Cell::Text(s) => s.clone(),
            Cell::Number(n) => format_num(*n),
            Cell::Formula { value: Ok(v), .. } => format_num(*v),
            Cell::Formula { value: Err(e), .. } => match e {
                FormulaError::Cycle => "#CYCLE".to_string(),
                _ => "#ERR".to_string(),
            },
            Cell::Embedded { view_class, .. } => format!("[{view_class}]"),
        }
    }
}

fn format_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n:.4}")
    }
}

/// What a user typed into a cell.
#[derive(Debug, Clone, PartialEq)]
pub enum CellInput {
    /// Clear the cell.
    Clear,
    /// Raw text: parsed as a number if it looks like one, a formula if
    /// it starts with `=`, text otherwise.
    Raw(String),
}

/// The table/spreadsheet data object.
#[derive(Clone)]
pub struct TableData {
    rows: usize,
    cols: usize,
    cells: Vec<Cell>,
    /// Per-column widths (pixels).
    pub col_widths: Vec<i32>,
    /// Per-row heights (pixels).
    pub row_heights: Vec<i32>,
    recalcs: u64,
}

impl TableData {
    /// An empty `rows`×`cols` table.
    pub fn new(rows: usize, cols: usize) -> TableData {
        TableData {
            rows,
            cols,
            cells: vec![Cell::Empty; rows * cols],
            col_widths: vec![DEFAULT_COL_WIDTH; cols],
            row_heights: vec![DEFAULT_ROW_HEIGHT; rows],
            recalcs: 0,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total recalculation passes run (instrumentation).
    pub fn recalcs(&self) -> u64 {
        self.recalcs
    }

    fn idx(&self, r: usize, c: usize) -> usize {
        r * self.cols + c
    }

    /// The cell at `(r, c)` (Empty outside the grid).
    pub fn cell(&self, r: usize, c: usize) -> &Cell {
        static EMPTY: Cell = Cell::Empty;
        if r < self.rows && c < self.cols {
            &self.cells[self.idx(r, c)]
        } else {
            &EMPTY
        }
    }

    /// Numeric value at `(r, c)`.
    pub fn value(&self, r: usize, c: usize) -> f64 {
        self.cell(r, c).numeric()
    }

    /// Sets a cell from user input, recalculates, and returns the change
    /// record (covering the whole dependent region — conservatively the
    /// grid when formulas exist).
    pub fn set_cell(&mut self, r: usize, c: usize, input: CellInput) -> ChangeRec {
        if r >= self.rows || c >= self.cols {
            return ChangeRec::Meta;
        }
        let idx = self.idx(r, c);
        self.cells[idx] = match input {
            CellInput::Clear => Cell::Empty,
            CellInput::Raw(s) => {
                let t = s.trim();
                if let Some(body) = t.strip_prefix('=') {
                    match parse(body) {
                        Ok(ast) => Cell::Formula {
                            src: body.to_string(),
                            ast: Some(ast),
                            value: Ok(0.0),
                        },
                        Err(e) => Cell::Formula {
                            src: body.to_string(),
                            ast: None,
                            value: Err(e),
                        },
                    }
                } else if let Ok(n) = t.parse::<f64>() {
                    Cell::Number(n)
                } else if t.is_empty() {
                    Cell::Empty
                } else {
                    Cell::Text(s)
                }
            }
        };
        let has_formulas = self.cells.iter().any(|c| matches!(c, Cell::Formula { .. }));
        if has_formulas {
            self.recalc();
            ChangeRec::Cells {
                r0: 0,
                c0: 0,
                r1: self.rows.saturating_sub(1),
                c1: self.cols.saturating_sub(1),
            }
        } else {
            ChangeRec::Cells {
                r0: r,
                c0: c,
                r1: r,
                c1: c,
            }
        }
    }

    /// Embeds a component in a cell.
    pub fn set_embedded(
        &mut self,
        r: usize,
        c: usize,
        data: DataId,
        view_class: &str,
    ) -> ChangeRec {
        if r >= self.rows || c >= self.cols {
            return ChangeRec::Meta;
        }
        let idx = self.idx(r, c);
        self.cells[idx] = Cell::Embedded {
            data,
            view_class: view_class.to_string(),
        };
        ChangeRec::Cells {
            r0: r,
            c0: c,
            r1: r,
            c1: c,
        }
    }

    /// Re-evaluates every formula in dependency order. Cells on a cycle
    /// get [`FormulaError::Cycle`].
    pub fn recalc(&mut self) {
        self.recalcs += 1;
        // Collect formulas and their dependencies.
        let mut formulas: HashMap<Coord, Vec<Coord>> = HashMap::new();
        for r in 0..self.rows {
            for c in 0..self.cols {
                if let Cell::Formula { ast: Some(a), .. } = self.cell(r, c) {
                    formulas.insert((r, c), a.deps());
                }
            }
        }
        // DFS topological order with cycle detection.
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Gray,
            Black,
        }
        let mut marks: HashMap<Coord, Mark> = formulas.keys().map(|k| (*k, Mark::White)).collect();
        let mut order: Vec<Coord> = Vec::with_capacity(formulas.len());
        let mut cyclic: Vec<Coord> = Vec::new();

        // Iterative DFS to survive deep chains (the Pascal's-Triangle
        // sheet is exactly a long dependency chain).
        for &start in formulas.keys() {
            if marks[&start] != Mark::White {
                continue;
            }
            let mut stack: Vec<(Coord, usize)> = vec![(start, 0)];
            marks.insert(start, Mark::Gray);
            while let Some(frame) = stack.last_mut() {
                let node = frame.0;
                let deps = &formulas[&node];
                if frame.1 < deps.len() {
                    let dep = deps[frame.1];
                    frame.1 += 1;
                    if formulas.contains_key(&dep) {
                        match marks[&dep] {
                            Mark::White => {
                                marks.insert(dep, Mark::Gray);
                                stack.push((dep, 0));
                            }
                            Mark::Gray => {
                                cyclic.push(dep);
                                cyclic.push(node);
                            }
                            Mark::Black => {}
                        }
                    }
                } else {
                    marks.insert(node, Mark::Black);
                    order.push(node);
                    stack.pop();
                }
            }
        }

        // Propagate cycle taint: any formula depending (transitively) on
        // a cyclic cell is also in error.
        let mut tainted: std::collections::HashSet<Coord> = cyclic.into_iter().collect();
        loop {
            let before = tainted.len();
            for (coord, deps) in &formulas {
                if deps.iter().any(|d| tainted.contains(d)) {
                    tainted.insert(*coord);
                }
            }
            if tainted.len() == before {
                break;
            }
        }

        // Evaluate in order.
        let mut values: HashMap<Coord, f64> = HashMap::new();
        for coord in order {
            if tainted.contains(&coord) {
                continue;
            }
            let ast = match self.cell(coord.0, coord.1) {
                Cell::Formula { ast: Some(a), .. } => a.clone(),
                _ => continue,
            };
            let result = {
                let lookup = |dep: Coord| -> f64 {
                    if let Some(v) = values.get(&dep) {
                        *v
                    } else {
                        self.value(dep.0, dep.1)
                    }
                };
                ast.eval(&lookup)
            };
            if let Ok(v) = result {
                values.insert(coord, v);
            }
            let idx = self.idx(coord.0, coord.1);
            if let Cell::Formula { value, .. } = &mut self.cells[idx] {
                *value = result;
            }
        }
        for coord in tainted {
            if coord.0 < self.rows && coord.1 < self.cols {
                let idx = self.idx(coord.0, coord.1);
                if let Cell::Formula { value, .. } = &mut self.cells[idx] {
                    *value = Err(FormulaError::Cycle);
                }
            }
        }
    }

    /// Appends a row.
    pub fn add_row(&mut self) -> ChangeRec {
        self.rows += 1;
        self.row_heights.push(DEFAULT_ROW_HEIGHT);
        self.cells
            .extend(std::iter::repeat_with(Cell::default).take(self.cols));
        ChangeRec::Structure
    }

    /// Appends a column.
    pub fn add_col(&mut self) -> ChangeRec {
        let old_cols = self.cols;
        self.cols += 1;
        self.col_widths.push(DEFAULT_COL_WIDTH);
        let mut cells = vec![Cell::Empty; self.rows * self.cols];
        for r in 0..self.rows {
            for c in 0..old_cols {
                cells[r * self.cols + c] = std::mem::take(&mut self.cells[r * old_cols + c]);
            }
        }
        self.cells = cells;
        ChangeRec::Structure
    }

    /// Total pixel width including all columns.
    pub fn total_width(&self) -> i32 {
        self.col_widths.iter().sum()
    }

    /// Total pixel height including all rows.
    pub fn total_height(&self) -> i32 {
        self.row_heights.iter().sum()
    }

    /// Values of a rectangular range, row-major (for chart views).
    pub fn range_values(&self, r0: usize, c0: usize, r1: usize, c1: usize) -> Vec<f64> {
        let mut out = Vec::new();
        for r in r0..=r1.min(self.rows.saturating_sub(1)) {
            for c in c0..=c1.min(self.cols.saturating_sub(1)) {
                out.push(self.value(r, c));
            }
        }
        out
    }
}

impl DataObject for TableData {
    fn class_name(&self) -> &'static str {
        "table"
    }

    fn write_body(&self, w: &mut DatastreamWriter, world: &World) -> io::Result<()> {
        w.write_line(&format!("dims {} {}", self.rows, self.cols))?;
        w.write_line(&format!(
            "colw {}",
            self.col_widths
                .iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        ))?;
        w.write_line(&format!(
            "rowh {}",
            self.row_heights
                .iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        ))?;
        for r in 0..self.rows {
            for c in 0..self.cols {
                match self.cell(r, c) {
                    Cell::Empty => {}
                    Cell::Text(s) => w.write_line(&format!("cell {r} {c} t {s}"))?,
                    Cell::Number(n) => w.write_line(&format!("cell {r} {c} n {n}"))?,
                    Cell::Formula { src, .. } => w.write_line(&format!("cell {r} {c} f {src}"))?,
                    Cell::Embedded { data, view_class } => {
                        let sid = w.write_embedded(world, *data)?;
                        w.write_line(&format!("cell {r} {c} e"))?;
                        w.write_view_ref(view_class, sid)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn read_body(
        &mut self,
        r: &mut DatastreamReader<'_>,
        world: &mut World,
    ) -> Result<(), DsError> {
        let bad = |l: &str| DsError::Malformed(format!("table body: {l}"));
        let mut pending_embed: Option<(usize, usize)> = None;
        loop {
            let tok = r.next_token()?.ok_or(DsError::UnexpectedEof)?;
            match tok {
                Token::EndData { .. } => break,
                Token::BeginData { class, sid } => {
                    r.read_object_body(world, &class, sid)?;
                }
                Token::ViewRef { class, sid } => {
                    let (row, col) = pending_embed.take().ok_or_else(|| bad("stray \\view"))?;
                    let data = r.lookup_sid(sid).ok_or(DsError::DanglingViewRef(sid))?;
                    self.set_embedded(row, col, data, &class);
                }
                Token::Line(line) => {
                    let mut words = line.split_whitespace();
                    match words.next() {
                        Some("dims") => {
                            let rows: usize = words
                                .next()
                                .and_then(|x| x.parse().ok())
                                .ok_or_else(|| bad(&line))?;
                            let cols: usize = words
                                .next()
                                .and_then(|x| x.parse().ok())
                                .ok_or_else(|| bad(&line))?;
                            *self = TableData::new(rows, cols);
                        }
                        Some("colw") => {
                            let v: Vec<i32> = words.filter_map(|x| x.parse().ok()).collect();
                            if v.len() == self.cols {
                                self.col_widths = v;
                            }
                        }
                        Some("rowh") => {
                            let v: Vec<i32> = words.filter_map(|x| x.parse().ok()).collect();
                            if v.len() == self.rows {
                                self.row_heights = v;
                            }
                        }
                        Some("cell") => {
                            let row: usize = words
                                .next()
                                .and_then(|x| x.parse().ok())
                                .ok_or_else(|| bad(&line))?;
                            let col: usize = words
                                .next()
                                .and_then(|x| x.parse().ok())
                                .ok_or_else(|| bad(&line))?;
                            let kind = words.next().ok_or_else(|| bad(&line))?;
                            // The rest of the line, verbatim.
                            let prefix_len = line
                                .find(kind)
                                .map(|i| i + kind.len() + 1)
                                .unwrap_or(line.len());
                            let rest = line.get(prefix_len..).unwrap_or("");
                            match kind {
                                "t" => {
                                    self.set_cell(row, col, CellInput::Raw(rest.to_string()));
                                    // Force text even if numeric-looking.
                                    if row < self.rows && col < self.cols {
                                        let idx = self.idx(row, col);
                                        self.cells[idx] = Cell::Text(rest.to_string());
                                    }
                                }
                                "n" => {
                                    let n: f64 = rest.trim().parse().map_err(|_| bad(&line))?;
                                    let idx = self.idx(row, col);
                                    self.cells[idx] = Cell::Number(n);
                                }
                                "f" => {
                                    self.set_cell(row, col, CellInput::Raw(format!("={rest}")));
                                }
                                "e" => {
                                    pending_embed = Some((row, col));
                                }
                                _ => return Err(bad(&line)),
                            }
                        }
                        _ => return Err(bad(&line)),
                    }
                }
            }
        }
        self.recalc();
        Ok(())
    }

    fn embedded(&self) -> Vec<DataId> {
        self.cells
            .iter()
            .filter_map(|c| match c {
                Cell::Embedded { data, .. } => Some(*data),
                _ => None,
            })
            .collect()
    }

    fn fork(&self) -> Option<Box<dyn DataObject>> {
        Some(Box::new(self.clone()))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(t: &mut TableData, r: usize, c: usize, s: &str) {
        t.set_cell(r, c, CellInput::Raw(s.to_string()));
    }

    #[test]
    fn literals_and_display() {
        let mut t = TableData::new(2, 2);
        set(&mut t, 0, 0, "42");
        set(&mut t, 0, 1, "hello");
        set(&mut t, 1, 0, "2.5");
        assert_eq!(t.value(0, 0), 42.0);
        assert_eq!(t.cell(0, 1).display(), "hello");
        assert_eq!(t.cell(1, 0).display(), "2.5000");
        assert_eq!(t.cell(1, 1).display(), "");
    }

    #[test]
    fn formulas_recalculate_on_change() {
        let mut t = TableData::new(2, 2);
        set(&mut t, 0, 0, "10");
        set(&mut t, 0, 1, "=A1*2");
        assert_eq!(t.value(0, 1), 20.0);
        set(&mut t, 0, 0, "7");
        assert_eq!(t.value(0, 1), 14.0);
    }

    #[test]
    fn dependency_chains_evaluate_in_order() {
        let mut t = TableData::new(1, 4);
        set(&mut t, 0, 3, "=C1+1");
        set(&mut t, 0, 2, "=B1+1");
        set(&mut t, 0, 1, "=A1+1");
        set(&mut t, 0, 0, "1");
        assert_eq!(t.value(0, 3), 4.0);
    }

    #[test]
    fn cycles_are_detected_not_looped() {
        let mut t = TableData::new(1, 3);
        set(&mut t, 0, 0, "=B1");
        set(&mut t, 0, 1, "=A1");
        set(&mut t, 0, 2, "=A1+1");
        assert_eq!(t.cell(0, 0).display(), "#CYCLE");
        assert_eq!(t.cell(0, 1).display(), "#CYCLE");
        // C1 depends on the cycle and is tainted too.
        assert_eq!(t.cell(0, 2).display(), "#CYCLE");
    }

    #[test]
    fn pascals_triangle_spreadsheet() {
        // The paper's figure 5: Pascal's triangle via the spreadsheet.
        let n = 6;
        let mut t = TableData::new(n, n);
        for i in 0..n {
            set(&mut t, i, 0, "1");
            set(&mut t, 0, i, "1");
        }
        for r in 1..n {
            for c in 1..n {
                let above = crate::formula::coord_to_a1((r - 1, c));
                let left = crate::formula::coord_to_a1((r, c - 1));
                set(&mut t, r, c, &format!("={above}+{left}"));
            }
        }
        // Binomial coefficients: cell (r,c) = C(r+c, r).
        assert_eq!(t.value(1, 1), 2.0);
        assert_eq!(t.value(2, 2), 6.0);
        assert_eq!(t.value(3, 2), 10.0);
        assert_eq!(t.value(5, 5), 252.0);
    }

    #[test]
    fn aggregates_over_ranges() {
        let mut t = TableData::new(3, 2);
        for r in 0..3 {
            set(&mut t, r, 0, &format!("{}", r + 1));
        }
        set(&mut t, 0, 1, "=SUM(A1:A3)");
        set(&mut t, 1, 1, "=AVG(A1:A3)");
        assert_eq!(t.value(0, 1), 6.0);
        assert_eq!(t.value(1, 1), 2.0);
    }

    #[test]
    fn structure_ops() {
        let mut t = TableData::new(2, 2);
        set(&mut t, 1, 1, "9");
        t.add_row();
        t.add_col();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.value(1, 1), 9.0);
        assert_eq!(t.value(2, 2), 0.0);
        assert_eq!(t.col_widths.len(), 3);
    }

    #[test]
    fn parse_errors_show_err() {
        let mut t = TableData::new(1, 1);
        set(&mut t, 0, 0, "=1+");
        assert_eq!(t.cell(0, 0).display(), "#ERR");
    }

    #[test]
    fn serialization_round_trip() {
        let mut world = World::new();
        world
            .catalog
            .register_data("table", || Box::new(TableData::new(1, 1)));
        let mut t = TableData::new(2, 3);
        set(&mut t, 0, 0, "5");
        set(&mut t, 0, 1, "=A1*3");
        set(&mut t, 1, 2, "label text here");
        let id = world.insert_data(Box::new(t));
        let doc = atk_core::document_to_string(&world, id);
        assert!(atk_core::audit_stream(&doc).is_empty());

        let mut world2 = World::new();
        world2
            .catalog
            .register_data("table", || Box::new(TableData::new(1, 1)));
        let id2 = atk_core::read_document(&mut world2, &doc).unwrap();
        let t2 = world2.data::<TableData>(id2).unwrap();
        assert_eq!(t2.rows(), 2);
        assert_eq!(t2.cols(), 3);
        assert_eq!(t2.value(0, 0), 5.0);
        assert_eq!(t2.value(0, 1), 15.0);
        assert_eq!(t2.cell(1, 2).display(), "label text here");
    }

    #[test]
    fn embedded_cells_serialize_with_view_refs() {
        let mut world = World::new();
        world
            .catalog
            .register_data("table", || Box::new(TableData::new(1, 1)));
        let inner = world.insert_data(Box::new(TableData::new(1, 1)));
        let mut t = TableData::new(2, 2);
        t.set_embedded(1, 0, inner, "tablev");
        let id = world.insert_data(Box::new(t));
        let doc = atk_core::document_to_string(&world, id);
        assert!(doc.contains("\\view{tablev,2}"));

        let mut world2 = World::new();
        world2
            .catalog
            .register_data("table", || Box::new(TableData::new(1, 1)));
        let id2 = atk_core::read_document(&mut world2, &doc).unwrap();
        let t2 = world2.data::<TableData>(id2).unwrap();
        assert!(matches!(t2.cell(1, 0), Cell::Embedded { .. }));
        assert_eq!(t2.embedded().len(), 1);
    }
}
