//! The table view: grid display, cell selection and editing, and
//! embedded-component cells.

use std::any::Any;

use atk_graphics::{Color, FontDesc, Point, Rect, Size};
use atk_wm::{Button, CursorShape, Graphic, Key, MouseAction};

use atk_core::{
    ChangeRec, DataId, MenuItem, ObserverRef, ScrollInfo, Update, View, ViewBase, ViewId, World,
};

use crate::data::{Cell, CellInput, TableData};
use crate::formula::col_to_letters;

/// Width of the row-number gutter.
const ROW_HEADER_W: i32 = 28;
/// Height of the column-letter header.
const COL_HEADER_H: i32 = 14;

/// The table/spreadsheet view.
#[derive(Clone)]
pub struct TableView {
    base: ViewBase,
    data: Option<DataId>,
    /// Selected cell.
    pub sel: (usize, usize),
    /// In-progress cell edit text (shown in place of the cell value).
    pub edit: Option<String>,
    scroll_y: i32,
    /// Embedded-cell child views in row-major cell order — also their
    /// paint order. A `Vec`, not a hash map: child order must not depend
    /// on hasher state.
    insets: Vec<(DataId, ViewId)>,
    font: FontDesc,
}

impl TableView {
    /// An unbound table view.
    pub fn new() -> TableView {
        TableView {
            base: ViewBase::new(),
            data: None,
            sel: (0, 0),
            edit: None,
            scroll_y: 0,
            insets: Vec::new(),
            font: FontDesc::default_body(),
        }
    }

    fn with_table<R>(&self, world: &World, f: impl FnOnce(&TableData) -> R) -> Option<R> {
        self.data.and_then(|d| world.data::<TableData>(d)).map(f)
    }

    /// The pixel rect of a cell in view coordinates.
    pub fn cell_rect(&self, world: &World, r: usize, c: usize) -> Option<Rect> {
        self.with_table(world, |t| {
            if r >= t.rows() || c >= t.cols() {
                return None;
            }
            let x = ROW_HEADER_W + t.col_widths[..c].iter().sum::<i32>();
            let y = COL_HEADER_H + t.row_heights[..r].iter().sum::<i32>() - self.scroll_y;
            Some(Rect::new(x, y, t.col_widths[c], t.row_heights[r]))
        })
        .flatten()
    }

    /// The cell at a view-local point.
    pub fn cell_at(&self, world: &World, pt: Point) -> Option<(usize, usize)> {
        self.with_table(world, |t| {
            if pt.x < ROW_HEADER_W || pt.y < COL_HEADER_H {
                return None;
            }
            let mut x = ROW_HEADER_W;
            let mut col = None;
            for (ci, w) in t.col_widths.iter().enumerate() {
                if pt.x < x + w {
                    col = Some(ci);
                    break;
                }
                x += w;
            }
            let mut y = COL_HEADER_H - self.scroll_y;
            let mut row = None;
            for (ri, h) in t.row_heights.iter().enumerate() {
                if pt.y < y + h {
                    if pt.y >= y {
                        row = Some(ri);
                    }
                    break;
                }
                y += h;
            }
            match (row, col) {
                (Some(r), Some(c)) => Some((r, c)),
                _ => None,
            }
        })
        .flatten()
    }

    /// Commits the pending edit into the selected cell.
    pub fn commit_edit(&mut self, world: &mut World) {
        let Some(text) = self.edit.take() else {
            return;
        };
        let Some(data_id) = self.data else { return };
        let (r, c) = self.sel;
        let rec = match world.data_mut::<TableData>(data_id) {
            Some(t) => t.set_cell(r, c, CellInput::Raw(text)),
            None => return,
        };
        world.notify(data_id, rec);
    }

    fn ensure_insets(&mut self, world: &mut World) {
        let Some(data_id) = self.data else { return };
        let embeds: Vec<(usize, usize, DataId, String)> = self
            .with_table(world, |t| {
                let mut v = Vec::new();
                for r in 0..t.rows() {
                    for c in 0..t.cols() {
                        if let Cell::Embedded { data, view_class } = t.cell(r, c) {
                            v.push((r, c, *data, view_class.clone()));
                        }
                    }
                }
                v
            })
            .unwrap_or_default();
        let _ = data_id;
        for (r, c, data, view_class) in embeds {
            if self.inset_view(data).is_none() {
                if let Ok(vid) = world.new_view(&view_class) {
                    world.set_view_parent(vid, Some(self.base.id));
                    world.with_view(vid, |v, w| v.set_data_object(w, data));
                    self.insets.push((data, vid));
                }
            }
            if let (Some(vid), Some(rect)) = (self.inset_view(data), self.cell_rect(world, r, c)) {
                world.set_view_bounds(vid, rect.inset(1));
            }
        }
    }

    fn inset_view(&self, data: DataId) -> Option<ViewId> {
        self.insets
            .iter()
            .find(|(d, _)| *d == data)
            .map(|(_, v)| *v)
    }

    fn move_sel(&mut self, world: &mut World, dr: i32, dc: i32) {
        self.commit_edit(world);
        let (rows, cols) = self
            .with_table(world, |t| (t.rows(), t.cols()))
            .unwrap_or((1, 1));
        let r = (self.sel.0 as i32 + dr).clamp(0, rows.saturating_sub(1) as i32) as usize;
        let c = (self.sel.1 as i32 + dc).clamp(0, cols.saturating_sub(1) as i32) as usize;
        self.sel = (r, c);
        world.post_damage_full(self.base.id);
    }
}

impl Default for TableView {
    fn default() -> Self {
        TableView::new()
    }
}

impl View for TableView {
    fn class_name(&self) -> &'static str {
        "tablev"
    }
    fn id(&self) -> ViewId {
        self.base.id
    }
    fn set_id(&mut self, id: ViewId) {
        self.base.id = id;
    }
    fn data_object(&self) -> Option<DataId> {
        self.data
    }
    fn children(&self) -> Vec<ViewId> {
        self.insets.iter().map(|(_, v)| *v).collect()
    }

    fn set_data_object(&mut self, world: &mut World, data: DataId) -> bool {
        if let Some(old) = self.data {
            world.remove_observer(old, ObserverRef::View(self.base.id));
        }
        self.data = Some(data);
        world.add_observer(data, ObserverRef::View(self.base.id));
        world.post_damage_full(self.base.id);
        true
    }

    fn desired_size(&mut self, world: &mut World, _budget: i32) -> Size {
        self.with_table(world, |t| {
            Size::new(
                ROW_HEADER_W + t.total_width() + 1,
                COL_HEADER_H + t.total_height() + 1,
            )
        })
        .unwrap_or(Size::new(80, 40))
    }

    fn layout(&mut self, world: &mut World) {
        self.ensure_insets(world);
    }

    fn draw(&mut self, world: &mut World, g: &mut dyn Graphic, update: Update) {
        self.ensure_insets(world);
        let Some(data_id) = self.data else { return };
        let size = world.view_bounds(self.base.id).size();
        let view_rect = Rect::at(Point::ORIGIN, size);

        struct CellDraw {
            rect: Rect,
            text: String,
            right_align: bool,
        }
        let mut cells: Vec<CellDraw> = Vec::new();
        let mut grid_lines: Vec<(Point, Point)> = Vec::new();
        let mut headers: Vec<(Rect, String)> = Vec::new();
        {
            let Some(t) = world.data::<TableData>(data_id) else {
                return;
            };
            // Column headers.
            let mut x = ROW_HEADER_W;
            for (c, w) in t.col_widths.iter().enumerate() {
                headers.push((Rect::new(x, 0, *w, COL_HEADER_H), col_to_letters(c)));
                grid_lines.push((Point::new(x - 1, 0), Point::new(x - 1, size.height - 1)));
                x += w;
            }
            grid_lines.push((Point::new(x - 1, 0), Point::new(x - 1, size.height - 1)));
            // Row headers.
            let mut y = COL_HEADER_H - self.scroll_y;
            for (r, h) in t.row_heights.iter().enumerate() {
                headers.push((Rect::new(0, y, ROW_HEADER_W, *h), format!("{}", r + 1)));
                grid_lines.push((Point::new(0, y - 1), Point::new(size.width - 1, y - 1)));
                y += h;
            }
            grid_lines.push((Point::new(0, y - 1), Point::new(size.width - 1, y - 1)));
            // Cells.
            for r in 0..t.rows() {
                for c in 0..t.cols() {
                    let Some(rect) = ({
                        let x = ROW_HEADER_W + t.col_widths[..c].iter().sum::<i32>();
                        let y =
                            COL_HEADER_H + t.row_heights[..r].iter().sum::<i32>() - self.scroll_y;
                        Some(Rect::new(x, y, t.col_widths[c], t.row_heights[r]))
                    }) else {
                        continue;
                    };
                    if !update.touches(rect) || !rect.intersects(view_rect) {
                        continue;
                    }
                    let cell = t.cell(r, c);
                    if matches!(cell, Cell::Embedded { .. }) {
                        continue; // Drawn as a child view.
                    }
                    let editing = self.edit.is_some() && self.sel == (r, c);
                    let text = if editing {
                        format!("{}|", self.edit.as_deref().unwrap_or(""))
                    } else {
                        cell.display()
                    };
                    cells.push(CellDraw {
                        rect,
                        text,
                        right_align: matches!(cell, Cell::Number(_) | Cell::Formula { .. })
                            && !editing,
                    });
                }
            }
        }

        g.set_font(self.font.clone());
        g.set_foreground(Color::LIGHT_GRAY);
        g.fill_rect(Rect::new(0, 0, size.width, COL_HEADER_H));
        g.fill_rect(Rect::new(0, 0, ROW_HEADER_W, size.height));
        g.set_foreground(Color::BLACK);
        for (a, b) in grid_lines {
            g.set_foreground(Color::GRAY);
            g.draw_line(a, b);
        }
        g.set_foreground(Color::BLACK);
        for (rect, label) in headers {
            g.draw_string_centered(rect, &label);
        }
        for cd in cells {
            if cd.right_align {
                g.draw_string_right(cd.rect.inset(1), &cd.text);
            } else {
                let m = g.font_metrics();
                let y = cd.rect.y + (cd.rect.height - m.ascent - m.descent) / 2 + m.ascent;
                g.draw_string_baseline(Point::new(cd.rect.x + 3, y), &cd.text);
            }
        }
        // Embedded children.
        let inset_ids: Vec<ViewId> = self.insets.iter().map(|(_, v)| *v).collect();
        for vid in inset_ids {
            world.draw_child(vid, g, update);
        }
        // Selection border.
        if let Some(rect) = self.cell_rect(world, self.sel.0, self.sel.1) {
            g.set_foreground(Color::BLACK);
            g.draw_rect(rect);
            g.draw_rect(rect.inset(1));
        }
    }

    fn mouse(&mut self, world: &mut World, action: MouseAction, pt: Point) -> bool {
        // Embedded cells are editable in place.
        for &(_, vid) in self.insets.iter().rev() {
            let b = world.view_bounds(vid);
            if b.contains(pt) && world.mouse_to_child(vid, action, pt) {
                return true;
            }
        }
        if let MouseAction::Down(Button::Left) = action {
            if let Some(cell) = self.cell_at(world, pt) {
                self.commit_edit(world);
                self.sel = cell;
                world.request_focus(self.base.id);
                world.post_damage_full(self.base.id);
            }
            return true;
        }
        matches!(
            action,
            MouseAction::Up(Button::Left) | MouseAction::Drag(Button::Left)
        )
    }

    fn key(&mut self, world: &mut World, key: Key) -> bool {
        match key {
            Key::Char(c) => {
                self.edit.get_or_insert_with(String::new).push(c);
                world.post_damage_full(self.base.id);
                true
            }
            Key::Backspace => {
                if let Some(e) = self.edit.as_mut() {
                    e.pop();
                    world.post_damage_full(self.base.id);
                }
                true
            }
            Key::Return => {
                self.commit_edit(world);
                self.move_sel(world, 1, 0);
                true
            }
            Key::Tab => {
                self.commit_edit(world);
                self.move_sel(world, 0, 1);
                true
            }
            Key::Escape => {
                self.edit = None;
                world.post_damage_full(self.base.id);
                true
            }
            Key::Up => {
                self.move_sel(world, -1, 0);
                true
            }
            Key::Down => {
                self.move_sel(world, 1, 0);
                true
            }
            Key::Left => {
                self.move_sel(world, 0, -1);
                true
            }
            Key::Right => {
                self.move_sel(world, 0, 1);
                true
            }
            Key::Delete => {
                if let Some(data_id) = self.data {
                    let (r, c) = self.sel;
                    if let Some(t) = world.data_mut::<TableData>(data_id) {
                        let rec = t.set_cell(r, c, CellInput::Clear);
                        world.notify(data_id, rec);
                    }
                }
                true
            }
            _ => false,
        }
    }

    fn perform(&mut self, world: &mut World, command: &str) -> bool {
        let Some(data_id) = self.data else {
            return false;
        };
        match command {
            "table-add-row" => {
                let rec = world.data_mut::<TableData>(data_id).map(|t| t.add_row());
                if let Some(rec) = rec {
                    world.notify(data_id, rec);
                }
                true
            }
            "table-add-col" => {
                let rec = world.data_mut::<TableData>(data_id).map(|t| t.add_col());
                if let Some(rec) = rec {
                    world.notify(data_id, rec);
                }
                true
            }
            "table-recalc" => {
                if let Some(t) = world.data_mut::<TableData>(data_id) {
                    t.recalc();
                }
                world.notify(data_id, ChangeRec::Full);
                true
            }
            _ => false,
        }
    }

    fn menus(&self, _world: &World) -> Vec<MenuItem> {
        vec![
            MenuItem::new("Table", "Add Row", "table-add-row"),
            MenuItem::new("Table", "Add Column", "table-add-col"),
            MenuItem::new("Table", "Recalculate", "table-recalc"),
        ]
    }

    fn cursor_at(&self, world: &World, pt: Point) -> Option<CursorShape> {
        for &(_, vid) in self.insets.iter().rev() {
            let b = world.view_bounds(vid);
            if b.contains(pt) {
                return world
                    .view_dyn(vid)
                    .and_then(|v| v.cursor_at(world, pt - b.origin()));
            }
        }
        Some(CursorShape::Arrow)
    }

    fn observed_changed(&mut self, world: &mut World, _source: DataId, change: &ChangeRec) {
        match change {
            ChangeRec::Cells { r0, c0, r1, c1 } => {
                let a = self.cell_rect(world, *r0, *c0);
                let b = self.cell_rect(world, *r1, *c1);
                match (a, b) {
                    (Some(a), Some(b)) => world.post_damage(self.base.id, a.union(b)),
                    _ => world.post_damage_full(self.base.id),
                }
            }
            _ => world.post_damage_full(self.base.id),
        }
    }

    fn scroll_info(&self, world: &World) -> Option<ScrollInfo> {
        let total = self
            .with_table(world, |t| COL_HEADER_H + t.total_height())
            .unwrap_or(0);
        Some(ScrollInfo {
            total: total.max(1),
            visible: world.view_bounds(self.base.id).height,
            offset: self.scroll_y,
        })
    }

    fn scroll_to(&mut self, world: &mut World, offset: i32) {
        let total = self
            .with_table(world, |t| COL_HEADER_H + t.total_height())
            .unwrap_or(0);
        let h = world.view_bounds(self.base.id).height;
        self.scroll_y = offset.clamp(0, (total - h).max(0));
        world.post_damage_full(self.base.id);
    }

    fn fork(&self) -> Option<Box<dyn View>> {
        Some(Box::new(self.clone()))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (World, DataId, ViewId) {
        let mut world = World::new();
        world
            .catalog
            .register_data("table", || Box::new(TableData::new(1, 1)));
        world
            .catalog
            .register_view("tablev", || Box::new(TableView::new()));
        let data = world.insert_data(Box::new(TableData::new(4, 3)));
        let view = world.new_view("tablev").unwrap();
        world.with_view(view, |v, w| v.set_data_object(w, data));
        world.set_view_bounds(view, Rect::new(0, 0, 300, 120));
        let _ = world.take_damage_region();
        (world, data, view)
    }

    #[test]
    fn cell_geometry_round_trips() {
        let (world, _, view) = setup();
        let tv = world.view_as::<TableView>(view).unwrap();
        let rect = tv.cell_rect(&world, 1, 2).unwrap();
        let center = rect.center();
        assert_eq!(tv.cell_at(&world, center), Some((1, 2)));
        assert_eq!(tv.cell_at(&world, Point::new(2, 2)), None); // Headers.
    }

    #[test]
    fn click_selects_typing_edits_enter_commits() {
        let (mut world, data, view) = setup();
        let rect = world
            .view_as::<TableView>(view)
            .unwrap()
            .cell_rect(&world, 0, 0)
            .unwrap();
        world.with_view(view, |v, w| {
            v.mouse(w, MouseAction::Down(Button::Left), rect.center());
            for c in "42".chars() {
                v.key(w, Key::Char(c));
            }
            v.key(w, Key::Return);
        });
        assert_eq!(world.data::<TableData>(data).unwrap().value(0, 0), 42.0);
        // Enter moved selection down.
        assert_eq!(world.view_as::<TableView>(view).unwrap().sel, (1, 0));
    }

    #[test]
    fn formula_entry_via_keyboard() {
        let (mut world, data, view) = setup();
        world.with_view(view, |v, w| {
            let tv = v.as_any_mut().downcast_mut::<TableView>().unwrap();
            tv.sel = (0, 0);
            for c in "5".chars() {
                tv.key(w, Key::Char(c));
            }
            tv.key(w, Key::Return);
            tv.sel = (0, 1);
            for c in "=A1*2".chars() {
                tv.key(w, Key::Char(c));
            }
            tv.key(w, Key::Return);
        });
        assert_eq!(world.data::<TableData>(data).unwrap().value(0, 1), 10.0);
    }

    #[test]
    fn arrows_move_selection_and_clamp() {
        let (mut world, _, view) = setup();
        world.with_view(view, |v, w| {
            v.key(w, Key::Right);
            v.key(w, Key::Right);
            v.key(w, Key::Right); // Clamped at col 2.
            v.key(w, Key::Down);
        });
        assert_eq!(world.view_as::<TableView>(view).unwrap().sel, (1, 2));
        world.with_view(view, |v, w| {
            for _ in 0..9 {
                v.key(w, Key::Up);
            }
        });
        assert_eq!(world.view_as::<TableView>(view).unwrap().sel.0, 0);
    }

    #[test]
    fn cells_change_damages_subregion() {
        let (mut world, data, view) = setup();
        let rec =
            world
                .data_mut::<TableData>(data)
                .unwrap()
                .set_cell(2, 1, CellInput::Raw("7".into()));
        world.notify(data, rec);
        world.flush_notifications();
        let region = world.take_damage_region();
        let bb = region.bounding_box();
        let full = world.view_bounds(view);
        assert!(bb.area() < full.area() / 2, "damage {bb} vs {full}");
    }

    #[test]
    fn menu_commands_mutate_structure() {
        let (mut world, data, view) = setup();
        world.with_view(view, |v, w| {
            assert!(v.perform(w, "table-add-row"));
            assert!(v.perform(w, "table-add-col"));
        });
        let t = world.data::<TableData>(data).unwrap();
        assert_eq!((t.rows(), t.cols()), (5, 4));
    }
}
