//! Property tests for the band-parallel paint path: any recorded
//! command list — random primitives under random clip regions — must
//! rasterize byte-identically whether replayed serially or split
//! across any number of bands.

use std::sync::Arc;

use atk_graphics::{Color, FontDesc, Framebuffer, Point, RasterOp, Rect, Region};
use atk_wm::paint::{replay_parallel, replay_serial, DrawOp, PaintCmd};
use proptest::prelude::*;

fn arb_color() -> impl Strategy<Value = Color> {
    any::<u32>().prop_map(Color)
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (-20i32..180, -20i32..140, 1i32..90, 1i32..70).prop_map(|(x, y, w, h)| Rect::new(x, y, w, h))
}

fn arb_op() -> impl Strategy<Value = DrawOp> {
    prop_oneof![
        (
            arb_rect(),
            arb_color(),
            prop_oneof![Just(RasterOp::Copy), Just(RasterOp::Xor)]
        )
            .prop_map(|(r, color, rop)| DrawOp::FillRect { r, color, rop }),
        (arb_rect(), arb_color()).prop_map(|(r, color)| DrawOp::RectOutline { r, color }),
        (arb_rect(), arb_color(), any::<bool>()).prop_map(|(r, color, fill)| DrawOp::Oval {
            r,
            color,
            fill
        }),
        (
            (-20i32..180, -20i32..140),
            (-20i32..180, -20i32..140),
            1i32..4,
            arb_color(),
        )
            .prop_map(|((ax, ay), (bx, by), width, color)| DrawOp::Line {
                a: Point::new(ax, ay),
                b: Point::new(bx, by),
                width,
                color,
            }),
        (arb_rect(), 0i32..360, 1i32..360, arb_color()).prop_map(|(r, start, sweep, color)| {
            DrawOp::Wedge {
                r,
                start_deg: start as f64,
                end_deg: (start + sweep) as f64,
                color,
            }
        }),
        (
            proptest::collection::vec((-20i32..180, -20i32..140), 3..7),
            arb_color()
        )
            .prop_map(|(pts, color)| DrawOp::Polygon {
                pts: pts.into_iter().map(|(x, y)| Point::new(x, y)).collect(),
                color,
            }),
        ((-10i32..150, -10i32..120), "[a-z ]{1,12}", arb_color()).prop_map(
            |((x, y), text, color)| DrawOp::Text {
                origin: Point::new(x, y),
                text,
                font: FontDesc::default_body(),
                color,
            }
        ),
    ]
}

fn arb_clip() -> impl Strategy<Value = Option<Arc<Region>>> {
    prop_oneof![
        Just(None),
        proptest::collection::vec(arb_rect(), 1..4)
            .prop_map(|rects| Some(Arc::new(Region::from_rects(rects)))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn parallel_replay_is_byte_identical_to_serial(
        cmds in proptest::collection::vec((arb_clip(), arb_op()), 1..24),
        threads in 2usize..9,
    ) {
        let cmds: Vec<PaintCmd> = cmds
            .into_iter()
            .map(|(clip, op)| PaintCmd::new(clip, op))
            .collect();
        let mut serial = Framebuffer::new(160, 120, Color::WHITE);
        replay_serial(&mut serial, &cmds);
        let mut parallel = Framebuffer::new(160, 120, Color::WHITE);
        // Zero bands is legal: every command may clip away entirely.
        let bands = replay_parallel(&mut parallel, &cmds, threads);
        prop_assert!(bands <= threads);
        prop_assert_eq!(serial.pixels(), parallel.pixels());
    }
}
