//! Deferred paint commands and the parallel band replayer.
//!
//! After PR 2's region work the damage rectangles handed to an update
//! pass are disjoint by construction, so the rasterization of one frame
//! is embarrassingly parallel *by rows*: partition the painted extent
//! into horizontal bands, hand each band a disjoint mutable slice of
//! the framebuffer (via [`Framebuffer::bands_mut`], which uses
//! `split_at_mut` so the borrow checker proves disjointness), and replay
//! the same command list into every band on a scoped thread pool.
//!
//! Because bands implement the same [`Raster`] trait as the whole
//! framebuffer — differing only in the rows they accept writes to — the
//! banded replay is byte-identical to the serial one by construction.
//! The single-thread path stays reachable as the oracle reference via
//! [`set_parallel_paint`], the same ablation pattern as
//! `set_incremental_layout(false)` in the text layout engine.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use atk_graphics::font::GLYPH_ROWS;
use atk_graphics::{
    BitmapFont, Color, FontDesc, Framebuffer, Point, Raster, RasterOp, Rect, Region,
};

/// Global ablation switch for the parallel replay path (default on).
/// When off, backends fall back to immediate serial rasterization even
/// if a thread count was configured.
static PARALLEL_PAINT: AtomicBool = AtomicBool::new(true);

/// Enables or disables parallel band paint process-wide.
pub fn set_parallel_paint(enabled: bool) {
    PARALLEL_PAINT.store(enabled, Ordering::SeqCst);
}

/// True when parallel band paint is enabled (the default).
pub fn parallel_paint_enabled() -> bool {
    PARALLEL_PAINT.load(Ordering::SeqCst)
}

/// Counters accumulated by a recording backend across flushes; polled
/// by the interaction manager after each update pass and folded into
/// the `paint.*` stats.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PaintStats {
    /// Parallel flushes executed (command batches replayed on bands).
    pub flushes: u64,
    /// Total bands rasterized across all flushes.
    pub bands: u64,
    /// Wall-clock microseconds spent inside banded replay.
    pub par_us: u64,
    /// Operations that forced a serial fallback (self-copies, which
    /// read rows other bands may be writing).
    pub serial_fallbacks: u64,
}

impl PaintStats {
    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: PaintStats) {
        self.flushes += other.flushes;
        self.bands += other.bands;
        self.par_us += other.par_us;
        self.serial_fallbacks += other.serial_fallbacks;
    }
}

/// One recorded drawing operation, in device coordinates with all
/// graphics state already resolved.
#[derive(Debug, Clone)]
pub enum DrawOp {
    /// A line segment of the given thickness.
    Line {
        /// Start point.
        a: Point,
        /// End point.
        b: Point,
        /// Pen thickness.
        width: i32,
        /// Pen color.
        color: Color,
    },
    /// A 1-pixel rectangle outline.
    RectOutline {
        /// The rectangle.
        r: Rect,
        /// Pen color.
        color: Color,
    },
    /// A filled rectangle combined with the destination via `rop`.
    FillRect {
        /// The rectangle.
        r: Rect,
        /// Fill color.
        color: Color,
        /// Transfer op.
        rop: RasterOp,
    },
    /// The ellipse inscribed in `r`, outlined or filled.
    Oval {
        /// Bounding rectangle.
        r: Rect,
        /// Pen color.
        color: Color,
        /// Fill (true) or outline (false).
        fill: bool,
    },
    /// A filled polygon (even-odd rule).
    Polygon {
        /// Vertices in device coordinates.
        pts: Vec<Point>,
        /// Fill color.
        color: Color,
    },
    /// A pie wedge of the ellipse inscribed in `r`.
    Wedge {
        /// Bounding rectangle.
        r: Rect,
        /// Start angle, degrees clockwise from 12 o'clock.
        start_deg: f64,
        /// End angle.
        end_deg: f64,
        /// Fill color.
        color: Color,
    },
    /// Text with its top-left corner at `origin` (baseline draws are
    /// converted at record time).
    Text {
        /// Top-left corner.
        origin: Point,
        /// The string.
        text: String,
        /// Resolved font.
        font: FontDesc,
        /// Text color.
        color: Color,
    },
    /// A blit from pre-rendered bits.
    Blit {
        /// Source pixels (shared so the command list is `Send`).
        bits: Arc<Framebuffer>,
        /// Source rectangle within `bits`.
        src: Rect,
        /// Destination top-left.
        dst: Point,
        /// Transfer op.
        rop: RasterOp,
    },
}

/// A recorded command: a resolved [`DrawOp`] plus the clip in force and
/// a conservative vertical extent used to skip bands it cannot touch.
#[derive(Debug, Clone)]
pub struct PaintCmd {
    /// Device-space clip in force when the op was issued.
    pub clip: Option<Arc<Region>>,
    /// Inclusive lower bound on rows the op may write.
    pub y_lo: i32,
    /// Exclusive upper bound on rows the op may write.
    pub y_hi: i32,
    /// The operation.
    pub op: DrawOp,
}

impl PaintCmd {
    /// Builds a command, computing the conservative y-extent (clamped
    /// to the clip's bounding box when a clip is set).
    pub fn new(clip: Option<Arc<Region>>, op: DrawOp) -> PaintCmd {
        let (mut y_lo, mut y_hi) = y_extent(&op);
        if let Some(c) = &clip {
            let bb = c.bounding_box();
            y_lo = y_lo.max(bb.y);
            y_hi = y_hi.min(bb.bottom());
        }
        PaintCmd {
            clip,
            y_lo,
            y_hi,
            op,
        }
    }
}

/// Conservative half-open row range an op may write (before clipping).
fn y_extent(op: &DrawOp) -> (i32, i32) {
    match op {
        DrawOp::Line { a, b, width, .. } => {
            let w = (*width).max(1);
            (a.y.min(b.y) - w, a.y.max(b.y) + w + 1)
        }
        DrawOp::RectOutline { r, .. } | DrawOp::FillRect { r, .. } => (r.y, r.bottom()),
        // The scanline ellipse only emits rows inside `r`; pad one row
        // for the outline's connecting segments.
        DrawOp::Oval { r, .. } => (r.y - 1, r.bottom() + 1),
        DrawOp::Polygon { pts, .. } => {
            let lo = pts.iter().map(|p| p.y).min().unwrap_or(0);
            let hi = pts.iter().map(|p| p.y).max().unwrap_or(0);
            (lo, hi + 1)
        }
        // Wedge vertices are rounded points on the ellipse; pad for the
        // rounding.
        DrawOp::Wedge { r, .. } => (r.y - 1, r.bottom() + 2),
        DrawOp::Text { origin, font, .. } => {
            // Glyph rows span GLYPH_ROWS * scale; an underline adds up
            // to two more scaled rows below.
            let s = font.scale();
            (origin.y, origin.y + (GLYPH_ROWS + 2) * s + 1)
        }
        DrawOp::Blit { src, dst, .. } => (dst.y, dst.y + src.height.max(0)),
    }
}

/// Replays one op into any [`Raster`] surface. This is the single code
/// path both serial and banded replay go through, which is what makes
/// them byte-identical by construction.
fn apply<R: Raster>(t: &mut R, op: &DrawOp) {
    match op {
        DrawOp::Line { a, b, width, color } => t.draw_line(*a, *b, *width, *color),
        DrawOp::RectOutline { r, color } => t.draw_rect(*r, *color),
        DrawOp::FillRect { r, color, rop } => t.fill_rect_op(*r, *color, *rop),
        DrawOp::Oval { r, color, fill } => {
            if *fill {
                t.fill_oval(*r, *color);
            } else {
                t.draw_oval(*r, *color);
            }
        }
        DrawOp::Polygon { pts, color } => t.fill_polygon(pts, *color),
        DrawOp::Wedge {
            r,
            start_deg,
            end_deg,
            color,
        } => t.fill_wedge(*r, *start_deg, *end_deg, *color),
        DrawOp::Text {
            origin,
            text,
            font,
            color,
        } => {
            BitmapFont::draw(t, *origin, text, font, *color);
        }
        DrawOp::Blit {
            bits,
            src,
            dst,
            rop,
        } => t.blit(bits, *src, *dst, *rop),
    }
}

/// Replays a command list serially into the whole framebuffer — the
/// oracle reference path.
pub fn replay_serial(fb: &mut Framebuffer, cmds: &[PaintCmd]) {
    for cmd in cmds {
        fb.set_clip(cmd.clip.as_deref().cloned());
        apply(fb, &cmd.op);
    }
    fb.set_clip(None);
}

/// Replays a command list into up to `threads` disjoint horizontal
/// bands on a scoped thread pool. Returns the number of bands actually
/// rasterized (0 when the extent is empty, 1 when it degenerates to a
/// single band — in which case the replay runs on the calling thread).
pub fn replay_parallel(fb: &mut Framebuffer, cmds: &[PaintCmd], threads: usize) -> usize {
    if cmds.is_empty() {
        return 0;
    }
    let mut lo = i32::MAX;
    let mut hi = i32::MIN;
    for cmd in cmds {
        lo = lo.min(cmd.y_lo);
        hi = hi.max(cmd.y_hi);
    }
    let mut bands = fb.bands_mut(lo, hi, threads.max(1));
    let n = bands.len();
    match n {
        0 => {}
        1 => replay_band(&mut bands[0], cmds),
        _ => {
            thread::scope(|scope| {
                for band in &mut bands {
                    scope.spawn(|| replay_band(band, cmds));
                }
            });
        }
    }
    n
}

/// Replays the same banded partition as [`replay_parallel`], but runs
/// the bands sequentially on the calling thread and returns each band's
/// rasterization cost in microseconds. The pixels produced are
/// byte-identical to both other replay paths.
///
/// This is the measurement harness for the partition itself:
/// `serial_time / max(costs)` is the critical-path speedup a fully
/// parallel replay approaches as cores become available. E14 reports it
/// on hosts with fewer cores than bands, where wall-clock would only
/// measure the scheduler time-slicing one core.
pub fn replay_bands_timed(fb: &mut Framebuffer, cmds: &[PaintCmd], threads: usize) -> Vec<u64> {
    if cmds.is_empty() {
        return Vec::new();
    }
    let mut lo = i32::MAX;
    let mut hi = i32::MIN;
    for cmd in cmds {
        lo = lo.min(cmd.y_lo);
        hi = hi.max(cmd.y_hi);
    }
    let mut bands = fb.bands_mut(lo, hi, threads.max(1));
    let mut costs = Vec::with_capacity(bands.len());
    for band in &mut bands {
        let t0 = std::time::Instant::now();
        replay_band(band, cmds);
        costs.push(t0.elapsed().as_micros() as u64);
    }
    costs
}

/// Replays the commands that can touch `band`'s rows.
fn replay_band(band: &mut atk_graphics::FbBand<'_>, cmds: &[PaintCmd]) {
    let (y0, y1) = band.y_range();
    for cmd in cmds {
        if cmd.y_hi <= y0 || cmd.y_lo >= y1 {
            continue;
        }
        band.set_clip_shared(cmd.clip.clone());
        apply(band, &cmd.op);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atk_graphics::FontStyle;

    fn sample_cmds() -> Vec<PaintCmd> {
        let clip = Some(Arc::new(Region::from_rect(Rect::new(0, 0, 200, 150))));
        let mut off = Framebuffer::new(16, 16, Color::BLACK);
        Raster::fill_rect(&mut off, Rect::new(4, 4, 8, 8), Color::RED);
        vec![
            PaintCmd::new(
                None,
                DrawOp::FillRect {
                    r: Rect::new(0, 0, 200, 150),
                    color: Color::WHITE,
                    rop: RasterOp::Copy,
                },
            ),
            PaintCmd::new(
                clip.clone(),
                DrawOp::Line {
                    a: Point::new(3, 140),
                    b: Point::new(190, 5),
                    width: 3,
                    color: Color::BLACK,
                },
            ),
            PaintCmd::new(
                clip.clone(),
                DrawOp::Oval {
                    r: Rect::new(20, 30, 90, 70),
                    color: Color::BLUE,
                    fill: true,
                },
            ),
            PaintCmd::new(
                clip.clone(),
                DrawOp::Wedge {
                    r: Rect::new(100, 60, 60, 60),
                    start_deg: 20.0,
                    end_deg: 240.0,
                    color: Color::DARK_GRAY,
                },
            ),
            PaintCmd::new(
                clip.clone(),
                DrawOp::Polygon {
                    pts: vec![
                        Point::new(10, 100),
                        Point::new(60, 120),
                        Point::new(35, 145),
                    ],
                    color: Color::RED,
                },
            ),
            PaintCmd::new(
                clip.clone(),
                DrawOp::Text {
                    origin: Point::new(8, 8),
                    text: "parallel bands".to_string(),
                    font: FontDesc::new("andy", FontStyle::BOLD, 12),
                    color: Color::BLACK,
                },
            ),
            PaintCmd::new(
                clip,
                DrawOp::Blit {
                    bits: Arc::new(off),
                    src: Rect::new(0, 0, 16, 16),
                    dst: Point::new(170, 120),
                    rop: RasterOp::Copy,
                },
            ),
        ]
    }

    #[test]
    fn parallel_replay_matches_serial_replay() {
        let cmds = sample_cmds();
        let mut serial = Framebuffer::new(200, 150, Color::WHITE);
        replay_serial(&mut serial, &cmds);
        for threads in [1, 2, 3, 4, 8, 64] {
            let mut par = Framebuffer::new(200, 150, Color::WHITE);
            let bands = replay_parallel(&mut par, &cmds, threads);
            assert_eq!(par, serial, "threads={threads} bands={bands}");
        }
    }

    #[test]
    fn timed_banded_replay_matches_serial_replay() {
        let cmds = sample_cmds();
        let mut serial = Framebuffer::new(200, 150, Color::WHITE);
        replay_serial(&mut serial, &cmds);
        let mut timed = Framebuffer::new(200, 150, Color::WHITE);
        let costs = replay_bands_timed(&mut timed, &cmds, 4);
        assert!(costs.len() <= 4 && !costs.is_empty());
        assert_eq!(timed, serial);
    }

    #[test]
    fn banded_replay_honors_narrow_clips() {
        // A clip far from a command's natural extent: the extent clamp
        // must not lose pixels the clip admits.
        let clip = Some(Arc::new(Region::from_rect(Rect::new(0, 40, 100, 10))));
        let cmds = vec![PaintCmd::new(
            clip,
            DrawOp::FillRect {
                r: Rect::new(0, 0, 100, 100),
                color: Color::BLACK,
                rop: RasterOp::Copy,
            },
        )];
        let mut serial = Framebuffer::new(100, 100, Color::WHITE);
        replay_serial(&mut serial, &cmds);
        let mut par = Framebuffer::new(100, 100, Color::WHITE);
        replay_parallel(&mut par, &cmds, 4);
        assert_eq!(par, serial);
        assert_eq!(serial.count_pixels(serial.bounds(), Color::BLACK), 1000);
    }

    #[test]
    fn empty_extent_rasterizes_no_bands() {
        let cmds = vec![PaintCmd::new(
            None,
            DrawOp::FillRect {
                r: Rect::new(0, -50, 100, 10),
                color: Color::BLACK,
                rop: RasterOp::Copy,
            },
        )];
        let mut fb = Framebuffer::new(100, 100, Color::WHITE);
        assert_eq!(replay_parallel(&mut fb, &cmds, 4), 0);
        assert_eq!(fb.count_pixels(fb.bounds(), Color::BLACK), 0);
    }

    #[test]
    fn ablation_flag_round_trips() {
        assert!(parallel_paint_enabled());
        set_parallel_paint(false);
        assert!(!parallel_paint_enabled());
        set_parallel_paint(true);
        assert!(parallel_paint_enabled());
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = PaintStats {
            flushes: 1,
            bands: 4,
            par_us: 10,
            serial_fallbacks: 0,
        };
        a.merge(PaintStats {
            flushes: 2,
            bands: 8,
            par_us: 5,
            serial_fallbacks: 1,
        });
        assert_eq!(
            a,
            PaintStats {
                flushes: 3,
                bands: 12,
                par_us: 15,
                serial_fallbacks: 1,
            }
        );
    }
}
