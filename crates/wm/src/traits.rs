//! The six porting classes (paper §8), as Rust traits.
//!
//! To bring the toolkit up on a new window system, implement
//! [`WindowSystem`], [`Window`], [`Graphic`], and [`OffscreenWindow`]
//! (plus the cursor and font-driver hooks those traits carry). The
//! [`surface`](crate::surface) module records the exact routine list and
//! its size.

use atk_graphics::{
    Color, FontDesc, FontMetrics, Framebuffer, Point, RasterOp, Rect, Region, Size,
};

use crate::event::WindowEvent;
use crate::paint::PaintStats;

/// Stock cursor shapes (paper §8: "this class provides an interface to
/// defining cursors on the underlying window system").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum CursorShape {
    /// The default pointer.
    #[default]
    Arrow,
    /// Text insertion bar.
    IBeam,
    /// Precision crosshair (drawing editor).
    Crosshair,
    /// Busy indicator (dynamic loading in progress!).
    Wait,
    /// Horizontal drag (the frame's divider line).
    HorizontalDrag,
    /// Vertical drag.
    VerticalDrag,
    /// Link/hand pointer (help system references).
    Hand,
}

/// A backend-defined cursor, returned by [`WindowSystem::define_cursor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CursorHandle {
    /// The shape this handle was defined with.
    pub shape: CursorShape,
    /// Backend-assigned identifier.
    pub id: u32,
}

/// Font resolution service; both bundled backends rasterize through the
/// shared [`atk_graphics::BitmapFont`], but a port to a real server would map
/// [`FontDesc`]s to server fonts here.
pub trait FontDriver {
    /// Metrics for a descriptor.
    fn metrics(&self, desc: &FontDesc) -> FontMetrics;
    /// Advance width of `s` in the described font.
    fn string_width(&self, desc: &FontDesc, s: &str) -> i32;
    /// Advance width of a single character.
    fn char_width(&self, desc: &FontDesc, ch: char) -> i32;
}

/// The default font driver over the built-in bitmap font.
#[derive(Debug, Default, Clone, Copy)]
pub struct BuiltinFontDriver;

impl FontDriver for BuiltinFontDriver {
    fn metrics(&self, desc: &FontDesc) -> FontMetrics {
        desc.metrics()
    }
    fn string_width(&self, desc: &FontDesc, s: &str) -> i32 {
        desc.string_width(s)
    }
    fn char_width(&self, desc: &FontDesc, ch: char) -> i32 {
        desc.char_width(ch)
    }
}

/// Class 1 of 6 — the handle on everything else.
///
/// "This class exists to allow the toolkit to get a handle on the other
/// window system classes."
pub trait WindowSystem {
    /// Backend name (`"x11sim"` or `"awmsim"`).
    fn name(&self) -> &str;
    /// Opens a top-level window.
    fn open_window(&mut self, title: &str, size: Size) -> Box<dyn Window>;
    /// Opens an off-screen drawable.
    fn open_offscreen(&mut self, size: Size) -> Box<dyn OffscreenWindow>;
    /// Defines a cursor for later use with [`Window::set_cursor`].
    fn define_cursor(&mut self, shape: CursorShape) -> CursorHandle;
    /// The backend's font service.
    fn font_driver(&self) -> &dyn FontDriver;
}

/// Class 2 of 6 — a top-level window: event source and drawable owner.
///
/// This is the window-system half of the paper's *interaction manager*:
/// it yields translated input events and owns the [`Graphic`] the view
/// tree draws through.
pub trait Window {
    /// Current size.
    fn size(&self) -> Size;
    /// Resizes the window (posts a `Resize` event).
    fn resize(&mut self, size: Size);
    /// Window title.
    fn title(&self) -> &str;
    /// Changes the title bar.
    fn set_title(&mut self, title: &str);
    /// The drawable for this window.
    fn graphic(&mut self) -> &mut dyn Graphic;
    /// Sets the displayed cursor.
    fn set_cursor(&mut self, cursor: CursorHandle);
    /// The displayed cursor.
    fn cursor(&self) -> CursorHandle;
    /// Injects an event (synthetic input, used by scripts and tests).
    fn post_event(&mut self, event: WindowEvent);
    /// Dequeues the next pending event.
    fn next_event(&mut self) -> Option<WindowEvent>;
    /// Renders the current contents to pixels, if the backend can.
    fn snapshot(&self) -> Option<Framebuffer>;
    /// Number of drawing operations performed (instrumentation for the
    /// window-system-independence benchmarks).
    fn op_count(&self) -> u64;

    // --- Parallel paint hooks (default: serial immediate mode) ----------

    /// Requests that update passes rasterize on up to `threads` banded
    /// worker threads. Backends without a banded path ignore this.
    fn set_paint_threads(&mut self, _threads: usize) {}

    /// Configured rasterizer thread count (1 = serial immediate mode).
    fn paint_threads(&self) -> usize {
        1
    }

    /// Drains the paint counters accumulated since the last call.
    fn take_paint_stats(&mut self) -> PaintStats {
        PaintStats::default()
    }

    /// Runs `f` over a borrow of the current frame pixels without
    /// cloning, flushing any buffered drawing first. Returns false when
    /// the backend cannot expose its frame by reference (callers fall
    /// back to [`Window::snapshot`]).
    fn with_frame(&self, _f: &mut dyn FnMut(&Framebuffer)) -> bool {
        false
    }

    /// Replaces the window's contents with `frame` wholesale — the
    /// session-fork fast path. `frame` must match the window's size.
    /// Backends that own a pixel store copy row-wise into the buffer
    /// they already allocated (no per-pixel work, no fresh
    /// allocation); this default falls back to one blit through the
    /// drawable, which is a single recorded op for display-list
    /// backends.
    fn adopt_frame(&mut self, frame: &Framebuffer) {
        let g = self.graphic();
        g.bitblt(frame, frame.bounds(), Point::ORIGIN);
        g.flush();
    }
}

/// Class 6 of 6 — an off-screen drawable whose contents "can be later
/// included on screen".
pub trait OffscreenWindow {
    /// Size of the off-screen plane.
    fn size(&self) -> Size;
    /// The drawable for rendering into the plane.
    fn graphic(&mut self) -> &mut dyn Graphic;
    /// The rendered bits.
    fn bits(&self) -> Framebuffer;
}

/// Classes 3–5 of 6 — the drawable: the output interface every view draws
/// through (paper §4).
///
/// "A drawable contains information about the underlying graphics medium
/// … the window to draw in, the location of the drawable in that window,
/// a small graphics state (e.g. current point, line thickness, current
/// font), the coordinate system for the drawable."
///
/// Methods with default bodies are the derived conveniences the toolkit
/// layered over the primitive set; a port only implements the primitives.
pub trait Graphic {
    // --- Graphics state -------------------------------------------------

    /// Sets the drawing (foreground) color.
    fn set_foreground(&mut self, color: Color);
    /// Current foreground color.
    fn foreground(&self) -> Color;
    /// Sets the background color (used by [`Graphic::clear_rect`]).
    fn set_background(&mut self, color: Color);
    /// Current background color.
    fn background(&self) -> Color;
    /// Sets the pen thickness for line drawing.
    fn set_line_width(&mut self, width: i32);
    /// Current pen thickness.
    fn line_width(&self) -> i32;
    /// Sets the current font.
    fn set_font(&mut self, font: FontDesc);
    /// Current font.
    fn font(&self) -> &FontDesc;
    /// Sets the transfer (raster) op for subsequent painting.
    fn set_raster_op(&mut self, op: RasterOp);
    /// Current transfer op.
    fn raster_op(&self) -> RasterOp;

    // --- Coordinate system and clipping ----------------------------------

    /// Pushes the coordinate/clip/graphics state.
    fn gsave(&mut self);
    /// Pops the state pushed by the matching [`Graphic::gsave`].
    fn grestore(&mut self);
    /// Moves the local origin by `(dx, dy)`.
    fn translate(&mut self, dx: i32, dy: i32);
    /// Intersects the clip with `r` (local coordinates).
    fn clip_rect(&mut self, r: Rect);
    /// Intersects the clip with a region (local coordinates).
    fn clip_region(&mut self, region: &Region);
    /// Bounding box of the current clip, in local coordinates.
    fn clip_bounds(&self) -> Rect;

    // --- Pen ------------------------------------------------------------

    /// Sets the current point.
    fn move_to(&mut self, p: Point);
    /// Draws from the current point to `p` and moves there.
    fn line_to(&mut self, p: Point);
    /// The current point.
    fn current_point(&self) -> Point;

    // --- Primitives -----------------------------------------------------

    /// Draws a line segment with the current pen.
    fn draw_line(&mut self, a: Point, b: Point);
    /// Outlines a rectangle.
    fn draw_rect(&mut self, r: Rect);
    /// Fills a rectangle with the foreground.
    fn fill_rect(&mut self, r: Rect);
    /// Fills a rectangle with the background.
    fn clear_rect(&mut self, r: Rect);
    /// Outlines the ellipse inscribed in `r`.
    fn draw_oval(&mut self, r: Rect);
    /// Fills the ellipse inscribed in `r`.
    fn fill_oval(&mut self, r: Rect);
    /// Fills a polygon (even-odd rule).
    fn fill_polygon(&mut self, pts: &[Point]);
    /// Fills a pie wedge of the ellipse in `r` from `start_deg` to
    /// `end_deg`, clockwise from 12 o'clock.
    fn fill_wedge(&mut self, r: Rect, start_deg: f64, end_deg: f64);
    /// Draws text with its top-left corner at `p` in the current font.
    fn draw_string(&mut self, p: Point, s: &str);
    /// Draws text with its baseline at `p.y`.
    fn draw_string_baseline(&mut self, p: Point, s: &str);
    /// Copies pre-rendered bits (an off-screen plane or raster image).
    fn bitblt(&mut self, bits: &Framebuffer, src: Rect, dst: Point);
    /// Copies a rectangle of the drawable onto itself (scrolling).
    fn copy_area(&mut self, src: Rect, dst: Point);
    /// Ensures all drawing has reached the medium.
    fn flush(&mut self);

    // --- Queries ---------------------------------------------------------

    /// Advance width of `s` in the current font.
    fn string_width(&self, s: &str) -> i32;
    /// Metrics of the current font.
    fn font_metrics(&self) -> FontMetrics;

    // --- Derived conveniences (default implementations) -------------------

    /// Draws `s` horizontally centered in `r`, baseline-aligned.
    fn draw_string_centered(&mut self, r: Rect, s: &str) {
        let w = self.string_width(s);
        let m = self.font_metrics();
        let x = r.x + (r.width - w) / 2;
        let y = r.y + (r.height - m.ascent - m.descent) / 2 + m.ascent;
        self.draw_string_baseline(Point::new(x, y), s);
    }

    /// Draws `s` right-aligned against `r`'s right edge.
    fn draw_string_right(&mut self, r: Rect, s: &str) {
        let w = self.string_width(s);
        let m = self.font_metrics();
        let y = r.y + (r.height - m.ascent - m.descent) / 2 + m.ascent;
        self.draw_string_baseline(Point::new(r.right() - w - 2, y), s);
    }

    /// Outlines `r` with a double line, the classic Andrew border.
    fn draw_border(&mut self, r: Rect) {
        self.draw_rect(r);
        self.draw_rect(r.inset(2));
    }

    /// Draws a raised or sunken 3D bezel (buttons, scrollbar thumbs).
    fn draw_bezel(&mut self, r: Rect, raised: bool) {
        let saved = self.foreground();
        let (tl, br) = if raised {
            (Color::WHITE, Color::DARK_GRAY)
        } else {
            (Color::DARK_GRAY, Color::WHITE)
        };
        self.set_foreground(tl);
        self.draw_line(Point::new(r.x, r.bottom() - 1), Point::new(r.x, r.y));
        self.draw_line(Point::new(r.x, r.y), Point::new(r.right() - 1, r.y));
        self.set_foreground(br);
        self.draw_line(
            Point::new(r.right() - 1, r.y + 1),
            Point::new(r.right() - 1, r.bottom() - 1),
        );
        self.draw_line(
            Point::new(r.x + 1, r.bottom() - 1),
            Point::new(r.right() - 1, r.bottom() - 1),
        );
        self.set_foreground(saved);
    }

    /// Inverts a rectangle (XOR with white) — selection feedback.
    fn invert_rect(&mut self, r: Rect) {
        let saved_op = self.raster_op();
        let saved_fg = self.foreground();
        self.set_raster_op(RasterOp::Xor);
        self.set_foreground(Color::WHITE);
        self.fill_rect(r);
        self.set_raster_op(saved_op);
        self.set_foreground(saved_fg);
    }

    /// Draws a dashed horizontal line (the frame's divider).
    fn draw_hline_dashed(&mut self, y: i32, x0: i32, x1: i32, dash: i32) {
        let dash = dash.max(1);
        let mut x = x0;
        while x < x1 {
            let seg_end = (x + dash).min(x1);
            self.draw_line(Point::new(x, y), Point::new(seg_end - 1, y));
            x += 2 * dash;
        }
    }
}

/// Shared bookkeeping for [`Graphic`] implementations: the coordinate
/// origin, the clip (kept in *device* coordinates), and the small graphics
/// state, with a save/restore stack.
///
/// Both bundled backends embed one of these so their ~50 primitive
/// methods really are "simple transformations" as the paper promises.
#[derive(Debug, Clone)]
pub struct GraphicState {
    /// Local-to-device translation.
    pub origin: Point,
    /// Clip in device coordinates (`None` = whole drawable).
    pub clip: Option<Region>,
    /// Foreground color.
    pub fg: Color,
    /// Background color.
    pub bg: Color,
    /// Pen thickness.
    pub line_width: i32,
    /// Current font.
    pub font: FontDesc,
    /// Transfer op.
    pub rop: RasterOp,
    /// Pen position (local coordinates).
    pub pen: Point,
    stack: Vec<SavedState>,
}

#[derive(Debug, Clone)]
struct SavedState {
    origin: Point,
    clip: Option<Region>,
    fg: Color,
    bg: Color,
    line_width: i32,
    font: FontDesc,
    rop: RasterOp,
    pen: Point,
}

impl GraphicState {
    /// A fresh state: origin at the device origin, no clip, black on
    /// white, hairline pen, default body font.
    pub fn new() -> GraphicState {
        GraphicState {
            origin: Point::ORIGIN,
            clip: None,
            fg: Color::BLACK,
            bg: Color::WHITE,
            line_width: 1,
            font: FontDesc::default_body(),
            rop: RasterOp::Copy,
            pen: Point::ORIGIN,
            stack: Vec::new(),
        }
    }

    /// Converts a local point to device coordinates.
    pub fn to_device(&self, p: Point) -> Point {
        p + self.origin
    }

    /// Converts a local rect to device coordinates.
    pub fn rect_to_device(&self, r: Rect) -> Rect {
        r.translate(self.origin.x, self.origin.y)
    }

    /// Pushes the full state.
    pub fn save(&mut self) {
        self.stack.push(SavedState {
            origin: self.origin,
            clip: self.clip.clone(),
            fg: self.fg,
            bg: self.bg,
            line_width: self.line_width,
            font: self.font.clone(),
            rop: self.rop,
            pen: self.pen,
        });
    }

    /// Pops the most recent save; does nothing on an empty stack.
    pub fn restore(&mut self) {
        if let Some(s) = self.stack.pop() {
            self.origin = s.origin;
            self.clip = s.clip;
            self.fg = s.fg;
            self.bg = s.bg;
            self.line_width = s.line_width;
            self.font = s.font;
            self.rop = s.rop;
            self.pen = s.pen;
        }
    }

    /// Moves the local origin.
    pub fn translate(&mut self, dx: i32, dy: i32) {
        self.origin += Point::new(dx, dy);
    }

    /// Intersects the clip with a local-coordinate rect.
    pub fn clip_rect(&mut self, r: Rect) {
        let dev = Region::from_rect(self.rect_to_device(r));
        self.clip = Some(match self.clip.take() {
            Some(c) => c.intersect(&dev),
            None => dev,
        });
    }

    /// Intersects the clip with a local-coordinate region.
    pub fn clip_region(&mut self, region: &Region) {
        let dev = region.translate(self.origin.x, self.origin.y);
        self.clip = Some(match self.clip.take() {
            Some(c) => c.intersect(&dev),
            None => dev,
        });
    }

    /// Bounding box of the clip in local coordinates (or `whole` if no
    /// clip is set).
    pub fn clip_bounds_local(&self, whole: Rect) -> Rect {
        match &self.clip {
            Some(region) => region
                .bounding_box()
                .translate(-self.origin.x, -self.origin.y),
            None => whole.translate(-self.origin.x, -self.origin.y),
        }
    }
}

impl Default for GraphicState {
    fn default() -> Self {
        GraphicState::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_restore_round_trips_everything() {
        let mut st = GraphicState::new();
        st.save();
        st.translate(10, 20);
        st.fg = Color::RED;
        st.line_width = 5;
        st.clip_rect(Rect::new(0, 0, 4, 4));
        st.pen = Point::new(7, 7);
        st.restore();
        assert_eq!(st.origin, Point::ORIGIN);
        assert_eq!(st.fg, Color::BLACK);
        assert_eq!(st.line_width, 1);
        assert!(st.clip.is_none());
        assert_eq!(st.pen, Point::ORIGIN);
    }

    #[test]
    fn nested_translate_compounds() {
        let mut st = GraphicState::new();
        st.translate(5, 5);
        st.save();
        st.translate(10, 0);
        assert_eq!(st.to_device(Point::ORIGIN), Point::new(15, 5));
        st.restore();
        assert_eq!(st.to_device(Point::ORIGIN), Point::new(5, 5));
    }

    #[test]
    fn clip_intersects_in_device_space() {
        let mut st = GraphicState::new();
        st.clip_rect(Rect::new(0, 0, 10, 10));
        st.translate(5, 5);
        st.clip_rect(Rect::new(0, 0, 10, 10)); // Device: 5,5,10,10.
        let clip = st.clip.clone().unwrap();
        assert_eq!(clip.bounding_box(), Rect::new(5, 5, 5, 5));
        assert_eq!(
            st.clip_bounds_local(Rect::new(0, 0, 100, 100)),
            Rect::new(0, 0, 5, 5)
        );
    }

    #[test]
    fn restore_on_empty_stack_is_noop() {
        let mut st = GraphicState::new();
        st.translate(3, 3);
        st.restore();
        assert_eq!(st.origin, Point::new(3, 3));
    }
}
