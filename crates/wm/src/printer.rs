//! The printer drawable (paper §4).
//!
//! "Separating the view and the drawable will allow us to provide a
//! simple default printing mechanism. When a view receives a print
//! request for a specific type of printer it can temporarily shift its
//! pointer to a drawable for that printer type and do a redraw of its
//! image."
//!
//! [`PostScriptGraphic`] implements the full [`Graphic`] trait and emits a
//! small PostScript program; pointing any view at it and calling the
//! view's normal draw path produces a printable page with **zero** changes
//! to the view — which is the claim being reproduced.

use atk_graphics::{Color, FontDesc, FontMetrics, Framebuffer, Point, RasterOp, Rect, Region};

use crate::traits::{Graphic, GraphicState};

/// Renders a virtual-clock offset as `HH:MM:SS.mmm` for the page header.
fn format_clock(ms: u64) -> String {
    let (s, milli) = (ms / 1000, ms % 1000);
    let (m, sec) = (s / 60, s % 60);
    let (h, min) = (m / 60, m % 60);
    format!("{h:02}:{min:02}:{sec:02}.{milli:03}")
}

/// A drawable that renders to PostScript source.
pub struct PostScriptGraphic {
    st: GraphicState,
    page: Rect,
    body: String,
    ops: u64,
    clock_ms: u64,
}

impl PostScriptGraphic {
    /// Creates a printer drawable for a page of `width`×`height` points.
    pub fn new(width: i32, height: i32) -> PostScriptGraphic {
        PostScriptGraphic {
            st: GraphicState::new(),
            page: Rect::new(0, 0, width, height),
            body: String::new(),
            ops: 0,
            clock_ms: 0,
        }
    }

    /// Sets the creation timestamp stamped into the page header, in
    /// milliseconds of the toolkit's *virtual* clock. Printing must stay
    /// deterministic (the golden print tests diff the whole document),
    /// so the header never reads the wall clock — whoever repoints a
    /// view at this drawable passes `World::now_ms()` instead.
    pub fn set_clock_ms(&mut self, ms: u64) {
        self.clock_ms = ms;
    }

    /// The complete PostScript program for what has been drawn.
    pub fn document(&self) -> String {
        format!(
            "%!PS-Adobe-2.0\n%%Creator: atk-wm printer drawable\n\
             %%CreationDate: (T+{} toolkit clock)\n%%Pages: 1\n\
             %%BoundingBox: 0 0 {} {}\n%%Page: 1 1\n/y {{ {} exch sub }} def\n{}showpage\n",
            format_clock(self.clock_ms),
            self.page.width,
            self.page.height,
            self.page.height,
            self.body
        )
    }

    /// Number of drawing operations emitted.
    pub fn op_count(&self) -> u64 {
        self.ops
    }

    fn set_color(&mut self) {
        let c = self.st.fg;
        self.body.push_str(&format!(
            "{:.3} {:.3} {:.3} setrgbcolor\n",
            c.r() as f32 / 255.0,
            c.g() as f32 / 255.0,
            c.b() as f32 / 255.0
        ));
    }

    fn dev(&self, p: Point) -> Point {
        self.st.to_device(p)
    }

    fn emit_rect_path(&mut self, r: Rect) {
        let d = self.st.rect_to_device(r);
        self.body.push_str(&format!(
            "newpath {} {} y moveto {} {} y lineto {} {} y lineto {} {} y lineto closepath\n",
            d.x,
            d.y,
            d.right(),
            d.y,
            d.right(),
            d.bottom(),
            d.x,
            d.bottom()
        ));
    }
}

impl Graphic for PostScriptGraphic {
    fn set_foreground(&mut self, color: Color) {
        self.st.fg = color;
    }
    fn foreground(&self) -> Color {
        self.st.fg
    }
    fn set_background(&mut self, color: Color) {
        self.st.bg = color;
    }
    fn background(&self) -> Color {
        self.st.bg
    }
    fn set_line_width(&mut self, width: i32) {
        self.st.line_width = width.max(1);
    }
    fn line_width(&self) -> i32 {
        self.st.line_width
    }
    fn set_font(&mut self, font: FontDesc) {
        self.st.font = font;
    }
    fn font(&self) -> &FontDesc {
        &self.st.font
    }
    fn set_raster_op(&mut self, op: RasterOp) {
        self.st.rop = op;
    }
    fn raster_op(&self) -> RasterOp {
        self.st.rop
    }

    fn gsave(&mut self) {
        self.st.save();
        self.body.push_str("gsave\n");
    }
    fn grestore(&mut self) {
        self.st.restore();
        self.body.push_str("grestore\n");
    }
    fn translate(&mut self, dx: i32, dy: i32) {
        self.st.translate(dx, dy);
    }
    fn clip_rect(&mut self, r: Rect) {
        self.st.clip_rect(r);
        self.emit_rect_path(r);
        self.body.push_str("clip\n");
    }
    fn clip_region(&mut self, region: &Region) {
        self.st.clip_region(region);
    }
    fn clip_bounds(&self) -> Rect {
        self.st.clip_bounds_local(self.page)
    }

    fn move_to(&mut self, p: Point) {
        self.st.pen = p;
    }
    fn line_to(&mut self, p: Point) {
        let from = self.st.pen;
        self.draw_line(from, p);
        self.st.pen = p;
    }
    fn current_point(&self) -> Point {
        self.st.pen
    }

    fn draw_line(&mut self, a: Point, b: Point) {
        self.ops += 1;
        self.set_color();
        let (da, db) = (self.dev(a), self.dev(b));
        self.body.push_str(&format!(
            "{} setlinewidth newpath {} {} y moveto {} {} y lineto stroke\n",
            self.st.line_width, da.x, da.y, db.x, db.y
        ));
    }

    fn draw_rect(&mut self, r: Rect) {
        self.ops += 1;
        self.set_color();
        self.emit_rect_path(r);
        self.body.push_str("1 setlinewidth stroke\n");
    }

    fn fill_rect(&mut self, r: Rect) {
        self.ops += 1;
        self.set_color();
        self.emit_rect_path(r);
        self.body.push_str("fill\n");
    }

    fn clear_rect(&mut self, r: Rect) {
        self.ops += 1;
        let saved = self.st.fg;
        self.st.fg = self.st.bg;
        self.set_color();
        self.emit_rect_path(r);
        self.body.push_str("fill\n");
        self.st.fg = saved;
    }

    fn draw_oval(&mut self, r: Rect) {
        self.ops += 1;
        self.set_color();
        let d = self.st.rect_to_device(r);
        let c = d.center();
        self.body.push_str(&format!(
            "newpath {} {} y {} {} 0 360 ellipsepath stroke\n",
            c.x,
            c.y,
            d.width / 2,
            d.height / 2
        ));
    }

    fn fill_oval(&mut self, r: Rect) {
        self.ops += 1;
        self.set_color();
        let d = self.st.rect_to_device(r);
        let c = d.center();
        self.body.push_str(&format!(
            "newpath {} {} y {} {} 0 360 ellipsepath fill\n",
            c.x,
            c.y,
            d.width / 2,
            d.height / 2
        ));
    }

    fn fill_polygon(&mut self, pts: &[Point]) {
        if pts.is_empty() {
            return;
        }
        self.ops += 1;
        self.set_color();
        let first = self.dev(pts[0]);
        self.body
            .push_str(&format!("newpath {} {} y moveto\n", first.x, first.y));
        for p in &pts[1..] {
            let d = self.dev(*p);
            self.body.push_str(&format!("{} {} y lineto\n", d.x, d.y));
        }
        self.body.push_str("closepath fill\n");
    }

    fn fill_wedge(&mut self, r: Rect, start_deg: f64, end_deg: f64) {
        self.ops += 1;
        self.set_color();
        let d = self.st.rect_to_device(r);
        let c = d.center();
        // PostScript arc angles are counterclockwise from 3 o'clock; ours
        // are clockwise from 12 o'clock.
        let a0 = 90.0 - end_deg;
        let a1 = 90.0 - start_deg;
        self.body.push_str(&format!(
            "newpath {} {} y moveto {} {} y {} {a0:.1} {a1:.1} arc closepath fill\n",
            c.x,
            c.y,
            c.x,
            c.y,
            d.width / 2
        ));
    }

    fn draw_string(&mut self, p: Point, s: &str) {
        let m = self.st.font.metrics();
        self.draw_string_baseline(Point::new(p.x, p.y + m.ascent), s);
    }

    fn draw_string_baseline(&mut self, p: Point, s: &str) {
        self.ops += 1;
        self.set_color();
        let d = self.dev(p);
        let escaped = s
            .replace('\\', "\\\\")
            .replace('(', "\\(")
            .replace(')', "\\)");
        let ps_size = self.st.font.size.max(6);
        let face = if self.st.font.style.bold {
            "/Helvetica-Bold"
        } else if self.st.font.style.italic {
            "/Helvetica-Oblique"
        } else if self.st.font.is_fixed() {
            "/Courier"
        } else {
            "/Helvetica"
        };
        self.body.push_str(&format!(
            "{face} findfont {ps_size} scalefont setfont {} {} y moveto ({escaped}) show\n",
            d.x, d.y
        ));
    }

    fn bitblt(&mut self, bits: &Framebuffer, src: Rect, dst: Point) {
        // Print rasters as a gray placeholder box; full image support is a
        // printing-subsystem concern beyond the paper's promise.
        self.ops += 1;
        let r = Rect::new(
            dst.x,
            dst.y,
            src.width.min(bits.width()),
            src.height.min(bits.height()),
        );
        let saved = self.st.fg;
        self.st.fg = Color::LIGHT_GRAY;
        self.set_color();
        self.emit_rect_path(r);
        self.body.push_str("fill\n");
        self.st.fg = saved;
        self.draw_rect(r);
    }

    fn copy_area(&mut self, _src: Rect, _dst: Point) {
        // Scrolling is meaningless on paper.
    }

    fn flush(&mut self) {}

    fn string_width(&self, s: &str) -> i32 {
        self.st.font.string_width(s)
    }

    fn font_metrics(&self) -> FontMetrics {
        self.st.font.metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_has_header_and_showpage() {
        let g = PostScriptGraphic::new(612, 792);
        let doc = g.document();
        assert!(doc.starts_with("%!PS-Adobe-2.0"));
        assert!(doc.contains("%%BoundingBox: 0 0 612 792"));
        assert!(doc.contains("%%Page: 1 1"));
        assert!(doc.trim_end().ends_with("showpage"));
    }

    #[test]
    fn creation_date_comes_from_the_virtual_clock() {
        let mut g = PostScriptGraphic::new(612, 792);
        // Unset clock stamps the epoch, not the wall clock.
        assert!(g
            .document()
            .contains("%%CreationDate: (T+00:00:00.000 toolkit clock)"));
        g.set_clock_ms(((2 * 60 + 3) * 60 + 4) * 1000 + 56);
        let doc = g.document();
        assert!(
            doc.contains("%%CreationDate: (T+02:03:04.056 toolkit clock)"),
            "header was:\n{doc}"
        );
        // Same clock twice → byte-identical documents.
        assert_eq!(doc, g.document());
    }

    #[test]
    fn drawing_emits_postscript() {
        let mut g = PostScriptGraphic::new(612, 792);
        g.fill_rect(Rect::new(10, 10, 100, 50));
        g.draw_string_baseline(Point::new(20, 40), "Hello (world)");
        let doc = g.document();
        assert!(doc.contains("fill"));
        assert!(doc.contains("(Hello \\(world\\)) show"));
        assert_eq!(g.op_count(), 2);
    }

    #[test]
    fn translate_moves_emitted_coordinates() {
        let mut g = PostScriptGraphic::new(100, 100);
        g.translate(30, 0);
        g.draw_line(Point::new(0, 0), Point::new(5, 0));
        assert!(g.document().contains("30 0 y moveto 35 0 y lineto"));
    }

    #[test]
    fn bold_font_selects_bold_face() {
        use atk_graphics::FontStyle;
        let mut g = PostScriptGraphic::new(100, 100);
        g.set_font(FontDesc::new("andy", FontStyle::BOLD, 12));
        g.draw_string_baseline(Point::new(0, 10), "x");
        assert!(g.document().contains("/Helvetica-Bold"));
    }
}
