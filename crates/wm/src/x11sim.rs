//! `x11sim`: the immediate-mode simulated window system.
//!
//! Stands in for the X.11 server of paper §8. Every drawing operation is
//! rasterized immediately into a per-window [`Framebuffer`]; snapshots are
//! therefore free. Input is a synthetic event queue filled by
//! [`Window::post_event`] — the scripted equivalent of a user at the
//! display.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

use atk_graphics::{
    BitmapFont, Color, FontDesc, FontMetrics, Framebuffer, Point, RasterOp, Rect, Region, Size,
};

use crate::event::WindowEvent;
use crate::paint::{parallel_paint_enabled, replay_parallel, DrawOp, PaintCmd, PaintStats};
use crate::traits::{
    BuiltinFontDriver, CursorHandle, CursorShape, FontDriver, Graphic, GraphicState,
    OffscreenWindow, Window, WindowSystem,
};

/// The simulated X.11 window system.
#[derive(Debug, Default)]
pub struct X11Sim {
    fonts: BuiltinFontDriver,
    next_cursor: u32,
    windows_opened: u32,
}

impl X11Sim {
    /// Creates the backend.
    pub fn new() -> X11Sim {
        X11Sim::default()
    }

    /// Number of windows opened so far (instrumentation).
    pub fn windows_opened(&self) -> u32 {
        self.windows_opened
    }
}

impl WindowSystem for X11Sim {
    fn name(&self) -> &str {
        "x11sim"
    }

    fn open_window(&mut self, title: &str, size: Size) -> Box<dyn Window> {
        self.windows_opened += 1;
        Box::new(X11Window::new(title, size))
    }

    fn open_offscreen(&mut self, size: Size) -> Box<dyn OffscreenWindow> {
        Box::new(X11Offscreen::new(size))
    }

    fn define_cursor(&mut self, shape: CursorShape) -> CursorHandle {
        self.next_cursor += 1;
        CursorHandle {
            shape,
            id: self.next_cursor,
        }
    }

    fn font_driver(&self) -> &dyn FontDriver {
        &self.fonts
    }
}

/// A simulated X window: a framebuffer plus an event queue.
pub struct X11Window {
    title: String,
    size: Size,
    fb: Rc<RefCell<Framebuffer>>,
    graphic: X11Graphic,
    events: VecDeque<WindowEvent>,
    cursor: CursorHandle,
}

impl X11Window {
    fn new(title: &str, size: Size) -> X11Window {
        let fb = Rc::new(RefCell::new(Framebuffer::new(
            size.width.max(0),
            size.height.max(0),
            Color::WHITE,
        )));
        let graphic = X11Graphic::new(fb.clone());
        let mut events = VecDeque::new();
        // A fresh window is born exposed, as under a real server.
        events.push_back(WindowEvent::Expose(Rect::at(Point::ORIGIN, size)));
        X11Window {
            title: title.to_string(),
            size,
            fb,
            graphic,
            events,
            cursor: CursorHandle {
                shape: CursorShape::Arrow,
                id: 0,
            },
        }
    }
}

impl Window for X11Window {
    fn size(&self) -> Size {
        self.size
    }

    fn resize(&mut self, size: Size) {
        self.size = size;
        *self.fb.borrow_mut() =
            Framebuffer::new(size.width.max(0), size.height.max(0), Color::WHITE);
        self.events.push_back(WindowEvent::Resize(size));
        self.events
            .push_back(WindowEvent::Expose(Rect::at(Point::ORIGIN, size)));
    }

    fn title(&self) -> &str {
        &self.title
    }

    fn set_title(&mut self, title: &str) {
        self.title = title.to_string();
    }

    fn graphic(&mut self) -> &mut dyn Graphic {
        &mut self.graphic
    }

    fn set_cursor(&mut self, cursor: CursorHandle) {
        self.cursor = cursor;
    }

    fn cursor(&self) -> CursorHandle {
        self.cursor
    }

    fn post_event(&mut self, event: WindowEvent) {
        self.events.push_back(event);
    }

    fn next_event(&mut self) -> Option<WindowEvent> {
        self.events.pop_front()
    }

    fn snapshot(&self) -> Option<Framebuffer> {
        self.graphic.flush_pending();
        Some(self.fb.borrow().clone())
    }

    fn op_count(&self) -> u64 {
        self.graphic.ops.get()
    }

    fn set_paint_threads(&mut self, threads: usize) {
        self.graphic.set_threads(threads);
    }

    fn paint_threads(&self) -> usize {
        self.graphic.threads()
    }

    fn take_paint_stats(&mut self) -> PaintStats {
        self.graphic.take_stats()
    }

    fn with_frame(&self, f: &mut dyn FnMut(&Framebuffer)) -> bool {
        self.graphic.flush_pending();
        f(&self.fb.borrow());
        true
    }

    fn adopt_frame(&mut self, frame: &Framebuffer) {
        // Flush first so no buffered command lands on top of the
        // adopted pixels, then row-copy into the buffer open_window
        // already allocated (and just warmed with its white fill) —
        // no per-pixel walk, no second allocation per fork.
        self.graphic.flush_pending();
        let mut fb = self.fb.borrow_mut();
        fb.set_clip(None);
        if fb.width() == frame.width() && fb.height() == frame.height() {
            fb.blit(frame, frame.bounds(), Point::ORIGIN, RasterOp::Copy);
        } else {
            *fb = frame.clone();
            fb.set_clip(None);
        }
    }
}

/// An off-screen pixel plane.
pub struct X11Offscreen {
    size: Size,
    fb: Rc<RefCell<Framebuffer>>,
    graphic: X11Graphic,
}

impl X11Offscreen {
    fn new(size: Size) -> X11Offscreen {
        let fb = Rc::new(RefCell::new(Framebuffer::new(
            size.width.max(0),
            size.height.max(0),
            Color::WHITE,
        )));
        let graphic = X11Graphic::new(fb.clone());
        X11Offscreen { size, fb, graphic }
    }
}

impl OffscreenWindow for X11Offscreen {
    fn size(&self) -> Size {
        self.size
    }

    fn graphic(&mut self) -> &mut dyn Graphic {
        &mut self.graphic
    }

    fn bits(&self) -> Framebuffer {
        self.graphic.flush_pending();
        self.fb.borrow().clone()
    }
}

/// Buffered state for the opt-in parallel-paint mode: recorded
/// commands awaiting a banded flush, plus an interned copy of the clip
/// so successive commands under one clip share a single `Arc`.
#[derive(Default)]
struct RecState {
    /// Configured band threads; 0 or 1 means immediate serial mode.
    threads: usize,
    cmds: Vec<PaintCmd>,
    cur_clip: Option<Arc<Region>>,
    clip_dirty: bool,
    stats: PaintStats,
}

/// The rasterizing drawable.
pub struct X11Graphic {
    fb: Rc<RefCell<Framebuffer>>,
    st: GraphicState,
    ops: Rc<Cell<u64>>,
    rec: RefCell<RecState>,
}

impl X11Graphic {
    fn new(fb: Rc<RefCell<Framebuffer>>) -> X11Graphic {
        X11Graphic {
            fb,
            st: GraphicState::new(),
            ops: Rc::new(Cell::new(0)),
            rec: RefCell::new(RecState::default()),
        }
    }

    #[inline]
    fn tick(&self) {
        self.ops.set(self.ops.get() + 1);
    }

    /// Applies the state's clip to the framebuffer for the duration of a
    /// drawing call.
    fn with_fb<R>(&self, f: impl FnOnce(&mut Framebuffer) -> R) -> R {
        let mut fb = self.fb.borrow_mut();
        fb.set_clip(self.st.clip.clone());
        let r = f(&mut fb);
        fb.set_clip(None);
        r
    }

    /// True when drawing should be recorded for a banded flush rather
    /// than rasterized immediately.
    #[inline]
    fn deferring(&self) -> bool {
        self.rec.borrow().threads > 1 && parallel_paint_enabled()
    }

    /// Records a command under the current clip (interned on change).
    fn record(&self, op: DrawOp) {
        let mut rec = self.rec.borrow_mut();
        if rec.clip_dirty {
            rec.cur_clip = self.st.clip.clone().map(Arc::new);
            rec.clip_dirty = false;
        }
        let clip = rec.cur_clip.clone();
        rec.cmds.push(PaintCmd::new(clip, op));
    }

    fn mark_clip_dirty(&self) {
        self.rec.borrow_mut().clip_dirty = true;
    }

    /// Replays any recorded commands into the framebuffer on banded
    /// worker threads. Callable from `&self` paths (snapshots).
    fn flush_pending(&self) {
        let mut rec = self.rec.borrow_mut();
        if rec.cmds.is_empty() {
            return;
        }
        let cmds = std::mem::take(&mut rec.cmds);
        let threads = rec.threads.max(1);
        let mut fb = self.fb.borrow_mut();
        let t0 = Instant::now();
        let bands = replay_parallel(&mut fb, &cmds, threads);
        rec.stats.par_us += t0.elapsed().as_micros() as u64;
        rec.stats.flushes += 1;
        rec.stats.bands += bands as u64;
    }

    fn set_threads(&self, threads: usize) {
        self.flush_pending();
        let mut rec = self.rec.borrow_mut();
        rec.threads = threads;
        rec.clip_dirty = true;
    }

    fn threads(&self) -> usize {
        self.rec.borrow().threads.max(1)
    }

    fn take_stats(&self) -> PaintStats {
        std::mem::take(&mut self.rec.borrow_mut().stats)
    }
}

impl Graphic for X11Graphic {
    fn set_foreground(&mut self, color: Color) {
        self.st.fg = color;
    }
    fn foreground(&self) -> Color {
        self.st.fg
    }
    fn set_background(&mut self, color: Color) {
        self.st.bg = color;
    }
    fn background(&self) -> Color {
        self.st.bg
    }
    fn set_line_width(&mut self, width: i32) {
        self.st.line_width = width.max(1);
    }
    fn line_width(&self) -> i32 {
        self.st.line_width
    }
    fn set_font(&mut self, font: FontDesc) {
        self.st.font = font;
    }
    fn font(&self) -> &FontDesc {
        &self.st.font
    }
    fn set_raster_op(&mut self, op: RasterOp) {
        self.st.rop = op;
    }
    fn raster_op(&self) -> RasterOp {
        self.st.rop
    }

    fn gsave(&mut self) {
        self.st.save();
    }
    fn grestore(&mut self) {
        self.st.restore();
        self.mark_clip_dirty();
    }
    fn translate(&mut self, dx: i32, dy: i32) {
        self.st.translate(dx, dy);
    }
    fn clip_rect(&mut self, r: Rect) {
        self.st.clip_rect(r);
        self.mark_clip_dirty();
    }
    fn clip_region(&mut self, region: &Region) {
        self.st.clip_region(region);
        self.mark_clip_dirty();
    }
    fn clip_bounds(&self) -> Rect {
        let whole = self.fb.borrow().bounds();
        self.st.clip_bounds_local(whole)
    }

    fn move_to(&mut self, p: Point) {
        self.st.pen = p;
    }
    fn line_to(&mut self, p: Point) {
        let from = self.st.pen;
        self.draw_line(from, p);
        self.st.pen = p;
    }
    fn current_point(&self) -> Point {
        self.st.pen
    }

    fn draw_line(&mut self, a: Point, b: Point) {
        self.tick();
        let (da, db) = (self.st.to_device(a), self.st.to_device(b));
        let (w, fg) = (self.st.line_width, self.st.fg);
        if self.deferring() {
            self.record(DrawOp::Line {
                a: da,
                b: db,
                width: w,
                color: fg,
            });
        } else {
            self.with_fb(|fb| fb.draw_line(da, db, w, fg));
        }
    }

    fn draw_rect(&mut self, r: Rect) {
        self.tick();
        let dr = self.st.rect_to_device(r);
        let fg = self.st.fg;
        if self.deferring() {
            self.record(DrawOp::RectOutline { r: dr, color: fg });
        } else {
            self.with_fb(|fb| fb.draw_rect(dr, fg));
        }
    }

    fn fill_rect(&mut self, r: Rect) {
        self.tick();
        let dr = self.st.rect_to_device(r);
        let (fg, rop) = (self.st.fg, self.st.rop);
        if self.deferring() {
            self.record(DrawOp::FillRect {
                r: dr,
                color: fg,
                rop,
            });
        } else {
            self.with_fb(|fb| fb.fill_rect_op(dr, fg, rop));
        }
    }

    fn clear_rect(&mut self, r: Rect) {
        self.tick();
        let dr = self.st.rect_to_device(r);
        let bg = self.st.bg;
        if self.deferring() {
            self.record(DrawOp::FillRect {
                r: dr,
                color: bg,
                rop: RasterOp::Copy,
            });
        } else {
            self.with_fb(|fb| fb.fill_rect(dr, bg));
        }
    }

    fn draw_oval(&mut self, r: Rect) {
        self.tick();
        let dr = self.st.rect_to_device(r);
        let fg = self.st.fg;
        if self.deferring() {
            self.record(DrawOp::Oval {
                r: dr,
                color: fg,
                fill: false,
            });
        } else {
            self.with_fb(|fb| fb.draw_oval(dr, fg));
        }
    }

    fn fill_oval(&mut self, r: Rect) {
        self.tick();
        let dr = self.st.rect_to_device(r);
        let fg = self.st.fg;
        if self.deferring() {
            self.record(DrawOp::Oval {
                r: dr,
                color: fg,
                fill: true,
            });
        } else {
            self.with_fb(|fb| fb.fill_oval(dr, fg));
        }
    }

    fn fill_polygon(&mut self, pts: &[Point]) {
        self.tick();
        let dev: Vec<Point> = pts.iter().map(|p| self.st.to_device(*p)).collect();
        let fg = self.st.fg;
        if self.deferring() {
            self.record(DrawOp::Polygon {
                pts: dev,
                color: fg,
            });
        } else {
            self.with_fb(|fb| fb.fill_polygon(&dev, fg));
        }
    }

    fn fill_wedge(&mut self, r: Rect, start_deg: f64, end_deg: f64) {
        self.tick();
        let dr = self.st.rect_to_device(r);
        let fg = self.st.fg;
        if self.deferring() {
            self.record(DrawOp::Wedge {
                r: dr,
                start_deg,
                end_deg,
                color: fg,
            });
        } else {
            self.with_fb(|fb| fb.fill_wedge(dr, start_deg, end_deg, fg));
        }
    }

    fn draw_string(&mut self, p: Point, s: &str) {
        self.tick();
        let dp = self.st.to_device(p);
        let (font, fg) = (self.st.font.clone(), self.st.fg);
        if self.deferring() {
            self.record(DrawOp::Text {
                origin: dp,
                text: s.to_string(),
                font,
                color: fg,
            });
        } else {
            self.with_fb(|fb| {
                BitmapFont::draw(fb, dp, s, &font, fg);
            });
        }
    }

    fn draw_string_baseline(&mut self, p: Point, s: &str) {
        self.tick();
        let dp = self.st.to_device(p);
        let (font, fg) = (self.st.font.clone(), self.st.fg);
        if self.deferring() {
            // Resolve the baseline to a top-left origin at record time;
            // BitmapFont::draw_baseline does exactly this conversion.
            let top = Point::new(dp.x, dp.y - font.metrics().ascent);
            self.record(DrawOp::Text {
                origin: top,
                text: s.to_string(),
                font,
                color: fg,
            });
        } else {
            self.with_fb(|fb| {
                BitmapFont::draw_baseline(fb, dp, s, &font, fg);
            });
        }
    }

    fn bitblt(&mut self, bits: &Framebuffer, src: Rect, dst: Point) {
        self.tick();
        let ddst = self.st.to_device(dst);
        let rop = self.st.rop;
        if self.deferring() {
            self.record(DrawOp::Blit {
                bits: Arc::new(bits.clone()),
                src,
                dst: ddst,
                rop,
            });
        } else {
            self.with_fb(|fb| fb.blit(bits, src, ddst, rop));
        }
    }

    fn copy_area(&mut self, src: Rect, dst: Point) {
        self.tick();
        let dsrc = self.st.rect_to_device(src);
        let ddst = self.st.to_device(dst);
        // A self-copy reads rows other bands may be mid-write, so it
        // cannot be banded: drain anything recorded, then run it
        // serially in order.
        if self.deferring() {
            self.flush_pending();
            self.rec.borrow_mut().stats.serial_fallbacks += 1;
        }
        self.with_fb(|fb| fb.copy_within(dsrc, ddst));
    }

    fn flush(&mut self) {
        self.flush_pending();
    }

    fn string_width(&self, s: &str) -> i32 {
        self.st.font.string_width(s)
    }

    fn font_metrics(&self) -> FontMetrics {
        self.st.font.metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> Box<dyn Window> {
        let mut ws = X11Sim::new();
        ws.open_window("test", Size::new(100, 80))
    }

    #[test]
    fn fresh_window_gets_expose_event() {
        let mut w = window();
        assert_eq!(
            w.next_event(),
            Some(WindowEvent::Expose(Rect::new(0, 0, 100, 80)))
        );
        assert_eq!(w.next_event(), None);
    }

    #[test]
    fn drawing_lands_in_snapshot() {
        let mut w = window();
        w.graphic().fill_rect(Rect::new(10, 10, 5, 5));
        let snap = w.snapshot().unwrap();
        assert_eq!(snap.count_pixels(Rect::new(10, 10, 5, 5), Color::BLACK), 25);
        assert_eq!(w.op_count(), 1);
    }

    #[test]
    fn translate_offsets_drawing() {
        let mut w = window();
        let g = w.graphic();
        g.gsave();
        g.translate(20, 30);
        g.fill_rect(Rect::new(0, 0, 2, 2));
        g.grestore();
        g.fill_rect(Rect::new(0, 0, 2, 2));
        let snap = w.snapshot().unwrap();
        assert_eq!(snap.count_pixels(Rect::new(20, 30, 2, 2), Color::BLACK), 4);
        assert_eq!(snap.count_pixels(Rect::new(0, 0, 2, 2), Color::BLACK), 4);
    }

    #[test]
    fn clip_confines_drawing() {
        let mut w = window();
        let g = w.graphic();
        g.gsave();
        g.clip_rect(Rect::new(0, 0, 10, 10));
        g.fill_rect(Rect::new(0, 0, 100, 100));
        g.grestore();
        let snap = w.snapshot().unwrap();
        assert_eq!(snap.count_pixels(snap.bounds(), Color::BLACK), 100);
    }

    #[test]
    fn nested_clip_and_translate_interact_correctly() {
        let mut w = window();
        let g = w.graphic();
        g.clip_rect(Rect::new(0, 0, 50, 50));
        g.translate(40, 40);
        // Local (0,0,20,20) is device (40,40,20,20); clip leaves 10x10.
        g.fill_rect(Rect::new(0, 0, 20, 20));
        let snap = w.snapshot().unwrap();
        assert_eq!(snap.count_pixels(snap.bounds(), Color::BLACK), 100);
    }

    #[test]
    fn pen_tracks_line_to() {
        let mut w = window();
        let g = w.graphic();
        g.move_to(Point::new(5, 5));
        g.line_to(Point::new(10, 5));
        assert_eq!(g.current_point(), Point::new(10, 5));
        let snap = w.snapshot().unwrap();
        assert_eq!(snap.count_pixels(Rect::new(5, 5, 6, 1), Color::BLACK), 6);
    }

    #[test]
    fn clear_rect_uses_background() {
        let mut w = window();
        let g = w.graphic();
        g.fill_rect(Rect::new(0, 0, 20, 20));
        g.set_background(Color::WHITE);
        g.clear_rect(Rect::new(5, 5, 5, 5));
        let snap = w.snapshot().unwrap();
        assert_eq!(snap.count_pixels(Rect::new(5, 5, 5, 5), Color::WHITE), 25);
    }

    #[test]
    fn offscreen_bits_can_be_blitted_in() {
        let mut ws = X11Sim::new();
        let mut off = ws.open_offscreen(Size::new(10, 10));
        off.graphic().fill_rect(Rect::new(0, 0, 10, 10));
        let bits = off.bits();
        let mut w = ws.open_window("t", Size::new(40, 40));
        w.graphic()
            .bitblt(&bits, Rect::new(0, 0, 10, 10), Point::new(15, 15));
        let snap = w.snapshot().unwrap();
        assert_eq!(
            snap.count_pixels(Rect::new(15, 15, 10, 10), Color::BLACK),
            100
        );
    }

    #[test]
    fn copy_area_scrolls_content() {
        let mut w = window();
        w.graphic().fill_rect(Rect::new(0, 0, 100, 10));
        w.graphic()
            .copy_area(Rect::new(0, 0, 100, 10), Point::new(0, 40));
        let snap = w.snapshot().unwrap();
        assert_eq!(
            snap.count_pixels(Rect::new(0, 40, 100, 10), Color::BLACK),
            1000
        );
    }

    #[test]
    fn resize_clears_and_reexposes() {
        let mut w = window();
        let _ = w.next_event();
        w.graphic().fill_rect(Rect::new(0, 0, 10, 10));
        w.resize(Size::new(50, 50));
        assert_eq!(w.next_event(), Some(WindowEvent::Resize(Size::new(50, 50))));
        assert!(matches!(w.next_event(), Some(WindowEvent::Expose(_))));
        let snap = w.snapshot().unwrap();
        assert_eq!(snap.count_pixels(snap.bounds(), Color::BLACK), 0);
    }

    #[test]
    fn invert_rect_is_self_inverse_through_trait() {
        let mut w = window();
        w.graphic().fill_rect(Rect::new(0, 0, 10, 20));
        let before = w.snapshot().unwrap();
        w.graphic().invert_rect(Rect::new(5, 5, 10, 10));
        assert_ne!(w.snapshot().unwrap(), before);
        w.graphic().invert_rect(Rect::new(5, 5, 10, 10));
        assert_eq!(w.snapshot().unwrap(), before);
    }

    /// Tests that read or toggle the global parallel-paint switch hold
    /// this lock so the ablation test cannot flip it mid-scene.
    static PAINT_SWITCH: std::sync::Mutex<()> = std::sync::Mutex::new(());

    /// A scene exercising every primitive, clips, translations, a
    /// baseline string, a bitblt, and a mid-stream scroll.
    fn busy_scene(w: &mut dyn Window, bits: &Framebuffer) {
        let g = w.graphic();
        g.fill_rect(Rect::new(0, 0, 200, 160));
        g.set_foreground(Color::WHITE);
        g.gsave();
        g.translate(10, 10);
        g.clip_rect(Rect::new(0, 0, 120, 100));
        g.fill_oval(Rect::new(5, 5, 80, 60));
        g.set_foreground(Color::RED);
        g.draw_oval(Rect::new(20, 15, 60, 40));
        g.fill_wedge(Rect::new(40, 30, 50, 50), 10.0, 200.0);
        g.grestore();
        g.set_foreground(Color::BLUE);
        g.set_line_width(3);
        g.draw_line(Point::new(2, 150), Point::new(195, 8));
        g.fill_polygon(&[
            Point::new(150, 20),
            Point::new(190, 60),
            Point::new(140, 70),
        ]);
        g.set_foreground(Color::BLACK);
        g.draw_string(Point::new(8, 120), "band paint");
        g.draw_string_baseline(Point::new(90, 140), "baseline");
        g.draw_bezel(Rect::new(60, 90, 40, 20), true);
        g.invert_rect(Rect::new(30, 100, 50, 30));
        g.bitblt(bits, Rect::new(0, 0, 10, 10), Point::new(170, 120));
        g.copy_area(Rect::new(0, 0, 60, 30), Point::new(120, 100));
        g.draw_rect(Rect::new(1, 1, 198, 158));
        g.flush();
    }

    #[test]
    fn parallel_paint_is_byte_identical_to_serial() {
        let _guard = PAINT_SWITCH.lock().unwrap();
        let mut ws = X11Sim::new();
        let mut off = ws.open_offscreen(Size::new(10, 10));
        off.graphic().fill_rect(Rect::new(0, 0, 10, 10));
        let bits = off.bits();

        let mut serial = ws.open_window("serial", Size::new(200, 160));
        busy_scene(serial.as_mut(), &bits);
        let want = serial.snapshot().unwrap();

        for threads in [2, 4, 8] {
            let mut par = ws.open_window("par", Size::new(200, 160));
            par.set_paint_threads(threads);
            assert_eq!(par.paint_threads(), threads);
            busy_scene(par.as_mut(), &bits);
            let got = par.snapshot().unwrap();
            assert_eq!(got, want, "threads={threads}");
            let stats = par.take_paint_stats();
            assert!(stats.flushes >= 1, "expected at least one banded flush");
            assert!(stats.bands >= stats.flushes);
            // The copy_area mid-scene must have forced a serial drain.
            assert_eq!(stats.serial_fallbacks, 1);
            // Drained means drained.
            assert_eq!(par.take_paint_stats(), PaintStats::default());
        }
    }

    #[test]
    fn parallel_paint_ablation_forces_immediate_mode() {
        let _guard = PAINT_SWITCH.lock().unwrap();
        crate::paint::set_parallel_paint(false);
        let mut ws = X11Sim::new();
        let mut w = ws.open_window("ablate", Size::new(100, 80));
        w.set_paint_threads(4);
        w.graphic().fill_rect(Rect::new(10, 10, 5, 5));
        // Immediate mode: pixels land without a flush, no stats accrue.
        let snap = w.snapshot().unwrap();
        assert_eq!(snap.count_pixels(Rect::new(10, 10, 5, 5), Color::BLACK), 25);
        assert_eq!(w.take_paint_stats(), PaintStats::default());
        crate::paint::set_parallel_paint(true);
    }

    #[test]
    fn snapshot_flushes_pending_banded_commands() {
        let _guard = PAINT_SWITCH.lock().unwrap();
        let mut ws = X11Sim::new();
        let mut w = ws.open_window("t", Size::new(100, 80));
        w.set_paint_threads(4);
        w.graphic().fill_rect(Rect::new(10, 10, 5, 5));
        // No explicit flush: the snapshot itself must drain the queue.
        let snap = w.snapshot().unwrap();
        assert_eq!(snap.count_pixels(Rect::new(10, 10, 5, 5), Color::BLACK), 25);
        assert_eq!(w.take_paint_stats().flushes, 1);
    }

    #[test]
    fn with_frame_borrows_without_cloning() {
        let mut ws = X11Sim::new();
        let mut w = ws.open_window("t", Size::new(100, 80));
        w.graphic().fill_rect(Rect::new(0, 0, 3, 3));
        let mut seen = 0usize;
        let ok = w.with_frame(&mut |fb| {
            seen = fb.count_pixels(Rect::new(0, 0, 3, 3), Color::BLACK);
        });
        assert!(ok);
        assert_eq!(seen, 9);
    }

    #[test]
    fn cursor_definition_and_assignment() {
        let mut ws = X11Sim::new();
        let c = ws.define_cursor(CursorShape::IBeam);
        let mut w = ws.open_window("t", Size::new(10, 10));
        w.set_cursor(c);
        assert_eq!(w.cursor().shape, CursorShape::IBeam);
    }
}
