//! `x11sim`: the immediate-mode simulated window system.
//!
//! Stands in for the X.11 server of paper §8. Every drawing operation is
//! rasterized immediately into a per-window [`Framebuffer`]; snapshots are
//! therefore free. Input is a synthetic event queue filled by
//! [`Window::post_event`] — the scripted equivalent of a user at the
//! display.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use atk_graphics::{
    BitmapFont, Color, FontDesc, FontMetrics, Framebuffer, Point, RasterOp, Rect, Region, Size,
};

use crate::event::WindowEvent;
use crate::traits::{
    BuiltinFontDriver, CursorHandle, CursorShape, FontDriver, Graphic, GraphicState,
    OffscreenWindow, Window, WindowSystem,
};

/// The simulated X.11 window system.
#[derive(Debug, Default)]
pub struct X11Sim {
    fonts: BuiltinFontDriver,
    next_cursor: u32,
    windows_opened: u32,
}

impl X11Sim {
    /// Creates the backend.
    pub fn new() -> X11Sim {
        X11Sim::default()
    }

    /// Number of windows opened so far (instrumentation).
    pub fn windows_opened(&self) -> u32 {
        self.windows_opened
    }
}

impl WindowSystem for X11Sim {
    fn name(&self) -> &str {
        "x11sim"
    }

    fn open_window(&mut self, title: &str, size: Size) -> Box<dyn Window> {
        self.windows_opened += 1;
        Box::new(X11Window::new(title, size))
    }

    fn open_offscreen(&mut self, size: Size) -> Box<dyn OffscreenWindow> {
        Box::new(X11Offscreen::new(size))
    }

    fn define_cursor(&mut self, shape: CursorShape) -> CursorHandle {
        self.next_cursor += 1;
        CursorHandle {
            shape,
            id: self.next_cursor,
        }
    }

    fn font_driver(&self) -> &dyn FontDriver {
        &self.fonts
    }
}

/// A simulated X window: a framebuffer plus an event queue.
pub struct X11Window {
    title: String,
    size: Size,
    fb: Rc<RefCell<Framebuffer>>,
    graphic: X11Graphic,
    events: VecDeque<WindowEvent>,
    cursor: CursorHandle,
}

impl X11Window {
    fn new(title: &str, size: Size) -> X11Window {
        let fb = Rc::new(RefCell::new(Framebuffer::new(
            size.width.max(0),
            size.height.max(0),
            Color::WHITE,
        )));
        let graphic = X11Graphic::new(fb.clone());
        let mut events = VecDeque::new();
        // A fresh window is born exposed, as under a real server.
        events.push_back(WindowEvent::Expose(Rect::at(Point::ORIGIN, size)));
        X11Window {
            title: title.to_string(),
            size,
            fb,
            graphic,
            events,
            cursor: CursorHandle {
                shape: CursorShape::Arrow,
                id: 0,
            },
        }
    }
}

impl Window for X11Window {
    fn size(&self) -> Size {
        self.size
    }

    fn resize(&mut self, size: Size) {
        self.size = size;
        *self.fb.borrow_mut() =
            Framebuffer::new(size.width.max(0), size.height.max(0), Color::WHITE);
        self.events.push_back(WindowEvent::Resize(size));
        self.events
            .push_back(WindowEvent::Expose(Rect::at(Point::ORIGIN, size)));
    }

    fn title(&self) -> &str {
        &self.title
    }

    fn set_title(&mut self, title: &str) {
        self.title = title.to_string();
    }

    fn graphic(&mut self) -> &mut dyn Graphic {
        &mut self.graphic
    }

    fn set_cursor(&mut self, cursor: CursorHandle) {
        self.cursor = cursor;
    }

    fn cursor(&self) -> CursorHandle {
        self.cursor
    }

    fn post_event(&mut self, event: WindowEvent) {
        self.events.push_back(event);
    }

    fn next_event(&mut self) -> Option<WindowEvent> {
        self.events.pop_front()
    }

    fn snapshot(&self) -> Option<Framebuffer> {
        Some(self.fb.borrow().clone())
    }

    fn op_count(&self) -> u64 {
        self.graphic.ops.get()
    }
}

/// An off-screen pixel plane.
pub struct X11Offscreen {
    size: Size,
    fb: Rc<RefCell<Framebuffer>>,
    graphic: X11Graphic,
}

impl X11Offscreen {
    fn new(size: Size) -> X11Offscreen {
        let fb = Rc::new(RefCell::new(Framebuffer::new(
            size.width.max(0),
            size.height.max(0),
            Color::WHITE,
        )));
        let graphic = X11Graphic::new(fb.clone());
        X11Offscreen { size, fb, graphic }
    }
}

impl OffscreenWindow for X11Offscreen {
    fn size(&self) -> Size {
        self.size
    }

    fn graphic(&mut self) -> &mut dyn Graphic {
        &mut self.graphic
    }

    fn bits(&self) -> Framebuffer {
        self.fb.borrow().clone()
    }
}

/// The rasterizing drawable.
pub struct X11Graphic {
    fb: Rc<RefCell<Framebuffer>>,
    st: GraphicState,
    ops: Rc<Cell<u64>>,
}

impl X11Graphic {
    fn new(fb: Rc<RefCell<Framebuffer>>) -> X11Graphic {
        X11Graphic {
            fb,
            st: GraphicState::new(),
            ops: Rc::new(Cell::new(0)),
        }
    }

    #[inline]
    fn tick(&self) {
        self.ops.set(self.ops.get() + 1);
    }

    /// Applies the state's clip to the framebuffer for the duration of a
    /// drawing call.
    fn with_fb<R>(&self, f: impl FnOnce(&mut Framebuffer) -> R) -> R {
        let mut fb = self.fb.borrow_mut();
        fb.set_clip(self.st.clip.clone());
        let r = f(&mut fb);
        fb.set_clip(None);
        r
    }
}

impl Graphic for X11Graphic {
    fn set_foreground(&mut self, color: Color) {
        self.st.fg = color;
    }
    fn foreground(&self) -> Color {
        self.st.fg
    }
    fn set_background(&mut self, color: Color) {
        self.st.bg = color;
    }
    fn background(&self) -> Color {
        self.st.bg
    }
    fn set_line_width(&mut self, width: i32) {
        self.st.line_width = width.max(1);
    }
    fn line_width(&self) -> i32 {
        self.st.line_width
    }
    fn set_font(&mut self, font: FontDesc) {
        self.st.font = font;
    }
    fn font(&self) -> &FontDesc {
        &self.st.font
    }
    fn set_raster_op(&mut self, op: RasterOp) {
        self.st.rop = op;
    }
    fn raster_op(&self) -> RasterOp {
        self.st.rop
    }

    fn gsave(&mut self) {
        self.st.save();
    }
    fn grestore(&mut self) {
        self.st.restore();
    }
    fn translate(&mut self, dx: i32, dy: i32) {
        self.st.translate(dx, dy);
    }
    fn clip_rect(&mut self, r: Rect) {
        self.st.clip_rect(r);
    }
    fn clip_region(&mut self, region: &Region) {
        self.st.clip_region(region);
    }
    fn clip_bounds(&self) -> Rect {
        let whole = self.fb.borrow().bounds();
        self.st.clip_bounds_local(whole)
    }

    fn move_to(&mut self, p: Point) {
        self.st.pen = p;
    }
    fn line_to(&mut self, p: Point) {
        let from = self.st.pen;
        self.draw_line(from, p);
        self.st.pen = p;
    }
    fn current_point(&self) -> Point {
        self.st.pen
    }

    fn draw_line(&mut self, a: Point, b: Point) {
        self.tick();
        let (da, db) = (self.st.to_device(a), self.st.to_device(b));
        let (w, fg) = (self.st.line_width, self.st.fg);
        self.with_fb(|fb| fb.draw_line(da, db, w, fg));
    }

    fn draw_rect(&mut self, r: Rect) {
        self.tick();
        let dr = self.st.rect_to_device(r);
        let fg = self.st.fg;
        self.with_fb(|fb| fb.draw_rect(dr, fg));
    }

    fn fill_rect(&mut self, r: Rect) {
        self.tick();
        let dr = self.st.rect_to_device(r);
        let (fg, rop) = (self.st.fg, self.st.rop);
        self.with_fb(|fb| fb.fill_rect_op(dr, fg, rop));
    }

    fn clear_rect(&mut self, r: Rect) {
        self.tick();
        let dr = self.st.rect_to_device(r);
        let bg = self.st.bg;
        self.with_fb(|fb| fb.fill_rect(dr, bg));
    }

    fn draw_oval(&mut self, r: Rect) {
        self.tick();
        let dr = self.st.rect_to_device(r);
        let fg = self.st.fg;
        self.with_fb(|fb| fb.draw_oval(dr, fg));
    }

    fn fill_oval(&mut self, r: Rect) {
        self.tick();
        let dr = self.st.rect_to_device(r);
        let fg = self.st.fg;
        self.with_fb(|fb| fb.fill_oval(dr, fg));
    }

    fn fill_polygon(&mut self, pts: &[Point]) {
        self.tick();
        let dev: Vec<Point> = pts.iter().map(|p| self.st.to_device(*p)).collect();
        let fg = self.st.fg;
        self.with_fb(|fb| fb.fill_polygon(&dev, fg));
    }

    fn fill_wedge(&mut self, r: Rect, start_deg: f64, end_deg: f64) {
        self.tick();
        let dr = self.st.rect_to_device(r);
        let fg = self.st.fg;
        self.with_fb(|fb| fb.fill_wedge(dr, start_deg, end_deg, fg));
    }

    fn draw_string(&mut self, p: Point, s: &str) {
        self.tick();
        let dp = self.st.to_device(p);
        let (font, fg) = (self.st.font.clone(), self.st.fg);
        self.with_fb(|fb| {
            BitmapFont::draw(fb, dp, s, &font, fg);
        });
    }

    fn draw_string_baseline(&mut self, p: Point, s: &str) {
        self.tick();
        let dp = self.st.to_device(p);
        let (font, fg) = (self.st.font.clone(), self.st.fg);
        self.with_fb(|fb| {
            BitmapFont::draw_baseline(fb, dp, s, &font, fg);
        });
    }

    fn bitblt(&mut self, bits: &Framebuffer, src: Rect, dst: Point) {
        self.tick();
        let ddst = self.st.to_device(dst);
        let rop = self.st.rop;
        self.with_fb(|fb| fb.blit(bits, src, ddst, rop));
    }

    fn copy_area(&mut self, src: Rect, dst: Point) {
        self.tick();
        let dsrc = self.st.rect_to_device(src);
        let ddst = self.st.to_device(dst);
        self.with_fb(|fb| fb.copy_within(dsrc, ddst));
    }

    fn flush(&mut self) {
        // Immediate mode: nothing buffered.
    }

    fn string_width(&self, s: &str) -> i32 {
        self.st.font.string_width(s)
    }

    fn font_metrics(&self) -> FontMetrics {
        self.st.font.metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> Box<dyn Window> {
        let mut ws = X11Sim::new();
        ws.open_window("test", Size::new(100, 80))
    }

    #[test]
    fn fresh_window_gets_expose_event() {
        let mut w = window();
        assert_eq!(
            w.next_event(),
            Some(WindowEvent::Expose(Rect::new(0, 0, 100, 80)))
        );
        assert_eq!(w.next_event(), None);
    }

    #[test]
    fn drawing_lands_in_snapshot() {
        let mut w = window();
        w.graphic().fill_rect(Rect::new(10, 10, 5, 5));
        let snap = w.snapshot().unwrap();
        assert_eq!(snap.count_pixels(Rect::new(10, 10, 5, 5), Color::BLACK), 25);
        assert_eq!(w.op_count(), 1);
    }

    #[test]
    fn translate_offsets_drawing() {
        let mut w = window();
        let g = w.graphic();
        g.gsave();
        g.translate(20, 30);
        g.fill_rect(Rect::new(0, 0, 2, 2));
        g.grestore();
        g.fill_rect(Rect::new(0, 0, 2, 2));
        let snap = w.snapshot().unwrap();
        assert_eq!(snap.count_pixels(Rect::new(20, 30, 2, 2), Color::BLACK), 4);
        assert_eq!(snap.count_pixels(Rect::new(0, 0, 2, 2), Color::BLACK), 4);
    }

    #[test]
    fn clip_confines_drawing() {
        let mut w = window();
        let g = w.graphic();
        g.gsave();
        g.clip_rect(Rect::new(0, 0, 10, 10));
        g.fill_rect(Rect::new(0, 0, 100, 100));
        g.grestore();
        let snap = w.snapshot().unwrap();
        assert_eq!(snap.count_pixels(snap.bounds(), Color::BLACK), 100);
    }

    #[test]
    fn nested_clip_and_translate_interact_correctly() {
        let mut w = window();
        let g = w.graphic();
        g.clip_rect(Rect::new(0, 0, 50, 50));
        g.translate(40, 40);
        // Local (0,0,20,20) is device (40,40,20,20); clip leaves 10x10.
        g.fill_rect(Rect::new(0, 0, 20, 20));
        let snap = w.snapshot().unwrap();
        assert_eq!(snap.count_pixels(snap.bounds(), Color::BLACK), 100);
    }

    #[test]
    fn pen_tracks_line_to() {
        let mut w = window();
        let g = w.graphic();
        g.move_to(Point::new(5, 5));
        g.line_to(Point::new(10, 5));
        assert_eq!(g.current_point(), Point::new(10, 5));
        let snap = w.snapshot().unwrap();
        assert_eq!(snap.count_pixels(Rect::new(5, 5, 6, 1), Color::BLACK), 6);
    }

    #[test]
    fn clear_rect_uses_background() {
        let mut w = window();
        let g = w.graphic();
        g.fill_rect(Rect::new(0, 0, 20, 20));
        g.set_background(Color::WHITE);
        g.clear_rect(Rect::new(5, 5, 5, 5));
        let snap = w.snapshot().unwrap();
        assert_eq!(snap.count_pixels(Rect::new(5, 5, 5, 5), Color::WHITE), 25);
    }

    #[test]
    fn offscreen_bits_can_be_blitted_in() {
        let mut ws = X11Sim::new();
        let mut off = ws.open_offscreen(Size::new(10, 10));
        off.graphic().fill_rect(Rect::new(0, 0, 10, 10));
        let bits = off.bits();
        let mut w = ws.open_window("t", Size::new(40, 40));
        w.graphic()
            .bitblt(&bits, Rect::new(0, 0, 10, 10), Point::new(15, 15));
        let snap = w.snapshot().unwrap();
        assert_eq!(
            snap.count_pixels(Rect::new(15, 15, 10, 10), Color::BLACK),
            100
        );
    }

    #[test]
    fn copy_area_scrolls_content() {
        let mut w = window();
        w.graphic().fill_rect(Rect::new(0, 0, 100, 10));
        w.graphic()
            .copy_area(Rect::new(0, 0, 100, 10), Point::new(0, 40));
        let snap = w.snapshot().unwrap();
        assert_eq!(
            snap.count_pixels(Rect::new(0, 40, 100, 10), Color::BLACK),
            1000
        );
    }

    #[test]
    fn resize_clears_and_reexposes() {
        let mut w = window();
        let _ = w.next_event();
        w.graphic().fill_rect(Rect::new(0, 0, 10, 10));
        w.resize(Size::new(50, 50));
        assert_eq!(w.next_event(), Some(WindowEvent::Resize(Size::new(50, 50))));
        assert!(matches!(w.next_event(), Some(WindowEvent::Expose(_))));
        let snap = w.snapshot().unwrap();
        assert_eq!(snap.count_pixels(snap.bounds(), Color::BLACK), 0);
    }

    #[test]
    fn invert_rect_is_self_inverse_through_trait() {
        let mut w = window();
        w.graphic().fill_rect(Rect::new(0, 0, 10, 20));
        let before = w.snapshot().unwrap();
        w.graphic().invert_rect(Rect::new(5, 5, 10, 10));
        assert_ne!(w.snapshot().unwrap(), before);
        w.graphic().invert_rect(Rect::new(5, 5, 10, 10));
        assert_eq!(w.snapshot().unwrap(), before);
    }

    #[test]
    fn cursor_definition_and_assignment() {
        let mut ws = X11Sim::new();
        let c = ws.define_cursor(CursorShape::IBeam);
        let mut w = ws.open_window("t", Size::new(10, 10));
        w.set_cursor(c);
        assert_eq!(w.cursor().shape, CursorShape::IBeam);
    }
}
