//! Window-system independence layer (paper §4 and §8).
//!
//! The Andrew Toolkit ran unmodified on two window systems — the original
//! ITC/Andrew window manager and X.11 — because everything above this
//! layer drew and received events through exactly **six classes**:
//!
//! > *Window System, Interaction Manager (event source), Cursor, Graphic,
//! > FontDesc, Off Screen Window — "approximately 70 routines. Of those
//! > routines, about 50 … are normally simple transformations to the
//! > graphics layer of the underlying window system."*
//!
//! This crate defines those six classes as traits ([`WindowSystem`],
//! [`Window`] (the interaction-manager event source), [`CursorShape`] /
//! cursor handling, [`Graphic`], the font driver around
//! [`atk_graphics::FontDesc`], and [`OffscreenWindow`]) and supplies two
//! complete backends:
//!
//! * [`x11sim`] — an immediate-mode software rasterizer standing in for
//!   an X.11 server; every operation lands in a framebuffer that can be
//!   snapshotted to PPM;
//! * [`awmsim`] — a display-list backend modelled on the ITC window
//!   manager's network protocol: operations are recorded (and can be
//!   encoded to / decoded from a byte stream, like the wire protocol of
//!   Gosling & Rosenthal's network window manager) and replayed to pixels
//!   on demand.
//!
//! Exactly as in the paper, the backend is chosen **at run time** by the
//! `ATK_WINDOW_SYSTEM` environment variable (see [`open_window_system`]);
//! no application code changes between the two. The [`printer`] module
//! provides the third kind of drawable the paper promises: a PostScript
//! generator a view can be temporarily repointed at to print itself.
//!
//! The porting surface itself is data: [`surface::port_surface`] lists
//! every routine a new backend must supply, and an integration test keeps
//! the count honest against the paper's "about 70".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod awmsim;
pub mod event;
pub mod paint;
pub mod printer;
pub mod surface;
pub mod traits;
pub mod x11sim;

pub use event::{Button, Key, MouseAction, WindowEvent};
pub use paint::{parallel_paint_enabled, set_parallel_paint, PaintStats};
pub use traits::{
    CursorHandle, CursorShape, FontDriver, Graphic, GraphicState, OffscreenWindow, Window,
    WindowSystem,
};

use std::env;

/// Opens a window system by name, or by the `ATK_WINDOW_SYSTEM`
/// environment variable, defaulting to `"x11sim"`.
///
/// This mirrors the paper's §8: "The choice of window system to use is
/// currently controlled by the setting of an environment variable."
///
/// # Errors
///
/// Returns the unrecognized name if it matches no known backend.
pub fn open_window_system(name: Option<&str>) -> Result<Box<dyn WindowSystem>, String> {
    let chosen = match name {
        Some(n) => n.to_string(),
        None => env::var("ATK_WINDOW_SYSTEM").unwrap_or_else(|_| "x11sim".to_string()),
    };
    match chosen.as_str() {
        "x11sim" | "x11" => Ok(Box::new(x11sim::X11Sim::new())),
        "awmsim" | "wm" | "andrew" => Ok(Box::new(awmsim::AwmSim::new())),
        other => Err(other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_by_explicit_name() {
        assert_eq!(open_window_system(Some("x11sim")).unwrap().name(), "x11sim");
        assert_eq!(open_window_system(Some("awmsim")).unwrap().name(), "awmsim");
        assert_eq!(open_window_system(Some("andrew")).unwrap().name(), "awmsim");
        assert!(open_window_system(Some("news")).is_err());
    }
}
