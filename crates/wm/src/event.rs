//! Window-system events.
//!
//! The interaction manager (paper §3) "has the responsibility of
//! translating input events such as key strokes, mouse events, menu
//! events and exposure events from the window system to the rest of the
//! view tree". These are the events it translates. Both simulated
//! backends deliver them through [`crate::Window::next_event`]; tests and
//! the scripted application driver inject them with
//! [`crate::Window::post_event`].

use atk_graphics::{Point, Rect, Size};

/// Mouse buttons. Andrew used a three-button mouse; menus traditionally
/// lived on the right button.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Button {
    /// Left (select / caret placement).
    Left,
    /// Middle (extend selection).
    Middle,
    /// Right (pop-up menus).
    Right,
}

/// What the mouse just did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MouseAction {
    /// Button pressed.
    Down(Button),
    /// Button released.
    Up(Button),
    /// Moved with a button held.
    Drag(Button),
    /// Moved with no button held.
    Movement,
}

impl MouseAction {
    /// The button involved, if any.
    pub fn button(self) -> Option<Button> {
        match self {
            MouseAction::Down(b) | MouseAction::Up(b) | MouseAction::Drag(b) => Some(b),
            MouseAction::Movement => None,
        }
    }
}

/// A keyboard symbol after window-system keymap translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Key {
    /// A printable character.
    Char(char),
    /// Control-chord (stored lowercase, e.g. `Ctrl('a')`).
    Ctrl(char),
    /// Meta/Escape-prefixed chord (stored lowercase).
    Meta(char),
    /// Return / Enter.
    Return,
    /// Tab.
    Tab,
    /// Backspace / Delete-backward.
    Backspace,
    /// Forward delete.
    Delete,
    /// Escape.
    Escape,
    /// Cursor up.
    Up,
    /// Cursor down.
    Down,
    /// Cursor left.
    Left,
    /// Cursor right.
    Right,
    /// Page up.
    PageUp,
    /// Page down.
    PageDown,
    /// Home.
    Home,
    /// End.
    End,
}

/// One event delivered by a window to its interaction manager.
#[derive(Debug, Clone, PartialEq)]
pub enum WindowEvent {
    /// Mouse activity at a window-relative position.
    Mouse {
        /// What happened.
        action: MouseAction,
        /// Where, in window coordinates.
        pos: Point,
    },
    /// A translated keystroke.
    Key(Key),
    /// The user asked for menus at this position (right button in Andrew).
    MenuRequest {
        /// Where, in window coordinates.
        pos: Point,
    },
    /// A menu item was chosen; carries the item's command string.
    MenuSelect(String),
    /// Part of the window needs repainting.
    Expose(Rect),
    /// The window changed size.
    Resize(Size),
    /// Virtual time advanced by this many milliseconds (drives timers,
    /// e.g. the animation component and the console clock).
    Tick(u64),
    /// The window is closing.
    Close,
}

impl WindowEvent {
    /// Convenience constructor for a left-button press.
    pub fn left_down(x: i32, y: i32) -> WindowEvent {
        WindowEvent::Mouse {
            action: MouseAction::Down(Button::Left),
            pos: Point::new(x, y),
        }
    }

    /// Convenience constructor for a left-button release.
    pub fn left_up(x: i32, y: i32) -> WindowEvent {
        WindowEvent::Mouse {
            action: MouseAction::Up(Button::Left),
            pos: Point::new(x, y),
        }
    }

    /// Convenience constructor for a left-button drag.
    pub fn left_drag(x: i32, y: i32) -> WindowEvent {
        WindowEvent::Mouse {
            action: MouseAction::Drag(Button::Left),
            pos: Point::new(x, y),
        }
    }

    /// Convenience constructor for typing one character.
    pub fn ch(c: char) -> WindowEvent {
        WindowEvent::Key(Key::Char(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mouse_action_button_extraction() {
        assert_eq!(MouseAction::Down(Button::Left).button(), Some(Button::Left));
        assert_eq!(
            MouseAction::Drag(Button::Right).button(),
            Some(Button::Right)
        );
        assert_eq!(MouseAction::Movement.button(), None);
    }

    #[test]
    fn convenience_constructors() {
        assert_eq!(
            WindowEvent::left_down(3, 4),
            WindowEvent::Mouse {
                action: MouseAction::Down(Button::Left),
                pos: Point::new(3, 4)
            }
        );
        assert_eq!(WindowEvent::ch('x'), WindowEvent::Key(Key::Char('x')));
    }
}
