//! `awmsim`: the simulated ITC/Andrew window manager backend.
//!
//! The original Andrew window system (Gosling & Rosenthal's *network
//! window manager*) was a display server reached over a byte-stream
//! protocol. This backend models that: drawing operations are **recorded**
//! as a display list of [`DrawOp`]s (and can be encoded to and decoded
//! from a wire-format byte stream), then **replayed** to pixels on demand
//! — which is also how [`crate::Window::snapshot`] works here.
//!
//! Running the same application on `x11sim` and `awmsim` and comparing
//! snapshots is how the integration tests demonstrate the paper's §8
//! claim: *"we are currently able to run applications on two different
//! window systems without any recompilation."*

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use atk_graphics::{
    BitmapFont, Color, FontDesc, FontMetrics, FontStyle, Framebuffer, Point, RasterOp, Rect,
    Region, Size,
};

use crate::event::WindowEvent;
use crate::traits::{
    BuiltinFontDriver, CursorHandle, CursorShape, FontDriver, Graphic, GraphicState,
    OffscreenWindow, Window, WindowSystem,
};

/// One recorded drawing operation — an entry in the display list and a
/// message in the simulated wire protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum DrawOp {
    /// Set foreground color.
    SetFg(Color),
    /// Set background color.
    SetBg(Color),
    /// Set pen width.
    SetLineWidth(i32),
    /// Set current font.
    SetFont(FontDesc),
    /// Set transfer op.
    SetRop(RasterOp),
    /// Push state.
    GSave,
    /// Pop state.
    GRestore,
    /// Translate the origin.
    Translate(i32, i32),
    /// Intersect clip with a rect.
    ClipRect(Rect),
    /// Intersect clip with a region (as its banded rects).
    ClipRegion(Vec<Rect>),
    /// Line segment.
    Line(Point, Point),
    /// Rectangle outline.
    RectOutline(Rect),
    /// Filled rectangle.
    RectFill(Rect),
    /// Background-filled rectangle.
    RectClear(Rect),
    /// Ellipse outline.
    OvalOutline(Rect),
    /// Filled ellipse.
    OvalFill(Rect),
    /// Filled polygon.
    PolyFill(Vec<Point>),
    /// Filled pie wedge (angles in centidegrees for wire encoding).
    WedgeFill(Rect, i32, i32),
    /// Top-aligned string.
    Text(Point, String),
    /// Baseline-aligned string.
    TextBaseline(Point, String),
    /// Raster image copy (bits flattened row-major).
    Blit {
        /// Image width.
        width: i32,
        /// Image height.
        height: i32,
        /// Packed RGB pixels, row-major.
        pixels: Vec<u32>,
        /// Destination in local coordinates.
        dst: Point,
    },
    /// On-drawable copy (scroll).
    CopyArea(Rect, Point),
}

/// The simulated Andrew window manager.
#[derive(Debug, Default)]
pub struct AwmSim {
    fonts: BuiltinFontDriver,
    next_cursor: u32,
}

impl AwmSim {
    /// Creates the backend.
    pub fn new() -> AwmSim {
        AwmSim::default()
    }
}

impl WindowSystem for AwmSim {
    fn name(&self) -> &str {
        "awmsim"
    }

    fn open_window(&mut self, title: &str, size: Size) -> Box<dyn Window> {
        Box::new(AwmWindow::new(title, size))
    }

    fn open_offscreen(&mut self, size: Size) -> Box<dyn OffscreenWindow> {
        Box::new(AwmOffscreen::new(size))
    }

    fn define_cursor(&mut self, shape: CursorShape) -> CursorHandle {
        self.next_cursor += 1;
        CursorHandle {
            shape,
            id: self.next_cursor,
        }
    }

    fn font_driver(&self) -> &dyn FontDriver {
        &self.fonts
    }
}

/// A window on the simulated Andrew display server.
pub struct AwmWindow {
    title: String,
    size: Size,
    graphic: AwmGraphic,
    events: VecDeque<WindowEvent>,
    cursor: CursorHandle,
}

impl AwmWindow {
    /// Creates a window directly (the window system's `open_window` is
    /// the normal path; this is public for protocol-level tests).
    pub fn new(title: &str, size: Size) -> AwmWindow {
        let mut events = VecDeque::new();
        events.push_back(WindowEvent::Expose(Rect::at(Point::ORIGIN, size)));
        AwmWindow {
            title: title.to_string(),
            size,
            graphic: AwmGraphic::new(),
            events,
            cursor: CursorHandle {
                shape: CursorShape::Arrow,
                id: 0,
            },
        }
    }

    /// The recorded display list (what would have been sent down the
    /// network connection).
    pub fn display_list(&self) -> Vec<DrawOp> {
        self.graphic.ops.borrow().clone()
    }
}

impl Window for AwmWindow {
    fn size(&self) -> Size {
        self.size
    }

    fn resize(&mut self, size: Size) {
        self.size = size;
        self.graphic.ops.borrow_mut().clear();
        self.events.push_back(WindowEvent::Resize(size));
        self.events
            .push_back(WindowEvent::Expose(Rect::at(Point::ORIGIN, size)));
    }

    fn title(&self) -> &str {
        &self.title
    }

    fn set_title(&mut self, title: &str) {
        self.title = title.to_string();
    }

    fn graphic(&mut self) -> &mut dyn Graphic {
        &mut self.graphic
    }

    fn set_cursor(&mut self, cursor: CursorHandle) {
        self.cursor = cursor;
    }

    fn cursor(&self) -> CursorHandle {
        self.cursor
    }

    fn post_event(&mut self, event: WindowEvent) {
        self.events.push_back(event);
    }

    fn next_event(&mut self) -> Option<WindowEvent> {
        self.events.pop_front()
    }

    fn snapshot(&self) -> Option<Framebuffer> {
        let mut fb = Framebuffer::new(self.size.width, self.size.height, Color::WHITE);
        replay(&self.graphic.ops.borrow(), &mut fb);
        Some(fb)
    }

    fn op_count(&self) -> u64 {
        self.graphic.ops.borrow().len() as u64
    }
}

/// Off-screen plane on the display-list backend.
pub struct AwmOffscreen {
    size: Size,
    graphic: AwmGraphic,
}

impl AwmOffscreen {
    fn new(size: Size) -> AwmOffscreen {
        AwmOffscreen {
            size,
            graphic: AwmGraphic::new(),
        }
    }
}

impl OffscreenWindow for AwmOffscreen {
    fn size(&self) -> Size {
        self.size
    }

    fn graphic(&mut self) -> &mut dyn Graphic {
        &mut self.graphic
    }

    fn bits(&self) -> Framebuffer {
        let mut fb = Framebuffer::new(self.size.width, self.size.height, Color::WHITE);
        replay(&self.graphic.ops.borrow(), &mut fb);
        fb
    }
}

/// The recording drawable: every call appends a [`DrawOp`]; queries are
/// answered from a mirrored [`GraphicState`].
pub struct AwmGraphic {
    st: GraphicState,
    ops: Rc<RefCell<Vec<DrawOp>>>,
}

impl AwmGraphic {
    fn new() -> AwmGraphic {
        AwmGraphic {
            st: GraphicState::new(),
            ops: Rc::new(RefCell::new(Vec::new())),
        }
    }

    fn push(&self, op: DrawOp) {
        self.ops.borrow_mut().push(op);
    }
}

impl Graphic for AwmGraphic {
    fn set_foreground(&mut self, color: Color) {
        self.st.fg = color;
        self.push(DrawOp::SetFg(color));
    }
    fn foreground(&self) -> Color {
        self.st.fg
    }
    fn set_background(&mut self, color: Color) {
        self.st.bg = color;
        self.push(DrawOp::SetBg(color));
    }
    fn background(&self) -> Color {
        self.st.bg
    }
    fn set_line_width(&mut self, width: i32) {
        self.st.line_width = width.max(1);
        self.push(DrawOp::SetLineWidth(width.max(1)));
    }
    fn line_width(&self) -> i32 {
        self.st.line_width
    }
    fn set_font(&mut self, font: FontDesc) {
        self.st.font = font.clone();
        self.push(DrawOp::SetFont(font));
    }
    fn font(&self) -> &FontDesc {
        &self.st.font
    }
    fn set_raster_op(&mut self, op: RasterOp) {
        self.st.rop = op;
        self.push(DrawOp::SetRop(op));
    }
    fn raster_op(&self) -> RasterOp {
        self.st.rop
    }

    fn gsave(&mut self) {
        self.st.save();
        self.push(DrawOp::GSave);
    }
    fn grestore(&mut self) {
        self.st.restore();
        self.push(DrawOp::GRestore);
    }
    fn translate(&mut self, dx: i32, dy: i32) {
        self.st.translate(dx, dy);
        self.push(DrawOp::Translate(dx, dy));
    }
    fn clip_rect(&mut self, r: Rect) {
        self.st.clip_rect(r);
        self.push(DrawOp::ClipRect(r));
    }
    fn clip_region(&mut self, region: &Region) {
        self.st.clip_region(region);
        self.push(DrawOp::ClipRegion(region.rects().to_vec()));
    }
    fn clip_bounds(&self) -> Rect {
        self.st
            .clip_bounds_local(Rect::new(0, 0, i32::MAX / 4, i32::MAX / 4))
    }

    fn move_to(&mut self, p: Point) {
        self.st.pen = p;
    }
    fn line_to(&mut self, p: Point) {
        let from = self.st.pen;
        self.draw_line(from, p);
        self.st.pen = p;
    }
    fn current_point(&self) -> Point {
        self.st.pen
    }

    fn draw_line(&mut self, a: Point, b: Point) {
        self.push(DrawOp::Line(a, b));
    }
    fn draw_rect(&mut self, r: Rect) {
        self.push(DrawOp::RectOutline(r));
    }
    fn fill_rect(&mut self, r: Rect) {
        self.push(DrawOp::RectFill(r));
    }
    fn clear_rect(&mut self, r: Rect) {
        self.push(DrawOp::RectClear(r));
    }
    fn draw_oval(&mut self, r: Rect) {
        self.push(DrawOp::OvalOutline(r));
    }
    fn fill_oval(&mut self, r: Rect) {
        self.push(DrawOp::OvalFill(r));
    }
    fn fill_polygon(&mut self, pts: &[Point]) {
        self.push(DrawOp::PolyFill(pts.to_vec()));
    }
    fn fill_wedge(&mut self, r: Rect, start_deg: f64, end_deg: f64) {
        self.push(DrawOp::WedgeFill(
            r,
            (start_deg * 100.0).round() as i32,
            (end_deg * 100.0).round() as i32,
        ));
    }
    fn draw_string(&mut self, p: Point, s: &str) {
        self.push(DrawOp::Text(p, s.to_string()));
    }
    fn draw_string_baseline(&mut self, p: Point, s: &str) {
        self.push(DrawOp::TextBaseline(p, s.to_string()));
    }
    fn bitblt(&mut self, bits: &Framebuffer, src: Rect, dst: Point) {
        // Flatten the source rect so the display list is self-contained.
        let src = src.intersect(bits.bounds());
        let mut pixels = Vec::with_capacity((src.width * src.height).max(0) as usize);
        for y in src.y..src.bottom() {
            for x in src.x..src.right() {
                pixels.push(bits.get(x, y).0);
            }
        }
        self.push(DrawOp::Blit {
            width: src.width,
            height: src.height,
            pixels,
            dst,
        });
    }
    fn copy_area(&mut self, src: Rect, dst: Point) {
        self.push(DrawOp::CopyArea(src, dst));
    }
    fn flush(&mut self) {
        // The wire would be flushed here; recording needs nothing.
    }

    fn string_width(&self, s: &str) -> i32 {
        self.st.font.string_width(s)
    }
    fn font_metrics(&self) -> FontMetrics {
        self.st.font.metrics()
    }
}

/// Executes a display list into a framebuffer.
pub fn replay(ops: &[DrawOp], fb: &mut Framebuffer) {
    let mut st = GraphicState::new();
    let apply_clip = |st: &GraphicState, fb: &mut Framebuffer| {
        fb.set_clip(st.clip.clone());
    };
    for op in ops {
        match op {
            DrawOp::SetFg(c) => st.fg = *c,
            DrawOp::SetBg(c) => st.bg = *c,
            DrawOp::SetLineWidth(w) => st.line_width = *w,
            DrawOp::SetFont(f) => st.font = f.clone(),
            DrawOp::SetRop(r) => st.rop = *r,
            DrawOp::GSave => st.save(),
            DrawOp::GRestore => st.restore(),
            DrawOp::Translate(dx, dy) => st.translate(*dx, *dy),
            DrawOp::ClipRect(r) => st.clip_rect(*r),
            DrawOp::ClipRegion(rects) => {
                let mut region = Region::new();
                for r in rects {
                    region.add_rect(*r);
                }
                st.clip_region(&region);
            }
            DrawOp::Line(a, b) => {
                apply_clip(&st, fb);
                fb.draw_line(st.to_device(*a), st.to_device(*b), st.line_width, st.fg);
            }
            DrawOp::RectOutline(r) => {
                apply_clip(&st, fb);
                fb.draw_rect(st.rect_to_device(*r), st.fg);
            }
            DrawOp::RectFill(r) => {
                apply_clip(&st, fb);
                fb.fill_rect_op(st.rect_to_device(*r), st.fg, st.rop);
            }
            DrawOp::RectClear(r) => {
                apply_clip(&st, fb);
                fb.fill_rect(st.rect_to_device(*r), st.bg);
            }
            DrawOp::OvalOutline(r) => {
                apply_clip(&st, fb);
                fb.draw_oval(st.rect_to_device(*r), st.fg);
            }
            DrawOp::OvalFill(r) => {
                apply_clip(&st, fb);
                fb.fill_oval(st.rect_to_device(*r), st.fg);
            }
            DrawOp::PolyFill(pts) => {
                apply_clip(&st, fb);
                let dev: Vec<Point> = pts.iter().map(|p| st.to_device(*p)).collect();
                fb.fill_polygon(&dev, st.fg);
            }
            DrawOp::WedgeFill(r, a0, a1) => {
                apply_clip(&st, fb);
                fb.fill_wedge(
                    st.rect_to_device(*r),
                    *a0 as f64 / 100.0,
                    *a1 as f64 / 100.0,
                    st.fg,
                );
            }
            DrawOp::Text(p, s) => {
                apply_clip(&st, fb);
                BitmapFont::draw(fb, st.to_device(*p), s, &st.font, st.fg);
            }
            DrawOp::TextBaseline(p, s) => {
                apply_clip(&st, fb);
                BitmapFont::draw_baseline(fb, st.to_device(*p), s, &st.font, st.fg);
            }
            DrawOp::Blit {
                width,
                height,
                pixels,
                dst,
            } => {
                apply_clip(&st, fb);
                let mut src = Framebuffer::new(*width, *height, Color::WHITE);
                for y in 0..*height {
                    for x in 0..*width {
                        src.set(x, y, Color(pixels[(y * width + x) as usize]));
                    }
                }
                fb.blit(&src, src.bounds(), st.to_device(*dst), st.rop);
            }
            DrawOp::CopyArea(src, dst) => {
                apply_clip(&st, fb);
                fb.copy_within(st.rect_to_device(*src), st.to_device(*dst));
            }
        }
    }
    fb.set_clip(None);
}

// --- Wire protocol ---------------------------------------------------------

/// Encodes a display list as the simulated network protocol byte stream.
pub fn encode(ops: &[DrawOp]) -> Vec<u8> {
    let mut out = Vec::new();
    for op in ops {
        encode_op(op, &mut out);
    }
    out
}

/// Decodes a protocol byte stream back into a display list.
///
/// # Errors
///
/// Returns a description of the first malformed message.
pub fn decode(bytes: &[u8]) -> Result<Vec<DrawOp>, String> {
    let mut ops = Vec::new();
    let mut cur = Cursor { buf: bytes, pos: 0 };
    while !cur.done() {
        ops.push(decode_op(&mut cur)?);
    }
    Ok(ops)
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn done(&self) -> bool {
        self.pos >= self.buf.len()
    }
    fn u8(&mut self) -> Result<u8, String> {
        let b = *self.buf.get(self.pos).ok_or("truncated stream")?;
        self.pos += 1;
        Ok(b)
    }
    fn i32(&mut self) -> Result<i32, String> {
        let end = self.pos + 4;
        let bytes = self.buf.get(self.pos..end).ok_or("truncated i32")?;
        self.pos = end;
        Ok(i32::from_le_bytes(bytes.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, String> {
        Ok(self.i32()? as u32)
    }
    fn string(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let end = self.pos + len;
        let bytes = self.buf.get(self.pos..end).ok_or("truncated string")?;
        self.pos = end;
        String::from_utf8(bytes.to_vec()).map_err(|e| e.to_string())
    }
}

fn put_i32(out: &mut Vec<u8>, v: i32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_point(out: &mut Vec<u8>, p: Point) {
    put_i32(out, p.x);
    put_i32(out, p.y);
}

fn put_rect(out: &mut Vec<u8>, r: Rect) {
    put_i32(out, r.x);
    put_i32(out, r.y);
    put_i32(out, r.width);
    put_i32(out, r.height);
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_i32(out, s.len() as i32);
    out.extend_from_slice(s.as_bytes());
}

fn rop_code(r: RasterOp) -> u8 {
    match r {
        RasterOp::Copy => 0,
        RasterOp::Xor => 1,
        RasterOp::Or => 2,
        RasterOp::AndNot => 3,
    }
}

fn rop_from(code: u8) -> Result<RasterOp, String> {
    Ok(match code {
        0 => RasterOp::Copy,
        1 => RasterOp::Xor,
        2 => RasterOp::Or,
        3 => RasterOp::AndNot,
        other => return Err(format!("bad raster op {other}")),
    })
}

fn encode_op(op: &DrawOp, out: &mut Vec<u8>) {
    match op {
        DrawOp::SetFg(c) => {
            out.push(1);
            put_i32(out, c.0 as i32);
        }
        DrawOp::SetBg(c) => {
            out.push(2);
            put_i32(out, c.0 as i32);
        }
        DrawOp::SetLineWidth(w) => {
            out.push(3);
            put_i32(out, *w);
        }
        DrawOp::SetFont(f) => {
            out.push(4);
            put_string(out, &f.family);
            out.push(f.style.bold as u8);
            out.push(f.style.italic as u8);
            out.push(f.style.underline as u8);
            put_i32(out, f.size as i32);
        }
        DrawOp::SetRop(r) => {
            out.push(5);
            out.push(rop_code(*r));
        }
        DrawOp::GSave => out.push(6),
        DrawOp::GRestore => out.push(7),
        DrawOp::Translate(dx, dy) => {
            out.push(8);
            put_i32(out, *dx);
            put_i32(out, *dy);
        }
        DrawOp::ClipRect(r) => {
            out.push(9);
            put_rect(out, *r);
        }
        DrawOp::ClipRegion(rects) => {
            out.push(10);
            put_i32(out, rects.len() as i32);
            for r in rects {
                put_rect(out, *r);
            }
        }
        DrawOp::Line(a, b) => {
            out.push(11);
            put_point(out, *a);
            put_point(out, *b);
        }
        DrawOp::RectOutline(r) => {
            out.push(12);
            put_rect(out, *r);
        }
        DrawOp::RectFill(r) => {
            out.push(13);
            put_rect(out, *r);
        }
        DrawOp::RectClear(r) => {
            out.push(14);
            put_rect(out, *r);
        }
        DrawOp::OvalOutline(r) => {
            out.push(15);
            put_rect(out, *r);
        }
        DrawOp::OvalFill(r) => {
            out.push(16);
            put_rect(out, *r);
        }
        DrawOp::PolyFill(pts) => {
            out.push(17);
            put_i32(out, pts.len() as i32);
            for p in pts {
                put_point(out, *p);
            }
        }
        DrawOp::WedgeFill(r, a0, a1) => {
            out.push(18);
            put_rect(out, *r);
            put_i32(out, *a0);
            put_i32(out, *a1);
        }
        DrawOp::Text(p, s) => {
            out.push(19);
            put_point(out, *p);
            put_string(out, s);
        }
        DrawOp::TextBaseline(p, s) => {
            out.push(20);
            put_point(out, *p);
            put_string(out, s);
        }
        DrawOp::Blit {
            width,
            height,
            pixels,
            dst,
        } => {
            out.push(21);
            put_i32(out, *width);
            put_i32(out, *height);
            put_point(out, *dst);
            for px in pixels {
                put_i32(out, *px as i32);
            }
        }
        DrawOp::CopyArea(src, dst) => {
            out.push(22);
            put_rect(out, *src);
            put_point(out, *dst);
        }
    }
}

fn decode_op(cur: &mut Cursor<'_>) -> Result<DrawOp, String> {
    let code = cur.u8()?;
    let point =
        |cur: &mut Cursor<'_>| -> Result<Point, String> { Ok(Point::new(cur.i32()?, cur.i32()?)) };
    let rect = |cur: &mut Cursor<'_>| -> Result<Rect, String> {
        Ok(Rect::new(cur.i32()?, cur.i32()?, cur.i32()?, cur.i32()?))
    };
    Ok(match code {
        1 => DrawOp::SetFg(Color(cur.u32()?)),
        2 => DrawOp::SetBg(Color(cur.u32()?)),
        3 => DrawOp::SetLineWidth(cur.i32()?),
        4 => {
            let family = cur.string()?;
            let bold = cur.u8()? != 0;
            let italic = cur.u8()? != 0;
            let underline = cur.u8()? != 0;
            let size = cur.u32()?;
            DrawOp::SetFont(FontDesc::new(
                &family,
                FontStyle {
                    bold,
                    italic,
                    underline,
                },
                size,
            ))
        }
        5 => DrawOp::SetRop(rop_from(cur.u8()?)?),
        6 => DrawOp::GSave,
        7 => DrawOp::GRestore,
        8 => DrawOp::Translate(cur.i32()?, cur.i32()?),
        9 => DrawOp::ClipRect(rect(cur)?),
        10 => {
            let n = cur.i32()?;
            let mut rects = Vec::with_capacity(n.max(0) as usize);
            for _ in 0..n {
                rects.push(rect(cur)?);
            }
            DrawOp::ClipRegion(rects)
        }
        11 => DrawOp::Line(point(cur)?, point(cur)?),
        12 => DrawOp::RectOutline(rect(cur)?),
        13 => DrawOp::RectFill(rect(cur)?),
        14 => DrawOp::RectClear(rect(cur)?),
        15 => DrawOp::OvalOutline(rect(cur)?),
        16 => DrawOp::OvalFill(rect(cur)?),
        17 => {
            let n = cur.i32()?;
            let mut pts = Vec::with_capacity(n.max(0) as usize);
            for _ in 0..n {
                pts.push(point(cur)?);
            }
            DrawOp::PolyFill(pts)
        }
        18 => DrawOp::WedgeFill(rect(cur)?, cur.i32()?, cur.i32()?),
        19 => DrawOp::Text(point(cur)?, cur.string()?),
        20 => DrawOp::TextBaseline(point(cur)?, cur.string()?),
        21 => {
            let width = cur.i32()?;
            let height = cur.i32()?;
            let dst = point(cur)?;
            let mut pixels = Vec::with_capacity((width * height).max(0) as usize);
            for _ in 0..width * height {
                pixels.push(cur.u32()?);
            }
            DrawOp::Blit {
                width,
                height,
                pixels,
                dst,
            }
        }
        22 => DrawOp::CopyArea(rect(cur)?, point(cur)?),
        other => return Err(format!("unknown opcode {other}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_and_replay_match_direct_rasterization() {
        let mut ws = AwmSim::new();
        let mut w = ws.open_window("t", Size::new(60, 40));
        let g = w.graphic();
        g.fill_rect(Rect::new(5, 5, 20, 10));
        g.gsave();
        g.translate(30, 0);
        g.draw_line(Point::new(0, 0), Point::new(10, 10));
        g.grestore();
        g.draw_string(Point::new(2, 20), "hi");

        let snap = w.snapshot().unwrap();

        // Same ops straight into a framebuffer.
        let mut direct = Framebuffer::new(60, 40, Color::WHITE);
        direct.fill_rect(Rect::new(5, 5, 20, 10), Color::BLACK);
        direct.draw_line(Point::new(30, 0), Point::new(40, 10), 1, Color::BLACK);
        BitmapFont::draw(
            &mut direct,
            Point::new(2, 20),
            "hi",
            &FontDesc::default_body(),
            Color::BLACK,
        );
        assert_eq!(snap, direct);
    }

    #[test]
    fn op_count_counts_recorded_ops() {
        let mut ws = AwmSim::new();
        let mut w = ws.open_window("t", Size::new(10, 10));
        w.graphic().fill_rect(Rect::new(0, 0, 1, 1));
        w.graphic().set_foreground(Color::RED);
        assert_eq!(w.op_count(), 2);
    }

    #[test]
    fn wire_protocol_round_trips_every_op() {
        let ops = vec![
            DrawOp::SetFg(Color::RED),
            DrawOp::SetBg(Color::WHITE),
            DrawOp::SetLineWidth(3),
            DrawOp::SetFont(FontDesc::new("andy", FontStyle::BOLD, 14)),
            DrawOp::SetRop(RasterOp::Xor),
            DrawOp::GSave,
            DrawOp::Translate(4, -5),
            DrawOp::ClipRect(Rect::new(1, 2, 3, 4)),
            DrawOp::ClipRegion(vec![Rect::new(0, 0, 5, 5), Rect::new(9, 9, 2, 2)]),
            DrawOp::Line(Point::new(0, 0), Point::new(9, 9)),
            DrawOp::RectOutline(Rect::new(1, 1, 8, 8)),
            DrawOp::RectFill(Rect::new(2, 2, 6, 6)),
            DrawOp::RectClear(Rect::new(3, 3, 4, 4)),
            DrawOp::OvalOutline(Rect::new(0, 0, 10, 6)),
            DrawOp::OvalFill(Rect::new(0, 0, 6, 10)),
            DrawOp::PolyFill(vec![Point::new(0, 0), Point::new(5, 0), Point::new(0, 5)]),
            DrawOp::WedgeFill(Rect::new(0, 0, 10, 10), 0, 9000),
            DrawOp::Text(Point::new(1, 1), "hello".into()),
            DrawOp::TextBaseline(Point::new(1, 9), "world".into()),
            DrawOp::Blit {
                width: 2,
                height: 1,
                pixels: vec![0xFF0000, 0x00FF00],
                dst: Point::new(3, 3),
            },
            DrawOp::CopyArea(Rect::new(0, 0, 4, 4), Point::new(5, 5)),
            DrawOp::GRestore,
        ];
        let bytes = encode(&ops);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, ops);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(&[255]).is_err());
        assert!(decode(&[11, 1, 2]).is_err()); // Truncated line op.
    }

    #[test]
    fn replay_of_decoded_stream_matches_snapshot() {
        let mut w = AwmWindow::new("t", Size::new(30, 30));
        w.graphic().fill_oval(Rect::new(2, 2, 26, 26));
        w.graphic().draw_string(Point::new(3, 10), "ok");
        let ops = w.display_list();
        let bytes = encode(&ops);
        let decoded = decode(&bytes).unwrap();
        let mut fb = Framebuffer::new(30, 30, Color::WHITE);
        replay(&decoded, &mut fb);
        assert_eq!(fb, w.snapshot().unwrap());
    }

    #[test]
    fn blit_through_display_list_preserves_pixels() {
        let mut src = Framebuffer::new(3, 3, Color::WHITE);
        src.set(1, 1, Color::RED);
        let mut w = AwmWindow::new("t", Size::new(10, 10));
        w.graphic().bitblt(&src, src.bounds(), Point::new(4, 4));
        let snap = w.snapshot().unwrap();
        assert_eq!(snap.get(5, 5), Color::RED);
    }
}
