//! The porting surface, as data.
//!
//! Paper §8: "To port the toolkit to another window system, six classes
//! must be written, encompassing approximately 70 routines. Of those
//! routines, about 50 routines are normally simple transformations to the
//! graphics layer of the underlying window system."
//!
//! [`port_surface`] enumerates, per class, every routine a backend must
//! supply (the required trait methods — default-implemented conveniences
//! are *not* counted, since a port inherits them). The integration test
//! `port_surface.rs` asserts the totals stay within the paper's envelope,
//! so the claim is continuously verified against the real trait
//! definitions.

/// Routine inventory for one porting class.
#[derive(Debug, Clone, Copy)]
pub struct PortClass {
    /// Class name as in the paper.
    pub name: &'static str,
    /// Required routines a backend must implement.
    pub routines: &'static [&'static str],
    /// True if these routines are "simple transformations to the graphics
    /// layer" (the paper's ~50).
    pub graphics_layer: bool,
}

/// The six classes and their required routines. Keep in sync with the
/// traits in [`crate::traits`]; the unit test below cross-checks counts.
pub fn port_surface() -> &'static [PortClass] {
    &[
        PortClass {
            name: "windowsystem",
            routines: &[
                "name",
                "open_window",
                "open_offscreen",
                "define_cursor",
                "font_driver",
            ],
            graphics_layer: false,
        },
        PortClass {
            name: "im (interaction manager event source)",
            routines: &[
                "size",
                "resize",
                "title",
                "set_title",
                "graphic",
                "set_cursor",
                "cursor",
                "post_event",
                "next_event",
                "snapshot",
                "op_count",
            ],
            graphics_layer: false,
        },
        PortClass {
            name: "cursor",
            routines: &["define_cursor", "set_cursor", "cursor_shape"],
            graphics_layer: false,
        },
        PortClass {
            name: "graphic",
            routines: &[
                "set_foreground",
                "foreground",
                "set_background",
                "background",
                "set_line_width",
                "line_width",
                "set_font",
                "font",
                "set_raster_op",
                "raster_op",
                "gsave",
                "grestore",
                "translate",
                "clip_rect",
                "clip_region",
                "clip_bounds",
                "move_to",
                "line_to",
                "current_point",
                "draw_line",
                "draw_rect",
                "fill_rect",
                "clear_rect",
                "draw_oval",
                "fill_oval",
                "fill_polygon",
                "fill_wedge",
                "draw_string",
                "draw_string_baseline",
                "bitblt",
                "copy_area",
                "flush",
                "string_width",
                "font_metrics",
            ],
            graphics_layer: true,
        },
        PortClass {
            name: "fontdesc",
            routines: &["metrics", "string_width", "char_width"],
            graphics_layer: true,
        },
        PortClass {
            name: "offscreenwindow",
            routines: &["size", "graphic", "bits"],
            graphics_layer: true,
        },
    ]
}

/// Total routine count across the six classes.
pub fn total_routines() -> usize {
    port_surface().iter().map(|c| c.routines.len()).sum()
}

/// Routine count of the graphics-layer classes (the paper's "about 50").
pub fn graphics_routines() -> usize {
    port_surface()
        .iter()
        .filter(|c| c.graphics_layer)
        .map(|c| c.routines.len())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_classes() {
        assert_eq!(port_surface().len(), 6);
    }

    #[test]
    fn totals_match_paper_envelope() {
        let total = total_routines();
        assert!(
            (50..=90).contains(&total),
            "paper says ~70 routines, surface has {total}"
        );
        let gfx = graphics_routines();
        assert!(
            (35..=60).contains(&gfx),
            "paper says ~50 graphics routines, surface has {gfx}"
        );
    }

    #[test]
    fn routine_names_are_unique_within_class() {
        for class in port_surface() {
            let mut names: Vec<_> = class.routines.to_vec();
            names.sort_unstable();
            let before = names.len();
            names.dedup();
            assert_eq!(before, names.len(), "duplicate routine in {}", class.name);
        }
    }
}
