//! The baseline the paper argues against: a *global, physical* event
//! dispatcher.
//!
//! "Other systems closely tie the handling of events to the physical
//! relationship of components on the screen … many toolkits use a global
//! analysis of all views in order to process and distribute events."
//! (paper §3). The Andrew Base Editor prototype worked this way, and the
//! paper recounts how it made the drawing editor impossible: with a line
//! drawn over embedded text, "only the drawing component could determine
//! whether the user was selecting the line or the underlying text",
//! but the global dispatcher had already decided.
//!
//! [`GlobalDispatcher`] reproduces that model — a flat registry of
//! screen rectangles with stacking order; the topmost rectangle under the
//! pointer wins, unconditionally. Experiment E1 uses it two ways:
//!
//! * as a *performance* baseline against tree-routed dispatch, and
//! * as a *correctness* foil: the integration test builds the paper's
//!   line-over-text scene and shows the global model gives the event to
//!   the wrong component, while parental dispatch resolves it.

use atk_graphics::{Point, Rect};

/// A registered screen element in the global model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalTarget {
    /// Identifier chosen by the registrant.
    pub tag: u32,
    /// Screen rectangle (window coordinates).
    pub rect: Rect,
    /// Stacking order; higher is "on top".
    pub z: i32,
}

/// A flat, globally-analyzed dispatcher (the pre-toolkit model).
#[derive(Debug, Default)]
pub struct GlobalDispatcher {
    targets: Vec<GlobalTarget>,
    dispatches: u64,
}

impl GlobalDispatcher {
    /// An empty dispatcher.
    pub fn new() -> GlobalDispatcher {
        GlobalDispatcher::default()
    }

    /// Registers an element.
    pub fn register(&mut self, tag: u32, rect: Rect, z: i32) {
        self.targets.push(GlobalTarget { tag, rect, z });
    }

    /// Removes every element with `tag`.
    pub fn unregister(&mut self, tag: u32) {
        self.targets.retain(|t| t.tag != tag);
    }

    /// Number of registered elements.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Dispatches a point: the **topmost** rectangle containing it wins,
    /// with no appeal — the global model's defining (and limiting) rule.
    pub fn dispatch(&mut self, pt: Point) -> Option<u32> {
        self.dispatches += 1;
        self.targets
            .iter()
            .filter(|t| t.rect.contains(pt))
            .max_by_key(|t| t.z)
            .map(|t| t.tag)
    }

    /// Total dispatches performed.
    pub fn dispatches(&self) -> u64 {
        self.dispatches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topmost_wins() {
        let mut d = GlobalDispatcher::new();
        d.register(1, Rect::new(0, 0, 100, 100), 0);
        d.register(2, Rect::new(40, 40, 20, 20), 5);
        assert_eq!(d.dispatch(Point::new(50, 50)), Some(2));
        assert_eq!(d.dispatch(Point::new(5, 5)), Some(1));
        assert_eq!(d.dispatch(Point::new(500, 500)), None);
    }

    #[test]
    fn the_line_over_text_failure() {
        // The paper's scene: embedded text, with a drawn line crossing it.
        // In the global model the line's (thin) rect sits on top, so a
        // click near the line *always* selects the line — the drawing
        // component never gets the chance to ask "line or text?".
        let mut d = GlobalDispatcher::new();
        const TEXT: u32 = 1;
        const LINE: u32 = 2;
        d.register(TEXT, Rect::new(10, 10, 200, 40), 1);
        d.register(LINE, Rect::new(0, 28, 300, 4), 2);
        // Click in the text area but within the line's grab band: global
        // dispatch hands it to the line, unconditionally.
        assert_eq!(d.dispatch(Point::new(100, 30)), Some(LINE));
        // Even when the intent is plainly textual (caret placement between
        // characters just below the line), the answer is the same.
        assert_eq!(d.dispatch(Point::new(100, 29)), Some(LINE));
    }

    #[test]
    fn unregister_removes_all_with_tag() {
        let mut d = GlobalDispatcher::new();
        d.register(7, Rect::new(0, 0, 10, 10), 0);
        d.register(7, Rect::new(20, 0, 10, 10), 0);
        d.register(8, Rect::new(40, 0, 10, 10), 0);
        d.unregister(7);
        assert_eq!(d.len(), 1);
        assert_eq!(d.dispatch(Point::new(5, 5)), None);
    }
}
