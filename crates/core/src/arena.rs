//! Generational slot arenas for data objects and views.
//!
//! The toolkit's object graph (paper §2–3) is a web: views reference data
//! objects, data objects observe other data objects, parents reference
//! children. In Rust we avoid `Rc<RefCell<…>>` webs by owning everything
//! in arenas keyed by generational ids — an id names an object without
//! borrowing it, serializes naturally into the datastream's reference
//! tags, and detects use-after-free (a stale generation simply fails the
//! lookup).

use std::fmt;
use std::marker::PhantomData;

/// A generational index into an [`Arena<T>`].
///
/// The phantom parameter keeps data ids and view ids from being mixed up
/// at compile time.
pub struct Id<M> {
    index: u32,
    generation: u32,
    _marker: PhantomData<fn() -> M>,
}

impl<M> Id<M> {
    /// Raw slot index (for diagnostics only).
    pub fn index(self) -> usize {
        self.index as usize
    }

    /// A sentinel id that no arena will ever return; lookups fail cleanly.
    pub fn dangling() -> Id<M> {
        Id {
            index: u32::MAX,
            generation: u32::MAX,
            _marker: PhantomData,
        }
    }
}

// Manual impls: `derive` would wrongly require `M: Trait`.
impl<M> Clone for Id<M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<M> Copy for Id<M> {}
impl<M> PartialEq for Id<M> {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index && self.generation == other.generation
    }
}
impl<M> Eq for Id<M> {}
impl<M> std::hash::Hash for Id<M> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.index.hash(state);
        self.generation.hash(state);
    }
}
impl<M> PartialOrd for Id<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Id<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.index, self.generation).cmp(&(other.index, other.generation))
    }
}
impl<M> fmt::Debug for Id<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}v{}", self.index, self.generation)
    }
}

struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

/// A slot arena with generational ids and O(1) insert/remove/lookup.
pub struct Arena<T, M> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
    _marker: PhantomData<fn() -> M>,
}

impl<T, M> Default for Arena<T, M> {
    fn default() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
            _marker: PhantomData,
        }
    }
}

impl<T, M> Arena<T, M> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a value, returning its id.
    pub fn insert(&mut self, value: T) -> Id<M> {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            slot.value = Some(value);
            Id {
                index,
                generation: slot.generation,
                _marker: PhantomData,
            }
        } else {
            let index = self.slots.len() as u32;
            self.slots.push(Slot {
                generation: 0,
                value: Some(value),
            });
            Id {
                index,
                generation: 0,
                _marker: PhantomData,
            }
        }
    }

    /// Removes and returns the value, invalidating the id.
    pub fn remove(&mut self, id: Id<M>) -> Option<T> {
        let slot = self.slots.get_mut(id.index as usize)?;
        if slot.generation != id.generation {
            return None;
        }
        let value = slot.value.take()?;
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(id.index);
        self.len -= 1;
        Some(value)
    }

    /// Shared access.
    pub fn get(&self, id: Id<M>) -> Option<&T> {
        let slot = self.slots.get(id.index as usize)?;
        if slot.generation != id.generation {
            return None;
        }
        slot.value.as_ref()
    }

    /// Exclusive access.
    pub fn get_mut(&mut self, id: Id<M>) -> Option<&mut T> {
        let slot = self.slots.get_mut(id.index as usize)?;
        if slot.generation != id.generation {
            return None;
        }
        slot.value.as_mut()
    }

    /// True if the id refers to a live entry.
    pub fn contains(&self, id: Id<M>) -> bool {
        self.get(id).is_some()
    }

    /// Iterates live entries.
    pub fn iter(&self) -> impl Iterator<Item = (Id<M>, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.value.as_ref().map(|v| {
                (
                    Id {
                        index: i as u32,
                        generation: s.generation,
                        _marker: PhantomData,
                    },
                    v,
                )
            })
        })
    }

    /// Iterates live ids.
    pub fn ids(&self) -> Vec<Id<M>> {
        self.iter().map(|(id, _)| id).collect()
    }

    /// Deep-forks the arena by mapping every live value through `f`.
    ///
    /// The slot vector, per-slot generations, and the free list are
    /// preserved exactly, so every id minted against the source arena
    /// resolves to the corresponding value in the fork — the property
    /// the template-fork path depends on (ids are baked into view
    /// trees, observer lists, and anchors).
    pub fn fork_with<E>(&self, mut f: impl FnMut(&T) -> Result<T, E>) -> Result<Arena<T, M>, E> {
        let mut slots = Vec::with_capacity(self.slots.len());
        for s in &self.slots {
            let value = match &s.value {
                Some(v) => Some(f(v)?),
                None => None,
            };
            slots.push(Slot {
                generation: s.generation,
                value,
            });
        }
        Ok(Arena {
            slots,
            free: self.free.clone(),
            len: self.len,
            _marker: PhantomData,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    enum TestMark {}
    type TestArena = Arena<String, TestMark>;

    #[test]
    fn insert_get_remove() {
        let mut a = TestArena::new();
        let id = a.insert("hello".into());
        assert_eq!(a.get(id).unwrap(), "hello");
        assert_eq!(a.len(), 1);
        assert_eq!(a.remove(id).unwrap(), "hello");
        assert!(a.get(id).is_none());
        assert!(a.is_empty());
    }

    #[test]
    fn stale_id_fails_after_slot_reuse() {
        let mut a = TestArena::new();
        let id1 = a.insert("one".into());
        a.remove(id1);
        let id2 = a.insert("two".into());
        // Slot reused, but old id must not resolve.
        assert_eq!(id1.index(), id2.index());
        assert!(a.get(id1).is_none());
        assert_eq!(a.get(id2).unwrap(), "two");
        assert!(a.remove(id1).is_none());
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut a = TestArena::new();
        let id = a.insert("x".into());
        a.get_mut(id).unwrap().push('y');
        assert_eq!(a.get(id).unwrap(), "xy");
    }

    #[test]
    fn dangling_never_resolves() {
        let mut a = TestArena::new();
        a.insert("a".into());
        let d: Id<TestMark> = Id::dangling();
        assert!(a.get(d).is_none());
        assert!(!a.contains(d));
    }

    #[test]
    fn iter_yields_live_entries_only() {
        let mut a = TestArena::new();
        let i1 = a.insert("a".into());
        let _i2 = a.insert("b".into());
        a.remove(i1);
        let all: Vec<_> = a.iter().map(|(_, v)| v.clone()).collect();
        assert_eq!(all, vec!["b".to_string()]);
    }

    #[test]
    fn fork_preserves_slots_generations_and_free_list() {
        let mut a = TestArena::new();
        let i1 = a.insert("one".into());
        let i2 = a.insert("two".into());
        a.remove(i1); // Leaves a freed slot with a bumped generation.
        let f = a.fork_with(|v| Ok::<_, ()>(v.clone())).unwrap();
        assert_eq!(f.len(), 1);
        assert!(f.get(i1).is_none(), "stale id must stay stale in the fork");
        assert_eq!(f.get(i2).unwrap(), "two");
        // The next insert in source and fork must mint the SAME id.
        let mut a2 = a;
        let mut f2 = f;
        assert_eq!(a2.insert("three".into()), f2.insert("three".into()));
    }

    #[test]
    fn fork_propagates_mapper_errors() {
        let mut a = TestArena::new();
        a.insert("bad".into());
        let r = a.fork_with(|v| if v == "bad" { Err("no") } else { Ok(v.clone()) });
        assert_eq!(r.err(), Some("no"));
    }

    #[test]
    fn ids_are_distinct_types_per_marker() {
        // This is a compile-time property; we just exercise two arenas.
        enum OtherMark {}
        let mut a = TestArena::new();
        let mut b: Arena<String, OtherMark> = Arena::new();
        let _ida = a.insert("a".into());
        let idb = b.insert("b".into());
        assert_eq!(b.get(idb).unwrap(), "b");
    }
}
