//! The interaction manager (paper §3).
//!
//! "At the top of the tree is a view called the interaction manager which
//! is a window provided by the underlying window system. The interaction
//! manager has the responsibility of translating input events … from the
//! window system to the rest of the view tree \[and\] is also responsible
//! for synchronizing drawing requests between views. By design, it has
//! one child view, of arbitrary type."
//!
//! [`InteractionManager`] owns a backend [`Window`] and the root
//! [`ViewId`]. Its event loop:
//!
//! 1. dequeues window events and routes them — mouse events go to the
//!    root view, which decides disposition all the way down (parental
//!    authority); keys run the ancestor filter chain before reaching the
//!    focus; menu requests collect and merge contributions along the
//!    focus path;
//! 2. grants any pending focus request;
//! 3. flushes delayed-update notifications
//!    ([`World::flush_notifications`]);
//! 4. turns accumulated damage into **one** update pass down the tree —
//!    the "post up, come back down" protocol that lets parents repaint
//!    over children in the right order.

use atk_graphics::{Framebuffer, Point, Rect, Region};
use atk_wm::{CursorShape, Key, MouseAction, Window, WindowEvent, WindowSystem};

use crate::ids::ViewId;
use crate::menus::{merge_menus, MenuItem};
use crate::view::Update;
use crate::world::World;

/// Statistics kept by the interaction manager.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImStats {
    /// Window events dispatched.
    pub events: u64,
    /// Damage-driven update passes down the tree ([`InteractionManager::draw_region`]).
    pub updates: u64,
    /// Forced whole-window repaints ([`InteractionManager::draw`]).
    pub full_redraws: u64,
    /// Notifications flushed.
    pub notifications: u64,
    /// Keys consumed by ancestor filters (parental authority in action).
    pub keys_filtered: u64,
}

impl ImStats {
    /// Update passes of either kind.
    pub fn total_draws(&self) -> u64 {
        self.updates + self.full_redraws
    }
}

/// The top of the view tree. See the module docs.
pub struct InteractionManager {
    window: Box<dyn Window>,
    root: ViewId,
    focus: Option<ViewId>,
    offered_menus: Vec<MenuItem>,
    stats: ImStats,
    running: bool,
}

impl InteractionManager {
    /// Creates an interaction manager over `window` with the given root
    /// view, sizing the root to fill the window.
    pub fn new(world: &mut World, window: Box<dyn Window>, root: ViewId) -> InteractionManager {
        let size = window.size();
        world.set_view_bounds(root, Rect::new(0, 0, size.width, size.height));
        InteractionManager {
            window,
            root,
            focus: Some(root),
            offered_menus: Vec::new(),
            stats: ImStats::default(),
            running: true,
        }
    }

    /// The root view.
    pub fn root(&self) -> ViewId {
        self.root
    }

    /// The focused view, if any.
    pub fn focus(&self) -> Option<ViewId> {
        self.focus
    }

    /// Statistics so far.
    pub fn stats(&self) -> ImStats {
        self.stats
    }

    /// True until a `Close` event is processed.
    pub fn is_running(&self) -> bool {
        self.running
    }

    /// The underlying window (to inject events or adjust the title).
    pub fn window_mut(&mut self) -> &mut dyn Window {
        self.window.as_mut()
    }

    /// Menus offered at the last `MenuRequest` (tests and the scripted
    /// driver inspect these).
    pub fn offered_menus(&self) -> &[MenuItem] {
        &self.offered_menus
    }

    /// A snapshot of the window contents.
    pub fn snapshot(&self) -> Option<Framebuffer> {
        self.window.snapshot()
    }

    /// Forks this interaction manager onto a fresh window of `ws`,
    /// pairing with [`World::fork`] to duplicate a whole session.
    ///
    /// The new window is opened at the same size/title, its birth events
    /// are drained undelivered (the template already dispatched its
    /// own), and the template's rendered frame is adopted wholesale
    /// ([`Window::adopt_frame`] — one buffer hand-off on pixel-store
    /// backends, one blit op elsewhere) so the fork starts from the
    /// exact same frame a cold build would have produced.
    /// Focus, offered menus, stats, and the running flag carry over;
    /// the root id stays valid because the forked world preserves ids.
    pub fn fork_onto(&self, ws: &mut dyn WindowSystem) -> Result<InteractionManager, String> {
        let size = self.window.size();
        let mut window = ws.open_window(self.window.title(), size);
        while window.next_event().is_some() {}
        // Borrow the template's frame in place when the backend allows
        // it; only snapshot (a full clone) when it does not.
        let target = window.as_mut();
        let adopted = self
            .window
            .with_frame(&mut |frame| target.adopt_frame(frame));
        if !adopted {
            let snap = self
                .window
                .snapshot()
                .ok_or("backend cannot snapshot for forking")?;
            window.adopt_frame(&snap);
        }
        window.set_cursor(self.window.cursor());
        Ok(InteractionManager {
            window,
            root: self.root,
            focus: self.focus,
            offered_menus: self.offered_menus.clone(),
            stats: self.stats,
            running: self.running,
        })
    }

    /// Processes every queued window event, then settles notifications
    /// and damage. Returns the number of events handled.
    pub fn pump(&mut self, world: &mut World) -> usize {
        let mut handled = 0;
        while let Some(ev) = self.window.next_event() {
            self.dispatch(world, ev);
            handled += 1;
        }
        self.settle(world);
        handled
    }

    /// Posts an event and immediately pumps.
    pub fn feed(&mut self, world: &mut World, ev: WindowEvent) {
        self.window.post_event(ev);
        self.pump(world);
    }

    /// Routes one event.
    pub fn dispatch(&mut self, world: &mut World, ev: WindowEvent) {
        self.stats.events += 1;
        world.collector().count("im.events", 1);
        let _span = world.collector().span("im.dispatch");
        match ev {
            WindowEvent::Mouse { action, pos } => {
                world.with_view(self.root, |v, w| v.mouse(w, action, pos));
                if action == MouseAction::Movement {
                    self.update_cursor(world, pos);
                }
            }
            WindowEvent::Key(key) => {
                self.dispatch_key(world, key);
            }
            WindowEvent::MenuRequest { pos } => {
                self.offered_menus = self.collect_menus(world);
                self.draw_menu_overlay(pos);
            }
            WindowEvent::MenuSelect(command) => {
                self.dispatch_command(world, &command);
            }
            WindowEvent::Expose(r) => {
                self.draw(world, Update::Partial(r));
            }
            WindowEvent::Resize(size) => {
                world.set_view_bounds(self.root, Rect::new(0, 0, size.width, size.height));
                self.draw(world, Update::Full);
            }
            WindowEvent::Tick(ms) => {
                for (view, token) in world.advance_clock(ms) {
                    world.with_view(view, |v, w| v.timer(w, token));
                }
            }
            WindowEvent::Close => {
                self.running = false;
            }
        }
        self.apply_focus_request(world);
    }

    /// Delivers a key with parental authority: each ancestor of the focus
    /// (root-most first) may consume or transform it; then the focus
    /// handles it; unhandled keys bubble back up.
    fn dispatch_key(&mut self, world: &mut World, key: Key) {
        let Some(focus) = self.focus.filter(|f| world.view_exists(*f)) else {
            return;
        };
        let path = world.path_to(focus);
        let mut key = key;
        for &ancestor in &path[..path.len().saturating_sub(1)] {
            let out = world
                .with_view(ancestor, |v, w| v.filter_key(w, key, focus))
                .flatten();
            match out {
                Some(k) => key = k,
                None => {
                    self.stats.keys_filtered += 1;
                    world.collector().count("im.keys_filtered", 1);
                    return;
                }
            }
        }
        let handled = world
            .with_view(focus, |v, w| v.key(w, key))
            .unwrap_or(false);
        if !handled {
            for &ancestor in path[..path.len().saturating_sub(1)].iter().rev() {
                let consumed = world
                    .with_view(ancestor, |v, w| v.key(w, key))
                    .unwrap_or(false);
                if consumed {
                    break;
                }
            }
        }
    }

    /// Collects and merges menu contributions along the focus path.
    pub fn collect_menus(&mut self, world: &mut World) -> Vec<MenuItem> {
        let Some(focus) = self.focus.filter(|f| world.view_exists(*f)) else {
            return Vec::new();
        };
        let path = world.path_to(focus);
        let mut contributions = Vec::with_capacity(path.len());
        for &v in &path {
            let items = world
                .with_view(v, |view, w| view.menus(w))
                .unwrap_or_default();
            contributions.push(items);
        }
        merge_menus(&contributions)
    }

    /// Dispatches a command leaf-first along the focus path until some
    /// view performs it. Returns true if performed.
    pub fn dispatch_command(&mut self, world: &mut World, command: &str) -> bool {
        let Some(focus) = self.focus.filter(|f| world.view_exists(*f)) else {
            return false;
        };
        let path = world.path_to(focus);
        for &v in path.iter().rev() {
            let done = world
                .with_view(v, |view, w| view.perform(w, command))
                .unwrap_or(false);
            if done {
                return true;
            }
        }
        false
    }

    /// Selects an offered menu item by label and dispatches its command.
    /// Returns false if no such label was offered.
    pub fn select_menu(&mut self, world: &mut World, label: &str) -> bool {
        let item = self
            .offered_menus
            .iter()
            .find(|m| m.label == label || format!("{}/{}", m.card, m.label) == label)
            .cloned();
        match item {
            Some(m) => self.dispatch_command(world, &m.command),
            None => false,
        }
    }

    fn apply_focus_request(&mut self, world: &mut World) {
        if let Some(req) = world.take_focus_request() {
            if Some(req) != self.focus {
                if let Some(old) = self.focus {
                    world.with_view(old, |v, w| v.on_focus(w, false));
                }
                self.focus = Some(req);
                world.with_view(req, |v, w| v.on_focus(w, true));
            }
        }
    }

    /// Cursor arbitration: ask the tree (root decides, possibly deferring
    /// to descendants) which cursor applies at `pos`.
    fn update_cursor(&mut self, world: &mut World, pos: Point) {
        let shape = world
            .view_dyn(self.root)
            .and_then(|v| v.cursor_at(world, pos))
            .unwrap_or(CursorShape::Arrow);
        if self.window.cursor().shape != shape {
            let handle = atk_wm::CursorHandle { shape, id: 0 };
            self.window.set_cursor(handle);
        }
    }

    /// Flushes notifications and converts accumulated damage into a
    /// single update pass.
    pub fn settle(&mut self, world: &mut World) {
        let _span = world.collector().span("im.settle");
        self.flush_quiescent(world);
        self.repaint_damage(world);
    }

    /// The flush half of [`InteractionManager::settle`]: drains
    /// deferred commands and notifications to quiescence and grants
    /// any pending focus request, without painting. Exposed separately
    /// so embedders (the serve layer's frame-stage attribution) can
    /// time the settle and paint phases apart.
    pub fn flush_quiescent(&mut self, world: &mut World) {
        // Deferred commands first (child -> ancestor messages), then
        // notifications; both may post damage. Loop until quiescent.
        for _ in 0..8 {
            world.flush_commands();
            let n = world.flush_notifications();
            self.stats.notifications += n as u64;
            if n == 0 {
                break;
            }
        }
        self.apply_focus_request(world);
    }

    /// The paint half of [`InteractionManager::settle`]: converts
    /// accumulated damage into one clipped update pass. Returns true
    /// if anything was painted.
    pub fn repaint_damage(&mut self, world: &mut World) -> bool {
        if world.has_damage() {
            let region = world.take_damage_region_for(self.root);
            if !region.is_empty() {
                self.draw_region(world, &region);
                return true;
            }
        }
        false
    }

    /// An update pass clipped to a damage region (window coordinates).
    pub fn draw_region(&mut self, world: &mut World, region: &Region) {
        self.stats.updates += 1;
        world.collector().count("im.updates", 1);
        world
            .collector()
            .observe("im.damage_rects", region.rects().len() as u64);
        {
            let _span = world.collector().span("im.update_pass");
            let g = self.window.graphic();
            g.gsave();
            g.clip_region(region);
            for r in region.rects() {
                g.clear_rect(*r);
            }
            let update = Update::Partial(region.bounding_box());
            world.with_view(self.root, |v, w| v.draw(w, g, update));
            g.grestore();
            g.flush();
        }
        self.collect_paint_stats(world);
    }

    /// One update pass down the tree.
    pub fn draw(&mut self, world: &mut World, update: Update) {
        self.stats.full_redraws += 1;
        world.collector().count("im.full_redraws", 1);
        {
            let _span = world.collector().span("im.update_pass");
            let g = self.window.graphic();
            let bounds = world.view_bounds(self.root);
            g.gsave();
            if let Update::Partial(r) = update {
                g.clip_rect(r);
                g.clear_rect(r);
            } else {
                g.clear_rect(bounds);
            }
            world.with_view(self.root, |v, w| v.draw(w, g, update));
            g.grestore();
            g.flush();
        }
        self.collect_paint_stats(world);
    }

    /// Folds the window's banded-paint counters (if any accrued) into
    /// the trace collector as `paint.*` stats.
    fn collect_paint_stats(&mut self, world: &mut World) {
        let ps = self.window.take_paint_stats();
        if ps == atk_wm::PaintStats::default() {
            return;
        }
        let c = world.collector();
        c.count("paint.flushes", ps.flushes);
        c.count("paint.bands", ps.bands);
        c.count("paint.par_us", ps.par_us);
        c.count("paint.serial_fallback", ps.serial_fallbacks);
    }

    /// Requests and performs a full repaint.
    pub fn redraw_full(&mut self, world: &mut World) {
        self.draw(world, Update::Full);
    }

    /// Paints the merged menu as a transient pop-up overlay at `pos`, in
    /// the period style (cards side by side, items beneath). The next
    /// update pass repaints over it — like a grabbed X pop-up, it lives
    /// only until the next screen change.
    fn draw_menu_overlay(&mut self, pos: Point) {
        if self.offered_menus.is_empty() {
            return;
        }
        // Group items by card preserving order.
        let mut cards: Vec<(&str, Vec<&MenuItem>)> = Vec::new();
        for item in &self.offered_menus {
            match cards.iter_mut().find(|(c, _)| *c == item.card) {
                Some((_, items)) => items.push(item),
                None => cards.push((item.card.as_str(), vec![item])),
            }
        }
        let g = self.window.graphic();
        let m = g.font_metrics();
        let row_h = m.line_height + 2;
        let card_w = 90;
        let max_rows = cards.iter().map(|(_, v)| v.len()).max().unwrap_or(0) as i32;
        let total = Rect::new(
            pos.x,
            pos.y,
            card_w * cards.len() as i32 + 2,
            row_h * (max_rows + 1) + 4,
        );
        g.gsave();
        g.set_foreground(atk_graphics::Color::WHITE);
        g.fill_rect(total);
        g.set_foreground(atk_graphics::Color::BLACK);
        g.draw_rect(total);
        for (ci, (card, items)) in cards.iter().enumerate() {
            let x = pos.x + 1 + ci as i32 * card_w;
            let header = Rect::new(x, pos.y + 1, card_w, row_h);
            g.set_foreground(atk_graphics::Color::LIGHT_GRAY);
            g.fill_rect(header);
            g.set_foreground(atk_graphics::Color::BLACK);
            g.draw_string_centered(header, card);
            g.draw_line(
                Point::new(x, pos.y + 1 + row_h),
                Point::new(x + card_w - 1, pos.y + 1 + row_h),
            );
            if ci > 0 {
                g.draw_line(Point::new(x, pos.y + 1), Point::new(x, total.bottom() - 2));
            }
            for (ri, item) in items.iter().enumerate() {
                g.draw_string(
                    Point::new(x + 4, pos.y + 3 + row_h * (ri as i32 + 1)),
                    &item.label,
                );
            }
        }
        g.grestore();
        g.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::ChangeRec;
    use crate::ids::DataId;
    use crate::view::{View, ViewBase};
    use atk_graphics::Size;
    use atk_wm::{Button, WindowSystem};
    use std::any::Any;

    /// A probe view that logs everything the IM sends it.
    struct Probe {
        base: ViewBase,
        child: Option<ViewId>,
        keys: Vec<Key>,
        filtered: Vec<Key>,
        consume_filtered: bool,
        commands: Vec<String>,
        menu_items: Vec<MenuItem>,
        draws: u64,
        timers: Vec<u32>,
        focus_events: Vec<bool>,
        keymap: crate::keymap::Keymap,
        keystate: crate::keymap::KeyState,
    }

    impl Probe {
        fn new() -> Probe {
            Probe {
                base: ViewBase::new(),
                child: None,
                keys: Vec::new(),
                filtered: Vec::new(),
                consume_filtered: false,
                commands: Vec::new(),
                menu_items: Vec::new(),
                draws: 0,
                timers: Vec::new(),
                focus_events: Vec::new(),
                keymap: crate::keymap::Keymap::new(),
                keystate: crate::keymap::KeyState::new(),
            }
        }
    }

    impl View for Probe {
        fn class_name(&self) -> &'static str {
            "probe"
        }
        fn id(&self) -> ViewId {
            self.base.id
        }
        fn set_id(&mut self, id: ViewId) {
            self.base.id = id;
        }
        fn children(&self) -> Vec<ViewId> {
            self.child.into_iter().collect()
        }
        fn desired_size(&mut self, _w: &mut World, _b: i32) -> Size {
            Size::new(10, 10)
        }
        fn layout(&mut self, world: &mut World) {
            if let Some(c) = self.child {
                let size = world.view_bounds(self.base.id).size();
                world.set_view_bounds(c, Rect::new(10, 10, size.width - 20, size.height - 20));
            }
        }
        fn draw(&mut self, world: &mut World, g: &mut dyn atk_wm::Graphic, update: Update) {
            self.draws += 1;
            if let Some(c) = self.child {
                world.draw_child(c, g, update);
            }
        }
        fn mouse(&mut self, world: &mut World, action: MouseAction, pt: Point) -> bool {
            if let Some(c) = self.child {
                if world.mouse_to_child(c, action, pt) {
                    return true;
                }
            }
            if let MouseAction::Down(Button::Left) = action {
                world.request_focus(self.base.id);
            }
            true
        }
        fn filter_key(&mut self, _w: &mut World, key: Key, _t: ViewId) -> Option<Key> {
            self.filtered.push(key);
            if self.consume_filtered {
                None
            } else {
                Some(key)
            }
        }
        fn key(&mut self, _w: &mut World, key: Key) -> bool {
            // With a keymap installed the probe behaves like a real
            // editing view: resolve chords, report unbound keys as
            // unhandled so they bubble to the parent. Without one it
            // swallows everything (the original probe behavior).
            if !self.keymap.is_empty() {
                use crate::keymap::KeyOutcome;
                return match self.keystate.feed(&[&self.keymap], key) {
                    KeyOutcome::Command(cmd) => {
                        self.commands.push(cmd);
                        true
                    }
                    KeyOutcome::Pending => true,
                    KeyOutcome::Unbound(_) => false,
                };
            }
            self.keys.push(key);
            true
        }
        fn menus(&self, _w: &World) -> Vec<MenuItem> {
            self.menu_items.clone()
        }
        fn perform(&mut self, _w: &mut World, command: &str) -> bool {
            self.commands.push(command.to_string());
            command != "unhandled"
        }
        fn timer(&mut self, _w: &mut World, token: u32) {
            self.timers.push(token);
        }
        fn on_focus(&mut self, _w: &mut World, gained: bool) {
            self.focus_events.push(gained);
        }
        fn observed_changed(&mut self, _w: &mut World, _d: DataId, _c: &ChangeRec) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn setup() -> (World, InteractionManager, ViewId, ViewId) {
        let mut world = World::new();
        let child = world.insert_view(Box::new(Probe::new()));
        let mut root_probe = Probe::new();
        root_probe.child = Some(child);
        let root = world.insert_view(Box::new(root_probe));
        world.set_view_parent(child, Some(root));
        let mut ws = atk_wm::x11sim::X11Sim::new();
        let win = ws.open_window("t", Size::new(100, 100));
        let mut im = InteractionManager::new(&mut world, win, root);
        im.pump(&mut world); // Consume the birth expose.
        (world, im, root, child)
    }

    #[test]
    fn birth_expose_draws_the_tree() {
        let (world, _im, root, _child) = setup();
        assert!(world.view_as::<Probe>(root).unwrap().draws >= 1);
    }

    #[test]
    fn focus_follows_click_with_transitions() {
        let (mut world, mut im, root, child) = setup();
        assert_eq!(im.focus(), Some(root));
        // Click inside the child: it takes the focus.
        im.feed(&mut world, WindowEvent::left_down(50, 50));
        assert_eq!(im.focus(), Some(child));
        assert_eq!(
            world.view_as::<Probe>(child).unwrap().focus_events,
            vec![true]
        );
        // Click in the root's margin: focus returns.
        im.feed(&mut world, WindowEvent::left_down(2, 2));
        assert_eq!(im.focus(), Some(root));
        assert_eq!(
            world.view_as::<Probe>(child).unwrap().focus_events,
            vec![true, false]
        );
    }

    #[test]
    fn keys_run_ancestor_filters_first() {
        let (mut world, mut im, root, child) = setup();
        im.feed(&mut world, WindowEvent::left_down(50, 50)); // Focus child.
        im.feed(&mut world, WindowEvent::ch('k'));
        let rootp = world.view_as::<Probe>(root).unwrap();
        assert_eq!(rootp.filtered, vec![Key::Char('k')]);
        assert!(rootp.keys.is_empty(), "root must not handle the key");
        assert_eq!(
            world.view_as::<Probe>(child).unwrap().keys,
            vec![Key::Char('k')]
        );
    }

    #[test]
    fn consuming_filter_blocks_the_focus() {
        let (mut world, mut im, root, child) = setup();
        im.feed(&mut world, WindowEvent::left_down(50, 50));
        world.view_as_mut::<Probe>(root).unwrap().consume_filtered = true;
        im.feed(&mut world, WindowEvent::ch('x'));
        assert!(world.view_as::<Probe>(child).unwrap().keys.is_empty());
        assert_eq!(im.stats().keys_filtered, 1);
    }

    #[test]
    fn same_chord_resolves_by_focus_depth_not_globally() {
        let (mut world, mut im, root, child) = setup();
        world
            .view_as_mut::<Probe>(root)
            .unwrap()
            .keymap
            .bind1(Key::Ctrl('s'), "frame-search");
        world
            .view_as_mut::<Probe>(child)
            .unwrap()
            .keymap
            .bind1(Key::Ctrl('s'), "text-search");
        // Focus starts at the root: its own map resolves the key.
        im.feed(&mut world, WindowEvent::Key(Key::Ctrl('s')));
        assert_eq!(
            world.view_as::<Probe>(root).unwrap().commands,
            vec!["frame-search"]
        );
        // Focus the child: the same key now means something else.
        im.feed(&mut world, WindowEvent::left_down(50, 50));
        im.feed(&mut world, WindowEvent::Key(Key::Ctrl('s')));
        assert_eq!(
            world.view_as::<Probe>(child).unwrap().commands,
            vec!["text-search"]
        );
        assert_eq!(world.view_as::<Probe>(root).unwrap().commands.len(), 1);
    }

    #[test]
    fn unbound_key_after_valid_prefix_bubbles_to_parent() {
        let (mut world, mut im, root, child) = setup();
        world
            .view_as_mut::<Probe>(child)
            .unwrap()
            .keymap
            .bind(&[Key::Ctrl('x'), Key::Ctrl('s')], "save-document");
        im.feed(&mut world, WindowEvent::left_down(50, 50));
        // A valid prefix is consumed by the focus while it waits.
        im.feed(&mut world, WindowEvent::Key(Key::Ctrl('x')));
        assert!(world.view_as::<Probe>(root).unwrap().keys.is_empty());
        // The chord breaks: the focus reports the key unhandled and the
        // parent (empty map, swallows everything) sees it bubble.
        im.feed(&mut world, WindowEvent::Key(Key::Char('q')));
        assert!(world.view_as::<Probe>(child).unwrap().commands.is_empty());
        assert_eq!(
            world.view_as::<Probe>(root).unwrap().keys,
            vec![Key::Char('q')]
        );
    }

    #[test]
    fn dangling_prefix_at_end_of_script_is_inert() {
        let (mut world, mut im, root, child) = setup();
        world
            .view_as_mut::<Probe>(child)
            .unwrap()
            .keymap
            .bind(&[Key::Ctrl('x'), Key::Ctrl('s')], "save-document");
        im.feed(&mut world, WindowEvent::left_down(50, 50));
        // The script ends mid-chord: no command fires, nothing leaks to
        // the parent, and the session stays live.
        let script = crate::EventScript::parse("key C-x\n").unwrap();
        script.run(&mut im, &mut world);
        assert!(world.view_as::<Probe>(child).unwrap().commands.is_empty());
        assert!(world.view_as::<Probe>(root).unwrap().keys.is_empty());
        // The pending chord survives the script boundary: the next live
        // keystroke completes it.
        im.feed(&mut world, WindowEvent::Key(Key::Ctrl('s')));
        assert_eq!(
            world.view_as::<Probe>(child).unwrap().commands,
            vec!["save-document"]
        );
    }

    #[test]
    fn menus_merge_root_and_focus() {
        let (mut world, mut im, root, child) = setup();
        world.view_as_mut::<Probe>(root).unwrap().menu_items =
            vec![MenuItem::new("File", "Quit", "quit")];
        world.view_as_mut::<Probe>(child).unwrap().menu_items =
            vec![MenuItem::new("Edit", "Cut", "cut")];
        im.feed(&mut world, WindowEvent::left_down(50, 50));
        im.feed(&mut world, WindowEvent::MenuRequest { pos: Point::ORIGIN });
        let labels: Vec<String> = im.offered_menus().iter().map(|m| m.label.clone()).collect();
        assert_eq!(labels, vec!["Quit".to_string(), "Cut".to_string()]);
        // Selection dispatches leaf-first.
        assert!(im.select_menu(&mut world, "Cut"));
        assert_eq!(world.view_as::<Probe>(child).unwrap().commands, vec!["cut"]);
    }

    #[test]
    fn unhandled_commands_bubble_to_ancestors() {
        let (mut world, mut im, root, child) = setup();
        im.feed(&mut world, WindowEvent::left_down(50, 50));
        // The child's perform returns false for "unhandled".
        im.dispatch_command(&mut world, "unhandled");
        assert_eq!(
            world.view_as::<Probe>(child).unwrap().commands,
            vec!["unhandled"]
        );
        assert_eq!(
            world.view_as::<Probe>(root).unwrap().commands,
            vec!["unhandled"]
        );
    }

    #[test]
    fn ticks_fire_timers_in_order() {
        let (mut world, mut im, _root, child) = setup();
        world.schedule_timer(child, 100, 7);
        world.schedule_timer(child, 50, 3);
        im.feed(&mut world, WindowEvent::Tick(60));
        assert_eq!(world.view_as::<Probe>(child).unwrap().timers, vec![3]);
        im.feed(&mut world, WindowEvent::Tick(60));
        assert_eq!(world.view_as::<Probe>(child).unwrap().timers, vec![3, 7]);
    }

    #[test]
    fn fork_onto_copies_window_and_state() {
        let (mut world, mut im, _root, child) = setup();
        im.feed(&mut world, WindowEvent::left_down(50, 50)); // Focus the child.
        let mut ws2 = atk_wm::x11sim::X11Sim::new();
        let fork = im.fork_onto(&mut ws2).unwrap();
        assert_eq!(fork.focus(), Some(child));
        assert_eq!(fork.stats(), im.stats());
        assert_eq!(fork.root(), im.root());
        assert!(fork.is_running());
        assert_eq!(fork.snapshot().unwrap(), im.snapshot().unwrap());
    }

    #[test]
    fn close_stops_the_loop() {
        let (mut world, mut im, ..) = setup();
        assert!(im.is_running());
        im.feed(&mut world, WindowEvent::Close);
        assert!(!im.is_running());
    }

    #[test]
    fn resize_relayouts_and_redraws() {
        let (mut world, mut im, root, child) = setup();
        let draws_before = world.view_as::<Probe>(root).unwrap().draws;
        im.feed(&mut world, WindowEvent::Resize(Size::new(200, 150)));
        assert_eq!(world.view_bounds(root), Rect::new(0, 0, 200, 150));
        assert_eq!(world.view_bounds(child), Rect::new(10, 10, 180, 130));
        assert!(world.view_as::<Probe>(root).unwrap().draws > draws_before);
    }

    #[test]
    fn damage_triggers_exactly_one_update_pass() {
        let (mut world, mut im, root, child) = setup();
        let draws_before = world.view_as::<Probe>(root).unwrap().draws;
        world.post_damage(child, Rect::new(0, 0, 5, 5));
        world.post_damage(child, Rect::new(5, 5, 5, 5));
        im.settle(&mut world);
        assert_eq!(
            world.view_as::<Probe>(root).unwrap().draws,
            draws_before + 1
        );
    }
}

#[cfg(test)]
mod menu_overlay_tests {
    use super::*;
    use crate::view::{View, ViewBase};
    use atk_graphics::Size;
    use atk_wm::WindowSystem;
    use std::any::Any;

    struct Menued {
        base: ViewBase,
    }
    impl View for Menued {
        fn class_name(&self) -> &'static str {
            "menued"
        }
        fn id(&self) -> ViewId {
            self.base.id
        }
        fn set_id(&mut self, id: ViewId) {
            self.base.id = id;
        }
        fn desired_size(&mut self, _w: &mut World, _b: i32) -> Size {
            Size::new(10, 10)
        }
        fn draw(&mut self, _w: &mut World, _g: &mut dyn atk_wm::Graphic, _u: Update) {}
        fn menus(&self, _w: &World) -> Vec<MenuItem> {
            vec![
                MenuItem::new("File", "Save", "save"),
                MenuItem::new("Edit", "Cut", "cut"),
            ]
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn menu_request_paints_a_popup() {
        let mut world = World::new();
        let root = world.insert_view(Box::new(Menued {
            base: ViewBase::new(),
        }));
        let mut ws = atk_wm::x11sim::X11Sim::new();
        let win = ws.open_window("t", Size::new(300, 200));
        let mut im = InteractionManager::new(&mut world, win, root);
        im.pump(&mut world);
        let before = im.snapshot().unwrap();
        im.feed(
            &mut world,
            WindowEvent::MenuRequest {
                pos: Point::new(40, 30),
            },
        );
        let after = im.snapshot().unwrap();
        assert_ne!(before, after, "popup must be visible");
        // Two cards: File and Edit.
        assert_eq!(im.offered_menus().len(), 2);
        // The overlay is transient: a full redraw wipes it.
        im.redraw_full(&mut world);
        assert_eq!(im.snapshot().unwrap(), before);
    }
}
