//! Views and the vocabulary of the view tree (paper §3).
//!
//! A view "contains the information about how the data is to be displayed
//! and how the user is to manipulate the data object". Views form a tree;
//! each view is a rectangle completely contained in its parent. The
//! toolkit's defining architectural choice — *parental authority* — is
//! visible in this trait's shape: there is no global hit-testing; a
//! parent's [`View::mouse`] decides whether to consume an event or
//! forward it (with translated coordinates) to a child of its choosing,
//! and ancestors get [`View::filter_key`] before the focused view sees a
//! keystroke.

use std::any::Any;

use atk_graphics::{Point, Rect, Size};
use atk_wm::{CursorShape, Graphic, Key, MouseAction};

use crate::data::ChangeRec;
use crate::ids::{DataId, ViewId};
use crate::menus::MenuItem;
use crate::world::World;

/// What kind of repaint a draw call is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Update {
    /// Redraw everything in the view's bounds.
    Full,
    /// Redraw only the given rectangle (view-local coordinates).
    Partial(Rect),
}

impl Update {
    /// The update translated into a child's coordinate space.
    pub fn translated(self, dx: i32, dy: i32) -> Update {
        match self {
            Update::Full => Update::Full,
            Update::Partial(r) => Update::Partial(r.translate(dx, dy)),
        }
    }

    /// The rect that needs repainting, given the view's local bounds.
    pub fn rect_for(self, local_bounds: Rect) -> Rect {
        match self {
            Update::Full => local_bounds,
            Update::Partial(r) => r.intersect(local_bounds),
        }
    }

    /// True if the update touches `r` (view-local coordinates).
    pub fn touches(self, r: Rect) -> bool {
        match self {
            Update::Full => true,
            Update::Partial(p) => p.intersects(r),
        }
    }
}

/// Interface a scrollable view exposes so a scrollbar (or keyboard
/// paging) can drive it without knowing its type — one of the paper's
/// "minimal protocols" between components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrollInfo {
    /// Total extent of the content, in content units (pixels or lines).
    pub total: i32,
    /// Extent currently visible.
    pub visible: i32,
    /// Offset of the top of the visible portion.
    pub offset: i32,
}

/// The view half of a component.
///
/// Geometry lives in the [`World`]: a view's bounds (in parent
/// coordinates) are set by its parent during layout with
/// [`World::set_view_bounds`] and queried with [`World::view_bounds`].
/// During [`View::draw`] the graphic is already translated and clipped so
/// the view draws in its own local space, `(0,0)`–`(w,h)`.
pub trait View: Any {
    /// Class name, as in the class registry.
    fn class_name(&self) -> &'static str;

    /// This view's id (assigned at insertion).
    fn id(&self) -> ViewId;
    /// Records the id; called exactly once by [`World::insert_view`].
    fn set_id(&mut self, id: ViewId);

    /// The data object displayed, if any (a scrollbar has none — paper
    /// §2: "there are many cases when a view will be used to solely
    /// provide a user interface function").
    fn data_object(&self) -> Option<DataId> {
        None
    }

    /// Binds this view to a data object. This is the generic step an
    /// embedding parent performs after instantiating a view class from
    /// the catalog — it is how a text view can host a table view it was
    /// never compiled against. Views that take a data object should also
    /// register themselves as observers here. Returns false if this view
    /// kind takes no data object.
    fn set_data_object(&mut self, world: &mut World, data: DataId) -> bool {
        let _ = (world, data);
        false
    }

    /// Direct children, for tree walks and diagnostics.
    fn children(&self) -> Vec<ViewId> {
        Vec::new()
    }

    /// Preferred size given a width budget (used by parents embedding
    /// this view, e.g. text wrapping an inset around it).
    fn desired_size(&mut self, world: &mut World, width_budget: i32) -> Size;

    /// Lays out children after the view's bounds changed. Called by
    /// [`World::set_view_bounds`].
    fn layout(&mut self, world: &mut World) {
        let _ = world;
    }

    /// Draws the view into `g` (already translated/clipped to local
    /// space).
    fn draw(&mut self, world: &mut World, g: &mut dyn Graphic, update: Update);

    /// Handles a mouse event at `pt` (local coordinates). Returns true if
    /// the event was consumed (by this view or a descendant it chose to
    /// forward to).
    fn mouse(&mut self, world: &mut World, action: MouseAction, pt: Point) -> bool {
        let _ = (world, action, pt);
        false
    }

    /// Parental authority over keystrokes: every ancestor of the focused
    /// view sees the key first (root-most first) and may consume it
    /// (return `None`) or transform it. The default passes it through.
    fn filter_key(&mut self, world: &mut World, key: Key, target: ViewId) -> Option<Key> {
        let _ = (world, target);
        Some(key)
    }

    /// Handles a keystroke delivered to this view (it has the input
    /// focus, or a descendant declined it). Returns true if handled.
    fn key(&mut self, world: &mut World, key: Key) -> bool {
        let _ = (world, key);
        false
    }

    /// Menu items this view contributes. The interaction manager merges
    /// contributions along the focus path, children overriding parents —
    /// the paper's menu negotiation.
    fn menus(&self, world: &World) -> Vec<MenuItem> {
        let _ = world;
        Vec::new()
    }

    /// Executes a named command (from a menu selection or a key binding).
    /// Returns true if the command was recognized.
    fn perform(&mut self, world: &mut World, command: &str) -> bool {
        let _ = (world, command);
        false
    }

    /// The cursor to show at `pt` (local coordinates), or `None` to defer
    /// to the parent — the paper's cursor negotiation.
    fn cursor_at(&self, world: &World, pt: Point) -> Option<CursorShape> {
        let _ = (world, pt);
        None
    }

    /// A data object this view observes has changed (the delayed-update
    /// protocol). Implementations typically map the change record to a
    /// damage rect and post it.
    fn observed_changed(&mut self, world: &mut World, source: DataId, change: &ChangeRec) {
        let _ = (source, change);
        // Default: conservative full repaint.
        world.post_damage_full(self.id());
    }

    /// Focus gained/lost notification.
    fn on_focus(&mut self, world: &mut World, gained: bool) {
        let _ = (world, gained);
    }

    /// A timer scheduled with [`World::schedule_timer`] fired.
    fn timer(&mut self, world: &mut World, token: u32) {
        let _ = (world, token);
    }

    /// Scroll protocol, if this view is scrollable.
    fn scroll_info(&self, world: &World) -> Option<ScrollInfo> {
        let _ = world;
        None
    }

    /// Scrolls so that content offset `offset` is at the top.
    fn scroll_to(&mut self, world: &mut World, offset: i32) {
        let _ = (world, offset);
    }

    /// Deep-copies this view for a template fork ([`World::fork`]).
    ///
    /// The copy must be observably identical: same ids recorded, same
    /// layout/caret/scroll state, so a forked session behaves
    /// byte-for-byte like the session it was forked from. Classes that
    /// cannot be forked return `None` (the default), which makes the
    /// whole world fork fail naming the class — test probes simply
    /// never appear in forkable scenes.
    fn fork(&self) -> Option<Box<dyn View>> {
        None
    }

    /// Bytes of immutable payload this view shares with its forks via
    /// `Arc` instead of copying (summed into `world.fork_shared_bytes`).
    fn shared_payload_bytes(&self) -> u64 {
        0
    }

    /// Upcast for concrete access.
    fn as_any(&self) -> &dyn Any;
    /// Upcast for concrete mutation.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Boilerplate every view embeds: its id.
///
/// ```ignore
/// struct MyView { base: ViewBase, ... }
/// impl View for MyView {
///     fn id(&self) -> ViewId { self.base.id }
///     fn set_id(&mut self, id: ViewId) { self.base.id = id; }
///     ...
/// }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ViewBase {
    /// The view's id in the world ([`ViewId::dangling`] until inserted).
    pub id: ViewId,
}

impl ViewBase {
    /// A base with a dangling id.
    pub fn new() -> ViewBase {
        ViewBase {
            id: ViewId::dangling(),
        }
    }
}

impl Default for ViewBase {
    fn default() -> Self {
        ViewBase::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_translation_and_rects() {
        let u = Update::Partial(Rect::new(10, 10, 5, 5));
        assert_eq!(
            u.translated(-10, -10),
            Update::Partial(Rect::new(0, 0, 5, 5))
        );
        assert_eq!(Update::Full.translated(3, 3), Update::Full);
        let local = Rect::new(0, 0, 12, 12);
        assert_eq!(u.rect_for(local), Rect::new(10, 10, 2, 2));
        assert_eq!(Update::Full.rect_for(local), local);
        assert!(u.touches(Rect::new(12, 12, 2, 2)));
        assert!(!u.touches(Rect::new(0, 0, 5, 5)));
        assert!(Update::Full.touches(Rect::new(0, 0, 1, 1)));
    }
}
