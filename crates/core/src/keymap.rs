//! Key bindings: sequences of keys mapped to named commands.
//!
//! "These commands can be bound either to key sequences or to menus"
//! (paper §7). A [`Keymap`] maps key *sequences* (so `C-x C-s` works) to
//! command strings dispatched through `View::perform`; a [`KeyState`]
//! tracks an in-progress multi-key sequence. Keymaps compose along the
//! focus path — a deeper view's map shadows its ancestors', the keyboard
//! half of parental authority.

use std::collections::HashMap;

use atk_wm::Key;

/// A table of key-sequence bindings.
#[derive(Debug, Clone, Default)]
pub struct Keymap {
    bindings: HashMap<Vec<Key>, String>,
    prefixes: HashMap<Vec<Key>, usize>,
}

impl Keymap {
    /// An empty keymap.
    pub fn new() -> Keymap {
        Keymap::default()
    }

    /// Binds a key sequence to a command, replacing any previous binding.
    pub fn bind(&mut self, seq: &[Key], command: &str) {
        for n in 1..seq.len() {
            *self.prefixes.entry(seq[..n].to_vec()).or_insert(0) += 1;
        }
        self.bindings.insert(seq.to_vec(), command.to_string());
    }

    /// Convenience: binds a single key.
    pub fn bind1(&mut self, key: Key, command: &str) {
        self.bind(&[key], command);
    }

    /// The command bound to an exact sequence.
    pub fn lookup(&self, seq: &[Key]) -> Option<&str> {
        self.bindings.get(seq).map(String::as_str)
    }

    /// True if `seq` is a proper prefix of some longer binding.
    pub fn is_prefix(&self, seq: &[Key]) -> bool {
        self.prefixes.contains_key(seq)
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// True if no bindings exist.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }
}

/// Result of feeding one key to a [`KeyState`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyOutcome {
    /// The sequence completed: dispatch this command.
    Command(String),
    /// The key begins or continues a multi-key sequence.
    Pending,
    /// No binding matched; the key should be handled as plain input.
    Unbound(Vec<Key>),
}

/// Tracks an in-progress key sequence against a stack of keymaps
/// (deepest view first — its bindings shadow the ancestors').
#[derive(Debug, Clone, Default)]
pub struct KeyState {
    pending: Vec<Key>,
}

impl KeyState {
    /// A fresh state with no pending keys.
    pub fn new() -> KeyState {
        KeyState::default()
    }

    /// True if a multi-key sequence is in progress.
    pub fn in_progress(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Abandons any in-progress sequence.
    pub fn reset(&mut self) {
        self.pending.clear();
    }

    /// Feeds a key against the maps (deepest-first).
    pub fn feed(&mut self, maps: &[&Keymap], key: Key) -> KeyOutcome {
        self.pending.push(key);
        // Exact match in the closest map that has one wins.
        for map in maps {
            if let Some(cmd) = map.lookup(&self.pending) {
                let cmd = cmd.to_string();
                self.pending.clear();
                return KeyOutcome::Command(cmd);
            }
        }
        if maps.iter().any(|m| m.is_prefix(&self.pending)) {
            return KeyOutcome::Pending;
        }
        let keys = std::mem::take(&mut self.pending);
        KeyOutcome::Unbound(keys)
    }
}

/// The classic editing bindings shared by every text-like view (a subset
/// of the EZ bindings that let it replace emacs on campus, paper §9).
pub fn standard_editing_keymap() -> Keymap {
    let mut m = Keymap::new();
    m.bind1(Key::Ctrl('f'), "forward-char");
    m.bind1(Key::Right, "forward-char");
    m.bind1(Key::Ctrl('b'), "backward-char");
    m.bind1(Key::Left, "backward-char");
    m.bind1(Key::Ctrl('n'), "next-line");
    m.bind1(Key::Down, "next-line");
    m.bind1(Key::Ctrl('p'), "previous-line");
    m.bind1(Key::Up, "previous-line");
    m.bind1(Key::Ctrl('a'), "beginning-of-line");
    m.bind1(Key::Home, "beginning-of-line");
    m.bind1(Key::Ctrl('e'), "end-of-line");
    m.bind1(Key::End, "end-of-line");
    m.bind1(Key::Ctrl('d'), "delete-char");
    m.bind1(Key::Delete, "delete-char");
    m.bind1(Key::Backspace, "delete-backward-char");
    m.bind1(Key::Ctrl('k'), "kill-line");
    m.bind1(Key::Ctrl('y'), "yank");
    m.bind1(Key::Ctrl('v'), "next-page");
    m.bind1(Key::PageDown, "next-page");
    m.bind1(Key::Meta('v'), "previous-page");
    m.bind1(Key::PageUp, "previous-page");
    m.bind1(Key::Meta('<'), "beginning-of-text");
    m.bind1(Key::Meta('>'), "end-of-text");
    m.bind(&[Key::Ctrl('x'), Key::Ctrl('s')], "save-document");
    m.bind(&[Key::Ctrl('x'), Key::Ctrl('w')], "write-document");
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_key_binding() {
        let mut m = Keymap::new();
        m.bind1(Key::Ctrl('f'), "forward-char");
        let mut st = KeyState::new();
        assert_eq!(
            st.feed(&[&m], Key::Ctrl('f')),
            KeyOutcome::Command("forward-char".into())
        );
        assert!(!st.in_progress());
    }

    #[test]
    fn multi_key_sequence() {
        let m = standard_editing_keymap();
        let mut st = KeyState::new();
        assert_eq!(st.feed(&[&m], Key::Ctrl('x')), KeyOutcome::Pending);
        assert!(st.in_progress());
        assert_eq!(
            st.feed(&[&m], Key::Ctrl('s')),
            KeyOutcome::Command("save-document".into())
        );
    }

    #[test]
    fn broken_sequence_returns_unbound_keys() {
        let m = standard_editing_keymap();
        let mut st = KeyState::new();
        st.feed(&[&m], Key::Ctrl('x'));
        let out = st.feed(&[&m], Key::Char('q'));
        assert_eq!(
            out,
            KeyOutcome::Unbound(vec![Key::Ctrl('x'), Key::Char('q')])
        );
        assert!(!st.in_progress());
    }

    #[test]
    fn deeper_map_shadows_ancestor() {
        let mut parent = Keymap::new();
        parent.bind1(Key::Ctrl('s'), "frame-search");
        let mut child = Keymap::new();
        child.bind1(Key::Ctrl('s'), "text-search");
        let mut st = KeyState::new();
        // Deepest-first ordering.
        assert_eq!(
            st.feed(&[&child, &parent], Key::Ctrl('s')),
            KeyOutcome::Command("text-search".into())
        );
    }

    #[test]
    fn unbound_plain_char_passes_through() {
        let m = standard_editing_keymap();
        let mut st = KeyState::new();
        assert_eq!(
            st.feed(&[&m], Key::Char('z')),
            KeyOutcome::Unbound(vec![Key::Char('z')])
        );
    }

    #[test]
    fn rebinding_replaces() {
        let mut m = Keymap::new();
        m.bind1(Key::Tab, "indent");
        m.bind1(Key::Tab, "next-field");
        assert_eq!(m.lookup(&[Key::Tab]), Some("next-field"));
        assert_eq!(m.len(), 1);
    }
}
