//! Data objects, change records, and the observer mechanism's vocabulary
//! (paper §2).
//!
//! A *data object* "contains the information that is to be displayed" and
//! can be saved to a file; everything about *how* it is displayed lives in
//! views. When a view mutates a data object it then asks the
//! [`crate::world::World`] to notify every observer with a
//! [`ChangeRec`] describing *what* changed, and each observer computes its
//! own minimal reaction — the paper's *delayed update* protocol, which it
//! calls "the trickiest challenge in building a data object/view pair".

use std::any::Any;
use std::io;

use crate::datastream::{DatastreamReader, DatastreamWriter, DsError};
use crate::ids::DataId;
use crate::world::World;

/// What changed in a data object. Typed records let views repaint
/// *incrementally* instead of redrawing everything (measured in
/// experiment E8).
#[derive(Debug, Clone, PartialEq)]
pub enum ChangeRec {
    /// Everything may have changed; repaint fully.
    Full,
    /// Text edit: at `pos`, `inserted` characters arrived after `deleted`
    /// characters were removed.
    Text {
        /// Buffer position of the edit.
        pos: usize,
        /// Number of characters inserted.
        inserted: usize,
        /// Number of characters deleted.
        deleted: usize,
    },
    /// A rectangular range of table cells changed (inclusive).
    Cells {
        /// First row.
        r0: usize,
        /// First column.
        c0: usize,
        /// Last row.
        r1: usize,
        /// Last column.
        c1: usize,
    },
    /// One element of a display list (drawing shape, animation frame)
    /// changed.
    Element {
        /// Element index.
        index: usize,
    },
    /// Structure changed (rows/columns/frames added or removed).
    Structure,
    /// Non-content metadata changed (chart labels, styles table).
    Meta,
}

/// Who is observing a data object (paper §2: "a data object may be
/// observed by any number of other data objects and views").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObserverRef {
    /// A view: will receive `View::observed_changed`.
    View(crate::ids::ViewId),
    /// Another data object: will receive `DataObject::observed_changed`
    /// (the auxiliary-chart-data-object pattern).
    Data(DataId),
}

/// The data-object half of a component.
pub trait DataObject: Any {
    /// Class name as used in datastream markers and the class registry.
    fn class_name(&self) -> &'static str;

    /// Writes the object's body (everything between its `\begindata` and
    /// `\enddata` markers). Embedded children are written by calling
    /// [`DatastreamWriter::write_embedded`].
    fn write_body(&self, w: &mut DatastreamWriter, world: &World) -> io::Result<()>;

    /// Reads the object's body. The reader is positioned just after this
    /// object's `\begindata`; the implementation must consume up to and
    /// including its own `\enddata` (via [`DatastreamReader::next_token`]
    /// returning [`crate::datastream::Token::EndData`]).
    fn read_body(&mut self, r: &mut DatastreamReader<'_>, world: &mut World)
        -> Result<(), DsError>;

    /// Ids of embedded child data objects (used for reachability when
    /// writing documents and freeing them).
    fn embedded(&self) -> Vec<DataId> {
        Vec::new()
    }

    /// Called when a data object this one observes has changed — the
    /// auxiliary data-object pattern of paper §2. `me` is this object's
    /// own id, so it can relay the change to *its* observers (chart data
    /// relays table changes to chart views). The default ignores it.
    fn observed_changed(
        &mut self,
        world: &mut World,
        me: DataId,
        source: DataId,
        change: &ChangeRec,
    ) {
        let _ = (world, me, source, change);
    }

    /// Deep-copies this data object for a template fork
    /// ([`crate::world::World::fork`]). Same contract as
    /// [`crate::view::View::fork`]: the copy must be observably
    /// identical, and `None` (the default) fails the fork naming the
    /// class.
    fn fork(&self) -> Option<Box<dyn DataObject>> {
        None
    }

    /// Bytes of immutable payload shared with forks via `Arc` instead of
    /// copied (summed into `world.fork_shared_bytes`).
    fn shared_payload_bytes(&self) -> u64 {
        0
    }

    /// Upcast for concrete access.
    fn as_any(&self) -> &dyn Any;
    /// Upcast for concrete mutation.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// A data object whose class could not be resolved (no module on the
/// search path). It preserves the raw datastream body so the document
/// survives a load/save round trip unharmed — possible only because the
/// format lets an object's extent be found *without parsing its
/// contents* (paper §5).
#[derive(Debug, Default, Clone)]
pub struct UnknownObject {
    /// The class name the stream claimed.
    pub original_class: String,
    /// Raw body lines, verbatim (including nested markers). Behind an
    /// `Arc`: the preserved stream bytes are immutable after the read,
    /// so template forks share them instead of re-allocating.
    pub raw_lines: std::sync::Arc<Vec<String>>,
}

impl UnknownObject {
    /// Creates an empty unknown object for `class`.
    pub fn new(class: &str) -> UnknownObject {
        UnknownObject {
            original_class: class.to_string(),
            raw_lines: Default::default(),
        }
    }
}

impl DataObject for UnknownObject {
    fn class_name(&self) -> &'static str {
        "unknown"
    }

    fn write_body(&self, w: &mut DatastreamWriter, _world: &World) -> io::Result<()> {
        for line in self.raw_lines.iter() {
            w.write_raw_line(line)?;
        }
        Ok(())
    }

    fn read_body(
        &mut self,
        r: &mut DatastreamReader<'_>,
        _world: &mut World,
    ) -> Result<(), DsError> {
        // Skip-scan: capture everything up to our matching enddata
        // without interpreting it.
        self.raw_lines = std::sync::Arc::new(r.skip_to_matching_end()?);
        Ok(())
    }

    fn fork(&self) -> Option<Box<dyn DataObject>> {
        Some(Box::new(self.clone()))
    }

    fn shared_payload_bytes(&self) -> u64 {
        self.raw_lines.iter().map(|l| l.len() as u64).sum()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn change_rec_equality() {
        assert_eq!(
            ChangeRec::Text {
                pos: 1,
                inserted: 2,
                deleted: 0
            },
            ChangeRec::Text {
                pos: 1,
                inserted: 2,
                deleted: 0
            }
        );
        assert_ne!(ChangeRec::Full, ChangeRec::Meta);
    }

    #[test]
    fn unknown_object_remembers_class() {
        let u = UnknownObject::new("music");
        assert_eq!(u.original_class, "music");
        assert_eq!(u.class_name(), "unknown");
    }
}
