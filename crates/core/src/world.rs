//! The `World`: owner of every data object and view, and home of the
//! observer and damage machinery.
//!
//! All toolkit objects live in two arenas here. Views and data objects
//! refer to each other only by id, so any method can receive `&mut World`
//! without aliasing; when the world needs to call *into* an object with
//! itself as an argument (dispatch), it temporarily moves the object's box
//! out of its slot — see [`World::with_view`] / [`World::with_data`].
//!
//! The world also owns:
//! * the **observer lists** and the **pending-notification queue** that
//!   implement the paper's delayed update (§2): mutators call
//!   [`World::notify`], and the interaction manager later drains the
//!   queue with [`World::flush_notifications`], fanning each change
//!   record out to every observer;
//! * the **damage list**: views post view-local dirty rectangles
//!   ([`World::post_damage`]), and the update cycle converts them to
//!   window coordinates by walking the parent chain (the paper's
//!   "update request is posted up the tree");
//! * the **virtual clock and timers** that drive animations and the
//!   console deterministically;
//! * the component [`Catalog`].

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use atk_graphics::{Point, Rect, Region};
use atk_trace::Collector;
use atk_wm::{Graphic, MouseAction};

use crate::arena::Arena;
use crate::catalog::{Catalog, CatalogError};
use crate::data::{ChangeRec, DataObject, ObserverRef};
use crate::ids::{DataId, DataMark, ViewId, ViewMark};
use crate::view::{Update, View};

struct DataSlot {
    obj: Option<Box<dyn DataObject>>,
    observers: Vec<ObserverRef>,
    version: u64,
}

struct ViewSlot {
    view: Option<Box<dyn View>>,
    parent: Option<ViewId>,
    /// Bounds in the *parent's* coordinate space.
    bounds: Rect,
}

#[derive(Clone)]
struct Timer {
    due_ms: u64,
    view: ViewId,
    token: u32,
}

/// A memoized view→window transform: translate a view-local rect by
/// `(dx, dy)` and intersect with `clip` (window coordinates) to get the
/// visible window-space rect — no tree walk. `root` is the view's root
/// ancestor. Valid only while `epoch` matches the world's geometry
/// epoch, which is bumped on any bounds or parent change.
#[derive(Clone, Copy)]
struct CachedXform {
    epoch: u64,
    dx: i32,
    dy: i32,
    clip: Rect,
    root: ViewId,
}

/// The object world. See the module docs.
pub struct World {
    data: Arena<DataSlot, DataMark>,
    views: Arena<ViewSlot, ViewMark>,
    pending: VecDeque<(DataId, ChangeRec)>,
    damage: Vec<(ViewId, Rect)>,
    /// Component catalog (public: applications register components).
    pub catalog: Catalog,
    focus_request: Option<ViewId>,
    pending_commands: Vec<(ViewId, String)>,
    clock_ms: u64,
    timers: Vec<Timer>,
    notifications_delivered: u64,
    /// View→window transform cache; see [`CachedXform`].
    xform_cache: HashMap<ViewId, CachedXform>,
    /// Bumped on every geometry or parent change; stale cache entries
    /// are detected by epoch mismatch instead of eager invalidation.
    xform_epoch: u64,
    /// Metrics/span sink for the update pipeline; defaults to the
    /// process-wide collector, which starts disabled (near-zero cost).
    collector: Arc<Collector>,
}

impl World {
    /// An empty world with a default (free-cost, dynamic) catalog.
    pub fn new() -> World {
        World::with_catalog(Catalog::default())
    }

    /// An empty world with a specific catalog.
    pub fn with_catalog(catalog: Catalog) -> World {
        World {
            data: Arena::new(),
            views: Arena::new(),
            pending: VecDeque::new(),
            damage: Vec::new(),
            catalog,
            focus_request: None,
            pending_commands: Vec::new(),
            clock_ms: 0,
            timers: Vec::new(),
            notifications_delivered: 0,
            xform_cache: HashMap::new(),
            xform_epoch: 0,
            collector: atk_trace::global(),
        }
    }

    // --- Instrumentation ----------------------------------------------------

    /// The collector this world reports into.
    pub fn collector(&self) -> &Arc<Collector> {
        &self.collector
    }

    /// Replaces the collector (tests inject a private, enabled one so
    /// runs stay isolated and deterministic).
    pub fn set_collector(&mut self, collector: Arc<Collector>) {
        self.collector = collector;
    }

    // --- Forking ------------------------------------------------------------

    /// Deep-forks the whole world: both arenas (slot-for-slot, so every
    /// `DataId`/`ViewId` stays valid), observer lists, the pending
    /// notification queue, the damage list, deferred commands, the focus
    /// request, the virtual clock and timers, and the catalog.
    ///
    /// The xform cache and its epoch are *carried*, not reset: the
    /// fork's geometry is identical, so carrying the cache keeps a
    /// forked session's hit/miss counters byte-identical to a session
    /// built from scratch (the fork-vs-fresh differential oracle checks
    /// exactly that).
    ///
    /// Fails with the first class that does not implement
    /// [`View::fork`]/[`DataObject::fork`]. Counters (`world.forks`,
    /// `world.fork_us`, `world.fork_shared_bytes`) land on the *source*
    /// world's collector — the template's — so per-session collectors
    /// stay indistinguishable from cold-built ones.
    pub fn fork(&self) -> Result<World, String> {
        let start = std::time::Instant::now();
        let mut shared_bytes = 0u64;
        let data = self.data.fork_with(|slot| {
            let obj = match &slot.obj {
                Some(o) => match o.fork() {
                    Some(f) => {
                        shared_bytes += o.shared_payload_bytes();
                        f
                    }
                    None => {
                        return Err(format!(
                            "data class `{}` does not support forking",
                            o.class_name()
                        ))
                    }
                },
                None => return Err("data object taken out during fork".to_string()),
            };
            Ok(DataSlot {
                obj: Some(obj),
                observers: slot.observers.clone(),
                version: slot.version,
            })
        })?;
        let views = self.views.fork_with(|slot| {
            let view = match &slot.view {
                Some(v) => match v.fork() {
                    Some(f) => {
                        shared_bytes += v.shared_payload_bytes();
                        f
                    }
                    None => {
                        return Err(format!(
                            "view class `{}` does not support forking",
                            v.class_name()
                        ))
                    }
                },
                None => return Err("view taken out during fork".to_string()),
            };
            Ok(ViewSlot {
                view: Some(view),
                parent: slot.parent,
                bounds: slot.bounds,
            })
        })?;
        let fork = World {
            data,
            views,
            pending: self.pending.clone(),
            damage: self.damage.clone(),
            catalog: self.catalog.clone(),
            focus_request: self.focus_request,
            pending_commands: self.pending_commands.clone(),
            clock_ms: self.clock_ms,
            timers: self.timers.clone(),
            notifications_delivered: self.notifications_delivered,
            xform_cache: self.xform_cache.clone(),
            xform_epoch: self.xform_epoch,
            collector: self.collector.clone(),
        };
        self.collector.count("world.forks", 1);
        self.collector
            .observe("world.fork_us", start.elapsed().as_micros() as u64);
        self.collector
            .count("world.fork_shared_bytes", shared_bytes);
        Ok(fork)
    }

    // --- Data objects -----------------------------------------------------

    /// Inserts a data object, returning its id.
    pub fn insert_data(&mut self, obj: Box<dyn DataObject>) -> DataId {
        self.data.insert(DataSlot {
            obj: Some(obj),
            observers: Vec::new(),
            version: 0,
        })
    }

    /// Removes a data object (observers are dropped with it).
    pub fn remove_data(&mut self, id: DataId) -> Option<Box<dyn DataObject>> {
        self.data.remove(id).and_then(|s| s.obj)
    }

    /// Creates a data object of `class` through the catalog.
    pub fn create_data(&mut self, class: &str) -> Result<Box<dyn DataObject>, CatalogError> {
        self.catalog.new_data(class)
    }

    /// Creates and inserts a data object of `class`.
    pub fn new_data(&mut self, class: &str) -> Result<DataId, CatalogError> {
        let obj = self.catalog.new_data(class)?;
        Ok(self.insert_data(obj))
    }

    /// Number of live data objects.
    pub fn data_count(&self) -> usize {
        self.data.len()
    }

    /// Dynamic access to a data object.
    pub fn data_dyn(&self, id: DataId) -> Option<&dyn DataObject> {
        self.data.get(id).and_then(|s| s.obj.as_deref())
    }

    /// Typed shared access to a data object.
    ///
    /// # Panics
    ///
    /// Panics if the id is live but the object is not a `T` — that is a
    /// programming error, not a data condition.
    pub fn data<T: DataObject>(&self, id: DataId) -> Option<&T> {
        self.data.get(id).and_then(|s| s.obj.as_deref()).map(|o| {
            o.as_any()
                .downcast_ref::<T>()
                .expect("data object has unexpected concrete type")
        })
    }

    /// Typed exclusive access to a data object. See [`World::data`].
    pub fn data_mut<T: DataObject>(&mut self, id: DataId) -> Option<&mut T> {
        self.data
            .get_mut(id)
            .and_then(|s| s.obj.as_deref_mut())
            .map(|o| {
                o.as_any_mut()
                    .downcast_mut::<T>()
                    .expect("data object has unexpected concrete type")
            })
    }

    /// Calls `f` with the data object temporarily moved out, so `f` may
    /// use the world freely (e.g. to notify further observers).
    pub fn with_data<R>(
        &mut self,
        id: DataId,
        f: impl FnOnce(&mut dyn DataObject, &mut World) -> R,
    ) -> Option<R> {
        let mut obj = self.data.get_mut(id)?.obj.take()?;
        let r = f(obj.as_mut(), self);
        if let Some(slot) = self.data.get_mut(id) {
            slot.obj = Some(obj);
        }
        Some(r)
    }

    /// Monotonic modification version of a data object.
    pub fn data_version(&self, id: DataId) -> u64 {
        self.data.get(id).map(|s| s.version).unwrap_or(0)
    }

    // --- Observers and delayed update --------------------------------------

    /// Registers `observer` on `data` (idempotent).
    pub fn add_observer(&mut self, data: DataId, observer: ObserverRef) {
        if let Some(slot) = self.data.get_mut(data) {
            if !slot.observers.contains(&observer) {
                slot.observers.push(observer);
            }
        }
    }

    /// Unregisters `observer` from `data`.
    pub fn remove_observer(&mut self, data: DataId, observer: ObserverRef) {
        if let Some(slot) = self.data.get_mut(data) {
            slot.observers.retain(|o| *o != observer);
        }
    }

    /// Observers of `data` (diagnostics).
    pub fn observers_of(&self, data: DataId) -> Vec<ObserverRef> {
        self.data
            .get(data)
            .map(|s| s.observers.clone())
            .unwrap_or_default()
    }

    /// Announces that `data` changed. The notification is queued; nothing
    /// is delivered until [`World::flush_notifications`] — the delayed
    /// update of paper §2.
    pub fn notify(&mut self, data: DataId, change: ChangeRec) {
        if let Some(slot) = self.data.get_mut(data) {
            slot.version += 1;
            self.pending.push_back((data, change));
            self.collector.count("world.notify", 1);
        }
    }

    /// True if notifications are queued.
    pub fn has_pending_notifications(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Delivers queued notifications to observers (which may enqueue
    /// more, e.g. a chart data object relaying a table change to its own
    /// observers). Returns the number delivered.
    ///
    /// A safety cap breaks pathological notification cycles.
    pub fn flush_notifications(&mut self) -> usize {
        let _span = self.collector.span("world.flush_notifications");
        let mut delivered = 0usize;
        let cap = 100_000;
        while let Some((data, change)) = self.pending.pop_front() {
            let observers = self
                .data
                .get(data)
                .map(|s| s.observers.clone())
                .unwrap_or_default();
            for obs in observers {
                delivered += 1;
                match obs {
                    ObserverRef::View(vid) => {
                        self.with_view(vid, |v, w| v.observed_changed(w, data, &change));
                    }
                    ObserverRef::Data(did) => {
                        let ch = change.clone();
                        self.with_data(did, |d, w| d.observed_changed(w, did, data, &ch));
                    }
                }
                if delivered >= cap {
                    self.pending.clear();
                    return delivered;
                }
            }
        }
        self.notifications_delivered += delivered as u64;
        self.collector
            .count("world.notifications_delivered", delivered as u64);
        delivered
    }

    /// Total notifications delivered since startup (instrumentation).
    pub fn notifications_delivered(&self) -> u64 {
        self.notifications_delivered
    }

    // --- Views -------------------------------------------------------------

    /// Inserts a view, assigning its id.
    pub fn insert_view(&mut self, view: Box<dyn View>) -> ViewId {
        let id = self.views.insert(ViewSlot {
            view: Some(view),
            parent: None,
            bounds: Rect::EMPTY,
        });
        if let Some(slot) = self.views.get_mut(id) {
            if let Some(v) = slot.view.as_mut() {
                v.set_id(id);
            }
        }
        id
    }

    /// Creates and inserts a view of `class` through the catalog.
    pub fn new_view(&mut self, class: &str) -> Result<ViewId, CatalogError> {
        let v = self.catalog.new_view(class)?;
        Ok(self.insert_view(v))
    }

    /// Removes a view and (recursively) its children.
    pub fn remove_view_tree(&mut self, id: ViewId) {
        let children = self
            .views
            .get(id)
            .and_then(|s| s.view.as_ref())
            .map(|v| v.children())
            .unwrap_or_default();
        for c in children {
            self.remove_view_tree(c);
        }
        self.views.remove(id);
        self.xform_cache.remove(&id);
        self.xform_epoch += 1;
    }

    /// Number of live views.
    pub fn view_count(&self) -> usize {
        self.views.len()
    }

    /// Ids of every live view (diagnostics and invariant checkers: the
    /// session fuzzer's view-tree oracle walks all views, not just the
    /// ones reachable from one root).
    pub fn view_ids(&self) -> Vec<ViewId> {
        self.views.ids()
    }

    /// True if `id` names a live view.
    pub fn view_exists(&self, id: ViewId) -> bool {
        self.views.contains(id)
    }

    /// Dynamic shared access to a view (e.g. for cursor queries that
    /// recurse with only `&World`).
    pub fn view_dyn(&self, id: ViewId) -> Option<&dyn View> {
        self.views.get(id).and_then(|s| s.view.as_deref())
    }

    /// Typed shared access to a view.
    pub fn view_as<T: View>(&self, id: ViewId) -> Option<&T> {
        self.views
            .get(id)
            .and_then(|s| s.view.as_deref())
            .and_then(|v| v.as_any().downcast_ref::<T>())
    }

    /// Typed exclusive access to a view (no world re-entry: use
    /// [`World::with_view`] for that).
    pub fn view_as_mut<T: View>(&mut self, id: ViewId) -> Option<&mut T> {
        self.views
            .get_mut(id)
            .and_then(|s| s.view.as_deref_mut())
            .and_then(|v| v.as_any_mut().downcast_mut::<T>())
    }

    /// Calls `f` with the view temporarily moved out so it can receive
    /// `&mut World`. Returns `None` if the view is missing **or already
    /// taken** (re-entrant dispatch into the same view is a no-op rather
    /// than a panic).
    pub fn with_view<R>(
        &mut self,
        id: ViewId,
        f: impl FnOnce(&mut dyn View, &mut World) -> R,
    ) -> Option<R> {
        let mut v = self.views.get_mut(id)?.view.take()?;
        let r = f(v.as_mut(), self);
        if let Some(slot) = self.views.get_mut(id) {
            slot.view = Some(v);
        }
        Some(r)
    }

    /// A view's bounds, in its parent's coordinates.
    pub fn view_bounds(&self, id: ViewId) -> Rect {
        self.views.get(id).map(|s| s.bounds).unwrap_or(Rect::EMPTY)
    }

    /// Sets a view's bounds and runs its layout.
    pub fn set_view_bounds(&mut self, id: ViewId, bounds: Rect) {
        let changed = match self.views.get_mut(id) {
            Some(slot) => {
                let changed = slot.bounds != bounds;
                slot.bounds = bounds;
                changed
            }
            None => false,
        };
        if changed {
            self.xform_epoch += 1;
            self.with_view(id, |v, w| v.layout(w));
        }
    }

    /// A view's parent.
    pub fn view_parent(&self, id: ViewId) -> Option<ViewId> {
        self.views.get(id).and_then(|s| s.parent)
    }

    /// Links `child` under `parent` (geometry only; the parent keeps its
    /// own child list).
    pub fn set_view_parent(&mut self, child: ViewId, parent: Option<ViewId>) {
        if let Some(slot) = self.views.get_mut(child) {
            slot.parent = parent;
            self.xform_epoch += 1;
        }
    }

    /// The path from the root ancestor down to `id`, inclusive.
    pub fn path_to(&self, id: ViewId) -> Vec<ViewId> {
        let mut path = vec![id];
        let mut cur = id;
        while let Some(p) = self.view_parent(cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Converts a view-local rect to window coordinates by walking the
    /// parent chain. Returns `None` if the view is not rooted.
    pub fn to_window_rect(&self, view: ViewId, local: Rect) -> Rect {
        let mut r = local;
        let mut cur = Some(view);
        while let Some(id) = cur {
            let b = self.view_bounds(id);
            r = r.translate(b.x, b.y);
            cur = self.view_parent(id);
        }
        r
    }

    // --- Damage ------------------------------------------------------------

    /// Posts a view-local dirty rectangle ("update request posted up the
    /// tree").
    ///
    /// Posting is O(1): rects accumulate in a pending list that is
    /// bulk-coalesced when drained ([`World::take_damage_region`]). A
    /// cheap containment check against the most recent entry absorbs the
    /// common repeat patterns (same caret rect, growing invalidation) at
    /// post time; absorbed rects count as `world.damage_coalesced`.
    pub fn post_damage(&mut self, view: ViewId, local: Rect) {
        if local.is_empty() {
            return;
        }
        if let Some(&(last_view, last_rect)) = self.damage.last() {
            if last_view == view {
                if last_rect.contains_rect(local) {
                    self.collector.count("world.damage_coalesced", 1);
                    return;
                }
                if local.contains_rect(last_rect) {
                    self.damage.last_mut().unwrap().1 = local;
                    self.collector.count("world.damage_coalesced", 1);
                    return;
                }
            }
        }
        self.damage.push((view, local));
        self.collector.count("world.post_damage", 1);
    }

    /// Posts the view's whole bounds as damage.
    pub fn post_damage_full(&mut self, view: ViewId) {
        let size = self.view_bounds(view).size();
        self.post_damage(view, Rect::at(Point::ORIGIN, size));
    }

    /// True if damage is queued.
    pub fn has_damage(&self) -> bool {
        !self.damage.is_empty()
    }

    /// Number of queued damage entries (post-time coalescing makes this
    /// smaller than the number of `post_damage` calls).
    pub fn pending_damage_len(&self) -> usize {
        self.damage.len()
    }

    /// Drains the damage list into a window-coordinate region.
    ///
    /// The pending rects are converted through the cached view→window
    /// transforms and coalesced in one bulk union sweep
    /// ([`Region::from_rects`]) — O(n log n) instead of the O(n²·bands)
    /// of unioning one rect at a time.
    pub fn take_damage_region(&mut self) -> Region {
        let _span = self.collector.span("world.damage_to_window");
        let posted = std::mem::take(&mut self.damage);
        self.collector
            .observe("world.damage_drained", posted.len() as u64);
        let rects: Vec<Rect> = posted
            .into_iter()
            .map(|(view, local)| self.clip_damage_to_window(view, local))
            .collect();
        Region::from_rects(rects)
    }

    /// Drains only the damage belonging to the tree rooted at `root`,
    /// leaving other windows' damage queued. Each interaction manager
    /// settles its own window this way — several windows can share one
    /// world (paper §2's multi-window editing).
    pub fn take_damage_region_for(&mut self, root: ViewId) -> Region {
        let _span = self.collector.span("world.damage_to_window");
        let posted = std::mem::take(&mut self.damage);
        let mut rects = Vec::new();
        let mut keep = Vec::new();
        for (view, local) in posted {
            if self.window_xform(view).root == root {
                rects.push(self.clip_damage_to_window(view, local));
            } else {
                keep.push((view, local));
            }
        }
        self.damage = keep;
        self.collector
            .observe("world.damage_drained", rects.len() as u64);
        Region::from_rects(rects)
    }

    /// Converts view-local damage to window coordinates, clipping to the
    /// visible extent at every level on the way up — via the memoized
    /// transform, so the tree walk happens once per geometry epoch
    /// rather than once per rect.
    fn clip_damage_to_window(&mut self, view: ViewId, local: Rect) -> Rect {
        let x = self.window_xform(view);
        local.translate(x.dx, x.dy).intersect(x.clip)
    }

    /// The view's window transform, from cache or by one root→view walk
    /// (which fills the cache for every ancestor on the path too).
    fn window_xform(&mut self, view: ViewId) -> CachedXform {
        if let Some(c) = self.xform_cache.get(&view) {
            if c.epoch == self.xform_epoch {
                self.collector.count("world.xform_cache_hit", 1);
                return *c;
            }
        }
        self.collector.count("world.xform_cache_miss", 1);
        let path = self.path_to(view);
        let root = path[0];
        let (mut dx, mut dy) = (0i32, 0i32);
        let mut clip: Option<Rect> = None;
        let mut cached = CachedXform {
            epoch: self.xform_epoch,
            dx: 0,
            dy: 0,
            clip: Rect::EMPTY,
            root,
        };
        for &id in &path {
            let b = self.view_bounds(id);
            dx += b.x;
            dy += b.y;
            let extent = Rect::new(dx, dy, b.width, b.height);
            let c = match clip {
                Some(c) => c.intersect(extent),
                None => extent,
            };
            clip = Some(c);
            cached = CachedXform {
                epoch: self.xform_epoch,
                dx,
                dy,
                clip: c,
                root,
            };
            self.xform_cache.insert(id, cached);
        }
        cached
    }

    // --- Dispatch helpers ---------------------------------------------------

    /// Draws `child` through `g`: clips to the child's bounds, translates
    /// into its space, and calls its draw with a correspondingly
    /// translated update.
    pub fn draw_child(&mut self, child: ViewId, g: &mut dyn Graphic, update: Update) {
        let b = self.view_bounds(child);
        if b.is_empty() {
            return;
        }
        if !update.touches(b) {
            return;
        }
        g.gsave();
        g.clip_rect(b);
        g.translate(b.x, b.y);
        let child_update = update.translated(-b.x, -b.y);
        self.with_view(child, |v, w| v.draw(w, g, child_update));
        g.grestore();
    }

    /// Forwards a mouse event to `child` if the point is inside its
    /// bounds (parent coordinates), translating to child coordinates.
    /// Returns true if the child consumed it.
    pub fn mouse_to_child(&mut self, child: ViewId, action: MouseAction, pt: Point) -> bool {
        let b = self.view_bounds(child);
        if !b.contains(pt) {
            return false;
        }
        self.mouse_to_child_unchecked(child, action, pt)
    }

    /// Forwards a mouse event to `child` regardless of bounds (parents
    /// may grant a child events outside its rectangle, e.g. drags).
    pub fn mouse_to_child_unchecked(
        &mut self,
        child: ViewId,
        action: MouseAction,
        pt: Point,
    ) -> bool {
        let b = self.view_bounds(child);
        let local = pt - b.origin();
        self.with_view(child, |v, w| v.mouse(w, action, local))
            .unwrap_or(false)
    }

    // --- Focus ---------------------------------------------------------------

    /// Requests the input focus for `view`; granted by the interaction
    /// manager at the end of the current dispatch.
    pub fn request_focus(&mut self, view: ViewId) {
        self.focus_request = Some(view);
    }

    /// Takes the pending focus request (interaction manager only).
    pub fn take_focus_request(&mut self) -> Option<ViewId> {
        self.focus_request.take()
    }

    /// Posts a command to be performed on `target` once the current
    /// dispatch unwinds. This is how a child safely talks to an ancestor
    /// that is on the call stack above it (a list selecting into its
    /// coordinator): direct re-entry would find the ancestor's slot
    /// empty.
    pub fn post_command(&mut self, target: ViewId, command: &str) {
        self.pending_commands.push((target, command.to_string()));
    }

    /// Delivers queued commands (interaction manager / test drivers).
    /// Returns how many were performed.
    pub fn flush_commands(&mut self) -> usize {
        let mut n = 0;
        // Commands may enqueue further commands; bound the cascade.
        for _ in 0..64 {
            let batch = std::mem::take(&mut self.pending_commands);
            if batch.is_empty() {
                break;
            }
            for (target, cmd) in batch {
                n += 1;
                self.with_view(target, |v, w| v.perform(w, &cmd));
            }
        }
        n
    }

    /// True if commands are queued.
    pub fn has_pending_commands(&self) -> bool {
        !self.pending_commands.is_empty()
    }

    // --- Clock and timers -------------------------------------------------

    /// The virtual time, in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.clock_ms
    }

    /// Schedules `view.timer(token)` to fire `delay_ms` from now.
    pub fn schedule_timer(&mut self, view: ViewId, delay_ms: u64, token: u32) {
        self.timers.push(Timer {
            due_ms: self.clock_ms + delay_ms,
            view,
            token,
        });
    }

    /// Cancels all timers for a view.
    pub fn cancel_timers(&mut self, view: ViewId) {
        self.timers.retain(|t| t.view != view);
    }

    /// Advances the virtual clock, returning the timers that came due in
    /// order.
    pub fn advance_clock(&mut self, ms: u64) -> Vec<(ViewId, u32)> {
        self.clock_ms += ms;
        // Keep an injected manual trace clock in lock-step with the
        // virtual clock, so span timestamps line up with timer time.
        self.collector.advance_clock_us(ms.saturating_mul(1000));
        let now = self.clock_ms;
        let mut due: Vec<(u64, ViewId, u32)> = Vec::new();
        self.timers.retain(|t| {
            if t.due_ms <= now {
                due.push((t.due_ms, t.view, t.token));
                false
            } else {
                true
            }
        });
        due.sort_by_key(|(d, ..)| *d);
        if !due.is_empty() {
            self.collector.count("world.timers_fired", due.len() as u64);
        }
        due.into_iter().map(|(_, v, t)| (v, t)).collect()
    }
}

impl Default for World {
    fn default() -> Self {
        World::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::UnknownObject;
    use crate::view::{ScrollInfo, ViewBase};
    use atk_graphics::Size;
    use std::any::Any;

    // A minimal view that records events for assertions.
    struct ProbeView {
        base: ViewBase,
        children: Vec<ViewId>,
        changes_seen: usize,
        last_mouse: Option<Point>,
    }

    impl ProbeView {
        fn new() -> ProbeView {
            ProbeView {
                base: ViewBase::new(),
                children: Vec::new(),
                changes_seen: 0,
                last_mouse: None,
            }
        }
    }

    impl View for ProbeView {
        fn class_name(&self) -> &'static str {
            "probe"
        }
        fn id(&self) -> ViewId {
            self.base.id
        }
        fn set_id(&mut self, id: ViewId) {
            self.base.id = id;
        }
        fn children(&self) -> Vec<ViewId> {
            self.children.clone()
        }
        fn desired_size(&mut self, _w: &mut World, _budget: i32) -> Size {
            Size::new(10, 10)
        }
        fn draw(&mut self, _w: &mut World, _g: &mut dyn Graphic, _u: Update) {}
        fn mouse(&mut self, world: &mut World, _a: MouseAction, pt: Point) -> bool {
            self.last_mouse = Some(pt);
            // Forward to any child containing the point — parental choice.
            let kids = self.children.clone();
            for k in kids {
                if world.mouse_to_child(k, _a, pt) {
                    return true;
                }
            }
            true
        }
        fn observed_changed(&mut self, world: &mut World, _d: DataId, _c: &ChangeRec) {
            self.changes_seen += 1;
            world.post_damage_full(self.id());
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn scroll_info(&self, _w: &World) -> Option<ScrollInfo> {
            None
        }
    }

    #[test]
    fn insert_view_assigns_id() {
        let mut w = World::new();
        let id = w.insert_view(Box::new(ProbeView::new()));
        assert_eq!(w.view_as::<ProbeView>(id).unwrap().id(), id);
    }

    #[test]
    fn observer_notification_is_delayed_until_flush() {
        let mut w = World::new();
        let d = w.insert_data(Box::new(UnknownObject::new("x")));
        let v = w.insert_view(Box::new(ProbeView::new()));
        w.add_observer(d, ObserverRef::View(v));
        w.notify(d, ChangeRec::Full);
        assert_eq!(w.view_as::<ProbeView>(v).unwrap().changes_seen, 0);
        assert!(w.has_pending_notifications());
        let n = w.flush_notifications();
        assert_eq!(n, 1);
        assert_eq!(w.view_as::<ProbeView>(v).unwrap().changes_seen, 1);
    }

    #[test]
    fn multiple_views_all_hear_one_change() {
        let mut w = World::new();
        let d = w.insert_data(Box::new(UnknownObject::new("x")));
        let vs: Vec<ViewId> = (0..5)
            .map(|_| {
                let v = w.insert_view(Box::new(ProbeView::new()));
                w.add_observer(d, ObserverRef::View(v));
                v
            })
            .collect();
        w.notify(d, ChangeRec::Full);
        w.flush_notifications();
        for v in vs {
            assert_eq!(w.view_as::<ProbeView>(v).unwrap().changes_seen, 1);
        }
    }

    #[test]
    fn observer_registration_is_idempotent() {
        let mut w = World::new();
        let d = w.insert_data(Box::new(UnknownObject::new("x")));
        let v = w.insert_view(Box::new(ProbeView::new()));
        w.add_observer(d, ObserverRef::View(v));
        w.add_observer(d, ObserverRef::View(v));
        assert_eq!(w.observers_of(d).len(), 1);
        w.remove_observer(d, ObserverRef::View(v));
        assert!(w.observers_of(d).is_empty());
    }

    #[test]
    fn version_bumps_on_notify() {
        let mut w = World::new();
        let d = w.insert_data(Box::new(UnknownObject::new("x")));
        assert_eq!(w.data_version(d), 0);
        w.notify(d, ChangeRec::Full);
        w.notify(d, ChangeRec::Meta);
        assert_eq!(w.data_version(d), 2);
    }

    #[test]
    fn damage_converts_to_window_coordinates() {
        let mut w = World::new();
        let parent = w.insert_view(Box::new(ProbeView::new()));
        let child = w.insert_view(Box::new(ProbeView::new()));
        w.set_view_parent(child, Some(parent));
        w.set_view_bounds(parent, Rect::new(100, 50, 200, 200));
        w.set_view_bounds(child, Rect::new(10, 20, 50, 50));
        w.post_damage(child, Rect::new(1, 2, 5, 5));
        let region = w.take_damage_region();
        assert_eq!(region.bounding_box(), Rect::new(111, 72, 5, 5));
        assert!(!w.has_damage());
    }

    #[test]
    fn damage_clips_to_view_extents() {
        let mut w = World::new();
        let v = w.insert_view(Box::new(ProbeView::new()));
        w.set_view_bounds(v, Rect::new(10, 10, 20, 20));
        w.post_damage(v, Rect::new(15, 15, 100, 100));
        let region = w.take_damage_region();
        assert_eq!(region.bounding_box(), Rect::new(25, 25, 5, 5));
    }

    #[test]
    fn contained_damage_posts_coalesce_at_post_time() {
        let mut w = World::new();
        let v = w.insert_view(Box::new(ProbeView::new()));
        w.set_view_bounds(v, Rect::new(0, 0, 100, 100));
        // Growing rects on the same view: each new post swallows the
        // previous pending entry...
        w.post_damage(v, Rect::new(10, 10, 5, 5));
        w.post_damage(v, Rect::new(10, 10, 20, 20));
        // ...and a rect already inside the pending entry is absorbed.
        w.post_damage(v, Rect::new(12, 12, 3, 3));
        assert_eq!(w.pending_damage_len(), 1);
        let region = w.take_damage_region();
        assert_eq!(region.bounding_box(), Rect::new(10, 10, 20, 20));
    }

    #[test]
    fn xform_cache_invalidates_on_geometry_and_parent_changes() {
        let mut w = World::new();
        let parent = w.insert_view(Box::new(ProbeView::new()));
        let child = w.insert_view(Box::new(ProbeView::new()));
        w.set_view_parent(child, Some(parent));
        w.set_view_bounds(parent, Rect::new(100, 50, 200, 200));
        w.set_view_bounds(child, Rect::new(10, 20, 50, 50));
        w.post_damage(child, Rect::new(1, 2, 5, 5));
        assert_eq!(
            w.take_damage_region().bounding_box(),
            Rect::new(111, 72, 5, 5)
        );
        // Move the parent: the cached child transform must not be reused.
        w.set_view_bounds(parent, Rect::new(0, 0, 200, 200));
        w.post_damage(child, Rect::new(1, 2, 5, 5));
        assert_eq!(
            w.take_damage_region().bounding_box(),
            Rect::new(11, 22, 5, 5)
        );
        // Reparent to the root: offsets drop the old parent's origin.
        w.set_view_parent(child, None);
        w.post_damage(child, Rect::new(1, 2, 5, 5));
        assert_eq!(
            w.take_damage_region().bounding_box(),
            Rect::new(11, 22, 5, 5)
        );
    }

    #[test]
    fn mouse_routing_translates_coordinates() {
        let mut w = World::new();
        let parent = w.insert_view(Box::new(ProbeView::new()));
        let child = w.insert_view(Box::new(ProbeView::new()));
        w.set_view_parent(child, Some(parent));
        w.set_view_bounds(parent, Rect::new(0, 0, 100, 100));
        w.set_view_bounds(child, Rect::new(30, 30, 40, 40));
        w.view_as_mut::<ProbeView>(parent)
            .unwrap()
            .children
            .push(child);
        let consumed = w.with_view(parent, |v, w| {
            v.mouse(
                w,
                MouseAction::Down(atk_wm::Button::Left),
                Point::new(35, 45),
            )
        });
        assert_eq!(consumed, Some(true));
        assert_eq!(
            w.view_as::<ProbeView>(child).unwrap().last_mouse,
            Some(Point::new(5, 15))
        );
    }

    #[test]
    fn timers_fire_in_order_when_clock_advances() {
        let mut w = World::new();
        let v = w.insert_view(Box::new(ProbeView::new()));
        w.schedule_timer(v, 100, 2);
        w.schedule_timer(v, 50, 1);
        assert!(w.advance_clock(49).is_empty());
        assert_eq!(w.advance_clock(1), vec![(v, 1)]);
        assert_eq!(w.advance_clock(1000), vec![(v, 2)]);
        assert!(w.advance_clock(1000).is_empty());
    }

    #[test]
    fn cancel_timers_removes_them() {
        let mut w = World::new();
        let v = w.insert_view(Box::new(ProbeView::new()));
        w.schedule_timer(v, 10, 1);
        w.cancel_timers(v);
        assert!(w.advance_clock(100).is_empty());
    }

    #[test]
    fn path_to_walks_from_root() {
        let mut w = World::new();
        let a = w.insert_view(Box::new(ProbeView::new()));
        let b = w.insert_view(Box::new(ProbeView::new()));
        let c = w.insert_view(Box::new(ProbeView::new()));
        w.set_view_parent(b, Some(a));
        w.set_view_parent(c, Some(b));
        assert_eq!(w.path_to(c), vec![a, b, c]);
        assert_eq!(w.path_to(a), vec![a]);
    }

    #[test]
    fn remove_view_tree_removes_descendants() {
        let mut w = World::new();
        let a = w.insert_view(Box::new(ProbeView::new()));
        let b = w.insert_view(Box::new(ProbeView::new()));
        w.set_view_parent(b, Some(a));
        w.view_as_mut::<ProbeView>(a).unwrap().children.push(b);
        w.remove_view_tree(a);
        assert!(!w.view_exists(a));
        assert!(!w.view_exists(b));
        assert_eq!(w.view_count(), 0);
    }

    // A forkable probe: clones itself, reporting a payload size.
    #[derive(Clone)]
    struct ForkProbe {
        base: ViewBase,
        ticks: Vec<u32>,
    }

    impl View for ForkProbe {
        fn class_name(&self) -> &'static str {
            "forkprobe"
        }
        fn id(&self) -> ViewId {
            self.base.id
        }
        fn set_id(&mut self, id: ViewId) {
            self.base.id = id;
        }
        fn desired_size(&mut self, _w: &mut World, _b: i32) -> Size {
            Size::new(10, 10)
        }
        fn draw(&mut self, _w: &mut World, _g: &mut dyn Graphic, _u: Update) {}
        fn timer(&mut self, _w: &mut World, token: u32) {
            self.ticks.push(token);
        }
        fn fork(&self) -> Option<Box<dyn View>> {
            Some(Box::new(self.clone()))
        }
        fn shared_payload_bytes(&self) -> u64 {
            16
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn fork_fails_naming_the_unforkable_class() {
        let mut w = World::new();
        w.insert_view(Box::new(ProbeView::new()));
        let err = w.fork().map(|_| ()).unwrap_err();
        assert!(err.contains("`probe`"), "{err}");
    }

    #[test]
    fn fork_carries_state_and_isolates_mutations() {
        let mut w = World::new();
        let d = w.insert_data(Box::new(UnknownObject::new("x")));
        let v = w.insert_view(Box::new(ForkProbe {
            base: ViewBase::new(),
            ticks: Vec::new(),
        }));
        w.set_view_bounds(v, Rect::new(5, 5, 50, 50));
        w.add_observer(d, ObserverRef::View(v));
        w.notify(d, ChangeRec::Full);
        w.schedule_timer(v, 100, 9);
        w.advance_clock(40);

        let mut f = w.fork().unwrap();
        // Ids, geometry, queues, and the clock carried over.
        assert_eq!(f.view_bounds(v), Rect::new(5, 5, 50, 50));
        assert_eq!(f.observers_of(d), vec![ObserverRef::View(v)]);
        assert!(f.has_pending_notifications());
        assert_eq!(f.now_ms(), 40);
        // The timer fires at the same virtual instant in the fork.
        assert_eq!(f.advance_clock(60), vec![(v, 9)]);
        // Mutating the fork leaves the source untouched (and vice versa).
        f.view_as_mut::<ForkProbe>(v).unwrap().ticks.push(1);
        assert!(w.view_as::<ForkProbe>(v).unwrap().ticks.is_empty());
        let d2 = f.insert_data(Box::new(UnknownObject::new("y")));
        assert!(w.data_dyn(d2).is_none());
        // Fresh inserts mint identical ids on both sides (same free list).
        let a = w.insert_data(Box::new(UnknownObject::new("z")));
        let b = f.insert_data(Box::new(UnknownObject::new("z")));
        assert_ne!(a, b, "fork already used the next slot");
    }

    #[test]
    fn fork_counts_on_the_source_collector() {
        let collector = Arc::new(Collector::new());
        collector.enable();
        let mut w = World::new();
        w.set_collector(collector.clone());
        w.insert_view(Box::new(ForkProbe {
            base: ViewBase::new(),
            ticks: Vec::new(),
        }));
        let f = w.fork().unwrap();
        let snap = collector.snapshot();
        assert_eq!(snap.counter("world.forks"), 1);
        assert_eq!(snap.counter("world.fork_shared_bytes"), 16);
        // The fork inherits the collector until the caller replaces it.
        assert!(Arc::ptr_eq(f.collector(), &collector));
    }

    #[test]
    fn with_view_is_reentrancy_safe() {
        let mut w = World::new();
        let v = w.insert_view(Box::new(ProbeView::new()));
        let outer = w.with_view(v, |_, w| {
            // Re-entering the same view while it is taken is a no-op.
            w.with_view(v, |_, _| 42)
        });
        assert_eq!(outer, Some(None));
        // And the view is back afterwards.
        assert!(w.view_as::<ProbeView>(v).is_some());
    }
}
