//! # atk-core — the Andrew Toolkit architecture
//!
//! This crate is the paper's primary contribution: the object model and
//! protocols that let arbitrary components embed arbitrary components,
//! editable in place, with no compile-time knowledge of each other.
//!
//! The map from paper section to module:
//!
//! | Paper | Module | What it implements |
//! |---|---|---|
//! | §2 data objects & views | [`data`], [`view`], [`world`] | the model/view split, observers, change records, delayed update |
//! | §3 the view tree | [`im`], [`world`], [`baseline`] | event routing with parental authority; damage posted up, update passed down; the global-physical baseline it replaced |
//! | §3 negotiation | [`menus`], [`keymap`] | menu merging and key-sequence binding along the focus path |
//! | §4 printing | [`print`] | repaint any view subtree onto a PostScript drawable |
//! | §5 external representation | [`datastream`] | `\begindata`/`\enddata` nesting, `\view` placement, 7-bit/80-col transport rules, skip scanning, unknown-object passthrough |
//! | §6–7 class system & extension | [`catalog`], [`app`] (over [`atk_class`]) | name→factory resolution gated by the simulated dynamic loader; `runapp` |
//!
//! Components (text, table, drawing, …) live in their own crates and plug
//! in through [`catalog::Catalog`]; applications plug in through
//! [`app::AppRegistry`]. Nothing in this crate knows any concrete
//! component — that is the point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod arena;
pub mod baseline;
pub mod catalog;
pub mod data;
pub mod datastream;
pub mod ids;
pub mod im;
pub mod keymap;
pub mod menus;
pub mod print;
pub mod script;
pub mod view;
pub mod world;

pub use app::{AppOutcome, AppRegistry, Application};
pub use catalog::{Catalog, CatalogError};
pub use data::{ChangeRec, DataObject, ObserverRef, UnknownObject};
pub use datastream::{
    audit_stream, document_to_string, read_document, write_document, DatastreamReader,
    DatastreamWriter, DsError, Token,
};
pub use ids::{DataId, ViewId};
pub use im::InteractionManager;
pub use keymap::{standard_editing_keymap, KeyOutcome, KeyState, Keymap};
pub use menus::{merge_menus, MenuItem};
pub use print::print_view;
pub use script::{format_key, parse_key, EventScript, ScriptStep};
pub use view::{ScrollInfo, Update, View, ViewBase};
pub use world::World;
