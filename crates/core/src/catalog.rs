//! The component catalog: class names → factories, gated by the dynamic
//! loader.
//!
//! This is where the class system (paper §6) meets the toolkit: every
//! component registers its data-object and view factories here together
//! with the [`ModuleSpec`] describing its loadable module. Creating an
//! instance *requires* the module first — under [`LinkPolicy::Dynamic`]
//! that charges the simulated load on first use (the paper's "slight
//! delay to load the code"), under [`LinkPolicy::Static`] everything was
//! already paid for at startup. The datastream reader resolves
//! `\begindata{music,…}` through [`Catalog::new_data`], which is exactly
//! the extension path the paper's music-component story describes.

use std::collections::HashMap;
use std::fmt;

use atk_class::{ClassRegistry, CostModel, LinkPolicy, LoadError, Loader, ModuleSpec};

use crate::data::DataObject;
use crate::view::View;

/// Factory for a data object.
pub type DataFactory = fn() -> Box<dyn DataObject>;
/// Factory for a view.
pub type ViewFactory = fn() -> Box<dyn View>;

/// Errors from catalog operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// No factory registered under this class name.
    UnknownClass(String),
    /// The class' module could not be loaded.
    Load(LoadError),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::UnknownClass(c) => write!(f, "no component class `{c}`"),
            CatalogError::Load(e) => write!(f, "load failure: {e}"),
        }
    }
}

impl std::error::Error for CatalogError {}

/// The registry of instantiable component classes.
///
/// `Clone` is what lets [`crate::world::World::fork`] carry the catalog
/// into a forked session: factories are plain `fn` pointers, so the
/// clone is a handful of map copies, and the fork keeps the template's
/// loader state (modules already resident stay resident — precisely the
/// warm-start the template path is for).
#[derive(Clone)]
pub struct Catalog {
    /// The simulated dynamic loader (paper §6).
    pub loader: Loader,
    /// The run-time class registry (names, ancestry, versions).
    pub registry: ClassRegistry,
    data_factories: HashMap<String, DataFactory>,
    view_factories: HashMap<String, ViewFactory>,
    default_views: HashMap<String, String>,
    instances_created: u64,
}

impl Catalog {
    /// An empty catalog with the given link policy.
    pub fn new(policy: LinkPolicy, cost: CostModel) -> Catalog {
        let mut registry = ClassRegistry::new();
        // The two root classes of the toolkit's world.
        registry
            .define_root("dataobject", 1)
            .expect("fresh registry");
        registry.define_root("view", 1).expect("fresh registry");
        Catalog {
            loader: Loader::new(policy, cost),
            registry,
            data_factories: HashMap::new(),
            view_factories: HashMap::new(),
            default_views: HashMap::new(),
            instances_created: 0,
        }
    }

    /// A dynamic-loading catalog with the default cost model.
    pub fn dynamic() -> Catalog {
        Catalog::new(LinkPolicy::Dynamic, CostModel::default())
    }

    /// Adds a loadable module to the inventory.
    pub fn add_module(&mut self, spec: ModuleSpec) -> Result<(), CatalogError> {
        self.loader.add_module(spec).map_err(CatalogError::Load)?;
        Ok(())
    }

    /// Registers a data-object class provided by `module`.
    pub fn register_data(&mut self, class: &str, factory: DataFactory) {
        // Idempotent class registration keeps component `register()`
        // functions callable in any order.
        let _ = self.registry.define(class, "dataobject", 1);
        self.data_factories.insert(class.to_string(), factory);
    }

    /// Registers a view class.
    pub fn register_view(&mut self, class: &str, factory: ViewFactory) {
        let _ = self.registry.define(class, "view", 1);
        self.view_factories.insert(class.to_string(), factory);
    }

    /// Declares the default view class for a data class (what the editor
    /// instantiates when a document embeds the data object with no
    /// explicit `\view`).
    pub fn set_default_view(&mut self, data_class: &str, view_class: &str) {
        self.default_views
            .insert(data_class.to_string(), view_class.to_string());
    }

    /// The default view class for a data class.
    pub fn default_view(&self, data_class: &str) -> Option<&str> {
        self.default_views.get(data_class).map(String::as_str)
    }

    /// Instantiates a data object of `class`, loading its module on first
    /// use.
    pub fn new_data(&mut self, class: &str) -> Result<Box<dyn DataObject>, CatalogError> {
        let factory = *self
            .data_factories
            .get(class)
            .ok_or_else(|| CatalogError::UnknownClass(class.to_string()))?;
        if self.loader.module_for_class(class).is_some() {
            self.loader
                .require_class(class, "catalog")
                .map_err(CatalogError::Load)?;
        }
        self.instances_created += 1;
        Ok(factory())
    }

    /// Instantiates a view of `class`, loading its module on first use.
    pub fn new_view(&mut self, class: &str) -> Result<Box<dyn View>, CatalogError> {
        let factory = *self
            .view_factories
            .get(class)
            .ok_or_else(|| CatalogError::UnknownClass(class.to_string()))?;
        if self.loader.module_for_class(class).is_some() {
            self.loader
                .require_class(class, "catalog")
                .map_err(CatalogError::Load)?;
        }
        self.instances_created += 1;
        Ok(factory())
    }

    /// True if a data class of this name is registered.
    pub fn has_data_class(&self, class: &str) -> bool {
        self.data_factories.contains_key(class)
    }

    /// True if a view class of this name is registered.
    pub fn has_view_class(&self, class: &str) -> bool {
        self.view_factories.contains_key(class)
    }

    /// Instances created since startup (instrumentation).
    pub fn instances_created(&self) -> u64 {
        self.instances_created
    }

    /// Registered data classes, sorted (diagnostics).
    pub fn data_classes(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.data_factories.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::new(LinkPolicy::Dynamic, CostModel::free())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::UnknownObject;
    use std::any::Any;

    fn unknown_factory() -> Box<dyn DataObject> {
        Box::new(UnknownObject::new("test"))
    }

    #[test]
    fn register_and_create() {
        let mut cat = Catalog::default();
        cat.register_data("blob", unknown_factory);
        assert!(cat.has_data_class("blob"));
        let obj = cat.new_data("blob").unwrap();
        assert_eq!(obj.class_name(), "unknown");
        assert_eq!(cat.instances_created(), 1);
    }

    #[test]
    fn unknown_class_is_an_error() {
        let mut cat = Catalog::default();
        assert!(matches!(
            cat.new_data("music"),
            Err(CatalogError::UnknownClass(c)) if c == "music"
        ));
    }

    #[test]
    fn module_gating_charges_load_on_first_use() {
        let mut cat = Catalog::default();
        cat.add_module(ModuleSpec::new("blob", 1000, &["blob"], &[]))
            .unwrap();
        cat.register_data("blob", unknown_factory);
        assert!(!cat.loader.is_resident("blob"));
        cat.new_data("blob").unwrap();
        assert!(cat.loader.is_resident("blob"));
        assert_eq!(cat.loader.stats().events.len(), 1);
        cat.new_data("blob").unwrap();
        assert_eq!(cat.loader.stats().events.len(), 1);
    }

    #[test]
    fn default_view_mapping() {
        let mut cat = Catalog::default();
        cat.set_default_view("table", "tablev");
        assert_eq!(cat.default_view("table"), Some("tablev"));
        assert_eq!(cat.default_view("text"), None);
    }

    #[test]
    fn classes_enter_the_registry_with_ancestry() {
        let mut cat = Catalog::default();
        cat.register_data("blob", unknown_factory);
        let blob = cat.registry.id_of("blob").unwrap();
        let root = cat.registry.id_of("dataobject").unwrap();
        assert!(cat.registry.is_a(blob, root));
    }

    // Silence "unused" for the Any import used via the trait.
    #[allow(dead_code)]
    fn _touch(obj: &dyn Any) -> bool {
        obj.is::<u32>()
    }
}
