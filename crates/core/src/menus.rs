//! Menu negotiation (paper §3).
//!
//! "The same mechanism is used between children and parents to negotiate
//! the contents of menus…" — every view on the focus path contributes
//! [`MenuItem`]s; the interaction manager merges them with
//! [`merge_menus`], letting deeper (more specific) views override or
//! shadow their ancestors' items of the same label.

/// One menu entry a view contributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MenuItem {
    /// The card (submenu) this item belongs to, e.g. `"File"`.
    pub card: String,
    /// The visible label, e.g. `"Save"`.
    pub label: String,
    /// The command dispatched through `View::perform` when chosen.
    pub command: String,
}

impl MenuItem {
    /// Creates an item.
    pub fn new(card: &str, label: &str, command: &str) -> MenuItem {
        MenuItem {
            card: card.to_string(),
            label: label.to_string(),
            command: command.to_string(),
        }
    }
}

/// Merges menu contributions along the focus path. `contributions` is
/// ordered root-first; later (deeper) contributors override earlier items
/// with the same card+label, and otherwise append.
pub fn merge_menus(contributions: &[Vec<MenuItem>]) -> Vec<MenuItem> {
    let mut merged: Vec<MenuItem> = Vec::new();
    for contribution in contributions {
        for item in contribution {
            if let Some(existing) = merged
                .iter_mut()
                .find(|m| m.card == item.card && m.label == item.label)
            {
                existing.command = item.command.clone();
            } else {
                merged.push(item.clone());
            }
        }
    }
    // Stable grouping by card keeps related items together while
    // preserving contribution order within a card.
    let mut cards: Vec<String> = Vec::new();
    for m in &merged {
        if !cards.contains(&m.card) {
            cards.push(m.card.clone());
        }
    }
    let mut out = Vec::with_capacity(merged.len());
    for card in cards {
        out.extend(merged.iter().filter(|m| m.card == card).cloned());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deeper_views_override_same_label() {
        let root = vec![MenuItem::new("File", "Save", "frame-save")];
        let leaf = vec![MenuItem::new("File", "Save", "text-save")];
        let merged = merge_menus(&[root, leaf]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].command, "text-save");
    }

    #[test]
    fn distinct_items_accumulate_grouped_by_card() {
        let a = vec![
            MenuItem::new("File", "Save", "save"),
            MenuItem::new("Edit", "Cut", "cut"),
        ];
        let b = vec![MenuItem::new("File", "Print", "print")];
        let merged = merge_menus(&[a, b]);
        assert_eq!(
            merged.iter().map(|m| m.label.as_str()).collect::<Vec<_>>(),
            vec!["Save", "Print", "Cut"]
        );
    }

    #[test]
    fn empty_contributions_are_fine() {
        assert!(merge_menus(&[]).is_empty());
        assert!(merge_menus(&[vec![], vec![]]).is_empty());
    }
}
