//! Printing (paper §4).
//!
//! "When a view receives a print request for a specific type of printer
//! it can temporarily shift its pointer to a drawable for that printer
//! type and do a redraw of its image. We expect to provide this facility
//! in a later version of the toolkit." — this module is that later
//! version: [`print_view`] repaints any view (and its whole subtree,
//! embedded components included) onto a PostScript drawable, reusing the
//! exact draw code that paints the screen.

use atk_graphics::Rect;
use atk_wm::printer::PostScriptGraphic;
use atk_wm::Graphic;

use crate::ids::ViewId;
use crate::view::Update;
use crate::world::World;

/// US-letter page in our device units.
pub const PAGE_WIDTH: i32 = 612;
/// US-letter page height.
pub const PAGE_HEIGHT: i32 = 792;

/// Prints a view: repaints it (full update) onto a printer drawable and
/// returns the PostScript program. The view keeps its current bounds; it
/// is placed at the page's top-left with a small margin.
pub fn print_view(world: &mut World, view: ViewId) -> String {
    let mut ps = PostScriptGraphic::new(PAGE_WIDTH, PAGE_HEIGHT);
    // The page header timestamp is the session's virtual clock, so the
    // same world state always prints the same bytes.
    ps.set_clock_ms(world.now_ms());
    let bounds = world.view_bounds(view);
    ps.gsave();
    ps.translate(36, 36);
    ps.clip_rect(Rect::new(0, 0, bounds.width, bounds.height));
    world.with_view(view, |v, w| v.draw(w, &mut ps, Update::Full));
    ps.grestore();
    ps.document()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::ChangeRec;
    use crate::ids::DataId;
    use crate::view::{View, ViewBase};
    use atk_graphics::{Point, Size};
    use std::any::Any;

    struct Inked {
        base: ViewBase,
    }
    impl View for Inked {
        fn class_name(&self) -> &'static str {
            "inked"
        }
        fn id(&self) -> ViewId {
            self.base.id
        }
        fn set_id(&mut self, id: ViewId) {
            self.base.id = id;
        }
        fn desired_size(&mut self, _w: &mut World, _b: i32) -> Size {
            Size::new(100, 40)
        }
        fn draw(&mut self, _w: &mut World, g: &mut dyn atk_wm::Graphic, _u: Update) {
            g.fill_rect(Rect::new(5, 5, 50, 20));
            g.draw_string(Point::new(10, 10), "printed");
        }
        fn observed_changed(&mut self, _w: &mut World, _d: DataId, _c: &ChangeRec) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn print_reuses_the_screen_draw_path() {
        let mut world = World::new();
        let v = world.insert_view(Box::new(Inked {
            base: ViewBase::new(),
        }));
        world.set_view_bounds(v, Rect::new(0, 0, 100, 40));
        let ps = print_view(&mut world, v);
        assert!(ps.starts_with("%!PS-Adobe-2.0"));
        assert!(ps.contains("(printed) show"));
        assert!(ps.contains("fill"));
        // The page margin translation is in effect (device x = 36+5).
        assert!(ps.contains("41 "), "margin-translated coords:\n{ps}");
    }
}
