//! Typed identifiers for the two object arenas.

use crate::arena::Id;

/// Marker type for data-object ids.
pub enum DataMark {}
/// Marker type for view ids.
pub enum ViewMark {}

/// Identifier of a data object in the [`crate::world::World`].
pub type DataId = Id<DataMark>;
/// Identifier of a view in the [`crate::world::World`].
pub type ViewId = Id<ViewMark>;
