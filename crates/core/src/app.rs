//! Applications and `runapp` (paper §7).
//!
//! "We have created a program, called runapp, that contains the basic
//! components of the toolkit. The code for each individual application is
//! then dynamically loaded in at run time." — applications implement
//! [`Application`] and register a factory in an [`AppRegistry`] alongside
//! a module in the loader inventory; [`AppRegistry::launch`] requires the
//! module (charging the dynamic-load cost on first use) and runs the app.

use std::collections::HashMap;

use atk_wm::WindowSystem;

use crate::world::World;

/// What an application run produced (so scripted runs can be asserted
/// on).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AppOutcome {
    /// Human-readable summary lines the app chose to report.
    pub report: Vec<String>,
    /// Events the app processed.
    pub events_handled: u64,
}

/// A toolkit application, launchable by name through `runapp`.
pub trait Application {
    /// The application's name (`"ez"`, `"messages"`, …).
    fn name(&self) -> &'static str;

    /// Runs the application: build the view tree, process `args` (which
    /// may include a document to open and an event script to run), and
    /// return an outcome.
    fn run(
        &mut self,
        world: &mut World,
        ws: &mut dyn WindowSystem,
        args: &[String],
    ) -> Result<AppOutcome, String>;
}

/// Factory for an application instance.
pub type AppFactory = fn() -> Box<dyn Application>;

/// The `runapp` registry: application name → factory, gated by the
/// world's dynamic loader.
#[derive(Default)]
pub struct AppRegistry {
    factories: HashMap<String, AppFactory>,
}

impl AppRegistry {
    /// An empty registry.
    pub fn new() -> AppRegistry {
        AppRegistry::default()
    }

    /// Registers an application factory. The module of the same name
    /// should be in the world's loader inventory.
    pub fn register(&mut self, name: &str, factory: AppFactory) {
        self.factories.insert(name.to_string(), factory);
    }

    /// Registered application names, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.factories.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Launches `name`: requires its module through the world's loader
    /// (first use pays the simulated load latency), instantiates it, and
    /// runs it.
    pub fn launch(
        &self,
        name: &str,
        world: &mut World,
        ws: &mut dyn WindowSystem,
        args: &[String],
    ) -> Result<AppOutcome, String> {
        let factory = self
            .factories
            .get(name)
            .ok_or_else(|| format!("runapp: no application `{name}`"))?;
        if world.catalog.loader.module(name).is_some() {
            world
                .catalog
                .loader
                .require(name, "runapp")
                .map_err(|e| e.to_string())?;
        }
        let mut app = factory();
        app.run(world, ws, args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atk_class::ModuleSpec;

    struct NullApp;
    impl Application for NullApp {
        fn name(&self) -> &'static str {
            "null"
        }
        fn run(
            &mut self,
            _world: &mut World,
            _ws: &mut dyn WindowSystem,
            args: &[String],
        ) -> Result<AppOutcome, String> {
            Ok(AppOutcome {
                report: vec![format!("args: {}", args.len())],
                events_handled: 0,
            })
        }
    }

    fn null_factory() -> Box<dyn Application> {
        Box::new(NullApp)
    }

    #[test]
    fn launch_by_name() {
        let mut reg = AppRegistry::new();
        reg.register("null", null_factory);
        let mut world = World::new();
        let mut ws = atk_wm::x11sim::X11Sim::new();
        let out = reg
            .launch("null", &mut world, &mut ws, &["a".into()])
            .unwrap();
        assert_eq!(out.report, vec!["args: 1".to_string()]);
    }

    #[test]
    fn launch_charges_module_load() {
        let mut reg = AppRegistry::new();
        reg.register("null", null_factory);
        let mut world = World::new();
        world
            .catalog
            .add_module(ModuleSpec::new("null", 5_000, &[], &[]))
            .unwrap();
        let mut ws = atk_wm::x11sim::X11Sim::new();
        reg.launch("null", &mut world, &mut ws, &[]).unwrap();
        assert!(world.catalog.loader.is_resident("null"));
    }

    #[test]
    fn unknown_app_is_an_error() {
        let reg = AppRegistry::new();
        let mut world = World::new();
        let mut ws = atk_wm::x11sim::X11Sim::new();
        assert!(reg.launch("ez", &mut world, &mut ws, &[]).is_err());
    }
}
