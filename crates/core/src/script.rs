//! Scripted event sources: the deterministic stand-in for a user at the
//! display.
//!
//! The paper's applications were exercised by ~3000 campus users; ours
//! are exercised by event scripts, which is what makes every snapshot and
//! benchmark reproducible. A script is a line-oriented text format:
//!
//! ```text
//! # move, press, type, choose a menu item, let time pass
//! mouse move 120 80
//! mouse down 120 80
//! mouse up 120 80
//! type Hello, world
//! key C-x
//! key C-s
//! key RET
//! menu request
//! menu select Save
//! tick 250
//! resize 800 600
//! ```

use atk_graphics::{Point, Size};
use atk_wm::{Button, Key, MouseAction, WindowEvent};

use crate::im::InteractionManager;
use crate::world::World;

/// One step of a script.
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptStep {
    /// Post a window event.
    Event(WindowEvent),
    /// Request menus, then select the item with this label.
    MenuSelect(String),
}

impl ScriptStep {
    /// Renders the step as one script line (the inverse of
    /// [`EventScript::parse`]), or `None` for events the line format
    /// cannot carry (`Expose`, `MenuSelect` window events).
    pub fn to_line(&self) -> Option<String> {
        let line = match self {
            ScriptStep::MenuSelect(label) => format!("menu select {label}"),
            ScriptStep::Event(ev) => match ev {
                WindowEvent::Mouse { action, pos } => {
                    let verb = match action {
                        MouseAction::Down(Button::Left) => "down",
                        MouseAction::Up(Button::Left) => "up",
                        MouseAction::Drag(Button::Left) => "drag",
                        MouseAction::Movement => "move",
                        MouseAction::Down(Button::Right) => "rdown",
                        MouseAction::Up(Button::Right) => "rup",
                        MouseAction::Down(Button::Middle) => "mdown",
                        MouseAction::Up(Button::Middle) => "mup",
                        // The parser has no verb for non-left drags.
                        MouseAction::Drag(_) => return None,
                    };
                    format!("mouse {verb} {} {}", pos.x, pos.y)
                }
                WindowEvent::Key(key) => format!("key {}", format_key(*key)?),
                WindowEvent::MenuRequest { pos } if *pos == Point::ORIGIN => {
                    "menu request".to_string()
                }
                WindowEvent::MenuRequest { pos } => {
                    format!("menu request {} {}", pos.x, pos.y)
                }
                WindowEvent::Tick(ms) => format!("tick {ms}"),
                WindowEvent::Resize(size) => format!("resize {} {}", size.width, size.height),
                WindowEvent::Close => "close".to_string(),
                WindowEvent::Expose(_) | WindowEvent::MenuSelect(_) => return None,
            },
        };
        Some(line)
    }
}

/// A parsed script.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventScript {
    /// The steps, in order.
    pub steps: Vec<ScriptStep>,
}

impl EventScript {
    /// Parses script text.
    ///
    /// # Errors
    ///
    /// Returns the 1-based line number and a description for the first
    /// malformed line.
    pub fn parse(src: &str) -> Result<EventScript, (usize, String)> {
        let mut steps = Vec::new();
        for (idx, raw) in src.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |msg: &str| (idx + 1, format!("{msg}: {raw}"));
            let mut words = line.split_whitespace();
            match words.next().unwrap() {
                "mouse" => {
                    let verb = words.next().ok_or_else(|| err("missing mouse verb"))?;
                    let btn = match verb {
                        "down" | "up" | "drag" | "move" => Button::Left,
                        "rdown" | "rup" => Button::Right,
                        "mdown" | "mup" => Button::Middle,
                        _ => return Err(err("unknown mouse verb")),
                    };
                    let action = match verb {
                        "down" | "rdown" | "mdown" => MouseAction::Down(btn),
                        "up" | "rup" | "mup" => MouseAction::Up(btn),
                        "drag" => MouseAction::Drag(btn),
                        "move" => MouseAction::Movement,
                        _ => unreachable!(),
                    };
                    let x: i32 = words
                        .next()
                        .and_then(|w| w.parse().ok())
                        .ok_or_else(|| err("bad x"))?;
                    let y: i32 = words
                        .next()
                        .and_then(|w| w.parse().ok())
                        .ok_or_else(|| err("bad y"))?;
                    steps.push(ScriptStep::Event(WindowEvent::Mouse {
                        action,
                        pos: Point::new(x, y),
                    }));
                }
                "key" => {
                    let name = words.next().ok_or_else(|| err("missing key"))?;
                    let key = parse_key(name).ok_or_else(|| err("unknown key"))?;
                    steps.push(ScriptStep::Event(WindowEvent::Key(key)));
                }
                "type" => {
                    let text = line.strip_prefix("type").unwrap().strip_prefix(' ');
                    let text = text.ok_or_else(|| err("missing text"))?;
                    for ch in text.chars() {
                        steps.push(ScriptStep::Event(WindowEvent::Key(Key::Char(ch))));
                    }
                }
                "menu" => match words.next() {
                    Some("request") => {
                        // Optional request position (defaults to the
                        // origin; older scripts omit it).
                        let pos = match words.next() {
                            None => Point::ORIGIN,
                            Some(xs) => {
                                let x: i32 = xs.parse().map_err(|_| err("bad x"))?;
                                let y: i32 = words
                                    .next()
                                    .and_then(|w| w.parse().ok())
                                    .ok_or_else(|| err("bad y"))?;
                                Point::new(x, y)
                            }
                        };
                        steps.push(ScriptStep::Event(WindowEvent::MenuRequest { pos }));
                    }
                    Some("select") => {
                        let label = line
                            .splitn(3, ' ')
                            .nth(2)
                            .ok_or_else(|| err("missing menu label"))?;
                        steps.push(ScriptStep::MenuSelect(label.to_string()));
                    }
                    _ => return Err(err("unknown menu verb")),
                },
                "tick" => {
                    let ms: u64 = words
                        .next()
                        .and_then(|w| w.parse().ok())
                        .ok_or_else(|| err("bad tick"))?;
                    steps.push(ScriptStep::Event(WindowEvent::Tick(ms)));
                }
                "resize" => {
                    let w: i32 = words
                        .next()
                        .and_then(|x| x.parse().ok())
                        .ok_or_else(|| err("bad width"))?;
                    let h: i32 = words
                        .next()
                        .and_then(|x| x.parse().ok())
                        .ok_or_else(|| err("bad height"))?;
                    steps.push(ScriptStep::Event(WindowEvent::Resize(Size::new(w, h))));
                }
                "close" => steps.push(ScriptStep::Event(WindowEvent::Close)),
                _ => return Err(err("unknown script command")),
            }
        }
        Ok(EventScript { steps })
    }

    /// Renders the script in the line-oriented text format, so any
    /// generated or minimized step stream can be saved and replayed with
    /// `runapp --script`. Steps the format cannot carry are skipped.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for step in &self.steps {
            if let Some(line) = step.to_line() {
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }

    /// Runs every step through the interaction manager. A `menu select`
    /// re-requests the menu at the position the preceding `menu
    /// request` line recorded (origin when the script never recorded
    /// one), so replays pop the menu where the user did.
    pub fn run(&self, im: &mut InteractionManager, world: &mut World) {
        let mut last_menu_pos = Point::ORIGIN;
        for step in &self.steps {
            match step {
                ScriptStep::Event(ev) => {
                    if let WindowEvent::MenuRequest { pos } = ev {
                        last_menu_pos = *pos;
                    }
                    im.feed(world, ev.clone());
                }
                ScriptStep::MenuSelect(label) => {
                    im.feed(world, WindowEvent::MenuRequest { pos: last_menu_pos });
                    im.select_menu(world, label);
                    im.pump(world);
                }
            }
        }
    }
}

/// Parses a key name: single characters, `C-x` / `M-x` chords, and the
/// special names used by the script format.
pub fn parse_key(name: &str) -> Option<Key> {
    let key = match name {
        "RET" | "RETURN" | "ENTER" => Key::Return,
        "TAB" => Key::Tab,
        "BS" | "BACKSPACE" => Key::Backspace,
        "DEL" | "DELETE" => Key::Delete,
        "ESC" => Key::Escape,
        "UP" => Key::Up,
        "DOWN" => Key::Down,
        "LEFT" => Key::Left,
        "RIGHT" => Key::Right,
        "PGUP" => Key::PageUp,
        "PGDN" => Key::PageDown,
        "HOME" => Key::Home,
        "END" => Key::End,
        "SPC" | "SPACE" => Key::Char(' '),
        _ => {
            if let Some(c) = name.strip_prefix("C-") {
                Key::Ctrl(c.chars().next()?)
            } else if let Some(c) = name.strip_prefix("M-") {
                Key::Meta(c.chars().next()?)
            } else if name.chars().count() == 1 {
                Key::Char(name.chars().next().unwrap())
            } else {
                return None;
            }
        }
    };
    Some(key)
}

/// Renders a key as the script format spells it (the inverse of
/// [`parse_key`]): special names for the named keys, `C-x`/`M-x` for
/// chords, the bare character otherwise. Returns `None` for characters
/// the whitespace-splitting parser cannot read back (e.g. `Char(' ')`
/// is spelled `SPC`, but an embedded control character has no spelling).
pub fn format_key(key: Key) -> Option<String> {
    let name = match key {
        Key::Return => "RET".to_string(),
        Key::Tab => "TAB".to_string(),
        Key::Backspace => "BS".to_string(),
        Key::Delete => "DEL".to_string(),
        Key::Escape => "ESC".to_string(),
        Key::Up => "UP".to_string(),
        Key::Down => "DOWN".to_string(),
        Key::Left => "LEFT".to_string(),
        Key::Right => "RIGHT".to_string(),
        Key::PageUp => "PGUP".to_string(),
        Key::PageDown => "PGDN".to_string(),
        Key::Home => "HOME".to_string(),
        Key::End => "END".to_string(),
        Key::Char(' ') => "SPC".to_string(),
        Key::Char(c) if !c.is_whitespace() && !c.is_control() => c.to_string(),
        Key::Char(_) => return None,
        Key::Ctrl(c) if !c.is_whitespace() && !c.is_control() => format!("C-{c}"),
        Key::Meta(c) if !c.is_whitespace() && !c.is_control() => format!("M-{c}"),
        Key::Ctrl(_) | Key::Meta(_) => return None,
    };
    Some(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_mixed_script() {
        let script = EventScript::parse(
            "# demo\nmouse down 10 20\nmouse up 10 20\ntype hi\nkey C-x\nkey RET\ntick 50\nmenu request\nmenu select Save\nresize 640 480\nclose\n",
        )
        .unwrap();
        assert_eq!(script.steps.len(), 11);
        assert_eq!(
            script.steps[0],
            ScriptStep::Event(WindowEvent::left_down(10, 20))
        );
        assert_eq!(script.steps[2], ScriptStep::Event(WindowEvent::ch('h')));
        assert_eq!(
            script.steps[4],
            ScriptStep::Event(WindowEvent::Key(Key::Ctrl('x')))
        );
        assert_eq!(script.steps[8], ScriptStep::MenuSelect("Save".to_string()));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = EventScript::parse("mouse down 10 20\nbogus line\n").unwrap_err();
        assert_eq!(err.0, 2);
    }

    #[test]
    fn key_names() {
        assert_eq!(parse_key("a"), Some(Key::Char('a')));
        assert_eq!(parse_key("C-s"), Some(Key::Ctrl('s')));
        assert_eq!(parse_key("M-<"), Some(Key::Meta('<')));
        assert_eq!(parse_key("PGDN"), Some(Key::PageDown));
        assert_eq!(parse_key("nope"), None);
    }

    #[test]
    fn type_preserves_interior_spaces() {
        let script = EventScript::parse("type a b\n").unwrap();
        assert_eq!(script.steps.len(), 3);
        assert_eq!(script.steps[1], ScriptStep::Event(WindowEvent::ch(' ')));
    }

    #[test]
    fn to_text_round_trips_through_parse() {
        let script = EventScript {
            steps: vec![
                ScriptStep::Event(WindowEvent::left_down(10, 20)),
                ScriptStep::Event(WindowEvent::left_drag(12, 22)),
                ScriptStep::Event(WindowEvent::left_up(12, 22)),
                ScriptStep::Event(WindowEvent::Mouse {
                    action: MouseAction::Down(Button::Right),
                    pos: Point::new(3, 4),
                }),
                ScriptStep::Event(WindowEvent::Mouse {
                    action: MouseAction::Up(Button::Middle),
                    pos: Point::new(3, 4),
                }),
                ScriptStep::Event(WindowEvent::ch('h')),
                ScriptStep::Event(WindowEvent::ch(' ')),
                ScriptStep::Event(WindowEvent::Key(Key::Ctrl('x'))),
                ScriptStep::Event(WindowEvent::Key(Key::Meta('<'))),
                ScriptStep::Event(WindowEvent::Key(Key::Return)),
                ScriptStep::Event(WindowEvent::Key(Key::PageDown)),
                ScriptStep::Event(WindowEvent::MenuRequest { pos: Point::ORIGIN }),
                ScriptStep::MenuSelect("File/Save".to_string()),
                ScriptStep::Event(WindowEvent::Tick(250)),
                ScriptStep::Event(WindowEvent::Resize(Size::new(640, 480))),
                ScriptStep::Event(WindowEvent::Close),
            ],
        };
        let text = script.to_text();
        let parsed = EventScript::parse(&text).unwrap();
        assert_eq!(parsed, script, "script text was:\n{text}");
    }

    #[test]
    fn unserializable_steps_are_skipped_not_mangled() {
        use atk_graphics::Rect;
        let script = EventScript {
            steps: vec![
                ScriptStep::Event(WindowEvent::Expose(Rect::new(0, 0, 5, 5))),
                ScriptStep::Event(WindowEvent::Key(Key::Char('\u{7}'))),
                ScriptStep::Event(WindowEvent::ch('a')),
            ],
        };
        let text = script.to_text();
        assert_eq!(text, "key a\n");
        assert!(EventScript::parse(&text).is_ok());
    }

    #[test]
    fn format_key_inverts_parse_key() {
        for name in [
            "RET", "TAB", "BS", "DEL", "ESC", "UP", "DOWN", "LEFT", "RIGHT", "PGUP", "PGDN",
            "HOME", "END", "SPC", "a", "Z", "C-x", "M-<",
        ] {
            let key = parse_key(name).unwrap();
            let rendered = format_key(key).unwrap();
            assert_eq!(parse_key(&rendered), Some(key), "{name} -> {rendered}");
        }
    }
}
