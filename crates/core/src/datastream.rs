//! The datastream external representation (paper §5).
//!
//! Documents are written as nested, properly bracketed object bodies:
//!
//! ```text
//! \begindata{text,1}
//! ...text data...
//! \begindata{table,2}
//! ...the table data goes here...
//! \enddata{table,2}
//! ...more text data...
//! \view{spread,2}
//! ...rest of text data...
//! \enddata{text,1}
//! ```
//!
//! The format's contract, straight from the paper:
//!
//! * markers "must be properly nested and it must be possible to find all
//!   the data associated with an object **without actually parsing the
//!   data**" — see [`DatastreamReader::skip_to_matching_end`], which is
//!   also what lets unknown components ride through unscathed;
//! * the `\view{type,id}` construct records *which view class* displays a
//!   data object and where;
//! * content should be 7-bit ASCII with lines under 80 characters so
//!   documents survive every network and mailer — the writer enforces
//!   this by escaping and wrapping ([`escape_content`]); the
//!   [`audit_stream`] helper verifies it for tests and benchmarks.
//!
//! Content lines are escaped (`\` doubled, non-ASCII as `\+XXXX;`) and
//! wrapped with a trailing-single-`\` continuation. Because escaping
//! always doubles backslashes, a line ending in an *odd* run of
//! backslashes is unambiguously a continuation.

use std::collections::HashMap;
use std::fmt;
use std::io::{self, Write};

use crate::ids::DataId;
use crate::world::World;

/// Maximum physical line length the writer produces (paper: "below 80").
pub const MAX_LINE: usize = 78;

/// Errors from reading a datastream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DsError {
    /// Input ended while an object was still open.
    UnexpectedEof,
    /// A marker line could not be parsed.
    Malformed(String),
    /// `\enddata` did not match the open `\begindata`.
    MarkerMismatch {
        /// What was open.
        expected: String,
        /// What was found.
        found: String,
    },
    /// A `\view` referenced a stream id never defined by a `\begindata`.
    DanglingViewRef(u32),
    /// Component creation failed (even the unknown-object fallback).
    Component(String),
    /// I/O failure while writing.
    Io(String),
}

impl fmt::Display for DsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DsError::UnexpectedEof => write!(f, "unexpected end of datastream"),
            DsError::Malformed(l) => write!(f, "malformed datastream line: {l}"),
            DsError::MarkerMismatch { expected, found } => {
                write!(f, "marker mismatch: expected {expected}, found {found}")
            }
            DsError::DanglingViewRef(id) => write!(f, "\\view references undefined id {id}"),
            DsError::Component(e) => write!(f, "component error: {e}"),
            DsError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for DsError {}

/// One lexical element of a datastream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `\begindata{class,id}`.
    BeginData {
        /// Component class name.
        class: String,
        /// Stream-local object id.
        sid: u32,
    },
    /// `\enddata{class,id}`.
    EndData {
        /// Component class name.
        class: String,
        /// Stream-local object id.
        sid: u32,
    },
    /// `\view{viewclass,id}` — place a view of class `class` on the data
    /// object with stream id `sid` here.
    ViewRef {
        /// View class name.
        class: String,
        /// Stream id of the data object being viewed.
        sid: u32,
    },
    /// An unescaped content line.
    Line(String),
}

/// Escapes one logical content line into one or more physical lines,
/// each ≤ [`MAX_LINE`] characters of printable 7-bit ASCII.
pub fn escape_content(s: &str) -> Vec<String> {
    let mut escaped = String::with_capacity(s.len() + 8);
    for ch in s.chars() {
        match ch {
            '\\' => escaped.push_str("\\\\"),
            '\t' => escaped.push(ch),
            c if (c as u32) < 0x20 || (c as u32) > 0x7e => {
                escaped.push_str(&format!("\\+{:04X};", c as u32));
            }
            c => escaped.push(c),
        }
    }
    // Wrap with continuation backslashes, never splitting an escape
    // sequence (an escaped backslash `\\` or a `\+XXXX;`).
    //
    // The escaped text is a sequence of unambiguous tokens — `\\`
    // (2 chars), `\+` followed by hex and `;` (≤ 8 chars), or one plain
    // character — so a single forward pass places whole tokens onto
    // lines. Scanning forward keeps backslash-run parity exact: a `\`
    // opens an escape only at even run offsets, so `…\\\\+…` (escaped
    // backslashes before a literal `+`) is two 2-char tokens and a plain
    // `+`, never a bogus escape start. Because no token exceeds the
    // line budget there is no "pathological input" fallback that could
    // cut mid-escape; every physical line ends after a complete token
    // with an even trailing backslash run, so the appended continuation
    // `\` is always an unambiguous odd run.
    let bytes = escaped.as_bytes();
    let mut out = Vec::new();
    let mut line = String::with_capacity(MAX_LINE);
    let mut i = 0;
    while i < bytes.len() {
        let tok_len = if bytes[i] == b'\\' {
            if bytes.get(i + 1) == Some(&b'+') {
                // `\+XXXX;` — find the terminating `;` (always present
                // in our own output; at most 6 hex digits).
                let semi = bytes[i + 2..]
                    .iter()
                    .position(|&b| b == b';')
                    .expect("escape_content always terminates \\+ escapes");
                semi + 3
            } else {
                2 // `\\`
            }
        } else {
            1
        };
        // Reserve one column for the continuation backslash.
        if !line.is_empty() && line.len() + tok_len > MAX_LINE - 1 {
            line.push('\\');
            out.push(std::mem::take(&mut line));
        }
        line.push_str(&escaped[i..i + tok_len]);
        i += tok_len;
    }
    out.push(line);
    out
}

/// Counts trailing backslashes of a physical line.
fn trailing_backslashes(s: &str) -> usize {
    s.bytes().rev().take_while(|&b| b == b'\\').count()
}

/// Unescapes content previously produced by [`escape_content`] (joined
/// physical lines with continuations already resolved).
pub fn unescape_content(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.peek() {
            Some('\\') => {
                chars.next();
                out.push('\\');
            }
            Some('+') => {
                chars.next();
                // Scan at most 6 hex digits, stopping at the first
                // non-hex character. A well-formed escape is non-empty
                // hex followed by `;` and decodes to a valid scalar;
                // anything else is emitted verbatim (including whatever
                // character stopped the scan — it is NOT consumed as a
                // bogus terminator, so malformed input loses no data).
                let mut hex = String::new();
                while hex.len() < 6 {
                    match chars.peek() {
                        Some(h) if h.is_ascii_hexdigit() => {
                            hex.push(*h);
                            chars.next();
                        }
                        _ => break,
                    }
                }
                let decoded = if chars.peek() == Some(&';') && !hex.is_empty() {
                    u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32)
                } else {
                    None
                };
                match decoded {
                    Some(ch) => {
                        chars.next(); // Consume the `;`.
                        out.push(ch);
                    }
                    None => {
                        out.push_str("\\+");
                        out.push_str(&hex);
                    }
                }
            }
            _ => out.push('\\'), // Lenient: stray backslash kept.
        }
    }
    out
}

/// Parses a marker line like `\begindata{text,1}`; returns (keyword,
/// class, id).
fn parse_marker(line: &str) -> Option<(&str, String, u32)> {
    let rest = line.strip_prefix('\\')?;
    for kw in ["begindata", "enddata", "view"] {
        if let Some(args) = rest.strip_prefix(kw) {
            let args = args.strip_prefix('{')?.strip_suffix('}')?;
            let (class, id) = args.split_once(',')?;
            let id: u32 = id.trim().parse().ok()?;
            return Some((kw, class.trim().to_string(), id));
        }
    }
    None
}

/// True if the raw line is a marker (and not escaped content, whose
/// backslashes are always doubled).
fn is_marker(line: &str) -> bool {
    line.starts_with("\\begindata{")
        || line.starts_with("\\enddata{")
        || line.starts_with("\\view{")
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Serializes data objects to a datastream.
pub struct DatastreamWriter<'a> {
    out: &'a mut dyn Write,
    sids: HashMap<DataId, u32>,
    written: std::collections::HashSet<DataId>,
    next_sid: u32,
    depth: usize,
    lines_written: u64,
}

impl<'a> DatastreamWriter<'a> {
    /// Creates a writer over any byte sink.
    pub fn new(out: &'a mut dyn Write) -> DatastreamWriter<'a> {
        DatastreamWriter {
            out,
            sids: HashMap::new(),
            written: std::collections::HashSet::new(),
            next_sid: 1,
            depth: 0,
            lines_written: 0,
        }
    }

    /// The stream id assigned to `id` (assigning a fresh one if needed).
    pub fn sid_for(&mut self, id: DataId) -> u32 {
        if let Some(s) = self.sids.get(&id) {
            return *s;
        }
        let s = self.next_sid;
        self.next_sid += 1;
        self.sids.insert(id, s);
        s
    }

    /// Writes a whole embedded object: `\begindata`, its body, `\enddata`.
    /// Returns the stream id, which the caller can later reference with
    /// [`DatastreamWriter::write_view_ref`].
    pub fn write_embedded(&mut self, world: &World, id: DataId) -> io::Result<u32> {
        let sid = self.sid_for(id);
        // A data object shared by several views/parents is written once;
        // later references reuse its stream id (the id tag of §5 exists
        // exactly so objects can be referenced "by other data objects").
        if !self.written.insert(id) {
            return Ok(sid);
        }
        let _span = world.collector().span("datastream.write_object");
        world.collector().count("datastream.objects_written", 1);
        world
            .collector()
            .observe("datastream.write_depth", self.depth as u64);
        let obj = world
            .data_dyn(id)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "dangling data id"))?;
        let class = match obj.as_any().downcast_ref::<crate::data::UnknownObject>() {
            Some(u) => u.original_class.clone(),
            None => obj.class_name().to_string(),
        };
        writeln!(self.out, "\\begindata{{{class},{sid}}}")?;
        self.lines_written += 1;
        self.depth += 1;
        obj.write_body(self, world)?;
        self.depth -= 1;
        writeln!(self.out, "\\enddata{{{class},{sid}}}")?;
        self.lines_written += 1;
        Ok(sid)
    }

    /// Writes a `\view{class,sid}` placement for a previously embedded
    /// object.
    pub fn write_view_ref(&mut self, view_class: &str, sid: u32) -> io::Result<()> {
        writeln!(self.out, "\\view{{{view_class},{sid}}}")?;
        self.lines_written += 1;
        Ok(())
    }

    /// Writes one logical content line, escaped and wrapped.
    pub fn write_line(&mut self, content: &str) -> io::Result<()> {
        for phys in escape_content(content) {
            writeln!(self.out, "{phys}")?;
            self.lines_written += 1;
        }
        Ok(())
    }

    /// Writes an already-escaped physical line verbatim (used by
    /// [`crate::data::UnknownObject`] to preserve foreign content).
    pub fn write_raw_line(&mut self, line: &str) -> io::Result<()> {
        writeln!(self.out, "{line}")?;
        self.lines_written += 1;
        Ok(())
    }

    /// Current nesting depth (0 at top level).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Physical lines written so far.
    pub fn lines_written(&self) -> u64 {
        self.lines_written
    }
}

/// Writes a complete document rooted at `root`.
pub fn write_document(world: &World, root: DataId, out: &mut dyn Write) -> io::Result<()> {
    let mut w = DatastreamWriter::new(out);
    w.write_embedded(world, root)?;
    Ok(())
}

/// Convenience: a document as a `String`.
pub fn document_to_string(world: &World, root: DataId) -> String {
    let mut buf = Vec::new();
    write_document(world, root, &mut buf).expect("writing to a Vec cannot fail");
    world
        .collector()
        .observe("datastream.bytes_written", buf.len() as u64);
    String::from_utf8(buf).expect("datastream output is always ASCII")
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Parses a datastream, creating components through the world's catalog.
pub struct DatastreamReader<'a> {
    lines: std::str::Lines<'a>,
    peeked: Option<Token>,
    sid_map: HashMap<u32, DataId>,
    open: Vec<(String, u32)>,
}

impl<'a> DatastreamReader<'a> {
    /// Creates a reader over a full document.
    pub fn new(src: &'a str) -> DatastreamReader<'a> {
        DatastreamReader {
            lines: src.lines(),
            peeked: None,
            sid_map: HashMap::new(),
            open: Vec::new(),
        }
    }

    /// Resolves a stream id seen in a `\view` to the data object created
    /// for it.
    pub fn lookup_sid(&self, sid: u32) -> Option<DataId> {
        self.sid_map.get(&sid).copied()
    }

    fn next_raw_joined(&mut self) -> Option<String> {
        let mut line = self.lines.next()?.to_string();
        if is_marker(&line) {
            return Some(line);
        }
        // Join continuation lines (odd trailing backslash run).
        while trailing_backslashes(&line) % 2 == 1 {
            line.pop();
            match self.lines.next() {
                Some(next) => line.push_str(next),
                None => break,
            }
        }
        Some(line)
    }

    /// Returns the next token without consuming it.
    pub fn peek_token(&mut self) -> Result<Option<&Token>, DsError> {
        if self.peeked.is_none() {
            self.peeked = self.read_token()?;
        }
        Ok(self.peeked.as_ref())
    }

    /// Returns and consumes the next token, or `None` at end of input.
    pub fn next_token(&mut self) -> Result<Option<Token>, DsError> {
        if let Some(t) = self.peeked.take() {
            return Ok(Some(t));
        }
        self.read_token()
    }

    fn read_token(&mut self) -> Result<Option<Token>, DsError> {
        let Some(raw) = self.next_raw_joined() else {
            return Ok(None);
        };
        if is_marker(&raw) {
            let (kw, class, sid) =
                parse_marker(&raw).ok_or_else(|| DsError::Malformed(raw.clone()))?;
            let tok = match kw {
                "begindata" => {
                    self.open.push((class.clone(), sid));
                    Token::BeginData { class, sid }
                }
                "enddata" => {
                    match self.open.pop() {
                        Some((oc, os)) if oc == class && os == sid => {}
                        Some((oc, os)) => {
                            return Err(DsError::MarkerMismatch {
                                expected: format!("\\enddata{{{oc},{os}}}"),
                                found: raw,
                            })
                        }
                        None => {
                            return Err(DsError::MarkerMismatch {
                                expected: "(nothing open)".to_string(),
                                found: raw,
                            })
                        }
                    }
                    Token::EndData { class, sid }
                }
                "view" => Token::ViewRef { class, sid },
                _ => unreachable!("parse_marker keywords"),
            };
            Ok(Some(tok))
        } else {
            Ok(Some(Token::Line(unescape_content(&raw))))
        }
    }

    /// Reads one whole object. The next token must be its `\begindata`.
    /// Creates the data object through the world's catalog (falling back
    /// to [`crate::data::UnknownObject`] when the class has no loadable
    /// module), recursively reading its body, and returns its id.
    pub fn read_object(&mut self, world: &mut World) -> Result<DataId, DsError> {
        let tok = self.next_token()?.ok_or(DsError::UnexpectedEof)?;
        let (class, sid) = match tok {
            Token::BeginData { class, sid } => (class, sid),
            other => {
                return Err(DsError::Malformed(format!(
                    "expected \\begindata, found {other:?}"
                )))
            }
        };
        self.read_object_body(world, &class, sid)
    }

    /// Reads an object whose `\begindata{class,sid}` token was already
    /// consumed (components embedding children hit this case: their body
    /// loop pulls the token, then delegates here).
    pub fn read_object_body(
        &mut self,
        world: &mut World,
        class: &str,
        sid: u32,
    ) -> Result<DataId, DsError> {
        let _span = world.collector().span("datastream.read_object");
        world.collector().count("datastream.objects_read", 1);
        world
            .collector()
            .observe("datastream.read_depth", self.open.len() as u64);
        let mut obj = match world.create_data(class) {
            Ok(obj) => obj,
            Err(_) => Box::new(crate::data::UnknownObject::new(class)),
        };
        obj.read_body(self, world)?;
        let id = world.insert_data(obj);
        self.sid_map.insert(sid, id);
        Ok(id)
    }

    /// Captures raw physical lines up to (and consuming) the `\enddata`
    /// matching the innermost open `\begindata`, **without parsing
    /// content** — the paper's skip-scan requirement. Nested objects'
    /// markers are captured verbatim.
    pub fn skip_to_matching_end(&mut self) -> Result<Vec<String>, DsError> {
        assert!(
            self.peeked.is_none(),
            "skip_to_matching_end after peeking would lose a token"
        );
        let mut depth = 0usize;
        let mut captured = Vec::new();
        loop {
            let Some(raw) = self.lines.next() else {
                return Err(DsError::UnexpectedEof);
            };
            if raw.starts_with("\\begindata{") {
                depth += 1;
            } else if raw.starts_with("\\enddata{") {
                if depth == 0 {
                    // This closes *us*; keep the open-stack consistent.
                    self.open.pop();
                    return Ok(captured);
                }
                depth -= 1;
            }
            captured.push(raw.to_string());
        }
    }
}

/// Reads a complete document, returning the root data object.
pub fn read_document(world: &mut World, src: &str) -> Result<DataId, DsError> {
    let _span = world.collector().span("datastream.load");
    world
        .collector()
        .observe("datastream.bytes_read", src.len() as u64);
    let mut r = DatastreamReader::new(src);
    let id = r.read_object(world)?;
    Ok(id)
}

// ---------------------------------------------------------------------------
// Audit
// ---------------------------------------------------------------------------

/// A transport-safety violation found by [`audit_stream`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A line exceeds 80 characters.
    LongLine {
        /// 1-based line number.
        line: usize,
        /// Its length.
        len: usize,
    },
    /// A byte outside printable 7-bit ASCII (tab excepted).
    NonAscii {
        /// 1-based line number.
        line: usize,
        /// The offending byte.
        byte: u8,
    },
}

/// Checks a serialized stream against the paper's transport guidelines:
/// only printable 7-bit ASCII (plus tab/newline) and lines ≤ 80 chars.
pub fn audit_stream(stream: &str) -> Vec<Violation> {
    let mut v = Vec::new();
    for (i, line) in stream.lines().enumerate() {
        if line.len() > 80 {
            v.push(Violation::LongLine {
                line: i + 1,
                len: line.len(),
            });
        }
        for &b in line.as_bytes() {
            if b != b'\t' && !(0x20..=0x7e).contains(&b) {
                v.push(Violation::NonAscii {
                    line: i + 1,
                    byte: b,
                });
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trip_simple() {
        for s in ["hello world", "tabs\tstay", "back\\slash", "", "a"] {
            let phys = escape_content(s);
            assert_eq!(phys.len(), 1);
            assert_eq!(unescape_content(&phys[0]), s);
        }
    }

    #[test]
    fn escape_non_ascii() {
        let phys = escape_content("café ← ok");
        assert_eq!(phys.len(), 1);
        assert!(phys[0].is_ascii());
        assert_eq!(unescape_content(&phys[0]), "café ← ok");
    }

    #[test]
    fn long_lines_wrap_with_continuation() {
        let long: String = "x".repeat(300);
        let phys = escape_content(&long);
        assert!(phys.len() > 1);
        for p in &phys {
            assert!(p.len() <= MAX_LINE, "line too long: {}", p.len());
        }
        // All but the last end with a single (odd) backslash.
        for p in &phys[..phys.len() - 1] {
            assert_eq!(trailing_backslashes(p) % 2, 1);
        }
        // Joining reverses it.
        let mut joined = String::new();
        for p in &phys[..phys.len() - 1] {
            joined.push_str(&p[..p.len() - 1]);
        }
        joined.push_str(&phys[phys.len() - 1]);
        assert_eq!(unescape_content(&joined), long);
    }

    #[test]
    fn wrap_never_splits_escapes() {
        // Lines of backslashes and unicode stress the cut logic.
        let nasty: String = "\\é".repeat(60);
        let phys = escape_content(&nasty);
        let mut joined = String::new();
        for p in &phys[..phys.len() - 1] {
            assert_eq!(trailing_backslashes(p) % 2, 1, "bad continuation: {p:?}");
            joined.push_str(&p[..p.len() - 1]);
        }
        joined.push_str(&phys[phys.len() - 1]);
        assert_eq!(unescape_content(&joined), nasty);
    }

    /// Joins physical lines exactly as the reader does: while the
    /// accumulated line ends in an odd backslash run, pop the
    /// continuation backslash and append the next physical line.
    /// Returns the joined logical line and how many physical lines were
    /// consumed (a correct wrap consumes all of them).
    fn reader_join(phys: &[String]) -> (String, usize) {
        let mut line = phys[0].clone();
        let mut used = 1;
        while trailing_backslashes(&line) % 2 == 1 && used < phys.len() {
            line.pop();
            line.push_str(&phys[used]);
            used += 1;
        }
        (line, used)
    }

    fn assert_wrap_round_trip(input: &str) {
        let phys = escape_content(input);
        for p in &phys {
            assert!(p.len() <= MAX_LINE, "line too long ({}): {p:?}", p.len());
        }
        let (joined, used) = reader_join(&phys);
        assert_eq!(used, phys.len(), "reader stopped joining early: {phys:?}");
        assert_eq!(unescape_content(&joined), input);
    }

    /// Regression: the old wrapper located escape starts with
    /// `rfind("\\+")`, which matched an escaped backslash followed by a
    /// literal `+` (`…\\\\+…` in escaped form) and mis-chose the cut,
    /// producing a physical line whose trailing backslash run had even
    /// parity — the reader then refused to join the continuation and
    /// the round trip corrupted the content.
    #[test]
    fn regression_escaped_backslash_run_before_literal_plus() {
        let input = format!("{}{}", "\\+".repeat(22), "\\\\+".repeat(3));
        assert_wrap_round_trip(&input);
    }

    /// Regression: dense runs of escape-like material near the wrap
    /// boundary drove the old backtracking scan all the way to the line
    /// start, triggering its blind `cut = start + MAX_LINE - 1`
    /// fallback, which could split an escape sequence mid-token.
    #[test]
    fn regression_dense_escape_wrap_backtracking() {
        let input = format!("{}{}", "\\\\+".repeat(15), "\\+".repeat(3));
        assert_wrap_round_trip(&input);
    }

    /// Regression: a malformed `\+` escape with no terminating `;` used
    /// to consume every remaining character of the line as "hex" and
    /// silently drop it. Malformed escapes must now be emitted verbatim
    /// with nothing consumed beyond the (≤ 6) scanned hex digits.
    #[test]
    fn regression_malformed_escape_keeps_input() {
        // No terminator at all: previously the rest of the line vanished.
        assert_eq!(unescape_content("\\+0041 rest"), "\\+0041 rest");
        // Hex scan caps at 6 digits; the 7th digit and `;` pass through.
        assert_eq!(unescape_content("\\+0000041;"), "\\+0000041;");
        // Empty hex, non-hex digits, invalid scalar: all verbatim.
        assert_eq!(unescape_content("\\+;"), "\\+;");
        assert_eq!(unescape_content("\\+zz;"), "\\+zz;");
        assert_eq!(unescape_content("\\+D800;"), "\\+D800;");
        // Well-formed escapes still decode, including 5-digit ones.
        assert_eq!(unescape_content("\\+E9;"), "é");
        assert_eq!(unescape_content("\\+1F600;"), "\u{1F600}");
    }

    #[test]
    fn marker_parsing() {
        assert_eq!(
            parse_marker("\\begindata{text,1}"),
            Some(("begindata", "text".to_string(), 1))
        );
        assert_eq!(
            parse_marker("\\view{spread, 2}"),
            Some(("view", "spread".to_string(), 2))
        );
        assert_eq!(parse_marker("\\begindata{text}"), None);
        assert_eq!(parse_marker("not a marker"), None);
    }

    #[test]
    fn tokenizer_sequences_paper_example() {
        let src = "\\begindata{text,1}\n. text data ...\n\\begindata{table,2}\nthe table data goes here ...\n\\enddata{table,2}\nmore text data ...\n\\view{spread,2}\nrest of text data ...\n\\enddata{text,1}\n";
        let mut r = DatastreamReader::new(src);
        let mut kinds = Vec::new();
        while let Some(t) = r.next_token().unwrap() {
            kinds.push(match t {
                Token::BeginData { class, .. } => format!("begin:{class}"),
                Token::EndData { class, .. } => format!("end:{class}"),
                Token::ViewRef { class, .. } => format!("view:{class}"),
                Token::Line(_) => "line".to_string(),
            });
        }
        assert_eq!(
            kinds,
            vec![
                "begin:text",
                "line",
                "begin:table",
                "line",
                "end:table",
                "line",
                "view:spread",
                "line",
                "end:text"
            ]
        );
    }

    #[test]
    fn mismatched_markers_rejected() {
        let src = "\\begindata{text,1}\n\\enddata{table,1}\n";
        let mut r = DatastreamReader::new(src);
        r.next_token().unwrap();
        assert!(matches!(
            r.next_token(),
            Err(DsError::MarkerMismatch { .. })
        ));
    }

    #[test]
    fn audit_catches_violations() {
        let ok = "\\begindata{text,1}\nshort line\n\\enddata{text,1}\n";
        assert!(audit_stream(ok).is_empty());
        let long = format!("{}\n", "y".repeat(100));
        assert_eq!(audit_stream(&long).len(), 1);
        let binary = "caf\u{00e9}\n";
        assert!(!audit_stream(binary).is_empty());
    }

    #[test]
    fn escaped_marker_lookalikes_stay_content() {
        // Content that *talks about* markers must not be parsed as one.
        let phys = escape_content("\\begindata{text,1}");
        assert!(phys[0].starts_with("\\\\"));
        assert!(!is_marker(&phys[0]));
        assert_eq!(unescape_content(&phys[0]), "\\begindata{text,1}");
    }
}
