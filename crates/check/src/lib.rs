//! # atk-check — deterministic session fuzzing for the toolkit
//!
//! The paper's toolkit was hardened by ~3000 campus users banging on EZ
//! and its embedded components daily (§9). This crate is the mechanical
//! stand-in: a seed-driven fuzzer that generates weighted random
//! [`ScriptStep`] streams against the real scenes in
//! [`atk_apps::scenes`], and checks six oracles after configurable step
//! windows:
//!
//! * **repaint** — the incremental damage path must converge to the
//!   same framebuffer as a from-scratch full redraw (§2's delayed
//!   update protocol, exercised through PR 2's region algebra);
//! * **roundtrip** — serialize the live document, read it into a fresh
//!   world, re-serialize: byte identity (§5's datastream);
//! * **tree** — parent/child links mutually consistent, no dangling
//!   ids, acyclic, children clipped inside non-scrolling parents, focus
//!   reachable from the root (§3's view tree);
//! * **backend** — the same script on `X11Sim` and `AwmSim` yields
//!   identical framebuffers and damage accounting (§8's window-system
//!   independence);
//! * **layout** — every text view's incrementally maintained line table
//!   is byte-identical to a from-scratch relayout (the differential
//!   anchor for edit-local relayout);
//! * **fork** — a session forked from a pre-warmed template world
//!   ([`atk_apps::TemplateRegistry`]), after a throwaway tenant has
//!   already forked and taken traffic, behaves identically under the
//!   same script to the cold-built session (the differential anchor for
//!   copy-on-write session forking).
//!
//! On failure the event stream is delta-debugged ([`shrink`]) to a
//! 1-minimal script in the line-oriented format `runapp --script`
//! replays. The run exports `check.steps`, `check.oracle_runs`,
//! `check.shrink_rounds`, a `check.oracle_us.<name>` wall-time
//! histogram and a `check.violations.<name>` counter per oracle
//! through `atk-trace`; [`CheckReport::stats`] carries the whole
//! snapshot so multi-scene drivers can merge them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod oracles;
pub mod shrink;

use std::sync::Arc;
use std::time::Instant;

use atk_core::{EventScript, InteractionManager, ScriptStep, World};
use atk_graphics::{Color, Point, Rect};
use atk_trace::{Collector, Snapshot};
use atk_wm::WindowEvent;

pub use oracles::{Oracle, Violation};

/// Which oracles a run checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleSet {
    /// Incremental repaint ≡ full redraw.
    pub repaint: bool,
    /// Datastream save/load/save identity.
    pub roundtrip: bool,
    /// View-tree structural invariants.
    pub tree: bool,
    /// X11Sim / AwmSim differential.
    pub backend: bool,
    /// Incremental text relayout ≡ from-scratch relayout.
    pub layout: bool,
    /// Template-forked session ≡ cold-built session under the same
    /// traffic.
    pub fork: bool,
}

impl OracleSet {
    /// All six oracles.
    pub fn all() -> OracleSet {
        OracleSet {
            repaint: true,
            roundtrip: true,
            tree: true,
            backend: true,
            layout: true,
            fork: true,
        }
    }

    /// No oracles; the building block for `only` and `parse`.
    fn none() -> OracleSet {
        OracleSet {
            repaint: false,
            roundtrip: false,
            tree: false,
            backend: false,
            layout: false,
            fork: false,
        }
    }

    /// Only the named oracle.
    pub fn only(oracle: Oracle) -> OracleSet {
        let mut set = OracleSet::none();
        match oracle {
            Oracle::Repaint => set.repaint = true,
            Oracle::Roundtrip => set.roundtrip = true,
            Oracle::Tree => set.tree = true,
            Oracle::Backend => set.backend = true,
            Oracle::Layout => set.layout = true,
            Oracle::Fork => set.fork = true,
        }
        set
    }

    /// Parses a comma-separated list (`repaint,tree`) or `all`.
    pub fn parse(spec: &str) -> Result<OracleSet, String> {
        if spec == "all" {
            return Ok(OracleSet::all());
        }
        let mut set = OracleSet::none();
        for name in spec.split(',').filter(|s| !s.is_empty()) {
            match name {
                "repaint" => set.repaint = true,
                "roundtrip" => set.roundtrip = true,
                "tree" => set.tree = true,
                "backend" => set.backend = true,
                "layout" => set.layout = true,
                "fork" => set.fork = true,
                other => {
                    return Err(format!(
                        "unknown oracle `{other}` (repaint, roundtrip, tree, backend, \
                         layout, fork, all)"
                    ))
                }
            }
        }
        Ok(set)
    }
}

/// Configuration for one fuzzing run.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// RNG seed (same seed + scene → same stream).
    pub seed: u64,
    /// How many steps to generate.
    pub steps: usize,
    /// Check oracles every this many steps (and once at the end).
    pub oracle_every: usize,
    /// Which oracles to check.
    pub oracles: OracleSet,
    /// Primary backend.
    pub backend: String,
    /// Mirror backend for the differential oracle.
    pub mirror_backend: String,
    /// Whether to delta-debug a failing stream down to a minimal script.
    pub shrink: bool,
    /// Test-only fault injection: on every `Tick` step, scribble a pixel
    /// on the primary window *without posting damage* — a planted
    /// repaint bug the repaint oracle must catch and the shrinker must
    /// minimize. Never set outside tests.
    pub sabotage_on_tick: bool,
}

impl Default for CheckConfig {
    fn default() -> CheckConfig {
        CheckConfig {
            seed: 42,
            steps: 1000,
            oracle_every: 25,
            oracles: OracleSet::all(),
            backend: "x11sim".to_string(),
            mirror_backend: "awmsim".to_string(),
            shrink: true,
            sabotage_on_tick: false,
        }
    }
}

/// A live fuzzing session: one scene's world and interaction manager,
/// plus the bit of bookkeeping the repaint oracle needs.
pub struct Session {
    /// The object world.
    pub world: World,
    /// The interaction manager over the scene's window.
    pub im: InteractionManager,
    /// True when menu traffic may have painted the transient pop-up
    /// overlay since the last full redraw (see
    /// [`oracles::check_repaint`]).
    pub overlay_possible: bool,
    /// Position of the most recent `MenuRequest` step; `MenuSelect`
    /// replays pop the menu there, matching [`EventScript::run`] and
    /// the serve layer's replay.
    last_menu_pos: Point,
}

impl Session {
    /// Builds the named scene on `backend` and gives its world a fresh,
    /// enabled collector (so `im.*` counters start at zero and the
    /// backend differential can compare them).
    pub fn build(scene: &str, backend: &str) -> Result<Session, String> {
        let built = atk_apps::scenes::build_scene(scene, backend)?;
        let mut session = Session::from_scene(built.world, built.im);
        let collector = Arc::new(Collector::new());
        collector.enable();
        session.world.set_collector(collector);
        Ok(session)
    }

    /// Wraps an already-built world and interaction manager.
    pub fn from_scene(world: World, im: InteractionManager) -> Session {
        Session {
            world,
            im,
            overlay_possible: false,
            last_menu_pos: Point::ORIGIN,
        }
    }

    /// Applies one step with the same semantics as [`EventScript::run`]:
    /// a `MenuSelect` re-requests the menu at the most recently seen
    /// `MenuRequest` position (origin before any request).
    pub fn apply(&mut self, step: &ScriptStep) {
        match step {
            ScriptStep::Event(ev) => {
                if let WindowEvent::MenuRequest { pos } = ev {
                    self.last_menu_pos = *pos;
                }
                self.im.feed(&mut self.world, ev.clone());
            }
            ScriptStep::MenuSelect(label) => {
                self.im.feed(
                    &mut self.world,
                    WindowEvent::MenuRequest {
                        pos: self.last_menu_pos,
                    },
                );
                self.im.select_menu(&mut self.world, label);
                self.im.pump(&mut self.world);
            }
        }
        if matches!(
            step,
            ScriptStep::Event(WindowEvent::MenuRequest { .. }) | ScriptStep::MenuSelect(_)
        ) {
            self.overlay_possible = true;
        }
    }

    /// The planted repaint bug: paint a pixel behind the damage
    /// system's back.
    fn sabotage(&mut self) {
        let g = self.im.window_mut().graphic();
        g.set_foreground(Color::RED);
        g.fill_rect(Rect::new(2, 2, 3, 3));
        g.flush();
    }
}

/// Where a violation was found and what the minimized reproduction is.
#[derive(Debug, Clone)]
pub struct FailureReport {
    /// The tripped oracle and its explanation.
    pub violation: Violation,
    /// Step index (0-based into the generated stream) after which the
    /// oracle tripped.
    pub at_step: usize,
    /// The minimized reproducing steps (the full failing prefix when
    /// shrinking is disabled).
    pub minimized: Vec<ScriptStep>,
    /// The minimized steps rendered in the line-oriented script format
    /// (`runapp <app> --script <file>` replays this).
    pub script: String,
}

/// The outcome of one scene's fuzzing run.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Scene name.
    pub scene: String,
    /// Steps actually applied.
    pub steps_run: usize,
    /// Oracle checks performed (individual oracle invocations).
    pub oracle_runs: u64,
    /// Candidate replays the shrinker performed.
    pub shrink_rounds: u64,
    /// Steps per second, wall clock, including oracle overhead.
    pub steps_per_sec: f64,
    /// The failure, if any oracle tripped.
    pub failure: Option<FailureReport>,
    /// The run's full trace snapshot: `check.*` counters plus one
    /// `check.oracle_us.<name>` wall-time histogram and one
    /// `check.violations.<name>` counter per oracle. Reports from
    /// several scenes merge with [`atk_trace::Snapshot::merge`].
    pub stats: Snapshot,
}

/// What one pass over a (generated or replayed) stream produced.
enum StreamOutcome {
    Clean,
    Failed {
        prefix: Vec<ScriptStep>,
        violation: Violation,
        at_step: usize,
    },
}

/// Runs one oracle invocation with the shared accounting: bumps
/// `check.oracle_runs`, records wall time into the oracle's
/// `check.oracle_us.*` histogram, and on a trip counts it under
/// `check.violations.*`.
fn timed_oracle(
    collector: &Arc<Collector>,
    oracle: Oracle,
    check: impl FnOnce() -> Option<String>,
) -> Option<Violation> {
    collector.count("check.oracle_runs", 1);
    let start = Instant::now();
    let detail = check();
    collector.observe(oracle.us_key(), start.elapsed().as_micros() as u64);
    detail.map(|detail| {
        collector.count(oracle.violations_key(), 1);
        Violation { oracle, detail }
    })
}

/// Builds the fork oracle's twin: a session forked from a pre-warmed
/// [`atk_apps::TemplateRegistry`] template. The registry first serves a
/// throwaway tenant that takes a little traffic and is dropped, so the
/// twin is a *post-traffic* fork — the adversarial case for
/// copy-on-write isolation: anything that tenant leaked into the
/// template reappears in the twin and trips the oracle. The registry
/// counts its `world.template_builds` / `world.forks` on the run
/// collector; the twin's world gets a fresh collector *after* the fork,
/// exactly as [`Session::build`] does after a cold build, so the two
/// sessions' `im.*` counters are comparable from zero.
fn build_fork_twin(
    scene: &str,
    config: &CheckConfig,
    collector: &Arc<Collector>,
) -> Result<Session, String> {
    let mut registry = atk_apps::TemplateRegistry::new(collector.clone());
    let throwaway = registry.fork_session(scene, &config.backend)?;
    let mut tenant = Session::from_scene(throwaway.world, throwaway.im);
    for tick in 1..=4 {
        tenant.apply(&ScriptStep::Event(WindowEvent::Tick(tick)));
    }
    drop(tenant);
    let forked = registry.fork_session(scene, &config.backend)?;
    let mut twin = Session::from_scene(forked.world, forked.im);
    let twin_collector = Arc::new(Collector::new());
    twin_collector.enable();
    twin.world.set_collector(twin_collector);
    Ok(twin)
}

fn run_oracles(
    primary: &mut Session,
    mirror: Option<&mut Session>,
    fork_twin: Option<&mut Session>,
    oracles: OracleSet,
    collector: &Arc<Collector>,
) -> Option<Violation> {
    // The differentials first: backend and fork both want every
    // incremental framebuffer untouched.
    if oracles.backend {
        if let Some(m) = &mirror {
            if let Some(v) = timed_oracle(collector, Oracle::Backend, || {
                oracles::check_backend(primary, m)
            }) {
                return Some(v);
            }
        }
    }
    if oracles.fork {
        if let Some(t) = &fork_twin {
            if let Some(v) =
                timed_oracle(collector, Oracle::Fork, || oracles::check_fork(primary, t))
            {
                return Some(v);
            }
        }
    }
    // Layout before repaint: a wrong incremental line table usually
    // shows up as a pixel diff too, and the layout oracle names the
    // diverging line rather than a pixel count.
    if oracles.layout {
        if let Some(v) = timed_oracle(collector, Oracle::Layout, || oracles::check_layout(primary))
        {
            return Some(v);
        }
    }
    if oracles.repaint {
        if let Some(v) = timed_oracle(collector, Oracle::Repaint, || {
            oracles::check_repaint(primary)
        }) {
            return Some(v);
        }
        if let Some(m) = mirror {
            if let Some(v) = timed_oracle(collector, Oracle::Repaint, || {
                oracles::check_repaint(m).map(|d| format!("(mirror backend) {d}"))
            }) {
                return Some(v);
            }
        }
        // The fork twin must take the same full-redraw resync as the
        // primary, both because repaint convergence on a forked world is
        // a fork-path invariant in its own right and because skipping it
        // would skew the twin's `im.full_redraws` counter and fail the
        // next fork differential for the wrong reason.
        if let Some(t) = fork_twin {
            if let Some(v) = timed_oracle(collector, Oracle::Fork, || {
                oracles::check_repaint(t).map(|d| format!("(fork twin) {d}"))
            }) {
                return Some(v);
            }
        }
    }
    if oracles.roundtrip {
        if let Some(v) = timed_oracle(collector, Oracle::Roundtrip, || {
            oracles::check_roundtrip(primary)
        }) {
            return Some(v);
        }
    }
    if oracles.tree {
        if let Some(v) = timed_oracle(collector, Oracle::Tree, || oracles::check_tree(primary)) {
            return Some(v);
        }
    }
    None
}

/// Generates and applies `config.steps` steps, checking oracles every
/// `oracle_every` steps and once at the end.
fn run_stream(
    scene: &str,
    config: &CheckConfig,
    collector: &Arc<Collector>,
) -> Result<StreamOutcome, String> {
    let mut primary = Session::build(scene, &config.backend)?;
    let mut mirror = if config.oracles.backend {
        Some(Session::build(scene, &config.mirror_backend)?)
    } else {
        None
    };
    let mut fork_twin = if config.oracles.fork {
        Some(build_fork_twin(scene, config, collector)?)
    } else {
        None
    };
    let mut gen = gen::StepGen::new(config.seed);
    let mut recorded: Vec<ScriptStep> = Vec::with_capacity(config.steps);
    let window = config.oracle_every.max(1);
    for i in 0..config.steps {
        let step = gen.next_step(&mut primary.world, &mut primary.im);
        primary.apply(&step);
        if config.sabotage_on_tick && matches!(step, ScriptStep::Event(WindowEvent::Tick(_))) {
            primary.sabotage();
        }
        if let Some(m) = &mut mirror {
            m.apply(&step);
        }
        if let Some(t) = &mut fork_twin {
            t.apply(&step);
        }
        recorded.push(step);
        collector.count("check.steps", 1);
        let at_window = (i + 1) % window == 0 || i + 1 == config.steps;
        if at_window {
            if let Some(violation) = run_oracles(
                &mut primary,
                mirror.as_mut(),
                fork_twin.as_mut(),
                config.oracles,
                collector,
            ) {
                return Ok(StreamOutcome::Failed {
                    prefix: recorded,
                    violation,
                    at_step: i,
                });
            }
        }
    }
    Ok(StreamOutcome::Clean)
}

/// Replays `steps` against a fresh scene, checking oracles after every
/// step; returns the first violation. This is the shrinker's test
/// function.
fn replay_detect(
    scene: &str,
    config: &CheckConfig,
    steps: &[ScriptStep],
    collector: &Arc<Collector>,
) -> Result<Option<Violation>, String> {
    let mut primary = Session::build(scene, &config.backend)?;
    let mut mirror = if config.oracles.backend {
        Some(Session::build(scene, &config.mirror_backend)?)
    } else {
        None
    };
    let mut fork_twin = if config.oracles.fork {
        Some(build_fork_twin(scene, config, collector)?)
    } else {
        None
    };
    for step in steps {
        primary.apply(step);
        if config.sabotage_on_tick && matches!(step, ScriptStep::Event(WindowEvent::Tick(_))) {
            primary.sabotage();
        }
        if let Some(m) = &mut mirror {
            m.apply(step);
        }
        if let Some(t) = &mut fork_twin {
            t.apply(step);
        }
        if let Some(v) = run_oracles(
            &mut primary,
            mirror.as_mut(),
            fork_twin.as_mut(),
            config.oracles,
            collector,
        ) {
            return Ok(Some(v));
        }
    }
    // An empty candidate can still fail if the scene violates an oracle
    // at rest (an input-independent bug).
    if steps.is_empty() {
        return Ok(run_oracles(
            &mut primary,
            mirror.as_mut(),
            fork_twin.as_mut(),
            config.oracles,
            collector,
        ));
    }
    Ok(None)
}

/// Fuzzes one scene. `scene` is a name from
/// [`atk_apps::scenes::scene_names`] (or a `fig3`-style prefix).
pub fn run_check(scene: &str, config: &CheckConfig) -> Result<CheckReport, String> {
    let collector = Arc::new(Collector::new());
    collector.enable();
    let start = Instant::now();
    let outcome = run_stream(scene, config, &collector)?;
    let failure = match outcome {
        StreamOutcome::Clean => None,
        StreamOutcome::Failed {
            prefix,
            violation,
            at_step,
        } => {
            let minimized = if config.shrink {
                shrink::minimize(&prefix, &collector, |candidate| {
                    matches!(
                        replay_detect(scene, config, candidate, &collector),
                        Ok(Some(_))
                    )
                })
            } else {
                prefix
            };
            let script = EventScript {
                steps: minimized.clone(),
            }
            .to_text();
            Some(FailureReport {
                violation,
                at_step,
                minimized,
                script,
            })
        }
    };
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let snap = collector.snapshot();
    let steps_run = snap.counter("check.steps") as usize;
    Ok(CheckReport {
        scene: scene.to_string(),
        steps_run,
        oracle_runs: snap.counter("check.oracle_runs"),
        shrink_rounds: snap.counter("check.shrink_rounds"),
        steps_per_sec: steps_run as f64 / elapsed,
        failure,
        stats: snap,
    })
}
