//! Delta debugging: minimize a failing event stream.
//!
//! ddmin-flavoured: first try removing large chunks (half the script,
//! then quarters, …), then individual steps, re-testing the candidate
//! from a fresh scene each time. The result is 1-minimal — removing any
//! single remaining step makes the failure disappear — which in practice
//! reduces a 2000-step session to a handful of lines `runapp --script`
//! can replay.

use std::sync::Arc;

use atk_core::ScriptStep;
use atk_trace::Collector;

/// Minimizes `steps` while `still_fails` keeps returning `true`.
///
/// `still_fails` must re-run the candidate from scratch (the caller owns
/// scene construction); every candidate evaluation is counted on
/// `collector` as `check.shrink_rounds`.
pub fn minimize<F>(
    steps: &[ScriptStep],
    collector: &Arc<Collector>,
    mut still_fails: F,
) -> Vec<ScriptStep>
where
    F: FnMut(&[ScriptStep]) -> bool,
{
    let mut current: Vec<ScriptStep> = steps.to_vec();
    if current.is_empty() {
        return current;
    }
    // Chunk removal, halving the chunk size each pass.
    let mut chunk = current.len().div_ceil(2);
    loop {
        let mut i = 0;
        while i < current.len() {
            let end = (i + chunk).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - i));
            candidate.extend_from_slice(&current[..i]);
            candidate.extend_from_slice(&current[end..]);
            collector.count("check.shrink_rounds", 1);
            if still_fails(&candidate) {
                current = candidate;
                // The same index now holds the next chunk; don't advance.
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk = chunk.div_ceil(2).min(chunk - 1).max(1);
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use atk_graphics::Size;
    use atk_wm::WindowEvent;

    fn tick(ms: u64) -> ScriptStep {
        ScriptStep::Event(WindowEvent::Tick(ms))
    }

    #[test]
    fn minimizes_to_the_two_culprit_steps() {
        // 100 steps; the "bug" needs Tick(17) and Tick(23) both present.
        let mut steps: Vec<ScriptStep> = (0..100).map(|i| tick(1000 + i)).collect();
        steps[13] = tick(17);
        steps[71] = tick(23);
        let collector = Arc::new(Collector::new());
        collector.enable();
        let min = minimize(&steps, &collector, |cand| {
            cand.contains(&tick(17)) && cand.contains(&tick(23))
        });
        assert_eq!(min, vec![tick(17), tick(23)]);
        assert!(collector.snapshot().counter("check.shrink_rounds") > 0);
    }

    #[test]
    fn single_culprit_minimizes_to_one_step() {
        let mut steps: Vec<ScriptStep> = (0..64)
            .map(|_| ScriptStep::Event(WindowEvent::Resize(Size::new(300, 300))))
            .collect();
        steps[40] = tick(7);
        let collector = Arc::new(Collector::new());
        let min = minimize(&steps, &collector, |cand| cand.contains(&tick(7)));
        assert_eq!(min, vec![tick(7)]);
    }

    #[test]
    fn input_independent_failure_minimizes_to_empty() {
        let steps: Vec<ScriptStep> = (0..10).map(tick).collect();
        let collector = Arc::new(Collector::new());
        let min = minimize(&steps, &collector, |_| true);
        assert!(min.is_empty());
    }
}
