//! The six session oracles.
//!
//! Each check returns `None` when the invariant holds, or a human
//! readable description of the violation. They exploit the two protocol
//! guarantees the paper's architecture rests on: delayed update means an
//! incremental damage pass must converge to the same pixels as a
//! from-scratch redraw (§2) — and, one layer down, an incremental
//! *relayout* must converge to the same line table as a from-scratch
//! re-wrap — and the datastream writer/reader pair must be a bijection
//! on documents it produced itself (§5). The `fork` oracle extends the
//! differential family to the template-fork fast path: a session forked
//! from a pre-warmed template world must be indistinguishable, under any
//! traffic, from one built cold.

use atk_core::{document_to_string, read_document, ViewId, World};
use atk_graphics::Rect;

use crate::Session;

/// Which oracle tripped (or is enabled, in [`crate::OracleSet`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Oracle {
    /// Incremental repaint ≡ full redraw.
    Repaint,
    /// save → load → save is byte identity.
    Roundtrip,
    /// View-tree structural invariants.
    Tree,
    /// X11Sim and AwmSim agree pixel-for-pixel and count-for-count.
    Backend,
    /// Incremental text relayout ≡ from-scratch relayout.
    Layout,
    /// Template-forked session ≡ cold-built session under the same
    /// traffic.
    Fork,
}

impl Oracle {
    /// Every oracle, in the order `run_oracles` checks them.
    pub const ALL: [Oracle; 6] = [
        Oracle::Backend,
        Oracle::Fork,
        Oracle::Layout,
        Oracle::Repaint,
        Oracle::Roundtrip,
        Oracle::Tree,
    ];

    /// The oracle's short name (`repaint`, `tree`, …).
    pub fn name(self) -> &'static str {
        match self {
            Oracle::Repaint => "repaint",
            Oracle::Roundtrip => "roundtrip",
            Oracle::Tree => "tree",
            Oracle::Backend => "backend",
            Oracle::Layout => "layout",
            Oracle::Fork => "fork",
        }
    }

    /// Histogram key for this oracle's per-invocation wall time.
    pub fn us_key(self) -> &'static str {
        match self {
            Oracle::Repaint => "check.oracle_us.repaint",
            Oracle::Roundtrip => "check.oracle_us.roundtrip",
            Oracle::Tree => "check.oracle_us.tree",
            Oracle::Backend => "check.oracle_us.backend",
            Oracle::Layout => "check.oracle_us.layout",
            Oracle::Fork => "check.oracle_us.fork",
        }
    }

    /// Counter key for this oracle's violation count.
    pub fn violations_key(self) -> &'static str {
        match self {
            Oracle::Repaint => "check.violations.repaint",
            Oracle::Roundtrip => "check.violations.roundtrip",
            Oracle::Tree => "check.violations.tree",
            Oracle::Backend => "check.violations.backend",
            Oracle::Layout => "check.violations.layout",
            Oracle::Fork => "check.violations.fork",
        }
    }
}

impl std::fmt::Display for Oracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A tripped oracle with its explanation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant broke.
    pub oracle: Oracle,
    /// What exactly diverged.
    pub detail: String,
}

fn count_pixel_diffs(a: &atk_graphics::Framebuffer, b: &atk_graphics::Framebuffer) -> usize {
    if a.width() != b.width() || a.height() != b.height() {
        return (a.width() * a.height()).unsigned_abs() as usize;
    }
    let mut diffs = 0;
    for y in 0..a.height() {
        for x in 0..a.width() {
            if a.get(x, y) != b.get(x, y) {
                diffs += 1;
            }
        }
    }
    diffs
}

/// Repaint equivalence: the framebuffer produced by the incremental
/// damage path must equal a from-scratch full redraw of the same world.
///
/// A `MenuRequest` paints a transient pop-up overlay directly on the
/// window without posting damage — the period behaviour of a grabbed X
/// pop-up — so right after menu traffic the incremental framebuffer
/// *legitimately* differs from a full redraw. The session tracks that
/// ([`Session::overlay_possible`]); here we skip the comparison for that
/// window and only resynchronise with a full redraw.
pub fn check_repaint(s: &mut Session) -> Option<String> {
    let before = s.im.snapshot()?;
    s.im.redraw_full(&mut s.world);
    if s.overlay_possible {
        s.overlay_possible = false;
        return None;
    }
    let after = s.im.snapshot()?;
    if before != after {
        let diffs = count_pixel_diffs(&before, &after);
        return Some(format!(
            "incremental framebuffer diverges from full redraw ({diffs} pixels)"
        ));
    }
    None
}

/// Finds the first data-bearing view under `root` (breadth-first), i.e.
/// the scene's document.
pub fn find_document(world: &World, root: ViewId) -> Option<atk_core::DataId> {
    let mut queue = vec![root];
    let mut i = 0;
    while i < queue.len() {
        let v = queue[i];
        i += 1;
        let Some(view) = world.view_dyn(v) else {
            continue;
        };
        if let Some(d) = view.data_object() {
            return Some(d);
        }
        queue.extend(view.children());
    }
    None
}

/// Datastream round-trip: serialize the live document, read it into a
/// fresh world, serialize again, require byte equality.
pub fn check_roundtrip(s: &Session) -> Option<String> {
    let doc = find_document(&s.world, s.im.root())?;
    let first = document_to_string(&s.world, doc);
    let mut fresh = atk_apps::standard_world();
    let reread = match read_document(&mut fresh, &first) {
        Ok(id) => id,
        Err(e) => {
            return Some(format!(
                "serialized document does not read back: {e:?} (stream {} bytes)",
                first.len()
            ))
        }
    };
    let second = document_to_string(&fresh, reread);
    if first != second {
        return Some(format!(
            "save/load/save is not identity: {} vs {} bytes, first divergence at byte {}",
            first.len(),
            second.len(),
            first
                .bytes()
                .zip(second.bytes())
                .position(|(a, b)| a != b)
                .unwrap_or(first.len().min(second.len())),
        ));
    }
    None
}

/// View-tree invariants: parent/child links mutually consistent, no
/// dangling ids, parent chains acyclic, child bounds clipped inside
/// non-scrolling parents, and the focus reachable from the root.
pub fn check_tree(s: &Session) -> Option<String> {
    let world = &s.world;
    let root = s.im.root();
    if let Some(p) = world.view_parent(root) {
        return Some(format!("root {root:?} has a parent {p:?}"));
    }
    let ids = world.view_ids();
    let total = ids.len();
    for &id in &ids {
        let Some(view) = world.view_dyn(id) else {
            return Some(format!("live id {id:?} has no view"));
        };
        // Downward links: every listed child exists and points back.
        for c in view.children() {
            if !world.view_exists(c) {
                return Some(format!("view {id:?} lists dangling child {c:?}"));
            }
            if world.view_parent(c) != Some(id) {
                return Some(format!(
                    "child {c:?} of {id:?} has parent {:?}",
                    world.view_parent(c)
                ));
            }
        }
        // Upward link: the parent must exist, and walking up must
        // terminate (no cycles).
        let mut cur = id;
        let mut hops = 0;
        while let Some(p) = world.view_parent(cur) {
            if !world.view_exists(p) {
                return Some(format!("view {cur:?} has dangling parent {p:?}"));
            }
            cur = p;
            hops += 1;
            if hops > total {
                return Some(format!("parent chain from {id:?} cycles"));
            }
        }
        // Clipping: children of non-scrolling parents stay inside the
        // parent's local rect. Scrolling parents (text, table, list)
        // legitimately park content children off-rect, and zero-area
        // children are layout's way of hiding a view.
        if let Some(p) = world.view_parent(id) {
            let scrolls = world
                .view_dyn(p)
                .and_then(|v| v.scroll_info(world))
                .is_some();
            let b = world.view_bounds(id);
            if !scrolls && b.width > 0 && b.height > 0 {
                let pb = world.view_bounds(p);
                let local = Rect::new(0, 0, pb.width, pb.height);
                if !local.contains_rect(b) {
                    return Some(format!(
                        "child {id:?} bounds {b:?} escape parent {p:?} rect {local:?}"
                    ));
                }
            }
        }
    }
    // Focus: must exist and have exactly one path, ending at the root.
    if let Some(f) = s.im.focus() {
        if !world.view_exists(f) {
            return Some(format!("focus {f:?} is a dead view"));
        }
        let path = world.path_to(f);
        if path.first() != Some(&root) {
            return Some(format!(
                "focus path {path:?} does not start at root {root:?}"
            ));
        }
        if path.last() != Some(&f) {
            return Some(format!("focus path {path:?} does not end at focus {f:?}"));
        }
    }
    None
}

/// Layout differential: every text view's incrementally maintained line
/// table must be byte-identical to what a from-scratch relayout of the
/// same document at the same width produces. This is the oracle for the
/// edit-local relayout path — the one place a wrong convergence bound or
/// a stale memoized width would show up before any pixel does.
pub fn check_layout(s: &mut Session) -> Option<String> {
    for id in s.world.view_ids() {
        let result = s.world.with_view(id, |view, world| {
            view.as_any_mut()
                .downcast_mut::<atk_text::TextView>()
                .map(|tv| tv.verify_layout_against_full(world))
        });
        if let Some(Some(Err(detail))) = result {
            return Some(format!("textview {id:?}: {detail}"));
        }
    }
    None
}

/// The comparison both differential oracles share: after the same
/// script, two sessions must agree on pixels, update-pass counts, and
/// damage-rect counts. `what` names the pairing in the violation text
/// (`between backends`, `between cold build and fork`).
fn compare_sessions(a: &Session, b: &Session, what: &str) -> Option<String> {
    match (a.im.snapshot(), b.im.snapshot()) {
        (Some(fa), Some(fb)) => {
            if fa != fb {
                let diffs = count_pixel_diffs(&fa, &fb);
                return Some(format!("framebuffers diverge {what} ({diffs} pixels)"));
            }
        }
        _ => return Some(format!("a session cannot snapshot ({what})")),
    }
    let sa = a.world.collector().snapshot();
    let sb = b.world.collector().snapshot();
    for key in ["im.updates", "im.full_redraws", "im.events"] {
        let (ca, cb) = (sa.counter(key), sb.counter(key));
        if ca != cb {
            return Some(format!("counter {key} diverges {what}: {ca} vs {cb}"));
        }
    }
    let ha = sa.histogram("im.damage_rects").map(|h| (h.count, h.sum));
    let hb = sb.histogram("im.damage_rects").map(|h| (h.count, h.sum));
    if ha != hb {
        return Some(format!(
            "damage-rect histograms diverge {what}: {ha:?} vs {hb:?} (count, sum)"
        ));
    }
    None
}

/// Backend differential: after the same script, the X11Sim and AwmSim
/// sessions must agree on pixels, update-pass counts, and damage-rect
/// counts.
pub fn check_backend(a: &Session, b: &Session) -> Option<String> {
    compare_sessions(a, b, "between backends")
}

/// Fork differential: a session forked from a pre-warmed template world
/// (and fed the same script as the cold-built session under test) must
/// agree on pixels, update-pass counts, and damage-rect counts. Any
/// state the fork secretly shares with its template — or inherits from
/// an earlier fork's traffic — surfaces here.
pub fn check_fork(cold: &Session, forked: &Session) -> Option<String> {
    compare_sessions(cold, forked, "between cold build and fork")
}
