//! Weighted random [`ScriptStep`] generation.
//!
//! The generator is the fuzzer's stand-in for the paper's ~3000 campus
//! users: a seed-stable stream of typing, mouse gestures, keymap chords,
//! menu traffic, clock ticks, and resizes. Generation is interleaved
//! with execution because two step kinds depend on live session state —
//! menu selection picks a label actually offered along the current focus
//! path, and mouse coordinates stay inside the current window size. The
//! *recorded* steps carry concrete values, so replaying them from
//! scratch (for shrinking or `runapp --script`) needs no generator.

use atk_core::{InteractionManager, ScriptStep, World};
use atk_graphics::{Point, Size};
use atk_wm::{Button, Key, MouseAction, WindowEvent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Printable characters the typing arm draws from.
const TYPABLE: &[char] = &[
    'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q', 'r', 's',
    't', 'u', 'v', 'w', 'x', 'y', 'z', 'A', 'E', 'T', 'Z', '0', '1', '7', '9', '.', ',', '!', '-',
    '=', '(', ')', ' ',
];

/// Editing keys the typing arm mixes in with plain characters.
const EDIT_KEYS: &[Key] = &[
    Key::Return,
    Key::Tab,
    Key::Backspace,
    Key::Delete,
    Key::Up,
    Key::Down,
    Key::Left,
    Key::Right,
    Key::PageUp,
    Key::PageDown,
    Key::Home,
    Key::End,
];

/// Chord keys: enough of the `standard_editing_keymap` bindings to hit
/// bound commands, plus keys that leave a `C-x` prefix dangling or make
/// a chord unbound after a valid prefix.
const CHORD_KEYS: &[Key] = &[
    Key::Ctrl('x'),
    Key::Ctrl('s'),
    Key::Ctrl('a'),
    Key::Ctrl('e'),
    Key::Ctrl('f'),
    Key::Ctrl('b'),
    Key::Ctrl('n'),
    Key::Ctrl('p'),
    Key::Ctrl('d'),
    Key::Ctrl('k'),
    Key::Meta('v'),
    Key::Escape,
];

/// A seed-driven step generator with just enough gesture state to emit
/// coherent mouse streams (drags only while a left press is held).
pub struct StepGen {
    rng: StdRng,
    held: Option<Button>,
}

impl StepGen {
    /// A generator with a fixed seed (same seed → same stream against
    /// the same scene).
    pub fn new(seed: u64) -> StepGen {
        StepGen {
            rng: StdRng::seed_from_u64(seed),
            held: None,
        }
    }

    fn random_point(&mut self, size: Size) -> Point {
        let x = self.rng.gen_range(0..size.width.max(1));
        let y = self.rng.gen_range(0..size.height.max(1));
        Point::new(x, y)
    }

    /// Draws the next step. `world`/`im` are only *read* (window size,
    /// offered menu labels); the session is not advanced here.
    pub fn next_step(&mut self, world: &mut World, im: &mut InteractionManager) -> ScriptStep {
        let size = im.window_mut().size();
        let roll = self.rng.gen_range(0u32..100);
        let ev = match roll {
            // Typing: plain characters and editing keys.
            0..=29 => {
                if self.rng.gen_bool(0.75) {
                    let c = TYPABLE[self.rng.gen_range(0..TYPABLE.len())];
                    WindowEvent::Key(Key::Char(c))
                } else {
                    WindowEvent::Key(EDIT_KEYS[self.rng.gen_range(0..EDIT_KEYS.len())])
                }
            }
            // Chords through the keymap (prefixes, bound, and unbound).
            30..=44 => WindowEvent::Key(CHORD_KEYS[self.rng.gen_range(0..CHORD_KEYS.len())]),
            // Mouse gestures.
            45..=69 => {
                let pos = self.random_point(size);
                let action = match self.held {
                    Some(Button::Left) => {
                        if self.rng.gen_bool(0.6) {
                            MouseAction::Drag(Button::Left)
                        } else {
                            self.held = None;
                            MouseAction::Up(Button::Left)
                        }
                    }
                    Some(b) => {
                        self.held = None;
                        MouseAction::Up(b)
                    }
                    None => {
                        let b = match self.rng.gen_range(0u32..100) {
                            0..=54 => Some(Button::Left),
                            55..=69 => Some(Button::Right),
                            70..=79 => Some(Button::Middle),
                            _ => None,
                        };
                        match b {
                            Some(b) => {
                                self.held = Some(b);
                                MouseAction::Down(b)
                            }
                            None => MouseAction::Movement,
                        }
                    }
                };
                WindowEvent::Mouse { action, pos }
            }
            // Menu request (paints the transient overlay).
            70..=75 => WindowEvent::MenuRequest {
                pos: self.random_point(size),
            },
            // Menu select: a label actually offered on the focus path.
            76..=81 => {
                let menus = im.collect_menus(world);
                if menus.is_empty() {
                    WindowEvent::Mouse {
                        action: MouseAction::Movement,
                        pos: self.random_point(size),
                    }
                } else {
                    let item = &menus[self.rng.gen_range(0..menus.len())];
                    return ScriptStep::MenuSelect(item.label.clone());
                }
            }
            // Virtual time (drives timers and animations).
            82..=91 => WindowEvent::Tick(self.rng.gen_range(1u64..250)),
            // Resize (relayout of the whole tree).
            92..=94 => WindowEvent::Resize(Size::new(
                self.rng.gen_range(160..640),
                self.rng.gen_range(140..560),
            )),
            // Plain pointer motion (cursor arbitration).
            _ => WindowEvent::Mouse {
                action: MouseAction::Movement,
                pos: self.random_point(size),
            },
        };
        ScriptStep::Event(ev)
    }
}

/// Records a seeded interleaving of `writers` independent edit streams
/// against **one shared session** — the generator-side model of a
/// collaborative document. Each writer gets its own [`StepGen`] (so a
/// writer's gesture state stays coherent: its drags release before its
/// next press), and a separate interleave RNG picks which writer moves
/// next, so the merged order is itself seed-stable. Steps are applied
/// to the shared session as they are drawn, because menu selection and
/// mouse coordinates depend on the state every *previous* writer left
/// behind — exactly the situation replicas of a shared document are in.
///
/// The recorded `(writer, step)` pairs replay without the generator:
/// submit each step in order from the numbered writer and any replica
/// set must converge on the same document.
pub fn interleaved_script(
    scene: &str,
    seed: u64,
    writers: usize,
    steps: usize,
) -> Result<Vec<(usize, ScriptStep)>, String> {
    if writers == 0 {
        return Err("interleaved_script needs at least one writer".to_string());
    }
    let mut session = crate::Session::build(scene, "x11sim")?;
    let mut gens: Vec<StepGen> = (0..writers)
        .map(|w| StepGen::new(seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(w as u64 + 1))))
        .collect();
    let mut pick = StdRng::seed_from_u64(seed.wrapping_mul(0x2545_f491_4f6c_dd1d));
    let mut recorded = Vec::with_capacity(steps);
    for _ in 0..steps {
        let w = pick.gen_range(0..writers);
        let step = gens[w].next_step(&mut session.world, &mut session.im);
        session.apply(&step);
        recorded.push((w, step));
    }
    Ok(recorded)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_stream(seed: u64, steps: usize) -> Vec<ScriptStep> {
        let mut session = crate::Session::build("fig2", "x11sim").expect("scene");
        let mut gen = StepGen::new(seed);
        let mut recorded = Vec::with_capacity(steps);
        for _ in 0..steps {
            let step = gen.next_step(&mut session.world, &mut session.im);
            session.apply(&step);
            recorded.push(step);
        }
        recorded
    }

    #[test]
    fn same_seed_same_stream() {
        let a = record_stream(7, 200);
        let b = record_stream(7, 200);
        assert_eq!(a, b);
        let c = record_stream(8, 200);
        assert_ne!(a, c);
    }

    #[test]
    fn streams_cover_every_step_kind() {
        let steps = record_stream(42, 600);
        let has = |pred: &dyn Fn(&ScriptStep) -> bool| steps.iter().any(|s| pred(s));
        assert!(has(&|s| matches!(
            s,
            ScriptStep::Event(WindowEvent::Key(_))
        )));
        assert!(has(&|s| matches!(
            s,
            ScriptStep::Event(WindowEvent::Mouse { .. })
        )));
        assert!(has(&|s| matches!(
            s,
            ScriptStep::Event(WindowEvent::Tick(_))
        )));
        assert!(has(&|s| matches!(
            s,
            ScriptStep::Event(WindowEvent::Resize(_))
        )));
        assert!(has(&|s| matches!(
            s,
            ScriptStep::Event(WindowEvent::MenuRequest { .. })
        )));
        assert!(has(&|s| matches!(s, ScriptStep::MenuSelect(_))));
    }

    #[test]
    fn every_generated_step_serializes() {
        // The whole point of recording concrete steps is that the stream
        // can be written out and replayed; no generated step may fall
        // outside the line format.
        for step in record_stream(123, 500) {
            assert!(step.to_line().is_some(), "unserializable step {step:?}");
        }
    }

    #[test]
    fn interleaved_scripts_are_seed_stable() {
        let a = interleaved_script("fig2", 7, 3, 120).expect("script");
        let b = interleaved_script("fig2", 7, 3, 120).expect("script");
        assert_eq!(a, b);
        let c = interleaved_script("fig2", 8, 3, 120).expect("script");
        assert_ne!(a, c);
        // Every writer actually gets a turn.
        for w in 0..3 {
            assert!(a.iter().any(|(who, _)| *who == w), "writer {w} never moved");
        }
        // Collab ops travel as script lines; every step must serialize.
        for (_, step) in &a {
            assert!(step.to_line().is_some(), "unserializable step {step:?}");
        }
    }
}
