//! `runcheck` — seed-driven session fuzzing against the shipped scenes.
//!
//! ```text
//! runcheck [--seed N] [--steps N] [--scene NAME|all] \
//!          [--oracle repaint,roundtrip,tree,backend,layout,fork|all] \
//!          [--window N] [--no-shrink]
//! ```
//!
//! Exit status is non-zero when any oracle trips; the minimized
//! reproducing script is written next to the temp dir and printed, so
//! `runapp <app> --script <file>` can replay it. On exit a per-oracle
//! summary (runs, violations, total/p50/p99 wall time) is printed from
//! the scene reports' merged trace snapshots.

use atk_check::{run_check, CheckConfig, Oracle, OracleSet};
use atk_trace::Snapshot;

fn usage() -> ! {
    eprintln!(
        "usage: runcheck [--seed N] [--steps N] [--scene NAME|all] \
         [--oracle LIST|all] [--window N] [--no-shrink]"
    );
    std::process::exit(2);
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> T {
    match value.and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => {
            eprintln!("runcheck: {flag} needs a numeric argument");
            usage();
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut config = CheckConfig {
        steps: 2000,
        ..CheckConfig::default()
    };
    let mut scene_spec = "all".to_string();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--seed" => {
                config.seed = parse_num("--seed", argv.get(i + 1));
                i += 2;
            }
            "--steps" => {
                config.steps = parse_num("--steps", argv.get(i + 1));
                i += 2;
            }
            "--window" => {
                config.oracle_every = parse_num("--window", argv.get(i + 1));
                i += 2;
            }
            "--scene" => {
                let Some(name) = argv.get(i + 1) else { usage() };
                scene_spec = name.clone();
                i += 2;
            }
            "--oracle" => {
                let Some(spec) = argv.get(i + 1) else { usage() };
                match OracleSet::parse(spec) {
                    Ok(set) => config.oracles = set,
                    Err(e) => {
                        eprintln!("runcheck: {e}");
                        usage();
                    }
                }
                i += 2;
            }
            "--no-shrink" => {
                config.shrink = false;
                i += 1;
            }
            _ => usage(),
        }
    }

    let scenes: Vec<String> = if scene_spec == "all" {
        atk_apps::scenes::scene_names()
            .into_iter()
            .map(String::from)
            .collect()
    } else {
        scene_spec.split(',').map(String::from).collect()
    };

    let mut failed = false;
    let mut merged = Snapshot::default();
    for scene in &scenes {
        let report = match run_check(scene, &config) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("runcheck: {scene}: {e}");
                std::process::exit(2);
            }
        };
        println!(
            "{}: {} steps (seed {}), {:.0} steps/s, {} oracle runs, {}",
            report.scene,
            report.steps_run,
            config.seed,
            report.steps_per_sec,
            report.oracle_runs,
            match &report.failure {
                None => "clean".to_string(),
                Some(f) => format!("VIOLATION ({})", f.violation.oracle),
            }
        );
        if let Some(f) = &report.failure {
            failed = true;
            println!("  oracle:    {}", f.violation.oracle);
            println!("  detail:    {}", f.violation.detail);
            println!("  at step:   {}", f.at_step);
            println!(
                "  minimized: {} steps after {} shrink replays",
                f.minimized.len(),
                report.shrink_rounds
            );
            let path = std::env::temp_dir()
                .join(format!("atk_check_{}_{}.script", report.scene, config.seed));
            match std::fs::write(&path, &f.script) {
                Ok(()) => println!(
                    "  script:    {} (replay: runapp <app> --script {0})",
                    path.display()
                ),
                Err(e) => println!("  script:    (could not write: {e})"),
            }
            for line in f.script.lines() {
                println!("    | {line}");
            }
        }
        merged.merge(&report.stats);
    }

    // Per-oracle cost/violation summary across every scene, from the
    // same snapshot-merge plumbing the serve stats plane uses.
    println!("oracle summary ({} scenes):", scenes.len());
    for oracle in Oracle::ALL {
        let Some(h) = merged.histogram(oracle.us_key()) else {
            continue;
        };
        if h.count == 0 {
            continue;
        }
        println!(
            "  {:<9} {:>6} runs, {} violation(s), {:>8} us total, ~p50 {} us, ~p99 {} us",
            oracle.name(),
            h.count,
            merged.counter(oracle.violations_key()),
            h.sum,
            h.approx_percentile(0.50),
            h.approx_percentile(0.99),
        );
    }
    if failed {
        std::process::exit(1);
    }
}
