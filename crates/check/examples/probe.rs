//! Repaint triage for minimized scripts: replay a script against a
//! scene, then diff the incremental framebuffer against a from-scratch
//! redraw and name the views under the divergence.
//!
//! ```sh
//! cargo run --release -p atk-check --example probe -- fig1 /tmp/atk_check_fig1_7.script
//! ```

use atk_check::Session;
use atk_core::{EventScript, ViewId, World};

fn main() {
    let scene = std::env::args().nth(1).unwrap_or_else(|| "fig1".into());
    let script = std::env::args()
        .nth(2)
        .expect("usage: probe <scene> <script-file>");
    let text = std::fs::read_to_string(&script).unwrap();
    let steps = EventScript::parse(&text).unwrap().steps;
    let mut s = Session::build(&scene, "x11sim").unwrap();
    for st in &steps {
        println!("apply {st:?}");
        s.apply(st);
    }
    let before = s.im.snapshot().unwrap();
    s.im.redraw_full(&mut s.world);
    let after = s.im.snapshot().unwrap();

    let (mut x0, mut y0, mut x1, mut y1, mut n) = (i32::MAX, i32::MAX, -1, -1, 0u64);
    for y in 0..before.height() {
        for x in 0..before.width() {
            if before.get(x, y) != after.get(x, y) {
                n += 1;
                x0 = x0.min(x);
                y0 = y0.min(y);
                x1 = x1.max(x);
                y1 = y1.max(y);
            }
        }
    }
    println!("diff: {n} px, bbox x[{x0},{x1}] y[{y0},{y1}]");

    // Walk the tree with absolute origins; star the views whose bounds
    // overlap the divergence box.
    fn walk(world: &World, v: ViewId, ox: i32, oy: i32, depth: usize, bb: (i32, i32, i32, i32)) {
        let b = world.view_bounds(v);
        let (ax, ay) = (ox + b.x, oy + b.y);
        let hit = ax <= bb.2 && ax + b.width > bb.0 && ay <= bb.3 && ay + b.height > bb.1;
        let class = world.view_dyn(v).map(|vw| vw.class_name()).unwrap_or("?");
        println!(
            "{}{}{class} abs=({ax},{ay} {}x{})",
            "  ".repeat(depth),
            if hit { "*" } else { " " },
            b.width,
            b.height
        );
        if let Some(vw) = world.view_dyn(v) {
            for c in vw.children() {
                walk(world, c, ax, ay, depth + 1, bb);
            }
        }
    }
    walk(&s.world, s.im.root(), 0, 0, 0, (x0, y0, x1, y1));
}
