//! The fork differential acceptance matrix.
//!
//! Sessions forked from pre-warmed template worlds must be
//! indistinguishable — pixels, update passes, damage accounting — from
//! cold-built sessions under fuzz traffic. Every run here exercises the
//! *post-traffic* case: the fork oracle's twin is forked only after a
//! throwaway tenant has already forked from the same template and taken
//! traffic, so copy-on-write leaks from the first tenant into the
//! template would reappear in the twin and trip the oracle.

use atk_check::{run_check, CheckConfig, Oracle, OracleSet};
use proptest::prelude::*;

fn fork_config(seed: u64, steps: usize) -> CheckConfig {
    CheckConfig {
        seed,
        steps,
        oracle_every: 20,
        oracles: OracleSet::only(Oracle::Fork),
        ..CheckConfig::default()
    }
}

// The acceptance grid: three scenes of increasing complexity, the four
// canonical seeds. Each run also proves the post-traffic shape through
// the registry's accounting on the run collector: one template build,
// two forks of it (throwaway tenant + twin).
#[test]
fn fork_matches_cold_across_scenes_and_seeds() {
    for scene in ["fig1", "fig3", "fig5"] {
        for seed in [1u64, 2, 7, 42] {
            let report = run_check(scene, &fork_config(seed, 120)).expect("scene builds");
            assert!(
                report.failure.is_none(),
                "{scene} seed {seed}: {:?}",
                report.failure
            );
            assert_eq!(
                report.stats.counter("world.template_builds"),
                1,
                "{scene} seed {seed}: twin must reuse the throwaway tenant's template"
            );
            assert_eq!(
                report.stats.counter("world.forks"),
                2,
                "{scene} seed {seed}: expected throwaway + twin forks"
            );
        }
    }
}

// Repaint + fork together: the twin takes the same full-redraw resync
// as the primary, so `im.full_redraws` stays comparable and a forked
// world's incremental damage path must still converge to a from-scratch
// redraw.
#[test]
fn fork_survives_full_redraw_resync() {
    let mut oracles = OracleSet::only(Oracle::Fork);
    oracles.repaint = true;
    let config = CheckConfig {
        oracles,
        ..fork_config(7, 150)
    };
    let report = run_check("fig2", &config).expect("scene builds");
    assert!(report.failure.is_none(), "{:?}", report.failure);
}

// The display-list backend forks too: AwmSim templates replay their
// recorded ops into a fresh framebuffer per snapshot, so a stale shared
// op log would diverge here.
#[test]
fn fork_differential_holds_on_awmsim_backend() {
    let config = CheckConfig {
        backend: "awmsim".to_string(),
        ..fork_config(2, 100)
    };
    let report = run_check("fig4", &config).expect("scene builds");
    assert!(report.failure.is_none(), "{:?}", report.failure);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Fork-vs-fresh under arbitrary seeds: whatever stream the
    // generator produces, the forked session tracks the cold build
    // step for step.
    #[test]
    fn forked_sessions_match_cold_builds_under_random_traffic(
        seed in 0u64..1_000_000,
        scene_idx in 0usize..5,
        steps in 40usize..120,
    ) {
        let scene = ["fig1", "fig2", "fig3", "fig4", "fig5"][scene_idx];
        let report = run_check(scene, &fork_config(seed, steps)).expect("scene builds");
        prop_assert!(
            report.failure.is_none(),
            "{} seed {}: {:?}",
            scene,
            seed,
            report.failure
        );
    }
}
