//! Fixed-seed fuzzing smoke tests — the tier-1 face of `atk-check`.
//!
//! Short deterministic runs over every shipped scene with all six
//! oracles (the fork differential twin included), plus the planted-bug
//! drill: a deliberately injected repaint
//! bug (a pixel scribbled behind the damage system's back) must be
//! caught by the repaint oracle and delta-debugged to a minimal script.

use atk_check::{run_check, CheckConfig, Oracle, OracleSet};
use atk_core::EventScript;

fn smoke_config() -> CheckConfig {
    CheckConfig {
        seed: 0xA11CE,
        steps: 150,
        oracle_every: 25,
        oracles: OracleSet::all(),
        ..CheckConfig::default()
    }
}

#[test]
fn fig1_fuzzes_clean() {
    let report = run_check("fig1", &smoke_config()).expect("scene builds");
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert_eq!(report.steps_run, 150);
    assert!(report.oracle_runs > 0);
}

#[test]
fn fig2_fuzzes_clean() {
    let report = run_check("fig2", &smoke_config()).expect("scene builds");
    assert!(report.failure.is_none(), "{:?}", report.failure);
}

#[test]
fn fig3_fuzzes_clean() {
    let report = run_check("fig3", &smoke_config()).expect("scene builds");
    assert!(report.failure.is_none(), "{:?}", report.failure);
}

#[test]
fn fig4_fuzzes_clean() {
    let report = run_check("fig4", &smoke_config()).expect("scene builds");
    assert!(report.failure.is_none(), "{:?}", report.failure);
}

#[test]
fn fig5_fuzzes_clean() {
    let report = run_check("fig5", &smoke_config()).expect("scene builds");
    assert!(report.failure.is_none(), "{:?}", report.failure);
}

#[test]
fn unknown_scene_is_an_error() {
    assert!(run_check("fig9", &smoke_config()).is_err());
}

// The acceptance drill: plant a repaint bug (every Tick scribbles a
// pixel without posting damage), prove the repaint oracle catches it and
// the shrinker reduces the session to a handful of steps.
#[test]
fn injected_repaint_bug_is_caught_and_minimized() {
    let config = CheckConfig {
        seed: 42,
        steps: 400,
        oracle_every: 25,
        oracles: OracleSet::only(Oracle::Repaint),
        sabotage_on_tick: true,
        ..CheckConfig::default()
    };
    let report = run_check("fig2", &config).expect("scene builds");
    let failure = report.failure.expect("planted bug must be caught");
    assert_eq!(failure.violation.oracle, Oracle::Repaint);
    assert!(
        failure.minimized.len() <= 10,
        "minimized to {} steps, want <= 10: {}",
        failure.minimized.len(),
        failure.script
    );
    assert!(report.shrink_rounds > 0);
    // The minimized script must replay through the public script format.
    let parsed = EventScript::parse(&failure.script).expect("script parses");
    assert_eq!(parsed.steps.len(), failure.minimized.len());
    assert_eq!(parsed.steps, failure.minimized);
}

// Determinism: the same seed and config reach the same outcome with the
// same counters.
#[test]
fn reports_are_deterministic() {
    let config = smoke_config();
    let a = run_check("fig1", &config).expect("scene builds");
    let b = run_check("fig1", &config).expect("scene builds");
    assert_eq!(a.steps_run, b.steps_run);
    assert_eq!(a.oracle_runs, b.oracle_runs);
    assert!(a.failure.is_none() && b.failure.is_none());
}
