//! Exporters: Chrome `trace_event` JSON, a machine-readable snapshot
//! JSON, and a plain-text summary.
//!
//! The Chrome exporter emits the "JSON object format" understood by
//! `chrome://tracing` and Perfetto: an object with a `traceEvents`
//! array of complete (`"ph":"X"`) events sorted by start timestamp,
//! followed by one counter (`"ph":"C"`) sample per counter so the
//! metric totals travel with the trace. The multi-collector variant
//! ([`chrome_trace_json_multi`]) gives each labelled snapshot its own
//! `pid` plus a `process_name` metadata event, so a whole loadgen run
//! (N sessions + the server) opens as one timeline with one track per
//! session. The text exporter is for terminals: counters, gauges,
//! histogram stats, and per-span-name duration aggregates.
//! [`snapshot_json`] is the stats-plane wire format: counters, gauges,
//! histogram summaries (with p50/p90/p99), and span ring totals.
//!
//! All exporters JSON-escape every name they emit; a metric or span
//! name containing quotes, backslashes, or control characters must
//! still produce valid JSON. [`validate_json`] is a dependency-free
//! syntax checker used by tests and the CI stats probe to assert that.

use std::fmt::Write as _;

use crate::collector::Snapshot;
use crate::histogram::bucket_lower_bound;

fn escape_json(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn append_chrome_events(out: &mut String, snap: &Snapshot, pid: u32, first: &mut bool) {
    let mut spans = snap.spans.clone();
    spans.sort_by_key(|s| (s.start_us, s.seq));
    let last_ts = spans
        .iter()
        .map(|s| s.start_us.saturating_add(s.dur_us))
        .max()
        .unwrap_or(0);
    for s in &spans {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str("\n{\"name\":\"");
        escape_json(s.name, out);
        let _ = write!(
            out,
            "\",\"cat\":\"atk\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":1,\"args\":{{\"depth\":{},\"seq\":{}}}}}",
            s.start_us, s.dur_us, s.depth, s.seq
        );
    }
    for (k, v) in &snap.counters {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str("\n{\"name\":\"");
        escape_json(k, out);
        let _ = write!(
            out,
            "\",\"cat\":\"atk\",\"ph\":\"C\",\"ts\":{last_ts},\"pid\":{pid},\"args\":{{\"value\":{v}}}}}"
        );
    }
}

/// Renders `snap` as Chrome `trace_event` JSON. Events are sorted by
/// `ts` (ties broken by open order), so `ts` is monotonically
/// non-decreasing through the array.
pub fn chrome_trace_json(snap: &Snapshot) -> String {
    let mut out = String::with_capacity(snap.spans.len() * 96 + 256);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    append_chrome_events(&mut out, snap, 1, &mut first);
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Renders several labelled snapshots as one Chrome trace: part `i`
/// gets `pid` `i + 1` and a `process_name` metadata event carrying its
/// label, so each session shows up as its own named track in
/// `chrome://tracing` while sharing the timeline.
pub fn chrome_trace_json_multi(parts: &[(&str, Snapshot)]) -> String {
    let total_spans: usize = parts.iter().map(|(_, s)| s.spans.len()).sum();
    let mut out = String::with_capacity(total_spans * 96 + parts.len() * 96 + 256);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for (i, (label, snap)) in parts.iter().enumerate() {
        let pid = i as u32 + 1;
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "\n{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":\""
        );
        escape_json(label, &mut out);
        out.push_str("\"}}");
        append_chrome_events(&mut out, snap, pid, &mut first);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Renders `snap` as a machine-readable JSON object — the stats-plane
/// wire format. Histograms are summarized (count, sum, min, max, mean,
/// p50/p90/p99); the span ring is reported as totals only.
pub fn snapshot_json(snap: &Snapshot) -> String {
    let mut out =
        String::with_capacity(snap.counters.len() * 32 + snap.histograms.len() * 96 + 128);
    out.push_str("{\"counters\":{");
    let mut first = true;
    for (k, v) in &snap.counters {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        escape_json(k, &mut out);
        let _ = write!(out, "\":{v}");
    }
    out.push_str("},\"gauges\":{");
    first = true;
    for (k, v) in &snap.gauges {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        escape_json(k, &mut out);
        let _ = write!(out, "\":{v}");
    }
    out.push_str("},\"histograms\":{");
    first = true;
    for (k, h) in &snap.histograms {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        escape_json(k, &mut out);
        let _ = write!(
            out,
            "\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.3},\"p50\":{},\"p90\":{},\"p99\":{}}}",
            h.count,
            h.sum,
            h.min,
            h.max,
            h.mean(),
            h.approx_percentile(0.50),
            h.approx_percentile(0.90),
            h.approx_percentile(0.99)
        );
    }
    let _ = write!(
        out,
        "}},\"spans\":{{\"recorded\":{},\"dropped\":{},\"open\":{}}}}}",
        snap.spans.len(),
        snap.dropped_spans,
        snap.open_spans
    );
    out
}

/// Renders `snap` as a human-readable multi-line summary.
pub fn text_summary(snap: &Snapshot) -> String {
    let mut out = String::new();
    if !snap.counters.is_empty() {
        out.push_str("counters:\n");
        for (k, v) in &snap.counters {
            let _ = writeln!(out, "  {k:<44} {v:>12}");
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (k, v) in &snap.gauges {
            let _ = writeln!(out, "  {k:<44} {v:>12}");
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str("histograms (count / min / mean / max, top bucket ≥):\n");
        for (k, h) in &snap.histograms {
            let top = h.top_bucket().map_or(0, bucket_lower_bound);
            let _ = writeln!(
                out,
                "  {k:<44} {:>8} / {:>6} / {:>9.1} / {:>8}   ≥{top}",
                h.count,
                h.min,
                h.mean(),
                h.max
            );
        }
    }
    let _ = writeln!(
        out,
        "spans: {} recorded, {} dropped, {} still open",
        snap.spans.len(),
        snap.dropped_spans,
        snap.open_spans
    );
    out
}

/// Checks that `s` is one syntactically valid JSON value (RFC 8259
/// grammar, no extensions). Returns the byte offset and a short
/// message on the first error. Dependency-free on purpose: the CI
/// stats probe and the exporter tests use it to assert "this snapshot
/// parses" without pulling in a JSON crate.
pub fn validate_json(s: &str) -> Result<(), String> {
    let mut p = JsonChecker {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(())
}

const MAX_JSON_DEPTH: usize = 64;

struct JsonChecker<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonChecker<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<(), String> {
        if depth > MAX_JSON_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a fraction digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected an exponent digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Collector;
    use std::sync::Arc;

    #[test]
    fn chrome_json_escapes_and_orders() {
        let c = Arc::new(Collector::new());
        c.enable();
        c.set_manual_clock(10, 1);
        drop(c.span("a\"b"));
        drop(c.span("plain"));
        c.count("world.notify", 4);
        let json = chrome_trace_json(&c.snapshot());
        assert!(json.contains("a\\\"b"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("world.notify"));
        assert!(json.ends_with("}\n"));
        validate_json(&json).unwrap();
    }

    // Regression: a name packing every escape class (quote, backslash,
    // newline, tab, raw control char) must survive every exporter as
    // valid JSON.
    const HOSTILE: &str = "ev\"il\\name\nwith\tctl\u{1}";

    #[test]
    fn hostile_names_stay_valid_json_in_every_exporter() {
        let c = Arc::new(Collector::new());
        c.enable();
        c.set_manual_clock(0, 1);
        drop(c.span(HOSTILE));
        c.count(HOSTILE, 3);
        c.observe(HOSTILE, 7);
        c.gauge(HOSTILE, -2);
        let snap = c.snapshot();

        let chrome = chrome_trace_json(&snap);
        validate_json(&chrome).unwrap();
        assert!(chrome.contains("ev\\\"il\\\\name\\nwith\\tctl\\u0001"));

        let multi = chrome_trace_json_multi(&[("hostile \"label\"\\", snap.clone())]);
        validate_json(&multi).unwrap();
        assert!(multi.contains("hostile \\\"label\\\"\\\\"));

        let stats = snapshot_json(&snap);
        validate_json(&stats).unwrap();
        assert!(stats.contains("ev\\\"il\\\\name"));
    }

    #[test]
    fn multi_export_assigns_one_pid_per_part() {
        let mk = |name: &'static str, n: u64| {
            let c = Arc::new(Collector::new());
            c.enable();
            c.set_manual_clock(0, 1);
            drop(c.span(name));
            c.count("frames", n);
            c.snapshot()
        };
        let json =
            chrome_trace_json_multi(&[("session-1", mk("s1", 1)), ("session-2", mk("s2", 2))]);
        validate_json(&json).unwrap();
        assert!(json.contains("\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1"));
        assert!(json.contains("\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2"));
        assert!(json.contains("\"name\":\"s1\""));
        assert!(json.contains("\"name\":\"s2\""));
        // Span and counter events carry their part's pid.
        assert!(json.contains("\"ph\":\"X\",\"ts\":0,\"dur\":1,\"pid\":2"));
        // Empty input is still a valid (empty) trace.
        validate_json(&chrome_trace_json_multi(&[])).unwrap();
    }

    #[test]
    fn snapshot_json_summarizes_histograms() {
        let c = Arc::new(Collector::new());
        c.enable();
        c.set_manual_clock(0, 1);
        c.count("serve.frames", 12);
        c.gauge("serve.active", 3);
        for v in [10u64, 20, 4000] {
            c.observe("serve.stage_us.paint", v);
        }
        let json = snapshot_json(&c.snapshot());
        validate_json(&json).unwrap();
        assert!(json.contains("\"serve.frames\":12"));
        assert!(json.contains("\"serve.active\":3"));
        assert!(json.contains("\"serve.stage_us.paint\":{\"count\":3,\"sum\":4030"));
        assert!(json.contains("\"p99\":4000"));
        assert!(json.contains("\"spans\":{\"recorded\":0,\"dropped\":0,\"open\":0}"));
        // An empty snapshot is still valid JSON with all sections.
        let empty = snapshot_json(&Snapshot::default());
        validate_json(&empty).unwrap();
        assert!(empty.contains("\"counters\":{}"));
    }

    #[test]
    fn validate_json_accepts_and_rejects() {
        for good in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e+3",
            "\"a\\u00ff\"",
            "{\"a\":[1,2,{\"b\":null}],\"c\":\"d\"}",
            "  [1, 2, 3]  ",
        ] {
            assert!(validate_json(good).is_ok(), "should accept {good:?}");
        }
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "\"unterminated",
            "\"bad\\q\"",
            "\"raw\u{1}ctl\"",
            "01",
            "1.",
            "1e",
            "nulll",
            "{} {}",
            "{'a':1}",
        ] {
            assert!(validate_json(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn text_summary_mentions_all_sections() {
        let c = Arc::new(Collector::new());
        c.enable();
        c.set_manual_clock(0, 1);
        c.count("k", 1);
        c.gauge("g", 2);
        c.observe("h", 3);
        drop(c.span("s"));
        let text = text_summary(&c.snapshot());
        assert!(text.contains("counters:"));
        assert!(text.contains("gauges:"));
        assert!(text.contains("histograms"));
        assert!(text.contains("spans: 1 recorded"));
    }
}
