//! Exporters: Chrome `trace_event` JSON and a plain-text summary.
//!
//! The Chrome exporter emits the "JSON object format" understood by
//! `chrome://tracing` and Perfetto: an object with a `traceEvents`
//! array of complete (`"ph":"X"`) events sorted by start timestamp,
//! followed by one counter (`"ph":"C"`) sample per counter so the
//! metric totals travel with the trace. The text exporter is for
//! terminals: counters, gauges, histogram stats, and per-span-name
//! duration aggregates.

use std::fmt::Write as _;

use crate::collector::Snapshot;
use crate::histogram::bucket_lower_bound;

fn escape_json(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders `snap` as Chrome `trace_event` JSON. Events are sorted by
/// `ts` (ties broken by open order), so `ts` is monotonically
/// non-decreasing through the array.
pub fn chrome_trace_json(snap: &Snapshot) -> String {
    let mut spans = snap.spans.clone();
    spans.sort_by_key(|s| (s.start_us, s.seq));
    let last_ts = spans
        .iter()
        .map(|s| s.start_us.saturating_add(s.dur_us))
        .max()
        .unwrap_or(0);
    let mut out = String::with_capacity(spans.len() * 96 + 256);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for s in &spans {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n{\"name\":\"");
        escape_json(s.name, &mut out);
        let _ = write!(
            out,
            "\",\"cat\":\"atk\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":1,\"args\":{{\"depth\":{},\"seq\":{}}}}}",
            s.start_us, s.dur_us, s.depth, s.seq
        );
    }
    for (k, v) in &snap.counters {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n{\"name\":\"");
        escape_json(k, &mut out);
        let _ = write!(
            out,
            "\",\"cat\":\"atk\",\"ph\":\"C\",\"ts\":{last_ts},\"pid\":1,\"args\":{{\"value\":{v}}}}}"
        );
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Renders `snap` as a human-readable multi-line summary.
pub fn text_summary(snap: &Snapshot) -> String {
    let mut out = String::new();
    if !snap.counters.is_empty() {
        out.push_str("counters:\n");
        for (k, v) in &snap.counters {
            let _ = writeln!(out, "  {k:<44} {v:>12}");
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (k, v) in &snap.gauges {
            let _ = writeln!(out, "  {k:<44} {v:>12}");
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str("histograms (count / min / mean / max, top bucket ≥):\n");
        for (k, h) in &snap.histograms {
            let top = h.top_bucket().map_or(0, bucket_lower_bound);
            let _ = writeln!(
                out,
                "  {k:<44} {:>8} / {:>6} / {:>9.1} / {:>8}   ≥{top}",
                h.count,
                h.min,
                h.mean(),
                h.max
            );
        }
    }
    let _ = writeln!(
        out,
        "spans: {} recorded, {} dropped, {} still open",
        snap.spans.len(),
        snap.dropped_spans,
        snap.open_spans
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Collector;
    use std::sync::Arc;

    #[test]
    fn chrome_json_escapes_and_orders() {
        let c = Arc::new(Collector::new());
        c.enable();
        c.set_manual_clock(10, 1);
        drop(c.span("a\"b"));
        drop(c.span("plain"));
        c.count("world.notify", 4);
        let json = chrome_trace_json(&c.snapshot());
        assert!(json.contains("a\\\"b"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("world.notify"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn text_summary_mentions_all_sections() {
        let c = Arc::new(Collector::new());
        c.enable();
        c.set_manual_clock(0, 1);
        c.count("k", 1);
        c.gauge("g", 2);
        c.observe("h", 3);
        drop(c.span("s"));
        let text = text_summary(&c.snapshot());
        assert!(text.contains("counters:"));
        assert!(text.contains("gauges:"));
        assert!(text.contains("histograms"));
        assert!(text.contains("spans: 1 recorded"));
    }
}
