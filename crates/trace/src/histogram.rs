//! Power-of-two bucket histograms.
//!
//! Bucket `0` holds only the value `0`; bucket `b` (1..=64) holds the
//! range `[2^(b-1), 2^b - 1]`. That gives fixed memory, O(1) record,
//! and enough resolution to answer "are datastream objects tens of
//! bytes or tens of kilobytes" — the kind of question the summary
//! exporter is for.

/// Number of buckets: one for zero plus one per bit of a `u64`.
pub const BUCKET_COUNT: usize = 65;

/// Bucket index for `value` (log2 buckets, zero gets its own bucket).
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Smallest value that lands in bucket `index`.
pub fn bucket_lower_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

/// A log2-bucket histogram with running count/sum/min/max.
#[derive(Debug, Clone, Copy)]
pub struct Histogram {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Per-bucket counts; see [`bucket_index`].
    pub buckets: [u64; BUCKET_COUNT],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; BUCKET_COUNT],
        }
    }
}

impl Histogram {
    /// Records one value.
    pub fn record(&mut self, value: u64) {
        if self.count == 0 || value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Arithmetic mean of recorded values, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate `q`-quantile (`q` in `0.0..=1.0`): the lower bound of
    /// the bucket holding the ceil(q·count)-th smallest value, clamped
    /// into `[min, max]`. Resolution is the log2 bucket width — good
    /// enough for "is p99 frame latency microseconds or milliseconds",
    /// which is what the serve-layer histograms ask.
    ///
    /// Documented edge cases:
    /// - empty histogram → `0` for every `q` (and `NaN` reads as 0.0);
    /// - all samples equal (single sample included) → that value;
    /// - rank 1 (`q` at or below `1/count`) → exactly `min`;
    /// - top rank (`q` high enough that ceil(q·count) == count) →
    ///   exactly `max`, even when every sample shares the top bucket.
    pub fn approx_percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if self.min == self.max {
            return self.min;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == 1 {
            return self.min;
        }
        if rank == self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_lower_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds `other` into `self`: counts, sums, and per-bucket tallies
    /// add; `min`/`max` take the extremes. Merging an empty histogram
    /// is the identity in either direction.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (b, n) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += n;
        }
    }

    /// Index of the highest non-empty bucket, if any value was recorded.
    pub fn top_bucket(&self) -> Option<usize> {
        self.buckets
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &n)| n > 0)
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        for b in 1..BUCKET_COUNT {
            let lo = bucket_lower_bound(b);
            assert_eq!(bucket_index(lo), b, "lower bound of bucket {b}");
            assert_eq!(bucket_index(lo - 1), b - 1, "below bucket {b}");
        }
    }

    #[test]
    fn running_stats_track_min_max_mean() {
        let mut h = Histogram::default();
        for v in [5u64, 1, 9] {
            h.record(v);
        }
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 9);
        assert!((h.mean() - 5.0).abs() < 1e-9);
        assert_eq!(h.top_bucket(), Some(bucket_index(9)));
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::default();
        assert_eq!(h.count, 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.top_bucket(), None);
        assert_eq!(h.approx_percentile(0.99), 0);
    }

    #[test]
    fn percentiles_land_in_the_right_bucket() {
        let mut h = Histogram::default();
        // 99 values near 100 (bucket [64,127]), one outlier at 10_000.
        for _ in 0..99 {
            h.record(100);
        }
        h.record(10_000);
        let p50 = h.approx_percentile(0.50);
        assert!((64..=127).contains(&p50), "p50 = {p50}");
        let p99 = h.approx_percentile(0.99);
        assert!((64..=127).contains(&p99), "p99 = {p99}");
        // p100 must reach the outlier's bucket (lower bound 8192),
        // clamped no higher than the recorded max.
        let p100 = h.approx_percentile(1.0);
        assert!((8192..=10_000).contains(&p100), "p100 = {p100}");
        // min/max clamping: a single value reports itself everywhere.
        let mut one = Histogram::default();
        one.record(37);
        assert_eq!(one.approx_percentile(0.5), 37);
    }

    #[test]
    fn percentile_edge_cases_are_documented_values() {
        // Empty histogram: 0 at every quantile, including NaN.
        let empty = Histogram::default();
        for q in [0.0, 0.5, 1.0, f64::NAN] {
            assert_eq!(empty.approx_percentile(q), 0);
        }
        // Single sample: the sample itself at every quantile.
        let mut one = Histogram::default();
        one.record(4096);
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(one.approx_percentile(q), 4096);
        }
        // All samples equal (multi-sample constant histogram).
        let mut flat = Histogram::default();
        for _ in 0..100 {
            flat.record(300);
        }
        assert_eq!(flat.approx_percentile(0.99), 300);
        // All samples in the top bucket (64), with distinct values:
        // low quantiles pin to min, the top rank pins to max, neither
        // escapes the recorded range despite the huge bucket width.
        let mut top = Histogram::default();
        top.record(u64::MAX - 9);
        top.record(u64::MAX - 5);
        top.record(u64::MAX);
        assert_eq!(top.approx_percentile(0.0), u64::MAX - 9);
        assert_eq!(top.approx_percentile(1.0), u64::MAX);
        let mid = top.approx_percentile(0.5);
        assert!((u64::MAX - 9..=u64::MAX).contains(&mid));
        // q out of range clamps instead of panicking.
        assert_eq!(top.approx_percentile(-3.0), u64::MAX - 9);
        assert_eq!(top.approx_percentile(7.0), u64::MAX);
        // NaN reads as q = 0.0.
        assert_eq!(top.approx_percentile(f64::NAN), u64::MAX - 9);
    }

    #[test]
    fn merge_adds_counts_and_takes_extremes() {
        let mut a = Histogram::default();
        for v in [1u64, 100, 7] {
            a.record(v);
        }
        let mut b = Histogram::default();
        for v in [0u64, 5000] {
            b.record(v);
        }
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.count, 5);
        assert_eq!(merged.sum, a.sum + b.sum);
        assert_eq!(merged.min, 0);
        assert_eq!(merged.max, 5000);
        for i in 0..BUCKET_COUNT {
            assert_eq!(merged.buckets[i], a.buckets[i] + b.buckets[i]);
        }
        // Empty is the identity on both sides.
        let empty = Histogram::default();
        let mut left = a;
        left.merge(&empty);
        assert_eq!(left.count, a.count);
        assert_eq!((left.min, left.max, left.sum), (a.min, a.max, a.sum));
        let mut right = empty;
        right.merge(&a);
        assert_eq!(right.count, a.count);
        assert_eq!((right.min, right.max, right.sum), (a.min, a.max, a.sum));
    }

    #[test]
    fn merge_saturates_sum_instead_of_overflowing() {
        let mut a = Histogram::default();
        a.record(u64::MAX);
        let mut b = Histogram::default();
        b.record(u64::MAX);
        a.merge(&b);
        assert_eq!(a.sum, u64::MAX);
        assert_eq!(a.count, 2);
    }
}
