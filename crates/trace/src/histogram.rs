//! Power-of-two bucket histograms.
//!
//! Bucket `0` holds only the value `0`; bucket `b` (1..=64) holds the
//! range `[2^(b-1), 2^b - 1]`. That gives fixed memory, O(1) record,
//! and enough resolution to answer "are datastream objects tens of
//! bytes or tens of kilobytes" — the kind of question the summary
//! exporter is for.

/// Number of buckets: one for zero plus one per bit of a `u64`.
pub const BUCKET_COUNT: usize = 65;

/// Bucket index for `value` (log2 buckets, zero gets its own bucket).
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Smallest value that lands in bucket `index`.
pub fn bucket_lower_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

/// A log2-bucket histogram with running count/sum/min/max.
#[derive(Debug, Clone, Copy)]
pub struct Histogram {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Per-bucket counts; see [`bucket_index`].
    pub buckets: [u64; BUCKET_COUNT],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; BUCKET_COUNT],
        }
    }
}

impl Histogram {
    /// Records one value.
    pub fn record(&mut self, value: u64) {
        if self.count == 0 || value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Arithmetic mean of recorded values, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate `q`-quantile (`q` in `0.0..=1.0`): the lower bound of
    /// the bucket holding the ceil(q·count)-th smallest value, clamped
    /// into `[min, max]`. Resolution is the log2 bucket width — good
    /// enough for "is p99 frame latency microseconds or milliseconds",
    /// which is what the serve-layer histograms ask.
    pub fn approx_percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_lower_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Index of the highest non-empty bucket, if any value was recorded.
    pub fn top_bucket(&self) -> Option<usize> {
        self.buckets
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &n)| n > 0)
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        for b in 1..BUCKET_COUNT {
            let lo = bucket_lower_bound(b);
            assert_eq!(bucket_index(lo), b, "lower bound of bucket {b}");
            assert_eq!(bucket_index(lo - 1), b - 1, "below bucket {b}");
        }
    }

    #[test]
    fn running_stats_track_min_max_mean() {
        let mut h = Histogram::default();
        for v in [5u64, 1, 9] {
            h.record(v);
        }
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 9);
        assert!((h.mean() - 5.0).abs() < 1e-9);
        assert_eq!(h.top_bucket(), Some(bucket_index(9)));
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::default();
        assert_eq!(h.count, 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.top_bucket(), None);
        assert_eq!(h.approx_percentile(0.99), 0);
    }

    #[test]
    fn percentiles_land_in_the_right_bucket() {
        let mut h = Histogram::default();
        // 99 values near 100 (bucket [64,127]), one outlier at 10_000.
        for _ in 0..99 {
            h.record(100);
        }
        h.record(10_000);
        let p50 = h.approx_percentile(0.50);
        assert!((64..=127).contains(&p50), "p50 = {p50}");
        let p99 = h.approx_percentile(0.99);
        assert!((64..=127).contains(&p99), "p99 = {p99}");
        // p100 must reach the outlier's bucket (lower bound 8192),
        // clamped no higher than the recorded max.
        let p100 = h.approx_percentile(1.0);
        assert!((8192..=10_000).contains(&p100), "p100 = {p100}");
        // min/max clamping: a single value reports itself everywhere.
        let mut one = Histogram::default();
        one.record(37);
        assert_eq!(one.approx_percentile(0.5), 37);
    }
}
