//! Per-frame latency attribution.
//!
//! A served frame passes through six stages: wire **decode**, event
//! **apply** (posting + dispatch), **settle** (flushing change records
//! and notifications to quiescence, paper §2), **paint** (the update
//! pass), **diff** (damage banding / frame assembly), and **ship**
//! (encode + socket write). A [`FrameTrace`] rides along with one
//! input batch and stamps each stage on the owning collector's clock;
//! [`FrameTrace::finish`] folds the stamps into per-stage histograms
//! (`serve.stage_us.*`) and returns a [`FrameRecord`] for the
//! session's [`FrameLog`] ring.
//!
//! Because the manual [`Clock`](crate::Clock) auto-steps on every
//! read, stage durations are fully deterministic under it — which is
//! what makes the SLO watchdog's slow-frame dumps golden-testable.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::collector::Collector;

/// Number of attributed pipeline stages.
pub const STAGE_COUNT: usize = 6;

/// One stage of the served-frame pipeline, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Wire-frame decode of the input batch.
    Decode,
    /// Event posting and dispatch through the interaction manager.
    Apply,
    /// Change-record and notification flush to quiescence (paper §2's
    /// notify/update queues draining).
    Settle,
    /// The update pass: damage → draw.
    Paint,
    /// Damage banding / frame assembly (`diff_region` or keyframe
    /// pixel copy).
    Diff,
    /// Encode and socket write of the outgoing frame.
    Ship,
}

impl Stage {
    /// All stages, in pipeline order (also the index order used by
    /// [`FrameRecord::stages`]).
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Decode,
        Stage::Apply,
        Stage::Settle,
        Stage::Paint,
        Stage::Diff,
        Stage::Ship,
    ];

    /// Short lower-case stage name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Decode => "decode",
            Stage::Apply => "apply",
            Stage::Settle => "settle",
            Stage::Paint => "paint",
            Stage::Diff => "diff",
            Stage::Ship => "ship",
        }
    }

    /// Histogram key this stage aggregates under.
    pub fn key(self) -> &'static str {
        match self {
            Stage::Decode => "serve.stage_us.decode",
            Stage::Apply => "serve.stage_us.apply",
            Stage::Settle => "serve.stage_us.settle",
            Stage::Paint => "serve.stage_us.paint",
            Stage::Diff => "serve.stage_us.diff",
            Stage::Ship => "serve.stage_us.ship",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Decode => 0,
            Stage::Apply => 1,
            Stage::Settle => 2,
            Stage::Paint => 3,
            Stage::Diff => 4,
            Stage::Ship => 5,
        }
    }
}

/// Histogram key for the whole-frame duration recorded by
/// [`FrameTrace::finish`] (sum of the six stage durations, so it
/// composes with `serve.stage_us.*` and stays deterministic under the
/// manual clock, unlike the wall-clock `serve.frame_us`).
pub const STAGE_TOTAL_KEY: &str = "serve.stage_us.total";

/// One finished frame's attribution: per-stage microseconds plus the
/// frame's sequence number and start timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameRecord {
    /// Server frame sequence number the trace belongs to.
    pub seq: u64,
    /// Collector-clock timestamp when tracing of this frame began.
    pub start_us: u64,
    /// Sum of the six stage durations.
    pub total_us: u64,
    /// Stage durations indexed in [`Stage::ALL`] order.
    pub stages: [u64; STAGE_COUNT],
}

impl FrameRecord {
    /// Duration attributed to `stage`.
    pub fn stage_us(&self, stage: Stage) -> u64 {
        self.stages[stage.index()]
    }

    /// One-line human-readable breakdown, pipeline order:
    /// `decode 1us | apply 12us | ...`.
    pub fn breakdown(&self) -> String {
        let mut out = String::with_capacity(96);
        for (i, stage) in Stage::ALL.iter().enumerate() {
            if i > 0 {
                out.push_str(" | ");
            }
            out.push_str(stage.name());
            out.push(' ');
            out.push_str(&self.stages[i].to_string());
            out.push_str("us");
        }
        out
    }
}

/// Stage stopwatch for one in-flight frame. Created per input batch,
/// threaded through decode → apply → … → ship, finished once the frame
/// is on the wire. A disabled trace ([`FrameTrace::disabled`], or
/// [`FrameTrace::begin`] on a disabled collector) is inert: every call
/// is a branch on a `None`.
#[derive(Debug)]
pub struct FrameTrace {
    collector: Option<Arc<Collector>>,
    start_us: u64,
    stages: [u64; STAGE_COUNT],
    pending: Option<(Stage, u64)>,
}

impl FrameTrace {
    /// An inert trace that records nothing.
    pub fn disabled() -> FrameTrace {
        FrameTrace {
            collector: None,
            start_us: 0,
            stages: [0; STAGE_COUNT],
            pending: None,
        }
    }

    /// Starts a trace on `collector`'s clock; inert if the collector
    /// is disabled.
    pub fn begin(collector: &Arc<Collector>) -> FrameTrace {
        if !collector.is_enabled() {
            return FrameTrace::disabled();
        }
        FrameTrace {
            start_us: collector.now_us(),
            collector: Some(Arc::clone(collector)),
            stages: [0; STAGE_COUNT],
            pending: None,
        }
    }

    /// True when this trace is actually recording.
    pub fn is_enabled(&self) -> bool {
        self.collector.is_some()
    }

    /// Opens a stage interval; pair with [`FrameTrace::exit`]. If a
    /// stage was already open it is closed first (stages never nest —
    /// the pipeline is sequential).
    pub fn enter(&mut self, stage: Stage) {
        if let Some(c) = &self.collector {
            let now = c.now_us();
            self.close_pending(now);
            self.pending = Some((stage, now));
        }
    }

    /// Closes the currently open stage interval, adding its duration
    /// to that stage's accumulator. No-op when nothing is open.
    pub fn exit(&mut self) {
        if let Some(c) = &self.collector {
            let now = c.now_us();
            self.close_pending(now);
        }
    }

    fn close_pending(&mut self, now: u64) {
        if let Some((stage, t0)) = self.pending.take() {
            self.stages[stage.index()] += now.saturating_sub(t0);
        }
    }

    /// Runs `f` attributed to `stage` (enter/exit around the call).
    pub fn measure<R>(&mut self, stage: Stage, f: impl FnOnce() -> R) -> R {
        self.enter(stage);
        let out = f();
        self.exit();
        out
    }

    /// Adds `us` directly to `stage` (for durations measured
    /// externally).
    pub fn add_us(&mut self, stage: Stage, us: u64) {
        if self.collector.is_some() {
            self.stages[stage.index()] += us;
        }
    }

    /// Finishes the frame: records each stage duration into its
    /// `serve.stage_us.*` histogram plus the total under
    /// [`STAGE_TOTAL_KEY`], and returns the [`FrameRecord`]. Returns
    /// `None` for an inert trace.
    pub fn finish(mut self, seq: u64) -> Option<FrameRecord> {
        let c = self.collector.take()?;
        if let Some((stage, t0)) = self.pending.take() {
            let now = c.now_us();
            self.stages[stage.index()] += now.saturating_sub(t0);
        }
        let total: u64 = self.stages.iter().sum();
        for stage in Stage::ALL {
            c.observe(stage.key(), self.stages[stage.index()]);
        }
        c.observe(STAGE_TOTAL_KEY, total);
        Some(FrameRecord {
            seq,
            start_us: self.start_us,
            total_us: total,
            stages: self.stages,
        })
    }
}

/// Fixed-capacity overwrite-oldest ring of recent [`FrameRecord`]s —
/// the per-session frame history behind the stats plane.
#[derive(Debug)]
pub struct FrameLog {
    buf: VecDeque<FrameRecord>,
    cap: usize,
    /// Frames pushed since creation (including overwritten ones).
    total: u64,
}

impl FrameLog {
    /// A ring holding the most recent `cap` frames (min 1).
    pub fn new(cap: usize) -> FrameLog {
        FrameLog {
            buf: VecDeque::with_capacity(cap.max(1)),
            cap: cap.max(1),
            total: 0,
        }
    }

    /// Appends a record, evicting the oldest once full.
    pub fn push(&mut self, rec: FrameRecord) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(rec);
        self.total += 1;
    }

    /// Retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &FrameRecord> {
        self.buf.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Frames ever pushed, including evicted ones.
    pub fn total_pushed(&self) -> u64 {
        self.total
    }
}

/// Shared sink for SLO-violation dumps. Sessions push formatted
/// slow-frame entries; the server (or a test) reads them back. Keeps
/// the most recent `cap` entries and counts the rest; optionally
/// echoes each entry to stderr for `served` console use.
#[derive(Debug)]
pub struct SlowFrameLog {
    inner: Mutex<SlowInner>,
    echo: AtomicBool,
}

#[derive(Debug)]
struct SlowInner {
    entries: VecDeque<String>,
    cap: usize,
    total: u64,
}

impl SlowFrameLog {
    /// A log retaining the most recent `cap` entries (min 1).
    pub fn new(cap: usize) -> SlowFrameLog {
        SlowFrameLog {
            inner: Mutex::new(SlowInner {
                entries: VecDeque::with_capacity(cap.max(1)),
                cap: cap.max(1),
                total: 0,
            }),
            echo: AtomicBool::new(false),
        }
    }

    /// When on, every pushed entry is also written to stderr.
    pub fn set_echo(&self, on: bool) {
        self.echo.store(on, Ordering::Relaxed);
    }

    /// Appends one formatted slow-frame entry.
    pub fn push(&self, entry: String) {
        if self.echo.load(Ordering::Relaxed) {
            eprintln!("{entry}");
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.entries.len() == inner.cap {
            inner.entries.pop_front();
        }
        inner.entries.push_back(entry);
        inner.total += 1;
    }

    /// Retained entries, oldest first.
    pub fn entries(&self) -> Vec<String> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entries
            .iter()
            .cloned()
            .collect()
    }

    /// Entries ever pushed, including evicted ones.
    pub fn total_pushed(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manual() -> Arc<Collector> {
        let c = Arc::new(Collector::new());
        c.enable();
        c.set_manual_clock(0, 1);
        c
    }

    #[test]
    fn disabled_trace_is_inert() {
        let mut ft = FrameTrace::disabled();
        assert!(!ft.is_enabled());
        ft.enter(Stage::Apply);
        ft.exit();
        ft.add_us(Stage::Paint, 99);
        assert!(ft.finish(0).is_none());

        let off = Arc::new(Collector::new());
        let ft = FrameTrace::begin(&off);
        assert!(!ft.is_enabled());
    }

    #[test]
    fn stages_accumulate_deterministically_under_manual_clock() {
        let c = manual();
        let run = |c: &Arc<Collector>| {
            let mut ft = FrameTrace::begin(c);
            ft.measure(Stage::Decode, || {});
            ft.enter(Stage::Apply);
            c.advance_clock_us(10);
            ft.exit();
            ft.measure(Stage::Paint, || c.advance_clock_us(5));
            ft.add_us(Stage::Ship, 3);
            ft.finish(7).unwrap()
        };
        let a = run(&c);
        let b = run(&c);
        // Identical stage durations on both runs: the manual clock
        // auto-step makes attribution reproducible.
        assert_eq!(a.stages, b.stages);
        assert_eq!(a.seq, 7);
        // enter/exit bracket one auto-step: decode takes exactly the
        // step (1us); apply adds the explicit 10us advance.
        assert_eq!(a.stage_us(Stage::Decode), 1);
        assert_eq!(a.stage_us(Stage::Apply), 11);
        assert_eq!(a.stage_us(Stage::Paint), 6);
        assert_eq!(a.stage_us(Stage::Ship), 3);
        assert_eq!(a.stage_us(Stage::Settle), 0);
        assert_eq!(a.total_us, a.stages.iter().sum::<u64>());
        // finish() fed the per-stage histograms.
        let snap = c.snapshot();
        assert_eq!(snap.histogram("serve.stage_us.decode").unwrap().count, 2);
        assert_eq!(snap.histogram(STAGE_TOTAL_KEY).unwrap().count, 2);
        assert_eq!(snap.histogram("serve.stage_us.apply").unwrap().min, 11);
    }

    #[test]
    fn entering_a_stage_closes_the_previous_one() {
        let c = manual();
        let mut ft = FrameTrace::begin(&c);
        ft.enter(Stage::Apply);
        c.advance_clock_us(4);
        ft.enter(Stage::Settle); // implicit exit of Apply
        c.advance_clock_us(2);
        let rec = ft.finish(0).unwrap(); // implicit exit of Settle
        assert!(rec.stage_us(Stage::Apply) >= 4);
        assert!(rec.stage_us(Stage::Settle) >= 2);
    }

    #[test]
    fn breakdown_lists_all_stages_in_order() {
        let rec = FrameRecord {
            seq: 1,
            start_us: 0,
            total_us: 21,
            stages: [1, 2, 3, 4, 5, 6],
        };
        assert_eq!(
            rec.breakdown(),
            "decode 1us | apply 2us | settle 3us | paint 4us | diff 5us | ship 6us"
        );
    }

    #[test]
    fn frame_log_overwrites_oldest() {
        let mut log = FrameLog::new(2);
        assert!(log.is_empty());
        for seq in 0..5u64 {
            log.push(FrameRecord {
                seq,
                start_us: 0,
                total_us: 0,
                stages: [0; STAGE_COUNT],
            });
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.total_pushed(), 5);
        let seqs: Vec<u64> = log.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
    }

    #[test]
    fn slow_frame_log_retains_most_recent() {
        let log = SlowFrameLog::new(2);
        log.push("a".into());
        log.push("b".into());
        log.push("c".into());
        assert_eq!(log.entries(), vec!["b".to_string(), "c".to_string()]);
        assert_eq!(log.total_pushed(), 3);
    }
}
