//! Time sources for the collector.
//!
//! Spans need timestamps, but the toolkit's tests run on the `World`
//! virtual clock and must be deterministic. The collector therefore
//! reads time through [`Clock`], which is either anchored wall time
//! (microseconds since collector creation) or a manual counter that the
//! embedder advances in lock-step with the virtual clock. The manual
//! clock auto-steps on every read so that even back-to-back span
//! open/close pairs get non-zero, strictly increasing durations.

use std::time::Instant;

/// A monotonic microsecond time source.
#[derive(Debug, Clone)]
pub enum Clock {
    /// Real elapsed time since the anchor.
    Wall {
        /// Anchor instant; readings are microseconds since it.
        origin: Instant,
    },
    /// Deterministic counter advanced by the embedder.
    Manual {
        /// Current reading in microseconds.
        now_us: u64,
        /// Auto-increment applied after every read (keeps durations
        /// non-zero without explicit advances).
        step_us: u64,
    },
}

impl Clock {
    /// Wall clock anchored at "now".
    pub fn wall() -> Clock {
        Clock::Wall {
            origin: Instant::now(),
        }
    }

    /// Manual clock starting at `start_us`, auto-stepping by `step_us`
    /// per reading.
    pub fn manual(start_us: u64, step_us: u64) -> Clock {
        Clock::Manual {
            now_us: start_us,
            step_us,
        }
    }

    /// Current reading in microseconds. Manual clocks auto-step.
    pub fn now_us(&mut self) -> u64 {
        match self {
            Clock::Wall { origin } => origin.elapsed().as_micros() as u64,
            Clock::Manual { now_us, step_us } => {
                let t = *now_us;
                *now_us = now_us.saturating_add(*step_us);
                t
            }
        }
    }

    /// Advances a manual clock by `delta_us`; no-op on a wall clock.
    pub fn advance_us(&mut self, delta_us: u64) {
        if let Clock::Manual { now_us, .. } = self {
            *now_us = now_us.saturating_add(delta_us);
        }
    }

    /// True for [`Clock::Manual`].
    pub fn is_manual(&self) -> bool {
        matches!(self, Clock::Manual { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::Clock;

    #[test]
    fn manual_clock_auto_steps() {
        let mut c = Clock::manual(100, 3);
        assert_eq!(c.now_us(), 100);
        assert_eq!(c.now_us(), 103);
        c.advance_us(1000);
        assert_eq!(c.now_us(), 1106);
        assert!(c.is_manual());
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let mut c = Clock::wall();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
        c.advance_us(1_000_000); // no-op
        assert!(c.now_us() < 1_000_000 + a + 1_000_000);
    }
}
