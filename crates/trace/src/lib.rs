//! atk-trace: structured tracing and metrics for the toolkit.
//!
//! The Andrew Toolkit's performance story lives in its update pipeline:
//! data objects mutate, change records queue, notifications flush,
//! damage propagates up the view tree, and one update pass walks back
//! down (paper §2–3). This crate makes that pipeline observable without
//! perturbing it:
//!
//! * **Counters, gauges, histograms** — named metrics behind a single
//!   [`Collector`], reachable as a process-wide [`global()`] instance
//!   or injected per `World` for isolated tests.
//! * **Spans** — RAII guards ([`Collector::span`]) that record nested
//!   begin/end intervals into a fixed-capacity ring buffer; no
//!   allocation on the hot path, oldest records overwritten on wrap.
//! * **Determinism** — timestamps come from a [`Clock`] that is either
//!   wall time or a manual counter advanced with the `World` virtual
//!   clock, so tests see identical traces on every run.
//! * **Exporters** — [`chrome_trace_json`] for `chrome://tracing` /
//!   Perfetto, [`text_summary`] for terminals.
//!
//! A disabled collector (the default) costs one relaxed atomic load per
//! instrumentation site, which keeps the instrumented toolkit within
//! noise of the un-instrumented one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod collector;
mod export;
mod frame;
mod histogram;

pub use clock::Clock;
pub use collector::{Collector, Snapshot, SpanGuard, SpanRecord, DEFAULT_SPAN_CAPACITY};
pub use export::{
    chrome_trace_json, chrome_trace_json_multi, snapshot_json, text_summary, validate_json,
};
pub use frame::{
    FrameLog, FrameRecord, FrameTrace, SlowFrameLog, Stage, STAGE_COUNT, STAGE_TOTAL_KEY,
};
pub use histogram::{bucket_index, bucket_lower_bound, Histogram, BUCKET_COUNT};

use std::sync::{Arc, OnceLock};

/// The process-wide collector. Disabled until something calls
/// `global().enable()`; `World`s default to it unless given their own.
pub fn global() -> Arc<Collector> {
    static GLOBAL: OnceLock<Arc<Collector>> = OnceLock::new();
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(Collector::new())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_is_shared_and_starts_disabled() {
        let a = global();
        let b = global();
        assert!(Arc::ptr_eq(&a, &b));
        // Don't enable or mutate it here: unit tests share the process
        // and must not observe each other's metrics.
    }
}
