//! The metric and span collector.
//!
//! One [`Collector`] instance gathers everything the toolkit reports
//! about an update cycle: named counters and gauges, log2 histograms,
//! and a fixed-capacity ring of completed [`SpanRecord`]s. The
//! collector starts *disabled*; every recording entry point checks a
//! single relaxed atomic first, so an idle collector costs one load and
//! a branch. Metric keys are `&'static str`, the span ring and open
//! stack are pre-allocated, and counter/histogram tables are keyed by
//! static strings — after warm-up the hot path performs no allocation.
//!
//! Spans are RAII: [`Collector::span`] pushes an open frame and returns
//! a [`SpanGuard`]; dropping the guard pops the frame, stamps the
//! duration, records it under the span's name in a histogram, and
//! appends the completed record to the ring (overwriting the oldest
//! record once full). Nesting comes for free from guard drop order.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::clock::Clock;
use crate::histogram::Histogram;

/// Default capacity of the completed-span ring buffer.
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;

/// A completed span, as stored in the ring buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static span name, e.g. `"world.flush_notifications"`.
    pub name: &'static str,
    /// Open timestamp in collector microseconds.
    pub start_us: u64,
    /// Close minus open timestamp.
    pub dur_us: u64,
    /// Nesting depth at open time (0 = top level).
    pub depth: u16,
    /// Monotonic open sequence number, unique per collector.
    pub seq: u64,
    /// `seq` of the enclosing open span, if any.
    pub parent: Option<u64>,
}

#[derive(Debug)]
struct OpenSpan {
    name: &'static str,
    start_us: u64,
    seq: u64,
    parent: Option<u64>,
    depth: u16,
}

/// Fixed-capacity overwrite-oldest buffer of completed spans.
#[derive(Debug)]
struct Ring {
    buf: Vec<SpanRecord>,
    cap: usize,
    /// Index of the oldest record once the buffer has wrapped.
    start: usize,
    /// Completed spans discarded because the ring was full.
    dropped: u64,
}

impl Ring {
    fn new(cap: usize) -> Ring {
        Ring {
            buf: Vec::with_capacity(cap),
            cap: cap.max(1),
            start: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, rec: SpanRecord) {
        if self.buf.len() < self.cap {
            self.buf.push(rec);
        } else {
            self.buf[self.start] = rec;
            self.start = (self.start + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Records in completion order, oldest first.
    fn in_order(&self) -> Vec<SpanRecord> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.start..]);
        out.extend_from_slice(&self.buf[..self.start]);
        out
    }
}

#[derive(Debug)]
struct Inner {
    clock: Clock,
    counters: HashMap<&'static str, u64>,
    gauges: HashMap<&'static str, i64>,
    histograms: HashMap<&'static str, Histogram>,
    open: Vec<OpenSpan>,
    ring: Ring,
}

/// An immutable copy of a collector's state, for exporters and tests.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counters, sorted by key.
    pub counters: Vec<(&'static str, u64)>,
    /// Gauges, sorted by key.
    pub gauges: Vec<(&'static str, i64)>,
    /// Histograms (including per-span-name duration histograms),
    /// sorted by key.
    pub histograms: Vec<(&'static str, Histogram)>,
    /// Completed spans in completion order, oldest first.
    pub spans: Vec<SpanRecord>,
    /// Spans discarded because the ring wrapped.
    pub dropped_spans: u64,
    /// Spans open (guard still live) at snapshot time.
    pub open_spans: usize,
}

impl Snapshot {
    /// Counter value, 0 when absent.
    pub fn counter(&self, key: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| *k == key)
            .map_or(0, |(_, v)| *v)
    }

    /// Gauge value, if set.
    pub fn gauge(&self, key: &str) -> Option<i64> {
        self.gauges.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    /// Histogram under `key`, if any value was observed.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, h)| h)
    }

    /// Completed spans named `name`, in completion order.
    pub fn spans_named(&self, name: &str) -> Vec<SpanRecord> {
        self.spans
            .iter()
            .copied()
            .filter(|s| s.name == name)
            .collect()
    }

    /// Returns a copy with the span ring emptied (dropped/open counts
    /// kept). Used when folding retired per-session collectors into a
    /// long-lived accumulator, where keeping every span would grow
    /// without bound.
    pub fn without_spans(&self) -> Snapshot {
        let mut out = self.clone();
        out.spans.clear();
        out
    }

    /// Folds `other` into `self`: counters and gauges with the same key
    /// add (a gauge is treated as a per-part level, so the merged value
    /// is the total across parts — e.g. active sessions server-wide),
    /// histograms [`Histogram::merge`], spans concatenate and re-sort
    /// by start timestamp, and dropped/open span counts add.
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in &other.counters {
            match self.counters.binary_search_by_key(k, |(sk, _)| *sk) {
                Ok(i) => self.counters[i].1 += v,
                Err(i) => self.counters.insert(i, (*k, *v)),
            }
        }
        for (k, v) in &other.gauges {
            match self.gauges.binary_search_by_key(k, |(sk, _)| *sk) {
                Ok(i) => self.gauges[i].1 += v,
                Err(i) => self.gauges.insert(i, (*k, *v)),
            }
        }
        for (k, h) in &other.histograms {
            match self.histograms.binary_search_by_key(k, |(sk, _)| *sk) {
                Ok(i) => self.histograms[i].1.merge(h),
                Err(i) => self.histograms.insert(i, (*k, *h)),
            }
        }
        self.spans.extend_from_slice(&other.spans);
        self.spans.sort_by_key(|s| s.start_us);
        self.dropped_spans += other.dropped_spans;
        self.open_spans += other.open_spans;
    }

    /// Merges every snapshot in `parts` into one, left to right.
    pub fn merge_all<'a, I>(parts: I) -> Snapshot
    where
        I: IntoIterator<Item = &'a Snapshot>,
    {
        let mut out = Snapshot::default();
        for part in parts {
            out.merge(part);
        }
        out
    }
}

/// Collects counters, gauges, histograms, and spans. See module docs.
#[derive(Debug)]
pub struct Collector {
    enabled: AtomicBool,
    seq: AtomicU64,
    inner: Mutex<Inner>,
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

impl Collector {
    /// A disabled collector on the wall clock with the default ring
    /// capacity.
    pub fn new() -> Collector {
        Collector::with_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// A disabled collector with a ring of `capacity` spans.
    pub fn with_capacity(capacity: usize) -> Collector {
        Collector {
            enabled: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            inner: Mutex::new(Inner {
                clock: Clock::wall(),
                counters: HashMap::with_capacity(32),
                gauges: HashMap::with_capacity(8),
                histograms: HashMap::with_capacity(32),
                open: Vec::with_capacity(32),
                ring: Ring::new(capacity),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panic while holding the lock poisons it; the collector's
        // data is still structurally sound, so keep collecting.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// True when recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off. Off is the default and costs one
    /// atomic load per entry point.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Shorthand for `set_enabled(true)`.
    pub fn enable(&self) {
        self.set_enabled(true);
    }

    /// Replaces the time source with a deterministic manual clock.
    /// `step_us` is auto-added after every reading so adjacent
    /// timestamps differ; pass at least 1 for non-zero durations.
    pub fn set_manual_clock(&self, start_us: u64, step_us: u64) {
        self.lock().clock = Clock::manual(start_us, step_us);
    }

    /// Advances a manual clock (e.g. in lock-step with the `World`
    /// virtual clock); no-op on the wall clock.
    pub fn advance_clock_us(&self, delta_us: u64) {
        if !self.is_enabled() {
            return;
        }
        self.lock().clock.advance_us(delta_us);
    }

    /// Reads the collector's clock (microseconds). Manual clocks
    /// auto-step on every read, so back-to-back readings differ by at
    /// least `step_us` — this is what makes frame-stage attribution
    /// deterministic in tests. Returns 0 when the collector is
    /// disabled.
    pub fn now_us(&self) -> u64 {
        if !self.is_enabled() {
            return 0;
        }
        self.lock().clock.now_us()
    }

    /// Adds `n` to the counter `key`.
    pub fn count(&self, key: &'static str, n: u64) {
        if !self.is_enabled() {
            return;
        }
        *self.lock().counters.entry(key).or_insert(0) += n;
    }

    /// Sets the gauge `key` to `value`.
    pub fn gauge(&self, key: &'static str, value: i64) {
        if !self.is_enabled() {
            return;
        }
        self.lock().gauges.insert(key, value);
    }

    /// Records `value` into the histogram `key`.
    pub fn observe(&self, key: &'static str, value: u64) {
        if !self.is_enabled() {
            return;
        }
        self.lock().histograms.entry(key).or_default().record(value);
    }

    /// Opens a span; dropping the returned guard closes it. When the
    /// collector is disabled this returns an inert guard without
    /// touching the lock.
    pub fn span(self: &Arc<Self>, name: &'static str) -> SpanGuard {
        if !self.is_enabled() {
            return SpanGuard {
                owner: None,
                seq: 0,
            };
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.lock();
        let start_us = inner.clock.now_us();
        let parent = inner.open.last().map(|o| o.seq);
        let depth = inner.open.len() as u16;
        inner.open.push(OpenSpan {
            name,
            start_us,
            seq,
            parent,
            depth,
        });
        SpanGuard {
            owner: Some(Arc::clone(self)),
            seq,
        }
    }

    fn close_span(&self, seq: u64) {
        let mut inner = self.lock();
        let Some(pos) = inner.open.iter().rposition(|o| o.seq == seq) else {
            return; // reset() ran while the guard was live
        };
        let end_us = inner.clock.now_us();
        // Guards drop LIFO, so everything above `pos` (if anything) is
        // a leaked child; close it with the same end timestamp.
        while inner.open.len() > pos {
            let open = inner.open.pop().expect("len > pos");
            let rec = SpanRecord {
                name: open.name,
                start_us: open.start_us,
                dur_us: end_us.saturating_sub(open.start_us),
                depth: open.depth,
                seq: open.seq,
                parent: open.parent,
            };
            inner
                .histograms
                .entry(open.name)
                .or_default()
                .record(rec.dur_us);
            inner.ring.push(rec);
        }
    }

    /// Copies out the current state. Open spans are not included in
    /// `spans` (they have no duration yet) but are counted.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        let mut counters: Vec<_> = inner.counters.iter().map(|(k, v)| (*k, *v)).collect();
        counters.sort_unstable_by_key(|(k, _)| *k);
        let mut gauges: Vec<_> = inner.gauges.iter().map(|(k, v)| (*k, *v)).collect();
        gauges.sort_unstable_by_key(|(k, _)| *k);
        let mut histograms: Vec<_> = inner.histograms.iter().map(|(k, v)| (*k, *v)).collect();
        histograms.sort_unstable_by_key(|(k, _)| *k);
        Snapshot {
            counters,
            gauges,
            histograms,
            spans: inner.ring.in_order(),
            dropped_spans: inner.ring.dropped,
            open_spans: inner.open.len(),
        }
    }

    /// Clears all recorded data (counters, gauges, histograms, spans,
    /// open stack). Keeps the clock and the enabled flag.
    pub fn reset(&self) {
        let mut inner = self.lock();
        inner.counters.clear();
        inner.gauges.clear();
        inner.histograms.clear();
        inner.open.clear();
        let cap = inner.ring.cap;
        inner.ring = Ring::new(cap);
    }
}

/// RAII handle for an open span; closes it on drop.
#[must_use = "dropping the guard immediately records a zero-length span"]
#[derive(Debug)]
pub struct SpanGuard {
    owner: Option<Arc<Collector>>,
    seq: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(c) = self.owner.take() {
            c.close_span(self.seq);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manual() -> Arc<Collector> {
        let c = Arc::new(Collector::new());
        c.enable();
        c.set_manual_clock(0, 1);
        c
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let c = Arc::new(Collector::new());
        c.count("k", 3);
        c.observe("h", 9);
        drop(c.span("s"));
        let snap = c.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let c = manual();
        c.count("a", 2);
        c.count("a", 3);
        c.gauge("g", -7);
        c.gauge("g", 11);
        let snap = c.snapshot();
        assert_eq!(snap.counter("a"), 5);
        assert_eq!(snap.gauge("g"), Some(11));
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn span_durations_use_manual_clock() {
        let c = manual();
        {
            let _outer = c.span("outer");
            c.advance_clock_us(100);
            let _inner = c.span("inner");
            c.advance_clock_us(40);
        }
        let snap = c.snapshot();
        assert_eq!(snap.spans.len(), 2);
        let inner = snap.spans_named("inner")[0];
        let outer = snap.spans_named("outer")[0];
        assert_eq!(inner.parent, Some(outer.seq));
        assert_eq!(inner.depth, 1);
        assert_eq!(outer.depth, 0);
        assert!(inner.dur_us >= 40);
        assert!(outer.dur_us > inner.dur_us);
        // Durations are also mirrored into per-name histograms.
        assert_eq!(snap.histogram("outer").unwrap().count, 1);
    }

    #[test]
    fn snapshot_merge_adds_and_interleaves() {
        let a = manual();
        a.count("shared", 2);
        a.count("only_a", 1);
        a.gauge("g", 3);
        a.observe("h", 10);
        drop(a.span("sa"));
        let b = manual();
        b.count("shared", 5);
        b.gauge("g", 4);
        b.observe("h", 20);
        drop(b.span("sb"));
        let sa = a.snapshot();
        let sb = b.snapshot();
        let m = Snapshot::merge_all([&sa, &sb]);
        assert_eq!(m.counter("shared"), 7);
        assert_eq!(m.counter("only_a"), 1);
        assert_eq!(m.gauge("g"), Some(7));
        let h = m.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 30);
        assert_eq!(m.spans.len(), 2);
        assert!(m.spans.windows(2).all(|w| w[0].start_us <= w[1].start_us));
        // Merged counters stay sorted so later merges keep working.
        assert!(m.counters.windows(2).all(|w| w[0].0 <= w[1].0));
        // without_spans strips the ring but keeps the tallies.
        let stripped = sa.without_spans();
        assert!(stripped.spans.is_empty());
        assert_eq!(stripped.counter("shared"), 2);
    }

    #[test]
    fn now_us_reads_the_manual_clock() {
        let c = manual();
        let t0 = c.now_us();
        let t1 = c.now_us();
        assert!(t1 > t0);
        let off = Arc::new(Collector::new());
        assert_eq!(off.now_us(), 0);
    }

    #[test]
    fn reset_clears_everything() {
        let c = manual();
        c.count("a", 1);
        drop(c.span("s"));
        c.reset();
        let snap = c.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.spans.is_empty());
        assert_eq!(snap.dropped_spans, 0);
    }
}
