//! Black-box tests of the atk-trace public API: ring wraparound, span
//! nesting, histogram bucket edges, and a golden Chrome-trace export
//! (deterministic under the manual clock, validated with a minimal
//! hand-rolled JSON parser — the crate has no serde).

use std::sync::Arc;

use atk_trace::{bucket_index, chrome_trace_json, Collector};

fn manual(capacity: usize) -> Arc<Collector> {
    let c = Arc::new(Collector::with_capacity(capacity));
    c.enable();
    c.set_manual_clock(100, 10);
    c
}

// --- ring buffer -----------------------------------------------------------

#[test]
fn ring_wraparound_keeps_the_newest_spans() {
    let c = manual(4);
    let names: [&'static str; 10] = ["s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9"];
    for name in names {
        drop(c.span(name));
    }
    let snap = c.snapshot();
    assert_eq!(snap.spans.len(), 4, "ring holds exactly its capacity");
    assert_eq!(snap.dropped_spans, 6);
    let kept: Vec<&str> = snap.spans.iter().map(|s| s.name).collect();
    assert_eq!(kept, ["s6", "s7", "s8", "s9"], "oldest overwritten first");
    // Completion order is preserved across the wrap point.
    for pair in snap.spans.windows(2) {
        assert!(pair[0].seq < pair[1].seq);
    }
}

#[test]
fn wraparound_spans_keep_their_timestamps() {
    let c = manual(2);
    for name in ["a", "b", "c"] {
        drop(c.span(name));
    }
    let snap = c.snapshot();
    // Manual clock: open/close per span = 2 readings, step 10.
    let b = snap.spans_named("b")[0];
    let cc = snap.spans_named("c")[0];
    assert_eq!(b.start_us, 120);
    assert_eq!(cc.start_us, 140);
    assert_eq!(b.dur_us, 10);
    assert_eq!(cc.dur_us, 10);
}

// --- nesting ---------------------------------------------------------------

#[test]
fn nested_spans_record_parentage_and_depth() {
    let c = manual(16);
    {
        let _outer = c.span("outer");
        {
            let _mid = c.span("mid");
            drop(c.span("leaf"));
        }
        drop(c.span("second_leaf"));
    }
    let snap = c.snapshot();
    let outer = snap.spans_named("outer")[0];
    let mid = snap.spans_named("mid")[0];
    let leaf = snap.spans_named("leaf")[0];
    let second = snap.spans_named("second_leaf")[0];
    assert_eq!(outer.depth, 0);
    assert_eq!(outer.parent, None);
    assert_eq!(mid.depth, 1);
    assert_eq!(mid.parent, Some(outer.seq));
    assert_eq!(leaf.depth, 2);
    assert_eq!(leaf.parent, Some(mid.seq));
    assert_eq!(second.depth, 1);
    assert_eq!(second.parent, Some(outer.seq));
    // Children complete before (and fit inside) their parents.
    assert!(leaf.start_us >= mid.start_us);
    assert!(leaf.start_us + leaf.dur_us <= mid.start_us + mid.dur_us);
    assert!(mid.start_us + mid.dur_us <= outer.start_us + outer.dur_us);
}

#[test]
fn leaked_child_is_closed_with_its_parent() {
    let c = manual(16);
    let parent = c.span("parent");
    let child = c.span("child");
    drop(parent); // out of order: the child guard is still live
    drop(child); // no-op; the parent close already swept it
    let snap = c.snapshot();
    assert_eq!(snap.spans.len(), 2);
    assert_eq!(snap.open_spans, 0);
    let p = snap.spans_named("parent")[0];
    let ch = snap.spans_named("child")[0];
    assert_eq!(ch.parent, Some(p.seq));
    // Both were stamped with the same end timestamp.
    assert_eq!(p.start_us + p.dur_us, ch.start_us + ch.dur_us);
}

// --- histograms ------------------------------------------------------------

#[test]
fn observe_lands_values_on_log2_bucket_boundaries() {
    let c = manual(16);
    for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
        c.observe("h", v);
    }
    let snap = c.snapshot();
    let h = snap.histogram("h").expect("histogram recorded");
    assert_eq!(h.count, 10);
    assert_eq!(h.min, 0);
    assert_eq!(h.max, u64::MAX);
    // Bucket 0 = {0}; bucket b = [2^(b-1), 2^b - 1].
    assert_eq!(h.buckets[0], 1); // 0
    assert_eq!(h.buckets[1], 1); // 1
    assert_eq!(h.buckets[2], 2); // 2, 3
    assert_eq!(h.buckets[3], 2); // 4, 7
    assert_eq!(h.buckets[4], 1); // 8
    assert_eq!(h.buckets[10], 1); // 1023
    assert_eq!(h.buckets[11], 1); // 1024
    assert_eq!(h.buckets[64], 1); // u64::MAX
    assert_eq!(bucket_index(1023), 10);
    assert_eq!(bucket_index(1024), 11);
}

#[test]
fn span_durations_feed_the_per_name_histogram() {
    let c = manual(16);
    for _ in 0..3 {
        drop(c.span("tick"));
    }
    let snap = c.snapshot();
    let h = snap.histogram("tick").expect("span-name histogram");
    assert_eq!(h.count, 3);
    assert_eq!(h.min, 10); // one clock step per open/close pair
    assert_eq!(h.max, 10);
}

// --- Chrome export ---------------------------------------------------------

/// The exact bytes the exporter must produce for a two-span, one-counter
/// trace under the manual clock (start 100, step 10). Chrome's JSON
/// object format: X events sorted by ts, then one C sample per counter.
const GOLDEN: &str = concat!(
    "{\"traceEvents\":[\n",
    "{\"name\":\"outer\",\"cat\":\"atk\",\"ph\":\"X\",\"ts\":100,\"dur\":30,",
    "\"pid\":1,\"tid\":1,\"args\":{\"depth\":0,\"seq\":0}},\n",
    "{\"name\":\"inner\",\"cat\":\"atk\",\"ph\":\"X\",\"ts\":110,\"dur\":10,",
    "\"pid\":1,\"tid\":1,\"args\":{\"depth\":1,\"seq\":1}},\n",
    "{\"name\":\"pipeline.events\",\"cat\":\"atk\",\"ph\":\"C\",\"ts\":130,",
    "\"pid\":1,\"args\":{\"value\":7}}\n",
    "],\"displayTimeUnit\":\"ms\"}\n",
);

#[test]
fn chrome_export_matches_the_golden_file() {
    let c = manual(16);
    {
        let _outer = c.span("outer");
        drop(c.span("inner"));
    }
    c.count("pipeline.events", 7);
    assert_eq!(chrome_trace_json(&c.snapshot()), GOLDEN);
}

#[test]
fn chrome_export_is_valid_json_with_monotonic_ts() {
    let c = manual(64);
    // A busier trace: nesting, a wrapped name with escapes, counters.
    for round in 0..5 {
        let _outer = c.span("frame");
        drop(c.span("inner \"quoted\"\n"));
        c.count("events", round + 1);
        c.observe("latency", round * 3);
    }
    c.gauge("queue", 2);
    let json = chrome_trace_json(&c.snapshot());
    let value = json::parse(&json).expect("exporter output parses as JSON");
    let events = match &value {
        json::Value::Object(fields) => match fields.iter().find(|(k, _)| k == "traceEvents") {
            Some((_, json::Value::Array(items))) => items,
            _ => panic!("missing traceEvents array"),
        },
        _ => panic!("top level is not an object"),
    };
    assert_eq!(events.len(), 10 + 1, "10 X spans + 1 C counter sample");
    let mut last_ts = -1.0f64;
    for ev in events {
        let json::Value::Object(fields) = ev else {
            panic!("event is not an object")
        };
        let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        assert!(matches!(get("name"), Some(json::Value::String(_))));
        let Some(json::Value::Number(ts)) = get("ts") else {
            panic!("event without numeric ts")
        };
        assert!(*ts >= last_ts, "ts must be monotonic: {ts} after {last_ts}");
        last_ts = *ts;
        match get("ph") {
            Some(json::Value::String(ph)) if ph == "X" => {
                assert!(matches!(get("dur"), Some(json::Value::Number(d)) if *d > 0.0));
            }
            Some(json::Value::String(ph)) if ph == "C" => {
                assert!(get("dur").is_none());
            }
            other => panic!("unexpected ph: {other:?}"),
        }
    }
}

/// A minimal recursive-descent JSON reader — enough to prove the
/// exporter's output is well-formed without pulling in a JSON crate.
mod json {
    #[derive(Debug)]
    #[allow(dead_code)] // trace output has no bools/nulls, but JSON does
    pub enum Value {
        Object(Vec<(String, Value)>),
        Array(Vec<Value>),
        String(String),
        Number(f64),
        Bool(bool),
        Null,
    }

    pub fn parse(src: &str) -> Result<Value, String> {
        let bytes = src.as_bytes();
        let mut pos = 0;
        let v = value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
        skip_ws(b, pos);
        if b.get(*pos) == Some(&ch) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at {}", ch as char, pos))
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => Ok(Value::String(string(b, pos)?)),
            Some(b't') => literal(b, pos, "true", Value::Bool(true)),
            Some(b'f') => literal(b, pos, "false", Value::Bool(false)),
            Some(b'n') => literal(b, pos, "null", Value::Null),
            Some(_) => number(b, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at {pos}"))
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            skip_ws(b, pos);
            let key = string(b, pos)?;
            expect(b, pos, b':')?;
            fields.push((key, value(b, pos)?));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected , or }} at {pos}")),
            }
        }
    }

    fn array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected , or ] at {pos}")),
            }
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at {pos}"));
        }
        *pos += 1;
        let mut out = Vec::new();
        while let Some(&ch) = b.get(*pos) {
            *pos += 1;
            match ch {
                b'"' => {
                    return String::from_utf8(out).map_err(|e| e.to_string());
                }
                b'\\' => {
                    let esc = b.get(*pos).ok_or("unterminated escape")?;
                    *pos += 1;
                    match esc {
                        b'"' | b'\\' | b'/' => out.push(*esc),
                        b'n' => out.push(b'\n'),
                        b'r' => out.push(b'\r'),
                        b't' => out.push(b'\t'),
                        b'u' => {
                            let hex =
                                b.get(*pos..*pos + 4)
                                    .ok_or("short \\u escape")
                                    .and_then(|h| {
                                        std::str::from_utf8(h).map_err(|_| "bad \\u escape")
                                    })?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u digits".to_string())?;
                            *pos += 4;
                            let c = char::from_u32(code).ok_or("bad codepoint")?;
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        }
                        _ => return Err(format!("bad escape at {pos}")),
                    }
                }
                _ => out.push(ch),
            }
        }
        Err("unterminated string".into())
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("bad number at {start}"))
    }
}
