//! Property tests for snapshot merging: merged counter totals equal
//! the sum of the parts, histogram bucket tallies are elementwise
//! additive, and merging is associative enough for the server's
//! "retired ⊕ live sessions" accumulation order not to matter.

use std::sync::Arc;

use atk_trace::{Collector, Snapshot, BUCKET_COUNT};
use proptest::prelude::*;

/// Fixed key pool: collector keys are `&'static str` by design.
const KEYS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// One collector's worth of activity: (key index, value) pairs fed to
/// both `count` and `observe` under the same key.
fn arb_part() -> impl Strategy<Value = Vec<(usize, u64)>> {
    proptest::collection::vec((0usize..KEYS.len(), 0u64..1_000_000), 0..24)
}

fn build(part: &[(usize, u64)]) -> Snapshot {
    let c = Arc::new(Collector::new());
    c.enable();
    c.set_manual_clock(0, 1);
    for &(k, v) in part {
        c.count(KEYS[k], v);
        c.observe(KEYS[k], v);
    }
    c.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn merged_counters_equal_sums(a in arb_part(), b in arb_part()) {
        let sa = build(&a);
        let sb = build(&b);
        let m = Snapshot::merge_all([&sa, &sb]);
        for key in KEYS {
            prop_assert_eq!(m.counter(key), sa.counter(key) + sb.counter(key));
        }
    }

    #[test]
    fn merged_histogram_buckets_are_additive(a in arb_part(), b in arb_part()) {
        let sa = build(&a);
        let sb = build(&b);
        let m = Snapshot::merge_all([&sa, &sb]);
        for key in KEYS {
            let empty = atk_trace::Histogram::default();
            let ha = sa.histogram(key).copied().unwrap_or(empty);
            let hb = sb.histogram(key).copied().unwrap_or(empty);
            match m.histogram(key) {
                None => prop_assert_eq!(ha.count + hb.count, 0),
                Some(hm) => {
                    prop_assert_eq!(hm.count, ha.count + hb.count);
                    prop_assert_eq!(hm.sum, ha.sum + hb.sum);
                    for i in 0..BUCKET_COUNT {
                        prop_assert_eq!(hm.buckets[i], ha.buckets[i] + hb.buckets[i]);
                    }
                    if ha.count > 0 && hb.count > 0 {
                        prop_assert_eq!(hm.min, ha.min.min(hb.min));
                        prop_assert_eq!(hm.max, ha.max.max(hb.max));
                    }
                }
            }
        }
    }

    #[test]
    fn merge_order_does_not_change_totals(
        a in arb_part(),
        b in arb_part(),
        c in arb_part(),
    ) {
        let (sa, sb, sc) = (build(&a), build(&b), build(&c));
        let left = Snapshot::merge_all([&sa, &sb, &sc]);
        let mut right = Snapshot::default();
        let mut bc = sb.clone();
        bc.merge(&sc);
        right.merge(&bc);
        right.merge(&sa);
        for key in KEYS {
            prop_assert_eq!(left.counter(key), right.counter(key));
            let lh = left.histogram(key).map(|h| (h.count, h.sum, h.min, h.max));
            let rh = right.histogram(key).map(|h| (h.count, h.sum, h.min, h.max));
            prop_assert_eq!(lh, rh);
        }
    }
}
