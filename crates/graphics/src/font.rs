//! Bitmap fonts and the `fontdesc` model.
//!
//! The toolkit described fonts by *family*, *style*, and *size* (paper §8
//! lists `FontDesc` among the six classes a port must supply). Our
//! simulated window systems share one built-in 5×7 pixel font ("andy",
//! plus the fixed-pitch "andytype"); sizes are integer scalings of the
//! base glyphs and styles are synthesized: bold double-strikes, italic
//! shears, underline draws a rule. That is exactly how period servers
//! synthesized missing styles.
//!
//! Glyphs are defined as ASCII art in `GLYPH_ART` and parsed once into a
//! bitmap table, so the font is inspectable and testable like any other
//! data structure.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use crate::color::Color;
use crate::fb::Raster;
use crate::geom::{Point, Rect};

/// Style flags, combinable via [`FontStyle::union`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct FontStyle {
    /// Double-strike emboldening.
    pub bold: bool,
    /// Sheared (slanted) rendering.
    pub italic: bool,
    /// Underlined.
    pub underline: bool,
}

impl FontStyle {
    /// The plain style.
    pub const PLAIN: FontStyle = FontStyle {
        bold: false,
        italic: false,
        underline: false,
    };
    /// Bold only.
    pub const BOLD: FontStyle = FontStyle {
        bold: true,
        italic: false,
        underline: false,
    };
    /// Italic only.
    pub const ITALIC: FontStyle = FontStyle {
        bold: false,
        italic: true,
        underline: false,
    };
    /// Underline only.
    pub const UNDERLINE: FontStyle = FontStyle {
        bold: false,
        italic: false,
        underline: true,
    };

    /// Combines two styles flag-wise.
    pub fn union(self, other: FontStyle) -> FontStyle {
        FontStyle {
            bold: self.bold || other.bold,
            italic: self.italic || other.italic,
            underline: self.underline || other.underline,
        }
    }
}

/// A font request: family, style, size — the toolkit's `fontdesc`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FontDesc {
    /// Family name; `"andy"` (proportional) and `"andytype"` (fixed) are
    /// built in, unknown families fall back to `"andy"`.
    pub family: String,
    /// Style flags.
    pub style: FontStyle,
    /// Nominal size in points; rendering scale is `max(1, size / 10)`.
    pub size: u32,
}

impl FontDesc {
    /// Creates a descriptor.
    pub fn new(family: &str, style: FontStyle, size: u32) -> FontDesc {
        FontDesc {
            family: family.to_string(),
            style,
            size,
        }
    }

    /// The toolkit's default body font: andy 12 plain.
    pub fn default_body() -> FontDesc {
        FontDesc::new("andy", FontStyle::PLAIN, 12)
    }

    /// The fixed-pitch font used by typescript and code.
    pub fn fixed() -> FontDesc {
        FontDesc::new("andytype", FontStyle::PLAIN, 12)
    }

    /// Integer pixel scale for this size.
    pub fn scale(&self) -> i32 {
        ((self.size / 10).max(1)) as i32
    }

    /// True if the family is fixed-pitch.
    pub fn is_fixed(&self) -> bool {
        self.family == "andytype"
    }

    /// Measured metrics for this descriptor.
    pub fn metrics(&self) -> FontMetrics {
        let s = self.scale();
        FontMetrics {
            ascent: 7 * s,
            descent: 2 * s,
            line_height: 10 * s,
            max_advance: (GLYPH_COLS + 1) * s + if self.style.bold { s } else { 0 },
        }
    }

    /// Advance width of a single character.
    pub fn char_width(&self, ch: char) -> i32 {
        if measure_cache_enabled() {
            return self.width_table().advance(ch);
        }
        self.char_width_uncached(ch)
    }

    /// The advance computed from the glyph table, bypassing the
    /// measurement cache (also the cache's fill path).
    fn char_width_uncached(&self, ch: char) -> i32 {
        let s = self.scale();
        let bold_extra = if self.style.bold { s } else { 0 };
        if self.is_fixed() {
            return (GLYPH_COLS + 1) * s + bold_extra;
        }
        let table = glyph_table();
        let logical = table
            .get(&ch)
            .map(|g| g.logical_width)
            .unwrap_or(GLYPH_COLS);
        (logical + 1) * s + bold_extra
    }

    /// Advance width of a string.
    pub fn string_width(&self, s: &str) -> i32 {
        if measure_cache_enabled() {
            let t = self.width_table();
            return s.chars().map(|c| t.advance(c)).sum();
        }
        s.chars().map(|c| self.char_width_uncached(c)).sum()
    }

    /// The memoized advance table for this descriptor. Layout engines
    /// resolve this once per style run instead of re-measuring every
    /// character through the glyph table; the shared cache makes repeat
    /// lookups (`font.measure_cache_hit`) an array index.
    ///
    /// Always returns a table, even when the cache is disabled via
    /// [`set_measure_cache_enabled`] — disabling only stops *sharing*
    /// (each call rebuilds, counted as `font.measure_cache_miss`), which
    /// is what the E12 cache ablation measures.
    pub fn width_table(&self) -> Arc<WidthTable> {
        if measure_cache_enabled() {
            if let Some(t) = width_cache().read().expect("width cache").get(self) {
                atk_trace::global().count("font.measure_cache_hit", 1);
                return Arc::clone(t);
            }
        }
        atk_trace::global().count("font.measure_cache_miss", 1);
        let t = Arc::new(WidthTable::build(self));
        if measure_cache_enabled() {
            width_cache()
                .write()
                .expect("width cache")
                .entry(self.clone())
                .or_insert_with(|| Arc::clone(&t));
        }
        t
    }
}

/// Memoized per-character advances for one [`FontDesc`]: ASCII is an
/// array index, everything else (all unmapped, rendered as the hollow
/// box) shares one fallback advance.
#[derive(Debug, Clone)]
pub struct WidthTable {
    ascii: [i32; 128],
    fallback: i32,
}

impl WidthTable {
    fn build(desc: &FontDesc) -> WidthTable {
        let mut ascii = [0i32; 128];
        for (code, slot) in ascii.iter_mut().enumerate() {
            *slot = desc.char_width_uncached(code as u8 as char);
        }
        WidthTable {
            ascii,
            // Any char outside the glyph table measures as the full
            // cell; '\u{FFFC}' (the anchor char) lands here too.
            fallback: desc.char_width_uncached('\u{FFFC}'),
        }
    }

    /// The advance of `ch` in this font.
    #[inline]
    pub fn advance(&self, ch: char) -> i32 {
        let c = ch as u32;
        if c < 128 {
            self.ascii[c as usize]
        } else {
            self.fallback
        }
    }
}

static MEASURE_CACHE_ON: AtomicBool = AtomicBool::new(true);

fn measure_cache_enabled() -> bool {
    MEASURE_CACHE_ON.load(Ordering::Relaxed)
}

/// Enables or disables the shared measurement cache (the E12 ablation;
/// it defaults to on). Disabling does not clear entries — re-enabling
/// picks the warm cache back up.
pub fn set_measure_cache_enabled(on: bool) {
    MEASURE_CACHE_ON.store(on, Ordering::Relaxed);
}

fn width_cache() -> &'static RwLock<HashMap<FontDesc, Arc<WidthTable>>> {
    static CACHE: OnceLock<RwLock<HashMap<FontDesc, Arc<WidthTable>>>> = OnceLock::new();
    CACHE.get_or_init(|| RwLock::new(HashMap::new()))
}

impl fmt::Display for FontDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.family, self.size)?;
        if self.style.bold {
            write!(f, "b")?;
        }
        if self.style.italic {
            write!(f, "i")?;
        }
        if self.style.underline {
            write!(f, "u")?;
        }
        Ok(())
    }
}

/// Pixel metrics for a [`FontDesc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FontMetrics {
    /// Pixels above the baseline.
    pub ascent: i32,
    /// Pixels reserved below the baseline.
    pub descent: i32,
    /// Recommended baseline-to-baseline distance.
    pub line_height: i32,
    /// Widest character advance.
    pub max_advance: i32,
}

/// Glyph cell columns in the base bitmap.
pub const GLYPH_COLS: i32 = 5;
/// Glyph cell rows in the base bitmap.
pub const GLYPH_ROWS: i32 = 7;

/// One parsed glyph: 7 rows of 5 bits (MSB = leftmost column).
#[derive(Debug, Clone, Copy)]
pub struct Glyph {
    rows: [u8; GLYPH_ROWS as usize],
    /// Rightmost used column + 1 (for proportional spacing).
    logical_width: i32,
}

impl Glyph {
    /// True if the pixel at `(col, row)` is set.
    pub fn pixel(&self, col: i32, row: i32) -> bool {
        if !(0..GLYPH_COLS).contains(&col) || !(0..GLYPH_ROWS).contains(&row) {
            return false;
        }
        self.rows[row as usize] & (0x10 >> col) != 0
    }
}

/// The built-in font rasterizer shared by all backends.
pub struct BitmapFont;

impl BitmapFont {
    /// Draws `text` with its *top-left* corner at `origin`; returns the
    /// advance in x. Unknown characters render as a hollow box. Generic
    /// over [`Raster`] so a whole framebuffer and a parallel paint band
    /// rasterize glyphs through identical code.
    pub fn draw<R: Raster>(
        fb: &mut R,
        origin: Point,
        text: &str,
        desc: &FontDesc,
        color: Color,
    ) -> i32 {
        let s = desc.scale();
        let mut x = origin.x;
        let table = glyph_table();
        for ch in text.chars() {
            let adv = desc.char_width(ch);
            match table.get(&ch) {
                Some(glyph) => {
                    Self::draw_glyph(fb, Point::new(x, origin.y), glyph, desc, color);
                }
                None if ch == ' ' => {}
                None => {
                    // Hollow box for unmapped characters.
                    fb.draw_rect(Rect::new(x, origin.y, adv - s, GLYPH_ROWS * s), color);
                }
            }
            if desc.style.underline {
                fb.fill_rect(
                    Rect::new(x, origin.y + (GLYPH_ROWS + 1) * s, adv, s.max(1)),
                    color,
                );
            }
            x += adv;
        }
        x - origin.x
    }

    /// Draws `text` with the *baseline* at `baseline_origin.y`.
    pub fn draw_baseline<R: Raster>(
        fb: &mut R,
        baseline_origin: Point,
        text: &str,
        desc: &FontDesc,
        color: Color,
    ) -> i32 {
        let top = Point::new(baseline_origin.x, baseline_origin.y - desc.metrics().ascent);
        Self::draw(fb, top, text, desc, color)
    }

    fn draw_glyph<R: Raster>(
        fb: &mut R,
        origin: Point,
        glyph: &Glyph,
        desc: &FontDesc,
        color: Color,
    ) {
        let s = desc.scale();
        for row in 0..GLYPH_ROWS {
            // Italic: shear the top rows one scaled pixel rightward.
            let shear = if desc.style.italic && row < 3 { s } else { 0 };
            for col in 0..GLYPH_COLS {
                if glyph.pixel(col, row) {
                    let px = origin.x + col * s + shear;
                    let py = origin.y + row * s;
                    fb.fill_rect(Rect::new(px, py, s, s), color);
                    if desc.style.bold {
                        fb.fill_rect(Rect::new(px + s, py, s, s), color);
                    }
                }
            }
        }
    }
}

fn glyph_table() -> &'static HashMap<char, Glyph> {
    static TABLE: OnceLock<HashMap<char, Glyph>> = OnceLock::new();
    TABLE.get_or_init(parse_glyph_art)
}

fn parse_glyph_art() -> HashMap<char, Glyph> {
    let mut map = HashMap::new();
    let mut lines = GLYPH_ART.lines().filter(|l| !l.trim().is_empty());
    while let Some(header) = lines.next() {
        let ch = header
            .strip_prefix("glyph ")
            .and_then(|s| s.chars().next())
            .unwrap_or_else(|| panic!("bad glyph header: {header:?}"));
        let mut rows = [0u8; GLYPH_ROWS as usize];
        for row in rows.iter_mut() {
            let art = lines.next().expect("truncated glyph art");
            let mut bits = 0u8;
            for (i, c) in art.chars().take(GLYPH_COLS as usize).enumerate() {
                if c == '#' {
                    bits |= 0x10 >> i;
                }
            }
            *row = bits;
        }
        let logical_width = (0..GLYPH_COLS)
            .rev()
            .find(|col| rows.iter().any(|r| r & (0x10 >> col) != 0))
            .map(|c| c + 1)
            .unwrap_or(3);
        map.insert(
            ch,
            Glyph {
                rows,
                logical_width,
            },
        );
    }
    // Space: empty glyph with a 3-column logical width.
    map.insert(
        ' ',
        Glyph {
            rows: [0; GLYPH_ROWS as usize],
            logical_width: 3,
        },
    );
    map
}

/// The glyph definitions: `glyph <char>` followed by seven rows of
/// five-column art (`#` = set). Covers printable ASCII 33–126.
const GLYPH_ART: &str = "\
glyph !
..#..
..#..
..#..
..#..
..#..
.....
..#..
glyph \"
.#.#.
.#.#.
.#.#.
.....
.....
.....
.....
glyph #
.#.#.
.#.#.
#####
.#.#.
#####
.#.#.
.#.#.
glyph $
..#..
.####
#.#..
.###.
..#.#
####.
..#..
glyph %
##..#
##..#
...#.
..#..
.#...
#..##
#..##
glyph &
.##..
#..#.
#.#..
.#...
#.#.#
#..#.
.##.#
glyph '
..#..
..#..
..#..
.....
.....
.....
.....
glyph (
...#.
..#..
.#...
.#...
.#...
..#..
...#.
glyph )
.#...
..#..
...#.
...#.
...#.
..#..
.#...
glyph *
.....
..#..
#.#.#
.###.
#.#.#
..#..
.....
glyph +
.....
..#..
..#..
#####
..#..
..#..
.....
glyph ,
.....
.....
.....
.....
.....
..#..
.#...
glyph -
.....
.....
.....
#####
.....
.....
.....
glyph .
.....
.....
.....
.....
.....
.##..
.##..
glyph /
....#
....#
...#.
..#..
.#...
#....
#....
glyph 0
.###.
#...#
#..##
#.#.#
##..#
#...#
.###.
glyph 1
..#..
.##..
..#..
..#..
..#..
..#..
.###.
glyph 2
.###.
#...#
....#
...#.
..#..
.#...
#####
glyph 3
.###.
#...#
....#
..##.
....#
#...#
.###.
glyph 4
...#.
..##.
.#.#.
#..#.
#####
...#.
...#.
glyph 5
#####
#....
####.
....#
....#
#...#
.###.
glyph 6
..##.
.#...
#....
####.
#...#
#...#
.###.
glyph 7
#####
....#
...#.
..#..
..#..
..#..
..#..
glyph 8
.###.
#...#
#...#
.###.
#...#
#...#
.###.
glyph 9
.###.
#...#
#...#
.####
....#
...#.
.##..
glyph :
.....
.##..
.##..
.....
.##..
.##..
.....
glyph ;
.....
.##..
.##..
.....
.##..
..#..
.#...
glyph <
...#.
..#..
.#...
#....
.#...
..#..
...#.
glyph =
.....
.....
#####
.....
#####
.....
.....
glyph >
.#...
..#..
...#.
....#
...#.
..#..
.#...
glyph ?
.###.
#...#
....#
...#.
..#..
.....
..#..
glyph @
.###.
#...#
#.###
#.#.#
#.###
#....
.###.
glyph A
.###.
#...#
#...#
#####
#...#
#...#
#...#
glyph B
####.
#...#
#...#
####.
#...#
#...#
####.
glyph C
.###.
#...#
#....
#....
#....
#...#
.###.
glyph D
####.
#...#
#...#
#...#
#...#
#...#
####.
glyph E
#####
#....
#....
####.
#....
#....
#####
glyph F
#####
#....
#....
####.
#....
#....
#....
glyph G
.###.
#...#
#....
#.###
#...#
#...#
.###.
glyph H
#...#
#...#
#...#
#####
#...#
#...#
#...#
glyph I
.###.
..#..
..#..
..#..
..#..
..#..
.###.
glyph J
..###
...#.
...#.
...#.
...#.
#..#.
.##..
glyph K
#...#
#..#.
#.#..
##...
#.#..
#..#.
#...#
glyph L
#....
#....
#....
#....
#....
#....
#####
glyph M
#...#
##.##
#.#.#
#.#.#
#...#
#...#
#...#
glyph N
#...#
##..#
#.#.#
#..##
#...#
#...#
#...#
glyph O
.###.
#...#
#...#
#...#
#...#
#...#
.###.
glyph P
####.
#...#
#...#
####.
#....
#....
#....
glyph Q
.###.
#...#
#...#
#...#
#.#.#
#..#.
.##.#
glyph R
####.
#...#
#...#
####.
#.#..
#..#.
#...#
glyph S
.####
#....
#....
.###.
....#
....#
####.
glyph T
#####
..#..
..#..
..#..
..#..
..#..
..#..
glyph U
#...#
#...#
#...#
#...#
#...#
#...#
.###.
glyph V
#...#
#...#
#...#
#...#
#...#
.#.#.
..#..
glyph W
#...#
#...#
#...#
#.#.#
#.#.#
##.##
#...#
glyph X
#...#
#...#
.#.#.
..#..
.#.#.
#...#
#...#
glyph Y
#...#
#...#
.#.#.
..#..
..#..
..#..
..#..
glyph Z
#####
....#
...#.
..#..
.#...
#....
#####
glyph [
.###.
.#...
.#...
.#...
.#...
.#...
.###.
glyph \\
#....
#....
.#...
..#..
...#.
....#
....#
glyph ]
.###.
...#.
...#.
...#.
...#.
...#.
.###.
glyph ^
..#..
.#.#.
#...#
.....
.....
.....
.....
glyph _
.....
.....
.....
.....
.....
.....
#####
glyph `
.#...
..#..
.....
.....
.....
.....
.....
glyph a
.....
.....
.###.
....#
.####
#...#
.####
glyph b
#....
#....
####.
#...#
#...#
#...#
####.
glyph c
.....
.....
.###.
#....
#....
#...#
.###.
glyph d
....#
....#
.####
#...#
#...#
#...#
.####
glyph e
.....
.....
.###.
#...#
#####
#....
.###.
glyph f
..##.
.#..#
.#...
###..
.#...
.#...
.#...
glyph g
.....
.####
#...#
#...#
.####
....#
.###.
glyph h
#....
#....
####.
#...#
#...#
#...#
#...#
glyph i
..#..
.....
.##..
..#..
..#..
..#..
.###.
glyph j
...#.
.....
..##.
...#.
...#.
#..#.
.##..
glyph k
#....
#....
#..#.
#.#..
##...
#.#..
#..#.
glyph l
.##..
..#..
..#..
..#..
..#..
..#..
.###.
glyph m
.....
.....
##.#.
#.#.#
#.#.#
#.#.#
#.#.#
glyph n
.....
.....
####.
#...#
#...#
#...#
#...#
glyph o
.....
.....
.###.
#...#
#...#
#...#
.###.
glyph p
.....
####.
#...#
#...#
####.
#....
#....
glyph q
.....
.####
#...#
#...#
.####
....#
....#
glyph r
.....
.....
#.##.
##..#
#....
#....
#....
glyph s
.....
.....
.####
#....
.###.
....#
####.
glyph t
.#...
.#...
###..
.#...
.#...
.#..#
..##.
glyph u
.....
.....
#...#
#...#
#...#
#..##
.##.#
glyph v
.....
.....
#...#
#...#
#...#
.#.#.
..#..
glyph w
.....
.....
#...#
#...#
#.#.#
#.#.#
.#.#.
glyph x
.....
.....
#...#
.#.#.
..#..
.#.#.
#...#
glyph y
.....
#...#
#...#
.####
....#
#...#
.###.
glyph z
.....
.....
#####
...#.
..#..
.#...
#####
glyph {
...##
..#..
..#..
.#...
..#..
..#..
...##
glyph |
..#..
..#..
..#..
..#..
..#..
..#..
..#..
glyph }
##...
..#..
..#..
...#.
..#..
..#..
##...
glyph ~
.....
.....
.#...
#.#.#
...#.
.....
.....
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fb::Framebuffer;

    #[test]
    fn all_printable_ascii_has_glyphs() {
        let table = glyph_table();
        for code in 32u8..=126 {
            let ch = code as char;
            assert!(table.contains_key(&ch), "missing glyph for {ch:?}");
        }
        assert_eq!(table.len(), 95);
    }

    #[test]
    fn glyph_pixel_access() {
        let table = glyph_table();
        let bang = table.get(&'!').unwrap();
        assert!(bang.pixel(2, 0));
        assert!(!bang.pixel(0, 0));
        assert!(!bang.pixel(2, 5));
        assert!(bang.pixel(2, 6));
        // Out of range is false, not a panic.
        assert!(!bang.pixel(-1, 0));
        assert!(!bang.pixel(0, 99));
    }

    #[test]
    fn proportional_vs_fixed_width() {
        let andy = FontDesc::default_body();
        let fixed = FontDesc::fixed();
        // 'i' is narrower than 'M' proportionally, equal when fixed.
        assert!(andy.char_width('i') < andy.char_width('M'));
        assert_eq!(fixed.char_width('i'), fixed.char_width('M'));
        assert_eq!(
            andy.string_width("iM"),
            andy.char_width('i') + andy.char_width('M')
        );
    }

    #[test]
    fn width_table_matches_uncached_measurement() {
        for desc in [
            FontDesc::default_body(),
            FontDesc::fixed(),
            FontDesc::new("andy", FontStyle::BOLD, 20),
            FontDesc::new("andy", FontStyle::ITALIC, 34),
        ] {
            let table = desc.width_table();
            for code in 0u32..128 {
                let ch = char::from_u32(code).unwrap();
                assert_eq!(
                    table.advance(ch),
                    desc.char_width_uncached(ch),
                    "{desc} {ch:?}"
                );
            }
            // Non-ASCII falls back to the hollow-box cell width.
            assert_eq!(
                table.advance('\u{FFFC}'),
                desc.char_width_uncached('\u{FFFC}')
            );
            assert_eq!(table.advance('é'), desc.char_width_uncached('é'));
        }
    }

    #[test]
    fn width_table_is_shared_across_lookups() {
        let desc = FontDesc::new("andy", FontStyle::UNDERLINE, 26);
        let a = desc.width_table();
        let b = desc.width_table();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn scale_follows_size() {
        assert_eq!(FontDesc::new("andy", FontStyle::PLAIN, 8).scale(), 1);
        assert_eq!(FontDesc::new("andy", FontStyle::PLAIN, 12).scale(), 1);
        assert_eq!(FontDesc::new("andy", FontStyle::PLAIN, 20).scale(), 2);
        assert_eq!(FontDesc::new("andy", FontStyle::PLAIN, 34).scale(), 3);
    }

    #[test]
    fn metrics_scale_linearly() {
        let m1 = FontDesc::new("andy", FontStyle::PLAIN, 10).metrics();
        let m2 = FontDesc::new("andy", FontStyle::PLAIN, 20).metrics();
        assert_eq!(m2.ascent, 2 * m1.ascent);
        assert_eq!(m2.line_height, 2 * m1.line_height);
    }

    #[test]
    fn draw_renders_ink() {
        let mut fb = Framebuffer::new(60, 12, Color::WHITE);
        let w = BitmapFont::draw(
            &mut fb,
            Point::new(1, 1),
            "Hi",
            &FontDesc::default_body(),
            Color::BLACK,
        );
        assert!(w > 0);
        assert!(fb.count_pixels(fb.bounds(), Color::BLACK) > 10);
    }

    #[test]
    fn bold_has_more_ink_than_plain() {
        let mut plain = Framebuffer::new(80, 12, Color::WHITE);
        let mut bold = Framebuffer::new(80, 12, Color::WHITE);
        let d = FontDesc::default_body();
        let db = FontDesc::new("andy", FontStyle::BOLD, 12);
        BitmapFont::draw(&mut plain, Point::new(0, 0), "AB", &d, Color::BLACK);
        BitmapFont::draw(&mut bold, Point::new(0, 0), "AB", &db, Color::BLACK);
        assert!(
            bold.count_pixels(bold.bounds(), Color::BLACK)
                > plain.count_pixels(plain.bounds(), Color::BLACK)
        );
    }

    #[test]
    fn underline_draws_rule_under_text() {
        let mut fb = Framebuffer::new(40, 14, Color::WHITE);
        let d = FontDesc::new("andy", FontStyle::UNDERLINE, 10);
        BitmapFont::draw(&mut fb, Point::new(0, 0), "ab", &d, Color::BLACK);
        // The rule row (y = 8) is fully inked across the advance.
        let width = d.string_width("ab");
        assert_eq!(
            fb.count_pixels(Rect::new(0, 8, width, 1), Color::BLACK) as i32,
            width
        );
    }

    #[test]
    fn string_width_matches_draw_advance() {
        let mut fb = Framebuffer::new(200, 20, Color::WHITE);
        let d = FontDesc::default_body();
        let text = "The Andrew Toolkit";
        let adv = BitmapFont::draw(&mut fb, Point::new(0, 0), text, &d, Color::BLACK);
        assert_eq!(adv, d.string_width(text));
    }

    #[test]
    fn unknown_char_renders_box() {
        let mut fb = Framebuffer::new(20, 12, Color::WHITE);
        BitmapFont::draw(
            &mut fb,
            Point::new(0, 0),
            "\u{00e9}",
            &FontDesc::default_body(),
            Color::BLACK,
        );
        assert!(fb.count_pixels(fb.bounds(), Color::BLACK) > 0);
    }

    #[test]
    fn baseline_draw_puts_ink_above_baseline() {
        let mut fb = Framebuffer::new(30, 30, Color::WHITE);
        let d = FontDesc::default_body();
        BitmapFont::draw_baseline(&mut fb, Point::new(0, 20), "A", &d, Color::BLACK);
        // 'A' has no descender: all ink strictly above y=20.
        assert_eq!(fb.count_pixels(Rect::new(0, 20, 30, 10), Color::BLACK), 0);
        assert!(fb.count_pixels(Rect::new(0, 0, 30, 20), Color::BLACK) > 0);
    }
}
