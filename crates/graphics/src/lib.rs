//! Low-level graphics substrate for the Andrew Toolkit reproduction.
//!
//! The 1988 toolkit drew through a *drawable* abstraction (paper §4) whose
//! operations were "similar to those provided by the X.11 window system".
//! The real display hardware and X server are out of scope here; this
//! crate supplies the substrate both simulated window systems render into:
//!
//! * integer [`geom`]etry: points, sizes, rectangles;
//! * X-style banded [`region`]s for clipping and damage accumulation;
//! * a [`color`] model (the toolkit era was monochrome-first; we keep RGB
//!   but provide the classic black/white constants);
//! * a software [`fb`] (framebuffer) rasterizer: lines, rectangles, ovals,
//!   polygons, blits, all clipped by rect or region;
//! * bitmap [`font`]s with the family/style/size model of `fontdesc`;
//! * [`ppm`] writers so snapshots (the paper's figures 2–5) can be saved
//!   and inspected.
//!
//! Everything in this crate is deterministic and pure-CPU so tests and
//! benchmarks are reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod color;
pub mod fb;
pub mod font;
pub mod geom;
pub mod ppm;
pub mod region;

pub use color::Color;
pub use fb::{FbBand, Framebuffer, Raster, RasterOp};
pub use font::{BitmapFont, FontDesc, FontMetrics, FontStyle, WidthTable};
pub use geom::{Point, Rect, Size};
pub use region::Region;
