//! Banded regions for clipping and damage accumulation.
//!
//! The X server represents arbitrary pixel sets as *banded* y-sorted lists
//! of disjoint rectangles; the interaction manager needs the same
//! structure to accumulate damage from many views and to clip updates to
//! exposed areas. This is a from-scratch implementation of that data
//! structure with the usual boolean operations.
//!
//! # Invariants
//!
//! A region's rectangles are:
//! * non-empty and pairwise disjoint;
//! * grouped into *bands*: rects in a band share `y` and `height`, bands
//!   are sorted by `y` and do not overlap vertically;
//! * within a band, sorted by `x` with no two rects adjacent (they would
//!   have been merged);
//! * vertically adjacent bands with identical x-structure are coalesced.
//!
//! These invariants make equality structural: two regions covering the
//! same pixel set compare equal. Property tests in this module check that.

use crate::geom::{Point, Rect};

/// A set of pixels, stored as banded disjoint rectangles.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Region {
    rects: Vec<Rect>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Op {
    Union,
    Intersect,
    Subtract,
}

impl Region {
    /// The empty region.
    pub fn new() -> Region {
        Region::default()
    }

    /// A region covering exactly `r` (empty if `r` is empty).
    pub fn from_rect(r: Rect) -> Region {
        if r.is_empty() {
            Region::new()
        } else {
            Region { rects: vec![r] }
        }
    }

    /// True if the region covers no pixels.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// The region's rectangles (banded, disjoint, y/x sorted).
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Total number of pixels covered.
    pub fn area(&self) -> i64 {
        self.rects.iter().map(|r| r.area()).sum()
    }

    /// The tightest rectangle enclosing the region.
    pub fn bounding_box(&self) -> Rect {
        self.rects.iter().fold(Rect::EMPTY, |acc, r| acc.union(*r))
    }

    /// True if `p` is covered.
    pub fn contains(&self, p: Point) -> bool {
        self.rects.iter().any(|r| r.contains(p))
    }

    /// True if any pixel of `r` is covered.
    pub fn intersects_rect(&self, r: Rect) -> bool {
        self.rects.iter().any(|x| x.intersects(r))
    }

    /// Adds `r` to the region (in place).
    pub fn add_rect(&mut self, r: Rect) {
        *self = self.union(&Region::from_rect(r));
    }

    /// Removes `r` from the region (in place).
    pub fn subtract_rect(&mut self, r: Rect) {
        *self = self.subtract(&Region::from_rect(r));
    }

    /// Set union.
    pub fn union(&self, other: &Region) -> Region {
        self.combine(other, Op::Union)
    }

    /// Set intersection.
    pub fn intersect(&self, other: &Region) -> Region {
        self.combine(other, Op::Intersect)
    }

    /// Set difference `self \ other`.
    pub fn subtract(&self, other: &Region) -> Region {
        self.combine(other, Op::Subtract)
    }

    /// Intersection with a single rectangle (common clipping case).
    pub fn intersect_rect(&self, r: Rect) -> Region {
        self.intersect(&Region::from_rect(r))
    }

    /// The region moved by `(dx, dy)`.
    pub fn translate(&self, dx: i32, dy: i32) -> Region {
        Region {
            rects: self.rects.iter().map(|r| r.translate(dx, dy)).collect(),
        }
    }

    /// Band-sweep boolean combination.
    fn combine(&self, other: &Region, op: Op) -> Region {
        // Elementary y-slabs: every band edge from either operand.
        let mut ys: Vec<i32> = Vec::with_capacity((self.rects.len() + other.rects.len()) * 2);
        for r in self.rects.iter().chain(other.rects.iter()) {
            ys.push(r.y);
            ys.push(r.bottom());
        }
        ys.sort_unstable();
        ys.dedup();

        let mut out: Vec<Rect> = Vec::new();
        for w in ys.windows(2) {
            let (top, bot) = (w[0], w[1]);
            let a = slab_intervals(&self.rects, top, bot);
            let b = slab_intervals(&other.rects, top, bot);
            let combined = combine_intervals(&a, &b, op);
            let mut band: Vec<Rect> = combined
                .into_iter()
                .map(|(x0, x1)| Rect::new(x0, top, x1 - x0, bot - top))
                .collect();
            coalesce_with_previous_band(&mut out, &mut band);
            out.append(&mut band);
        }
        Region { rects: out }
    }
}

/// X-intervals of `rects` covering the slab `top..bot`.
///
/// Because region rects are banded and disjoint, the covering rects of an
/// elementary slab are already disjoint in x; we only need to sort and
/// merge adjacency.
fn slab_intervals(rects: &[Rect], top: i32, bot: i32) -> Vec<(i32, i32)> {
    let mut iv: Vec<(i32, i32)> = rects
        .iter()
        .filter(|r| r.y <= top && r.bottom() >= bot)
        .map(|r| (r.x, r.right()))
        .collect();
    iv.sort_unstable();
    // Merge touching/overlapping intervals.
    let mut merged: Vec<(i32, i32)> = Vec::with_capacity(iv.len());
    for (a, b) in iv {
        match merged.last_mut() {
            Some((_, pb)) if *pb >= a => *pb = (*pb).max(b),
            _ => merged.push((a, b)),
        }
    }
    merged
}

/// Boolean op over two sorted disjoint interval lists.
fn combine_intervals(a: &[(i32, i32)], b: &[(i32, i32)], op: Op) -> Vec<(i32, i32)> {
    // Sweep over all interval endpoints tracking membership in a and b.
    let mut events: Vec<i32> = Vec::with_capacity((a.len() + b.len()) * 2);
    for &(s, e) in a.iter().chain(b.iter()) {
        events.push(s);
        events.push(e);
    }
    events.sort_unstable();
    events.dedup();

    let inside_a = |x: i32| a.iter().any(|&(s, e)| s <= x && x < e);
    let inside_b = |x: i32| b.iter().any(|&(s, e)| s <= x && x < e);

    let mut out: Vec<(i32, i32)> = Vec::new();
    for w in events.windows(2) {
        let (s, e) = (w[0], w[1]);
        let ia = inside_a(s);
        let ib = inside_b(s);
        let keep = match op {
            Op::Union => ia || ib,
            Op::Intersect => ia && ib,
            Op::Subtract => ia && !ib,
        };
        if keep {
            match out.last_mut() {
                Some((_, pe)) if *pe == s => *pe = e,
                _ => out.push((s, e)),
            }
        }
    }
    out
}

/// If the previous band in `out` is vertically adjacent to `band` and has
/// the same x-structure, grow it downward instead of appending.
fn coalesce_with_previous_band(out: &mut [Rect], band: &mut Vec<Rect>) {
    if band.is_empty() || out.is_empty() {
        return;
    }
    let band_top = band[0].y;
    // Find the previous band (trailing run of rects sharing y and height).
    let prev_y = out.last().map(|r| r.y).unwrap();
    let prev_h = out.last().map(|r| r.height).unwrap();
    if prev_y + prev_h != band_top {
        return;
    }
    let start = out
        .iter()
        .rposition(|r| r.y != prev_y)
        .map(|i| i + 1)
        .unwrap_or(0);
    let prev = &out[start..];
    if prev.len() != band.len() {
        return;
    }
    let same = prev
        .iter()
        .zip(band.iter())
        .all(|(p, b)| p.x == b.x && p.width == b.width);
    if !same {
        return;
    }
    let grow = band[0].height;
    for r in &mut out[start..] {
        r.height += grow;
    }
    band.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x: i32, y: i32, w: i32, h: i32) -> Rect {
        Rect::new(x, y, w, h)
    }

    #[test]
    fn from_rect_and_area() {
        let reg = Region::from_rect(r(0, 0, 10, 5));
        assert_eq!(reg.area(), 50);
        assert!(Region::from_rect(Rect::EMPTY).is_empty());
    }

    #[test]
    fn union_of_disjoint_rects() {
        let a = Region::from_rect(r(0, 0, 10, 10));
        let b = Region::from_rect(r(20, 0, 10, 10));
        let u = a.union(&b);
        assert_eq!(u.area(), 200);
        assert_eq!(u.rects().len(), 2);
    }

    #[test]
    fn union_merges_overlap() {
        let a = Region::from_rect(r(0, 0, 10, 10));
        let b = Region::from_rect(r(5, 0, 10, 10));
        let u = a.union(&b);
        assert_eq!(u.area(), 150);
        assert_eq!(u.rects(), &[r(0, 0, 15, 10)]);
    }

    #[test]
    fn adjacent_rects_coalesce_into_one() {
        let a = Region::from_rect(r(0, 0, 10, 10));
        let b = Region::from_rect(r(0, 10, 10, 10));
        let u = a.union(&b);
        assert_eq!(u.rects(), &[r(0, 0, 10, 20)]);
    }

    #[test]
    fn intersect_simple() {
        let a = Region::from_rect(r(0, 0, 10, 10));
        let b = Region::from_rect(r(5, 5, 10, 10));
        let i = a.intersect(&b);
        assert_eq!(i.rects(), &[r(5, 5, 5, 5)]);
    }

    #[test]
    fn subtract_punches_hole() {
        let a = Region::from_rect(r(0, 0, 30, 30));
        let hole = Region::from_rect(r(10, 10, 10, 10));
        let d = a.subtract(&hole);
        assert_eq!(d.area(), 900 - 100);
        assert!(!d.contains(Point::new(15, 15)));
        assert!(d.contains(Point::new(5, 15)));
        assert!(d.contains(Point::new(25, 15)));
        // Re-adding the hole restores the square.
        let restored = d.union(&hole);
        assert_eq!(restored.rects(), &[r(0, 0, 30, 30)]);
    }

    #[test]
    fn structural_equality_of_same_pixel_set() {
        // Built two different ways, same pixels => same representation.
        let mut a = Region::new();
        a.add_rect(r(0, 0, 10, 5));
        a.add_rect(r(0, 5, 10, 5));
        let b = Region::from_rect(r(0, 0, 10, 10));
        assert_eq!(a, b);
    }

    #[test]
    fn bounding_box_and_contains() {
        let mut reg = Region::new();
        reg.add_rect(r(0, 0, 5, 5));
        reg.add_rect(r(20, 20, 5, 5));
        assert_eq!(reg.bounding_box(), r(0, 0, 25, 25));
        assert!(reg.contains(Point::new(2, 2)));
        assert!(!reg.contains(Point::new(10, 10)));
        assert!(reg.intersects_rect(r(4, 4, 2, 2)));
        assert!(!reg.intersects_rect(r(6, 6, 2, 2)));
    }

    #[test]
    fn translate_moves_all_rects() {
        let reg = Region::from_rect(r(0, 0, 5, 5)).translate(3, 4);
        assert_eq!(reg.rects(), &[r(3, 4, 5, 5)]);
    }

    #[test]
    fn intersect_with_empty_is_empty() {
        let a = Region::from_rect(r(0, 0, 10, 10));
        assert!(a.intersect(&Region::new()).is_empty());
        assert_eq!(a.union(&Region::new()), a);
        assert_eq!(a.subtract(&Region::new()), a);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_rect() -> impl Strategy<Value = Rect> {
        (0i32..40, 0i32..40, 1i32..20, 1i32..20).prop_map(|(x, y, w, h)| Rect::new(x, y, w, h))
    }

    fn arb_region() -> impl Strategy<Value = Region> {
        proptest::collection::vec(arb_rect(), 0..6).prop_map(|rs| {
            let mut reg = Region::new();
            for r in rs {
                reg.add_rect(r);
            }
            reg
        })
    }

    /// Brute-force membership oracle over a small grid. Pixels are pushed
    /// as `(y, x)` so generation order equals lexicographic order and the
    /// result is always sorted.
    fn pixels(reg: &Region) -> Vec<(i32, i32)> {
        let mut v = Vec::new();
        for y in -2..70 {
            for x in -2..70 {
                if reg.contains(Point::new(x, y)) {
                    v.push((y, x));
                }
            }
        }
        v
    }

    proptest! {
        #[test]
        fn union_matches_pixel_oracle(a in arb_region(), b in arb_region()) {
            let u = a.union(&b);
            let mut expect = pixels(&a);
            expect.extend(pixels(&b));
            expect.sort_unstable();
            expect.dedup();
            prop_assert_eq!(pixels(&u), expect);
        }

        #[test]
        fn intersect_matches_pixel_oracle(a in arb_region(), b in arb_region()) {
            let i = a.intersect(&b);
            let pb = pixels(&b);
            let expect: Vec<_> = pixels(&a).into_iter()
                .filter(|p| pb.binary_search(p).is_ok())
                .collect();
            prop_assert_eq!(pixels(&i), expect);
        }

        #[test]
        fn subtract_matches_pixel_oracle(a in arb_region(), b in arb_region()) {
            let d = a.subtract(&b);
            let pb = pixels(&b);
            let expect: Vec<_> = pixels(&a).into_iter()
                .filter(|p| pb.binary_search(p).is_err())
                .collect();
            prop_assert_eq!(pixels(&d), expect);
        }

        #[test]
        fn area_equals_pixel_count(a in arb_region()) {
            prop_assert_eq!(a.area() as usize, pixels(&a).len());
        }

        #[test]
        fn rects_are_disjoint(a in arb_region(), b in arb_region()) {
            let u = a.union(&b);
            let rs = u.rects();
            for i in 0..rs.len() {
                for j in (i + 1)..rs.len() {
                    prop_assert!(!rs[i].intersects(rs[j]),
                        "rects {} and {} overlap", rs[i], rs[j]);
                }
            }
        }
    }
}
