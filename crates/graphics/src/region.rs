//! Banded regions for clipping and damage accumulation.
//!
//! The X server represents arbitrary pixel sets as *banded* y-sorted lists
//! of disjoint rectangles; the interaction manager needs the same
//! structure to accumulate damage from many views and to clip updates to
//! exposed areas. This is a from-scratch implementation of that data
//! structure with the usual boolean operations.
//!
//! # Invariants
//!
//! A region's rectangles are:
//! * non-empty and pairwise disjoint;
//! * grouped into *bands*: rects in a band share `y` and `height`, bands
//!   are sorted by `y` and do not overlap vertically;
//! * within a band, sorted by `x` with no two rects adjacent (they would
//!   have been merged);
//! * vertically adjacent bands with identical x-structure are coalesced.
//!
//! These invariants make equality structural: two regions covering the
//! same pixel set compare equal. Property tests in this module check that.
//!
//! # Algorithm
//!
//! Boolean combination is a single merged y-sweep over both operands'
//! bands (the X server's `miRegionOp` shape): the two banded lists are
//! walked in lock-step, y-ranges where only one operand has a band are
//! copied (or skipped, per the operator), and overlapping y-ranges merge
//! the two bands' x-intervals with one two-pointer pass. Total cost is
//! linear in the number of input plus output rectangles — no elementary
//! slab rebuild, no per-slab membership probes. Trivial cases (an empty
//! operand, disjoint bounding boxes, repeated damage rects) short-circuit
//! and are counted under the `region.fast_path` metric on the global
//! [`atk_trace`] collector.

use crate::geom::{Point, Rect};

/// A set of pixels, stored as banded disjoint rectangles.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Region {
    rects: Vec<Rect>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Op {
    Union,
    Intersect,
    Subtract,
}

impl Region {
    /// The empty region.
    pub fn new() -> Region {
        Region::default()
    }

    /// A region covering exactly `r` (empty if `r` is empty).
    pub fn from_rect(r: Rect) -> Region {
        if r.is_empty() {
            Region::new()
        } else {
            Region { rects: vec![r] }
        }
    }

    /// True if the region covers no pixels.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// The region's rectangles (banded, disjoint, y/x sorted).
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Total number of pixels covered.
    pub fn area(&self) -> i64 {
        self.rects.iter().map(|r| r.area()).sum()
    }

    /// The tightest rectangle enclosing the region.
    pub fn bounding_box(&self) -> Rect {
        self.rects.iter().fold(Rect::EMPTY, |acc, r| acc.union(*r))
    }

    /// True if `p` is covered.
    pub fn contains(&self, p: Point) -> bool {
        self.rects.iter().any(|r| r.contains(p))
    }

    /// True if any pixel of `r` is covered.
    pub fn intersects_rect(&self, r: Rect) -> bool {
        self.rects.iter().any(|x| x.intersects(r))
    }

    /// Adds `r` to the region (in place).
    ///
    /// Damage streams are full of repeats and monotone scans, so three
    /// O(1) shapes skip the general sweep: an empty region, a rect the
    /// last rect already covers, and a rect strictly below every band.
    pub fn add_rect(&mut self, r: Rect) {
        if r.is_empty() {
            return;
        }
        if self.rects.is_empty() {
            fast_path();
            self.rects.push(r);
            return;
        }
        let last = *self.rects.last().unwrap();
        if last.contains_rect(r) {
            fast_path();
            return;
        }
        if r.y >= last.bottom() {
            // Below every band (the last band has the maximal bottom).
            fast_path();
            let n = self.rects.len();
            let last_band_is_single = n < 2 || self.rects[n - 2].y != last.y;
            if r.y == last.bottom() && last_band_is_single && r.x == last.x && r.width == last.width
            {
                // Identical x-structure in an adjacent band: coalesce.
                self.rects[n - 1].height += r.height;
            } else {
                self.rects.push(r);
            }
            return;
        }
        *self = self.union(&Region::from_rect(r));
    }

    /// Builds a region covering the union of arbitrary (possibly
    /// overlapping, unsorted) rectangles.
    ///
    /// Pairwise divide-and-conquer union: O(n log n) band merges rather
    /// than the O(n²) of a repeated [`Region::add_rect`] loop. This is
    /// the bulk-coalesce entry point for batched damage accumulation.
    pub fn from_rects<I: IntoIterator<Item = Rect>>(rects: I) -> Region {
        let mut parts: Vec<Region> = rects
            .into_iter()
            .filter(|r| !r.is_empty())
            .map(Region::from_rect)
            .collect();
        if parts.len() > 1 {
            // Presorting by band keeps intermediate unions mostly
            // ordered, so the sweeps coalesce early.
            parts.sort_unstable_by_key(|p| {
                let r = p.rects[0];
                (r.y, r.x)
            });
        }
        while parts.len() > 1 {
            let mut next = Vec::with_capacity(parts.len().div_ceil(2));
            let mut iter = parts.chunks_exact(2);
            for pair in iter.by_ref() {
                next.push(pair[0].union(&pair[1]));
            }
            if let [odd] = iter.remainder() {
                next.push(odd.clone());
            }
            parts = next;
        }
        parts.pop().unwrap_or_default()
    }

    /// Removes `r` from the region (in place).
    pub fn subtract_rect(&mut self, r: Rect) {
        *self = self.subtract(&Region::from_rect(r));
    }

    /// Set union.
    pub fn union(&self, other: &Region) -> Region {
        self.combine(other, Op::Union)
    }

    /// Set intersection.
    pub fn intersect(&self, other: &Region) -> Region {
        self.combine(other, Op::Intersect)
    }

    /// Set difference `self \ other`.
    pub fn subtract(&self, other: &Region) -> Region {
        self.combine(other, Op::Subtract)
    }

    /// Intersection with a single rectangle (common clipping case).
    pub fn intersect_rect(&self, r: Rect) -> Region {
        self.intersect(&Region::from_rect(r))
    }

    /// The region moved by `(dx, dy)`.
    pub fn translate(&self, dx: i32, dy: i32) -> Region {
        Region {
            rects: self.rects.iter().map(|r| r.translate(dx, dy)).collect(),
        }
    }

    /// Band-merge boolean combination: one merged y-sweep over both
    /// operands' bands, two-pointer interval merges per band. Linear in
    /// input + output rectangles.
    fn combine(&self, other: &Region, op: Op) -> Region {
        // Trivial-operand fast paths.
        if self.rects.is_empty() || other.rects.is_empty() {
            fast_path();
            return match op {
                Op::Union => {
                    if self.rects.is_empty() {
                        other.clone()
                    } else {
                        self.clone()
                    }
                }
                Op::Intersect => Region::new(),
                Op::Subtract => self.clone(),
            };
        }
        // Disjoint bounding boxes decide intersect/subtract outright.
        if op != Op::Union && !self.bounding_box().intersects(other.bounding_box()) {
            fast_path();
            return match op {
                Op::Intersect => Region::new(),
                _ => self.clone(),
            };
        }

        let keep_a = op != Op::Intersect; // y-ranges covered only by self
        let keep_b = op == Op::Union; //     …only by other
        let mut out: Vec<Rect> = Vec::with_capacity(self.rects.len() + other.rects.len());
        let mut scratch: Vec<Rect> = Vec::new();
        let mut ca = BandCursor::new(&self.rects);
        let mut cb = BandCursor::new(&other.rects);

        while !ca.done() && !cb.done() {
            let (at, ab) = (ca.top, ca.bot());
            let (bt, bb) = (cb.top, cb.bot());
            if ab <= bt {
                // a's band lies entirely above b's.
                if keep_a {
                    emit_band(&mut out, &mut scratch, at, ab, ca.band());
                }
                ca.advance_to(ab);
            } else if bb <= at {
                if keep_b {
                    emit_band(&mut out, &mut scratch, bt, bb, cb.band());
                }
                cb.advance_to(bb);
            } else if at < bt {
                // a sticks out above the overlap: emit the a-only slab.
                if keep_a {
                    emit_band(&mut out, &mut scratch, at, bt, ca.band());
                }
                ca.advance_to(bt);
            } else if bt < at {
                if keep_b {
                    emit_band(&mut out, &mut scratch, bt, at, cb.band());
                }
                cb.advance_to(at);
            } else {
                // Tops aligned: merge the overlapping slab.
                let bot = ab.min(bb);
                merge_bands(&mut out, &mut scratch, at, bot, ca.band(), cb.band(), op);
                ca.advance_to(bot);
                cb.advance_to(bot);
            }
        }
        while keep_a && !ca.done() {
            let bot = ca.bot();
            emit_band(&mut out, &mut scratch, ca.top, bot, ca.band());
            ca.advance_to(bot);
        }
        while keep_b && !cb.done() {
            let bot = cb.bot();
            emit_band(&mut out, &mut scratch, cb.top, bot, cb.band());
            cb.advance_to(bot);
        }
        Region { rects: out }
    }
}

/// Counts a short-circuit in the region algebra on the process-wide
/// collector (disabled collectors make this one relaxed atomic load).
fn fast_path() {
    atk_trace::global().count("region.fast_path", 1);
}

/// A cursor over a banded rect list: the current band is the run
/// `rects[start..end]` (shared y and height), with `top` advanced past
/// `rects[start].y` when the other operand's band edges split this band.
struct BandCursor<'r> {
    rects: &'r [Rect],
    start: usize,
    end: usize,
    top: i32,
}

impl<'r> BandCursor<'r> {
    fn new(rects: &'r [Rect]) -> BandCursor<'r> {
        let mut c = BandCursor {
            rects,
            start: 0,
            end: 0,
            top: 0,
        };
        c.load(0);
        c
    }

    /// Positions the cursor on the band starting at index `i`.
    fn load(&mut self, i: usize) {
        self.start = i;
        if i >= self.rects.len() {
            self.end = i;
            return;
        }
        let (y, h) = (self.rects[i].y, self.rects[i].height);
        let mut j = i + 1;
        while j < self.rects.len() && self.rects[j].y == y && self.rects[j].height == h {
            j += 1;
        }
        self.end = j;
        self.top = y;
    }

    fn done(&self) -> bool {
        self.start >= self.rects.len()
    }

    fn bot(&self) -> i32 {
        self.rects[self.start].bottom()
    }

    fn band(&self) -> &'r [Rect] {
        &self.rects[self.start..self.end]
    }

    /// Consumes the band up to `y`; reaching the band's bottom moves on
    /// to the next band.
    fn advance_to(&mut self, y: i32) {
        if y >= self.bot() {
            let next = self.end;
            self.load(next);
        } else {
            self.top = y;
        }
    }
}

/// Emits `band`'s x-structure as a band spanning `top..bot`, coalescing
/// with the previous output band when possible. `scratch` is a reusable
/// buffer (left empty on return).
fn emit_band(out: &mut Vec<Rect>, scratch: &mut Vec<Rect>, top: i32, bot: i32, band: &[Rect]) {
    scratch.clear();
    let h = bot - top;
    scratch.extend(band.iter().map(|r| Rect::new(r.x, top, r.width, h)));
    coalesce_with_previous_band(out, scratch);
    out.append(scratch);
}

/// Merges the x-intervals of two aligned bands under `op` into a band
/// spanning `top..bot`, appended to `out` (via `scratch`, reused).
///
/// Both inputs are sorted, disjoint, and non-adjacent in x (the region
/// invariant), so every operator is a single two-pointer pass.
fn merge_bands(
    out: &mut Vec<Rect>,
    scratch: &mut Vec<Rect>,
    top: i32,
    bot: i32,
    a: &[Rect],
    b: &[Rect],
    op: Op,
) {
    scratch.clear();
    let h = bot - top;
    match op {
        Op::Union => {
            let (mut i, mut j) = (0, 0);
            while i < a.len() || j < b.len() {
                let from_a = match (a.get(i), b.get(j)) {
                    (Some(ra), Some(rb)) => ra.x <= rb.x,
                    (Some(_), None) => true,
                    _ => false,
                };
                let r = if from_a {
                    i += 1;
                    a[i - 1]
                } else {
                    j += 1;
                    b[j - 1]
                };
                match scratch.last_mut() {
                    // Overlapping or adjacent: grow the previous interval.
                    Some(last) if last.right() >= r.x => {
                        if r.right() > last.right() {
                            last.width = r.right() - last.x;
                        }
                    }
                    _ => scratch.push(Rect::new(r.x, top, r.width, h)),
                }
            }
        }
        Op::Intersect => {
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                let x0 = a[i].x.max(b[j].x);
                let x1 = a[i].right().min(b[j].right());
                if x0 < x1 {
                    scratch.push(Rect::new(x0, top, x1 - x0, h));
                }
                if a[i].right() <= b[j].right() {
                    i += 1;
                } else {
                    j += 1;
                }
            }
        }
        Op::Subtract => {
            let mut j = 0;
            for ra in a {
                let mut x = ra.x;
                let end = ra.right();
                // b intervals entirely left of this a interval are done
                // for good (a is sorted), so the outer pointer advances.
                while j < b.len() && b[j].right() <= x {
                    j += 1;
                }
                // A b interval can straddle into the next a interval, so
                // scan with a local pointer from j.
                let mut k = j;
                while k < b.len() && b[k].x < end {
                    if b[k].x > x {
                        scratch.push(Rect::new(x, top, b[k].x - x, h));
                    }
                    x = x.max(b[k].right());
                    if x >= end {
                        break;
                    }
                    k += 1;
                }
                if x < end {
                    scratch.push(Rect::new(x, top, end - x, h));
                }
            }
        }
    }
    if scratch.is_empty() {
        return;
    }
    coalesce_with_previous_band(out, scratch);
    out.append(scratch);
}

/// If the previous band in `out` is vertically adjacent to `band` and has
/// the same x-structure, grow it downward instead of appending.
fn coalesce_with_previous_band(out: &mut [Rect], band: &mut Vec<Rect>) {
    if band.is_empty() || out.is_empty() {
        return;
    }
    let band_top = band[0].y;
    // Find the previous band (trailing run of rects sharing y and height).
    let prev_y = out.last().map(|r| r.y).unwrap();
    let prev_h = out.last().map(|r| r.height).unwrap();
    if prev_y + prev_h != band_top {
        return;
    }
    let start = out
        .iter()
        .rposition(|r| r.y != prev_y)
        .map(|i| i + 1)
        .unwrap_or(0);
    let prev = &out[start..];
    if prev.len() != band.len() {
        return;
    }
    let same = prev
        .iter()
        .zip(band.iter())
        .all(|(p, b)| p.x == b.x && p.width == b.width);
    if !same {
        return;
    }
    let grow = band[0].height;
    for r in &mut out[start..] {
        r.height += grow;
    }
    band.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x: i32, y: i32, w: i32, h: i32) -> Rect {
        Rect::new(x, y, w, h)
    }

    #[test]
    fn from_rect_and_area() {
        let reg = Region::from_rect(r(0, 0, 10, 5));
        assert_eq!(reg.area(), 50);
        assert!(Region::from_rect(Rect::EMPTY).is_empty());
    }

    #[test]
    fn union_of_disjoint_rects() {
        let a = Region::from_rect(r(0, 0, 10, 10));
        let b = Region::from_rect(r(20, 0, 10, 10));
        let u = a.union(&b);
        assert_eq!(u.area(), 200);
        assert_eq!(u.rects().len(), 2);
    }

    #[test]
    fn union_merges_overlap() {
        let a = Region::from_rect(r(0, 0, 10, 10));
        let b = Region::from_rect(r(5, 0, 10, 10));
        let u = a.union(&b);
        assert_eq!(u.area(), 150);
        assert_eq!(u.rects(), &[r(0, 0, 15, 10)]);
    }

    #[test]
    fn adjacent_rects_coalesce_into_one() {
        let a = Region::from_rect(r(0, 0, 10, 10));
        let b = Region::from_rect(r(0, 10, 10, 10));
        let u = a.union(&b);
        assert_eq!(u.rects(), &[r(0, 0, 10, 20)]);
    }

    #[test]
    fn intersect_simple() {
        let a = Region::from_rect(r(0, 0, 10, 10));
        let b = Region::from_rect(r(5, 5, 10, 10));
        let i = a.intersect(&b);
        assert_eq!(i.rects(), &[r(5, 5, 5, 5)]);
    }

    #[test]
    fn subtract_punches_hole() {
        let a = Region::from_rect(r(0, 0, 30, 30));
        let hole = Region::from_rect(r(10, 10, 10, 10));
        let d = a.subtract(&hole);
        assert_eq!(d.area(), 900 - 100);
        assert!(!d.contains(Point::new(15, 15)));
        assert!(d.contains(Point::new(5, 15)));
        assert!(d.contains(Point::new(25, 15)));
        // Re-adding the hole restores the square.
        let restored = d.union(&hole);
        assert_eq!(restored.rects(), &[r(0, 0, 30, 30)]);
    }

    #[test]
    fn structural_equality_of_same_pixel_set() {
        // Built two different ways, same pixels => same representation.
        let mut a = Region::new();
        a.add_rect(r(0, 0, 10, 5));
        a.add_rect(r(0, 5, 10, 5));
        let b = Region::from_rect(r(0, 0, 10, 10));
        assert_eq!(a, b);
    }

    #[test]
    fn bounding_box_and_contains() {
        let mut reg = Region::new();
        reg.add_rect(r(0, 0, 5, 5));
        reg.add_rect(r(20, 20, 5, 5));
        assert_eq!(reg.bounding_box(), r(0, 0, 25, 25));
        assert!(reg.contains(Point::new(2, 2)));
        assert!(!reg.contains(Point::new(10, 10)));
        assert!(reg.intersects_rect(r(4, 4, 2, 2)));
        assert!(!reg.intersects_rect(r(6, 6, 2, 2)));
    }

    #[test]
    fn translate_moves_all_rects() {
        let reg = Region::from_rect(r(0, 0, 5, 5)).translate(3, 4);
        assert_eq!(reg.rects(), &[r(3, 4, 5, 5)]);
    }

    #[test]
    fn intersect_with_empty_is_empty() {
        let a = Region::from_rect(r(0, 0, 10, 10));
        assert!(a.intersect(&Region::new()).is_empty());
        assert_eq!(a.union(&Region::new()), a);
        assert_eq!(a.subtract(&Region::new()), a);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_rect() -> impl Strategy<Value = Rect> {
        (0i32..40, 0i32..40, 1i32..20, 1i32..20).prop_map(|(x, y, w, h)| Rect::new(x, y, w, h))
    }

    fn arb_region() -> impl Strategy<Value = Region> {
        proptest::collection::vec(arb_rect(), 0..6).prop_map(|rs| {
            let mut reg = Region::new();
            for r in rs {
                reg.add_rect(r);
            }
            reg
        })
    }

    /// Brute-force membership oracle over a small grid. Pixels are pushed
    /// as `(y, x)` so generation order equals lexicographic order and the
    /// result is always sorted.
    fn pixels(reg: &Region) -> Vec<(i32, i32)> {
        let mut v = Vec::new();
        for y in -2..70 {
            for x in -2..70 {
                if reg.contains(Point::new(x, y)) {
                    v.push((y, x));
                }
            }
        }
        v
    }

    proptest! {
        #[test]
        fn union_matches_pixel_oracle(a in arb_region(), b in arb_region()) {
            let u = a.union(&b);
            let mut expect = pixels(&a);
            expect.extend(pixels(&b));
            expect.sort_unstable();
            expect.dedup();
            prop_assert_eq!(pixels(&u), expect);
        }

        #[test]
        fn intersect_matches_pixel_oracle(a in arb_region(), b in arb_region()) {
            let i = a.intersect(&b);
            let pb = pixels(&b);
            let expect: Vec<_> = pixels(&a).into_iter()
                .filter(|p| pb.binary_search(p).is_ok())
                .collect();
            prop_assert_eq!(pixels(&i), expect);
        }

        #[test]
        fn subtract_matches_pixel_oracle(a in arb_region(), b in arb_region()) {
            let d = a.subtract(&b);
            let pb = pixels(&b);
            let expect: Vec<_> = pixels(&a).into_iter()
                .filter(|p| pb.binary_search(p).is_err())
                .collect();
            prop_assert_eq!(pixels(&d), expect);
        }

        #[test]
        fn area_equals_pixel_count(a in arb_region()) {
            prop_assert_eq!(a.area() as usize, pixels(&a).len());
        }

        #[test]
        fn rects_are_disjoint(a in arb_region(), b in arb_region()) {
            let u = a.union(&b);
            let rs = u.rects();
            for i in 0..rs.len() {
                for j in (i + 1)..rs.len() {
                    prop_assert!(!rs[i].intersects(rs[j]),
                        "rects {} and {} overlap", rs[i], rs[j]);
                }
            }
        }

        #[test]
        fn from_rects_equals_add_rect_loop(rs in proptest::collection::vec(arb_rect(), 0..12)) {
            let bulk = Region::from_rects(rs.iter().copied());
            let mut looped = Region::new();
            for r in rs {
                looped.add_rect(r);
            }
            prop_assert_eq!(bulk, looped);
        }

        /// The banded form is canonical: any permutation of the input
        /// must yield a *structurally* identical region (same bands, same
        /// x-spans), not merely the same pixel set — and both must equal
        /// the incremental `add_rect` fold over the permuted order.
        #[test]
        fn from_rects_is_permutation_invariant(
            rs in proptest::collection::vec(arb_rect(), 0..12),
            swaps in proptest::collection::vec((0usize..64, 0usize..64), 0..32),
        ) {
            let baseline = Region::from_rects(rs.iter().copied());
            let mut perm = rs.clone();
            for (a, b) in swaps {
                if !perm.is_empty() {
                    let len = perm.len();
                    perm.swap(a % len, b % len);
                }
            }
            let shuffled = Region::from_rects(perm.iter().copied());
            prop_assert_eq!(shuffled.rects(), baseline.rects());
            let mut folded = Region::new();
            for r in perm {
                folded.add_rect(r);
            }
            prop_assert_eq!(folded, baseline);
        }
    }
}

/// The pre-sweep reference implementation (elementary y-slabs with
/// linear membership probes), kept verbatim as a semantic oracle: the
/// band-merge sweep must produce *identical structure* on every input.
#[cfg(test)]
mod reference_oracle {
    use super::*;
    use proptest::prelude::*;

    fn slab_intervals(rects: &[Rect], top: i32, bot: i32) -> Vec<(i32, i32)> {
        let mut iv: Vec<(i32, i32)> = rects
            .iter()
            .filter(|r| r.y <= top && r.bottom() >= bot)
            .map(|r| (r.x, r.right()))
            .collect();
        iv.sort_unstable();
        let mut merged: Vec<(i32, i32)> = Vec::with_capacity(iv.len());
        for (a, b) in iv {
            match merged.last_mut() {
                Some((_, pb)) if *pb >= a => *pb = (*pb).max(b),
                _ => merged.push((a, b)),
            }
        }
        merged
    }

    fn combine_intervals(a: &[(i32, i32)], b: &[(i32, i32)], op: Op) -> Vec<(i32, i32)> {
        let mut events: Vec<i32> = Vec::with_capacity((a.len() + b.len()) * 2);
        for &(s, e) in a.iter().chain(b.iter()) {
            events.push(s);
            events.push(e);
        }
        events.sort_unstable();
        events.dedup();

        let inside_a = |x: i32| a.iter().any(|&(s, e)| s <= x && x < e);
        let inside_b = |x: i32| b.iter().any(|&(s, e)| s <= x && x < e);

        let mut out: Vec<(i32, i32)> = Vec::new();
        for w in events.windows(2) {
            let (s, e) = (w[0], w[1]);
            let ia = inside_a(s);
            let ib = inside_b(s);
            let keep = match op {
                Op::Union => ia || ib,
                Op::Intersect => ia && ib,
                Op::Subtract => ia && !ib,
            };
            if keep {
                match out.last_mut() {
                    Some((_, pe)) if *pe == s => *pe = e,
                    _ => out.push((s, e)),
                }
            }
        }
        out
    }

    /// The old `Region::combine`, verbatim.
    pub(super) fn reference_combine(a: &Region, b: &Region, op: Op) -> Region {
        let mut ys: Vec<i32> = Vec::with_capacity((a.rects.len() + b.rects.len()) * 2);
        for r in a.rects.iter().chain(b.rects.iter()) {
            ys.push(r.y);
            ys.push(r.bottom());
        }
        ys.sort_unstable();
        ys.dedup();

        let mut out: Vec<Rect> = Vec::new();
        for w in ys.windows(2) {
            let (top, bot) = (w[0], w[1]);
            let ia = slab_intervals(&a.rects, top, bot);
            let ib = slab_intervals(&b.rects, top, bot);
            let combined = combine_intervals(&ia, &ib, op);
            let mut band: Vec<Rect> = combined
                .into_iter()
                .map(|(x0, x1)| Rect::new(x0, top, x1 - x0, bot - top))
                .collect();
            coalesce_with_previous_band(&mut out, &mut band);
            out.append(&mut band);
        }
        Region { rects: out }
    }

    /// Wider coordinate range than the pixel-oracle tests: equivalence
    /// checking needs no per-pixel scan, so the grid can be much larger.
    fn big_rect() -> impl Strategy<Value = Rect> {
        (0i32..400, 0i32..400, 1i32..160, 1i32..160).prop_map(|(x, y, w, h)| Rect::new(x, y, w, h))
    }

    fn big_region() -> impl Strategy<Value = Region> {
        proptest::collection::vec(big_rect(), 0..10)
            .prop_map(|rs| Region::from_rects(rs.into_iter()))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn sweep_matches_reference_structurally(a in big_region(), b in big_region()) {
            for op in [Op::Union, Op::Intersect, Op::Subtract] {
                let new = a.combine(&b, op);
                let old = reference_combine(&a, &b, op);
                prop_assert_eq!(new, old);
            }
        }

        #[test]
        fn sweep_matches_pixel_oracle_on_larger_grid(
            a in proptest::collection::vec(
                (0i32..120, 0i32..120, 1i32..50, 1i32..50), 0..8),
            b in proptest::collection::vec(
                (0i32..120, 0i32..120, 1i32..50, 1i32..50), 0..8),
        ) {
            let ra = Region::from_rects(a.iter().map(|&(x, y, w, h)| Rect::new(x, y, w, h)));
            let rb = Region::from_rects(b.iter().map(|&(x, y, w, h)| Rect::new(x, y, w, h)));
            let u = ra.union(&rb);
            let i = ra.intersect(&rb);
            let d = ra.subtract(&rb);
            for y in -1..175 {
                for x in -1..175 {
                    let p = Point::new(x, y);
                    let (ina, inb) = (ra.contains(p), rb.contains(p));
                    prop_assert_eq!(u.contains(p), ina || inb, "union wrong at {},{}", x, y);
                    prop_assert_eq!(i.contains(p), ina && inb, "intersect wrong at {},{}", x, y);
                    prop_assert_eq!(d.contains(p), ina && !inb, "subtract wrong at {},{}", x, y);
                }
            }
        }
    }
}
