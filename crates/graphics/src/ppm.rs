//! PPM/PGM image writers for framebuffer snapshots.
//!
//! The paper's figures 2–5 are screen snapshots; our reproduction renders
//! the same scenes into framebuffers and saves them with these writers so
//! they can be inspected with any image viewer.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::fb::Framebuffer;

/// Writes `fb` as a binary PPM (P6) file.
pub fn write_ppm(fb: &Framebuffer, path: &Path) -> io::Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    write_ppm_to(fb, &mut w)
}

/// Writes `fb` as a binary PPM (P6) stream.
pub fn write_ppm_to(fb: &Framebuffer, w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "P6\n{} {}\n255", fb.width(), fb.height())?;
    let mut row = Vec::with_capacity(fb.width() as usize * 3);
    for y in 0..fb.height() {
        row.clear();
        for x in 0..fb.width() {
            let c = fb.get(x, y);
            row.extend_from_slice(&[c.r(), c.g(), c.b()]);
        }
        w.write_all(&row)?;
    }
    w.flush()
}

/// Writes `fb` as a binary PGM (P5, grayscale via luma) file.
pub fn write_pgm(fb: &Framebuffer, path: &Path) -> io::Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "P5\n{} {}\n255", fb.width(), fb.height())?;
    let mut row = Vec::with_capacity(fb.width() as usize);
    for y in 0..fb.height() {
        row.clear();
        for x in 0..fb.width() {
            row.push(fb.get(x, y).luma());
        }
        w.write_all(&row)?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Color;
    use crate::geom::Rect;

    #[test]
    fn ppm_header_and_size() {
        let mut fb = Framebuffer::new(3, 2, Color::WHITE);
        fb.fill_rect(Rect::new(0, 0, 1, 1), Color::BLACK);
        let mut out = Vec::new();
        write_ppm_to(&fb, &mut out).unwrap();
        assert!(out.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(out.len(), b"P6\n3 2\n255\n".len() + 3 * 2 * 3);
        // First pixel is black, second white.
        let body = &out[b"P6\n3 2\n255\n".len()..];
        assert_eq!(&body[0..3], &[0, 0, 0]);
        assert_eq!(&body[3..6], &[255, 255, 255]);
    }

    #[test]
    fn files_round_trip_to_disk() {
        let dir = std::env::temp_dir().join("atk_ppm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let fb = Framebuffer::new(4, 4, Color::GRAY);
        let p1 = dir.join("t.ppm");
        let p2 = dir.join("t.pgm");
        write_ppm(&fb, &p1).unwrap();
        write_pgm(&fb, &p2).unwrap();
        assert!(std::fs::metadata(&p1).unwrap().len() > 0);
        assert!(std::fs::metadata(&p2).unwrap().len() > 0);
    }
}
