//! Software framebuffer: the pixel store both simulated window systems
//! render into.
//!
//! Provides the primitive raster operations the toolkit's drawable layer
//! (paper §4) bottoms out in: clipped pixel writes, solid fills,
//! Bresenham lines with thickness, midpoint ovals, scanline polygon
//! fills, and rectangle blits with the classic raster ops (copy, XOR,
//! or, and-not). All drawing is clipped against an optional [`Region`].
//!
//! The drawing code itself lives in the [`Raster`] trait so that a
//! whole [`Framebuffer`] and a borrowed horizontal band of one
//! ([`FbBand`], handed out by [`Framebuffer::bands_mut`] via
//! `split_at_mut`) rasterize through *the same* provided methods. That
//! is what makes parallel band painting byte-identical to serial
//! painting by construction: a band is just a raster whose writable row
//! range is narrower, every other code path is shared.

use std::sync::Arc;

use crate::color::Color;
use crate::geom::{Point, Rect};
use crate::region::Region;

/// How a blit combines source and destination pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RasterOp {
    /// Destination = source.
    Copy,
    /// Destination ^= source (self-inverse; used for selection feedback).
    Xor,
    /// Destination |= source.
    Or,
    /// Destination &= !source ("paint white through a mask").
    AndNot,
}

/// A drawing surface: either a whole [`Framebuffer`] or a borrowed
/// horizontal [`FbBand`] of one.
///
/// Implementors supply the five storage accessors; every drawing
/// primitive is a provided method on top of them, so all surfaces
/// rasterize identically. Coordinates are always in the *logical*
/// surface space ([`Raster::raster_size`]); a band simply refuses
/// writes outside its [`Raster::row_limits`].
pub trait Raster {
    /// Logical surface dimensions `(width, height)` in pixels.
    fn raster_size(&self) -> (i32, i32);

    /// The half-open row range `[y0, y1)` this surface may read and
    /// write. A whole framebuffer answers `(0, height)`.
    fn row_limits(&self) -> (i32, i32);

    /// The current clip region, if any (`None` clips only to bounds).
    fn clip_ref(&self) -> Option<&Region>;

    /// Row `y` of pixels (full logical width). `y` must be inside
    /// [`Raster::row_limits`].
    fn row(&self, y: i32) -> &[u32];

    /// Mutable row `y` of pixels. `y` must be inside
    /// [`Raster::row_limits`].
    fn row_mut(&mut self, y: i32) -> &mut [u32];

    // --- Provided drawing methods (shared by all surfaces) ------------

    /// The full logical bounds rectangle.
    fn raster_bounds(&self) -> Rect {
        let (w, h) = self.raster_size();
        Rect::new(0, 0, w, h)
    }

    /// True when `(x, y)` is inside bounds, inside this surface's row
    /// limits, and inside the clip.
    #[inline]
    fn writable(&self, x: i32, y: i32) -> bool {
        let (w, _) = self.raster_size();
        let (y0, y1) = self.row_limits();
        if x < 0 || x >= w || y < y0 || y >= y1 {
            return false;
        }
        match self.clip_ref() {
            Some(region) => region.contains(Point::new(x, y)),
            None => true,
        }
    }

    /// Writes a pixel, honoring bounds, row limits, and clip.
    #[inline]
    fn set(&mut self, x: i32, y: i32, color: Color) {
        if self.writable(x, y) {
            self.row_mut(y)[x as usize] = color.0;
        }
    }

    /// Writes a pixel combining with the existing value via `op`.
    fn set_op(&mut self, x: i32, y: i32, color: Color, op: RasterOp) {
        if !self.writable(x, y) {
            return;
        }
        let dst = self.row(y)[x as usize];
        self.row_mut(y)[x as usize] = match op {
            RasterOp::Copy => color.0,
            RasterOp::Xor => dst ^ color.0,
            RasterOp::Or => dst | color.0,
            RasterOp::AndNot => dst & !color.0,
        };
    }

    /// Fills a rectangle.
    fn fill_rect(&mut self, r: Rect, color: Color) {
        self.fill_rect_op(r, color, RasterOp::Copy);
    }

    /// Fills a rectangle with a raster op.
    fn fill_rect_op(&mut self, r: Rect, color: Color, op: RasterOp) {
        let r = r.intersect(self.raster_bounds());
        if r.is_empty() {
            return;
        }
        let (ly0, ly1) = self.row_limits();
        let y_lo = r.y.max(ly0);
        let y_hi = r.bottom().min(ly1);
        // Fast path: no clip region, plain copy.
        if self.clip_ref().is_none() && op == RasterOp::Copy {
            for y in y_lo..y_hi {
                self.row_mut(y)[r.x as usize..r.right() as usize].fill(color.0);
            }
            return;
        }
        for y in y_lo..y_hi {
            for x in r.x..r.right() {
                self.set_op(x, y, color, op);
            }
        }
    }

    /// Outlines a rectangle with 1-pixel lines just inside its bounds.
    fn draw_rect(&mut self, r: Rect, color: Color) {
        if r.is_empty() {
            return;
        }
        self.fill_rect(Rect::new(r.x, r.y, r.width, 1), color);
        self.fill_rect(Rect::new(r.x, r.bottom() - 1, r.width, 1), color);
        self.fill_rect(Rect::new(r.x, r.y, 1, r.height), color);
        self.fill_rect(Rect::new(r.right() - 1, r.y, 1, r.height), color);
    }

    /// Draws a line of the given thickness (Bresenham; thickness expands
    /// each plotted position into a small square).
    fn draw_line(&mut self, a: Point, b: Point, thickness: i32, color: Color) {
        let thickness = thickness.max(1);
        let (mut x0, mut y0) = (a.x, a.y);
        let (x1, y1) = (b.x, b.y);
        let dx = (x1 - x0).abs();
        let dy = -(y1 - y0).abs();
        let sx = if x0 < x1 { 1 } else { -1 };
        let sy = if y0 < y1 { 1 } else { -1 };
        let mut err = dx + dy;
        loop {
            if thickness == 1 {
                self.set(x0, y0, color);
            } else {
                let half = thickness / 2;
                self.fill_rect(Rect::new(x0 - half, y0 - half, thickness, thickness), color);
            }
            if x0 == x1 && y0 == y1 {
                break;
            }
            let e2 = 2 * err;
            if e2 >= dy {
                err += dy;
                x0 += sx;
            }
            if e2 <= dx {
                err += dx;
                y0 += sy;
            }
        }
    }

    /// Outlines an axis-aligned ellipse inscribed in `r` (scanline
    /// algorithm).
    fn draw_oval(&mut self, r: Rect, color: Color) {
        self.oval(r, color, false);
    }

    /// Fills an axis-aligned ellipse inscribed in `r`.
    fn fill_oval(&mut self, r: Rect, color: Color) {
        self.oval(r, color, true);
    }

    /// Shared scanline ellipse path behind [`Raster::draw_oval`] /
    /// [`Raster::fill_oval`].
    #[doc(hidden)]
    fn oval(&mut self, r: Rect, color: Color, fill: bool) {
        if r.is_empty() {
            return;
        }
        // Scanline ellipse: for each pixel row solve x^2/rx^2 + y^2/ry^2 = 1
        // about the (possibly half-integral) center. Robust over every
        // aspect ratio, unlike a naive midpoint walk.
        let cx = r.x as f64 + (r.width - 1) as f64 / 2.0;
        let cy = r.y as f64 + (r.height - 1) as f64 / 2.0;
        let rx = ((r.width - 1) as f64 / 2.0).max(0.5);
        let ry = ((r.height - 1) as f64 / 2.0).max(0.5);
        let mut left: Vec<Point> = Vec::new();
        let mut right: Vec<Point> = Vec::new();
        for y in r.y..r.bottom() {
            let fy = y as f64 - cy;
            let t = 1.0 - (fy / ry) * (fy / ry);
            if t < 0.0 {
                continue;
            }
            let half = rx * t.sqrt();
            let x0 = (cx - half).round() as i32;
            let x1 = (cx + half).round() as i32;
            if fill {
                self.fill_rect(Rect::new(x0, y, x1 - x0 + 1, 1), color);
            } else {
                left.push(Point::new(x0, y));
                right.push(Point::new(x1, y));
            }
        }
        if !fill {
            // Connect successive outline samples so steep sides are solid.
            for seq in [left, right] {
                for w in seq.windows(2) {
                    self.draw_line(w[0], w[1], 1, color);
                }
            }
        }
    }

    /// Fills an arbitrary polygon (even-odd rule, scanline algorithm).
    fn fill_polygon(&mut self, pts: &[Point], color: Color) {
        if pts.len() < 3 {
            return;
        }
        let min_y = pts.iter().map(|p| p.y).min().unwrap();
        let max_y = pts.iter().map(|p| p.y).max().unwrap();
        for y in min_y..=max_y {
            // Gather x-intersections of edges with the scanline center.
            let yc = y as f64 + 0.5;
            let mut xs: Vec<f64> = Vec::new();
            for i in 0..pts.len() {
                let p0 = pts[i];
                let p1 = pts[(i + 1) % pts.len()];
                let (y0, y1) = (p0.y as f64, p1.y as f64);
                if (y0 <= yc && y1 > yc) || (y1 <= yc && y0 > yc) {
                    let t = (yc - y0) / (y1 - y0);
                    xs.push(p0.x as f64 + t * (p1.x - p0.x) as f64);
                }
            }
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for pair in xs.chunks(2) {
                if pair.len() == 2 {
                    let x0 = pair[0].ceil() as i32;
                    let x1 = pair[1].floor() as i32;
                    if x1 >= x0 {
                        self.fill_rect(Rect::new(x0, y, x1 - x0 + 1, 1), color);
                    }
                }
            }
        }
    }

    /// Fills a pie-slice wedge of the ellipse inscribed in `r`, between
    /// `start_deg` and `end_deg` (clockwise from 12 o'clock). Used by the
    /// pie-chart view.
    fn fill_wedge(&mut self, r: Rect, start_deg: f64, end_deg: f64, color: Color) {
        if r.is_empty() || end_deg <= start_deg {
            return;
        }
        let c = r.center();
        let rx = r.width as f64 / 2.0;
        let ry = r.height as f64 / 2.0;
        let mut pts = vec![c];
        let steps = (((end_deg - start_deg).abs() / 3.0).ceil() as usize).max(2);
        for i in 0..=steps {
            let ang =
                (start_deg + (end_deg - start_deg) * i as f64 / steps as f64 - 90.0).to_radians();
            pts.push(Point::new(
                c.x + (rx * ang.cos()).round() as i32,
                c.y + (ry * ang.sin()).round() as i32,
            ));
        }
        self.fill_polygon(&pts, color);
    }

    /// Copies rectangle `src_rect` of `src` to `dst_origin` here, using
    /// `op`.
    fn blit(&mut self, src: &Framebuffer, src_rect: Rect, dst_origin: Point, op: RasterOp) {
        let src_rect = src_rect.intersect(src.bounds());
        // Fast path: plain copy, no clip — row-wise memcpy of the
        // in-bounds overlap (the analogue of fill_rect_op's fast
        // path). This is what makes whole-frame hand-offs like
        // session forking cost a memcpy instead of a per-pixel walk.
        if op == RasterOp::Copy && self.clip_ref().is_none() {
            let (w, _) = self.raster_size();
            let (ly0, ly1) = self.row_limits();
            let dst_x0 = dst_origin.x.max(0);
            let dst_x1 = (dst_origin.x + src_rect.width).min(w);
            let dst_y0 = dst_origin.y.max(ly0);
            let dst_y1 = (dst_origin.y + src_rect.height).min(ly1);
            if dst_x0 >= dst_x1 {
                return;
            }
            let sx0 = (src_rect.x + (dst_x0 - dst_origin.x)) as usize;
            let len = (dst_x1 - dst_x0) as usize;
            for y in dst_y0..dst_y1 {
                let sy = src_rect.y + (y - dst_origin.y);
                let (dst_x0, sx0) = (dst_x0 as usize, sx0);
                self.row_mut(y)[dst_x0..dst_x0 + len].copy_from_slice(&src.row(sy)[sx0..sx0 + len]);
            }
            return;
        }
        for dy in 0..src_rect.height {
            for dx in 0..src_rect.width {
                let c = src.get(src_rect.x + dx, src_rect.y + dy);
                self.set_op(dst_origin.x + dx, dst_origin.y + dy, c, op);
            }
        }
    }
}

/// A rectangular array of packed RGB pixels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Framebuffer {
    width: i32,
    height: i32,
    pixels: Vec<u32>,
    clip: Option<Region>,
}

impl Raster for Framebuffer {
    fn raster_size(&self) -> (i32, i32) {
        (self.width, self.height)
    }

    fn row_limits(&self) -> (i32, i32) {
        (0, self.height)
    }

    fn clip_ref(&self) -> Option<&Region> {
        self.clip.as_ref()
    }

    #[inline]
    fn row(&self, y: i32) -> &[u32] {
        let w = self.width as usize;
        let off = y as usize * w;
        &self.pixels[off..off + w]
    }

    #[inline]
    fn row_mut(&mut self, y: i32) -> &mut [u32] {
        let w = self.width as usize;
        let off = y as usize * w;
        &mut self.pixels[off..off + w]
    }
}

impl Framebuffer {
    /// Creates a framebuffer filled with `fill`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is negative.
    pub fn new(width: i32, height: i32, fill: Color) -> Framebuffer {
        assert!(width >= 0 && height >= 0, "negative framebuffer dimension");
        Framebuffer {
            width,
            height,
            pixels: vec![fill.0; (width as usize) * (height as usize)],
            clip: None,
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> i32 {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> i32 {
        self.height
    }

    /// The full bounds rectangle.
    pub fn bounds(&self) -> Rect {
        Rect::new(0, 0, self.width, self.height)
    }

    /// Sets the clip region; `None` clips only to the framebuffer bounds.
    pub fn set_clip(&mut self, clip: Option<Region>) {
        self.clip = clip;
    }

    /// The current clip region, if any.
    pub fn clip(&self) -> Option<&Region> {
        self.clip.as_ref()
    }

    /// Reads a pixel; out-of-bounds reads return white.
    pub fn get(&self, x: i32, y: i32) -> Color {
        if x < 0 || y < 0 || x >= self.width || y >= self.height {
            return Color::WHITE;
        }
        Color(self.pixels[(y as usize) * (self.width as usize) + x as usize])
    }

    /// Writes a pixel, honoring bounds and clip.
    #[inline]
    pub fn set(&mut self, x: i32, y: i32, color: Color) {
        Raster::set(self, x, y, color);
    }

    /// Writes a pixel combining with the existing value via `op`.
    pub fn set_op(&mut self, x: i32, y: i32, color: Color, op: RasterOp) {
        Raster::set_op(self, x, y, color, op);
    }

    /// Fills the whole buffer (ignoring clip).
    pub fn clear(&mut self, color: Color) {
        self.pixels.fill(color.0);
    }

    /// Fills a rectangle.
    pub fn fill_rect(&mut self, r: Rect, color: Color) {
        Raster::fill_rect(self, r, color);
    }

    /// Fills a rectangle with a raster op.
    pub fn fill_rect_op(&mut self, r: Rect, color: Color, op: RasterOp) {
        Raster::fill_rect_op(self, r, color, op);
    }

    /// Outlines a rectangle with 1-pixel lines just inside its bounds.
    pub fn draw_rect(&mut self, r: Rect, color: Color) {
        Raster::draw_rect(self, r, color);
    }

    /// Draws a line of the given thickness (Bresenham; thickness expands
    /// each plotted position into a small square).
    pub fn draw_line(&mut self, a: Point, b: Point, thickness: i32, color: Color) {
        Raster::draw_line(self, a, b, thickness, color);
    }

    /// Outlines an axis-aligned ellipse inscribed in `r`.
    pub fn draw_oval(&mut self, r: Rect, color: Color) {
        Raster::draw_oval(self, r, color);
    }

    /// Fills an axis-aligned ellipse inscribed in `r`.
    pub fn fill_oval(&mut self, r: Rect, color: Color) {
        Raster::fill_oval(self, r, color);
    }

    /// Fills an arbitrary polygon (even-odd rule, scanline algorithm).
    pub fn fill_polygon(&mut self, pts: &[Point], color: Color) {
        Raster::fill_polygon(self, pts, color);
    }

    /// Fills a pie-slice wedge of the ellipse inscribed in `r`, between
    /// `start_deg` and `end_deg` (clockwise from 12 o'clock). Used by the
    /// pie-chart view.
    pub fn fill_wedge(&mut self, r: Rect, start_deg: f64, end_deg: f64, color: Color) {
        Raster::fill_wedge(self, r, start_deg, end_deg, color);
    }

    /// Copies rectangle `src_rect` of `src` to `dst_origin` here, using
    /// `op`.
    pub fn blit(&mut self, src: &Framebuffer, src_rect: Rect, dst_origin: Point, op: RasterOp) {
        Raster::blit(self, src, src_rect, dst_origin, op);
    }

    /// Copies a rectangle within this framebuffer (handles overlap),
    /// e.g. for scrolling.
    pub fn copy_within(&mut self, src_rect: Rect, dst_origin: Point) {
        let src_rect = src_rect.intersect(self.bounds());
        if src_rect.is_empty() {
            return;
        }
        // Snapshot the source rows to handle overlap simply and correctly.
        let snapshot: Vec<Vec<u32>> = (src_rect.y..src_rect.bottom())
            .map(|y| {
                let row = (y as usize) * (self.width as usize);
                self.pixels[row + src_rect.x as usize..row + src_rect.right() as usize].to_vec()
            })
            .collect();
        for (dy, rowdata) in snapshot.iter().enumerate() {
            for (dx, &px) in rowdata.iter().enumerate() {
                self.set(
                    dst_origin.x + dx as i32,
                    dst_origin.y + dy as i32,
                    Color(px),
                );
            }
        }
    }

    /// Splits the rows `[y0, y1)` into at most `n` disjoint horizontal
    /// [`FbBand`]s of near-equal height, each borrowing its own slice of
    /// the pixel store via `split_at_mut` — the borrow checker proves
    /// the bands never alias, so they can be painted from scoped
    /// threads. Rows are clamped to the buffer; empty ranges yield no
    /// bands. The bands carry no clip; workers set one per replayed
    /// command.
    pub fn bands_mut(&mut self, y0: i32, y1: i32, n: usize) -> Vec<FbBand<'_>> {
        let y0 = y0.clamp(0, self.height);
        let y1 = y1.clamp(y0, self.height);
        let total = (y1 - y0) as usize;
        let w = self.width as usize;
        let n = n.max(1);
        let mut out = Vec::with_capacity(n.min(total));
        if total == 0 || w == 0 {
            return out;
        }
        let mut rest = &mut self.pixels[y0 as usize * w..y1 as usize * w];
        let mut row_start = y0;
        for i in 0..n {
            let band_rows = (total * (i + 1) / n) - (total * i / n);
            if band_rows == 0 {
                continue;
            }
            let (head, tail) = rest.split_at_mut(band_rows * w);
            rest = tail;
            out.push(FbBand {
                width: self.width,
                height: self.height,
                y0: row_start,
                y1: row_start + band_rows as i32,
                rows: head,
                clip: None,
            });
            row_start += band_rows as i32;
        }
        out
    }

    /// Counts pixels equal to `color` within `r` (test helper, also used
    /// by snapshot assertions).
    pub fn count_pixels(&self, r: Rect, color: Color) -> usize {
        let r = r.intersect(self.bounds());
        let mut n = 0;
        for y in r.y..r.bottom() {
            for x in r.x..r.right() {
                if self.get(x, y) == color {
                    n += 1;
                }
            }
        }
        n
    }

    /// Renders the buffer as ASCII art (`#` for dark pixels), for tests.
    pub fn ascii_art(&self) -> String {
        let mut s = String::with_capacity(((self.width + 1) * self.height) as usize);
        for y in 0..self.height {
            for x in 0..self.width {
                s.push(if self.get(x, y).luma() < 128 {
                    '#'
                } else {
                    '.'
                });
            }
            s.push('\n');
        }
        s
    }

    /// Raw pixel access for encoders.
    pub fn pixels(&self) -> &[u32] {
        &self.pixels
    }

    /// The region where `self` and `other` differ, as row spans merged
    /// through the band algebra (vertically adjacent equal spans
    /// coalesce into one band rect). Returns `None` when the buffers
    /// have different dimensions — there is no meaningful diff across a
    /// resize, callers should fall back to shipping the whole frame.
    pub fn diff_region(&self, other: &Framebuffer) -> Option<Region> {
        if self.width != other.width || self.height != other.height {
            return None;
        }
        let w = self.width as usize;
        let mut spans = Vec::new();
        for y in 0..self.height {
            let row = y as usize * w;
            let a = &self.pixels[row..row + w];
            let b = &other.pixels[row..row + w];
            if a == b {
                continue;
            }
            let mut x = 0usize;
            while x < w {
                if a[x] == b[x] {
                    x += 1;
                    continue;
                }
                let start = x;
                while x < w && a[x] != b[x] {
                    x += 1;
                }
                spans.push(Rect::new(start as i32, y, (x - start) as i32, 1));
            }
        }
        Some(Region::from_rects(spans))
    }
}

/// A borrowed horizontal band of a [`Framebuffer`]: rows `[y0, y1)`
/// backed by a disjoint `&mut` slice of the parent's pixel store (see
/// [`Framebuffer::bands_mut`]). Implements [`Raster`] with the parent's
/// logical coordinate space, so drawing commands replayed against a
/// band land exactly where they would on the whole buffer — writes
/// outside the band's rows are simply suppressed.
#[derive(Debug)]
pub struct FbBand<'a> {
    width: i32,
    height: i32,
    y0: i32,
    y1: i32,
    rows: &'a mut [u32],
    clip: Option<Arc<Region>>,
}

impl FbBand<'_> {
    /// The half-open row range `[y0, y1)` this band owns.
    pub fn y_range(&self) -> (i32, i32) {
        (self.y0, self.y1)
    }

    /// Sets the clip region for subsequent drawing (shared, so a
    /// replayed command list can hand the same interned region to every
    /// band without cloning the rect vector per band).
    pub fn set_clip_shared(&mut self, clip: Option<Arc<Region>>) {
        self.clip = clip;
    }
}

impl Raster for FbBand<'_> {
    fn raster_size(&self) -> (i32, i32) {
        (self.width, self.height)
    }

    fn row_limits(&self) -> (i32, i32) {
        (self.y0, self.y1)
    }

    fn clip_ref(&self) -> Option<&Region> {
        self.clip.as_deref()
    }

    #[inline]
    fn row(&self, y: i32) -> &[u32] {
        let w = self.width as usize;
        let off = (y - self.y0) as usize * w;
        &self.rows[off..off + w]
    }

    #[inline]
    fn row_mut(&mut self, y: i32) -> &mut [u32] {
        let w = self.width as usize;
        let off = (y - self.y0) as usize * w;
        &mut self.rows[off..off + w]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_filled() {
        let fb = Framebuffer::new(4, 3, Color::WHITE);
        assert_eq!(fb.count_pixels(fb.bounds(), Color::WHITE), 12);
    }

    #[test]
    fn set_get_round_trip_and_oob() {
        let mut fb = Framebuffer::new(4, 4, Color::WHITE);
        fb.set(1, 2, Color::BLACK);
        assert_eq!(fb.get(1, 2), Color::BLACK);
        fb.set(-1, 0, Color::BLACK); // Silently clipped.
        fb.set(4, 0, Color::BLACK);
        assert_eq!(fb.count_pixels(fb.bounds(), Color::BLACK), 1);
        assert_eq!(fb.get(99, 99), Color::WHITE);
    }

    #[test]
    fn fill_rect_clips_to_bounds() {
        let mut fb = Framebuffer::new(10, 10, Color::WHITE);
        fb.fill_rect(Rect::new(5, 5, 100, 100), Color::BLACK);
        assert_eq!(fb.count_pixels(fb.bounds(), Color::BLACK), 25);
    }

    #[test]
    fn clip_region_restricts_drawing() {
        let mut fb = Framebuffer::new(10, 10, Color::WHITE);
        fb.set_clip(Some(Region::from_rect(Rect::new(0, 0, 3, 3))));
        fb.fill_rect(Rect::new(0, 0, 10, 10), Color::BLACK);
        assert_eq!(fb.count_pixels(fb.bounds(), Color::BLACK), 9);
        fb.set_clip(None);
        fb.fill_rect(Rect::new(0, 0, 10, 10), Color::BLACK);
        assert_eq!(fb.count_pixels(fb.bounds(), Color::BLACK), 100);
    }

    #[test]
    fn horizontal_and_vertical_lines() {
        let mut fb = Framebuffer::new(10, 10, Color::WHITE);
        fb.draw_line(Point::new(0, 5), Point::new(9, 5), 1, Color::BLACK);
        assert_eq!(fb.count_pixels(Rect::new(0, 5, 10, 1), Color::BLACK), 10);
        fb.draw_line(Point::new(3, 0), Point::new(3, 9), 1, Color::BLACK);
        assert_eq!(fb.count_pixels(Rect::new(3, 0, 1, 10), Color::BLACK), 10);
    }

    #[test]
    fn diagonal_line_endpoints() {
        let mut fb = Framebuffer::new(10, 10, Color::WHITE);
        fb.draw_line(Point::new(0, 0), Point::new(9, 9), 1, Color::BLACK);
        assert_eq!(fb.get(0, 0), Color::BLACK);
        assert_eq!(fb.get(9, 9), Color::BLACK);
        assert_eq!(fb.get(5, 5), Color::BLACK);
    }

    #[test]
    fn thick_line_is_wider() {
        let mut thin = Framebuffer::new(20, 20, Color::WHITE);
        let mut thick = Framebuffer::new(20, 20, Color::WHITE);
        thin.draw_line(Point::new(2, 10), Point::new(18, 10), 1, Color::BLACK);
        thick.draw_line(Point::new(2, 10), Point::new(18, 10), 3, Color::BLACK);
        assert!(
            thick.count_pixels(thick.bounds(), Color::BLACK)
                > 2 * thin.count_pixels(thin.bounds(), Color::BLACK)
        );
    }

    #[test]
    fn draw_rect_outline_only() {
        let mut fb = Framebuffer::new(10, 10, Color::WHITE);
        fb.draw_rect(Rect::new(2, 2, 6, 6), Color::BLACK);
        // Perimeter of a 6x6 square = 20 pixels.
        assert_eq!(fb.count_pixels(fb.bounds(), Color::BLACK), 20);
        assert_eq!(fb.get(4, 4), Color::WHITE);
    }

    #[test]
    fn fill_oval_covers_center_not_corners() {
        let mut fb = Framebuffer::new(20, 20, Color::WHITE);
        fb.fill_oval(Rect::new(0, 0, 20, 20), Color::BLACK);
        assert_eq!(fb.get(10, 10), Color::BLACK);
        assert_eq!(fb.get(0, 0), Color::WHITE);
        assert_eq!(fb.get(19, 19), Color::WHITE);
        let area = fb.count_pixels(fb.bounds(), Color::BLACK) as f64;
        // Area of a circle of radius ~10 is ~314; allow raster slop.
        assert!(area > 250.0 && area < 340.0, "oval area {area}");
    }

    #[test]
    fn polygon_triangle_fill() {
        let mut fb = Framebuffer::new(20, 20, Color::WHITE);
        fb.fill_polygon(
            &[Point::new(1, 1), Point::new(17, 1), Point::new(1, 17)],
            Color::BLACK,
        );
        assert_eq!(fb.get(3, 3), Color::BLACK);
        assert_eq!(fb.get(16, 16), Color::WHITE);
        let area = fb.count_pixels(fb.bounds(), Color::BLACK) as f64;
        assert!(area > 90.0 && area < 145.0, "triangle area {area}");
    }

    #[test]
    fn xor_fill_is_self_inverse() {
        let mut fb = Framebuffer::new(10, 10, Color::WHITE);
        fb.fill_rect(Rect::new(0, 0, 5, 10), Color::BLACK);
        let before = fb.clone();
        let sel = Rect::new(2, 2, 6, 6);
        fb.fill_rect_op(sel, Color::WHITE, RasterOp::Xor);
        assert_ne!(fb, before);
        fb.fill_rect_op(sel, Color::WHITE, RasterOp::Xor);
        assert_eq!(fb, before);
    }

    #[test]
    fn blit_copies_rect() {
        let mut src = Framebuffer::new(10, 10, Color::WHITE);
        src.fill_rect(Rect::new(0, 0, 4, 4), Color::BLACK);
        let mut dst = Framebuffer::new(10, 10, Color::WHITE);
        dst.blit(
            &src,
            Rect::new(0, 0, 4, 4),
            Point::new(5, 5),
            RasterOp::Copy,
        );
        assert_eq!(dst.count_pixels(Rect::new(5, 5, 4, 4), Color::BLACK), 16);
        assert_eq!(dst.count_pixels(dst.bounds(), Color::BLACK), 16);
    }

    #[test]
    fn copy_within_handles_overlap() {
        let mut fb = Framebuffer::new(10, 1, Color::WHITE);
        for x in 0..5 {
            fb.set(x, 0, Color::rgb(x as u8, 0, 0));
        }
        // Shift right by 2 with overlapping ranges.
        fb.copy_within(Rect::new(0, 0, 5, 1), Point::new(2, 0));
        for x in 0..5 {
            assert_eq!(fb.get(x + 2, 0), Color::rgb(x as u8, 0, 0));
        }
    }

    #[test]
    fn wedge_quarters_cover_quarter_area() {
        let mut fb = Framebuffer::new(40, 40, Color::WHITE);
        fb.fill_wedge(Rect::new(0, 0, 40, 40), 0.0, 90.0, Color::BLACK);
        // Top-right quadrant should be mostly black, bottom-left all white.
        assert!(fb.count_pixels(Rect::new(20, 0, 20, 20), Color::BLACK) > 200);
        assert_eq!(fb.count_pixels(Rect::new(0, 20, 18, 18), Color::BLACK), 0);
    }

    #[test]
    fn ascii_art_shape() {
        let mut fb = Framebuffer::new(3, 2, Color::WHITE);
        fb.set(1, 0, Color::BLACK);
        assert_eq!(fb.ascii_art(), ".#.\n...\n");
    }

    #[test]
    fn diff_region_of_identical_buffers_is_empty() {
        let a = Framebuffer::new(8, 8, Color::WHITE);
        let b = a.clone();
        assert!(a.diff_region(&b).unwrap().is_empty());
    }

    #[test]
    fn diff_region_merges_adjacent_rows_into_bands() {
        let a = Framebuffer::new(16, 16, Color::WHITE);
        let mut b = a.clone();
        b.fill_rect(Rect::new(3, 2, 5, 4), Color::BLACK);
        let diff = a.diff_region(&b).unwrap();
        assert_eq!(diff.rects(), &[Rect::new(3, 2, 5, 4)]);
        assert_eq!(diff.area(), 20);
    }

    #[test]
    fn diff_region_finds_scattered_spans() {
        let a = Framebuffer::new(10, 3, Color::WHITE);
        let mut b = a.clone();
        b.set(0, 0, Color::BLACK);
        b.set(1, 0, Color::BLACK);
        b.set(9, 0, Color::BLACK);
        b.set(4, 2, Color::BLACK);
        let diff = a.diff_region(&b).unwrap();
        assert_eq!(diff.area(), 4);
        assert!(diff.contains(Point::new(9, 0)));
        assert!(diff.contains(Point::new(4, 2)));
        assert!(!diff.contains(Point::new(5, 0)));
    }

    #[test]
    fn diff_region_rejects_size_mismatch() {
        let a = Framebuffer::new(4, 4, Color::WHITE);
        let b = Framebuffer::new(5, 4, Color::WHITE);
        assert!(a.diff_region(&b).is_none());
    }

    #[test]
    fn bands_cover_range_disjointly() {
        let mut fb = Framebuffer::new(8, 10, Color::WHITE);
        let bands = fb.bands_mut(0, 10, 4);
        assert_eq!(bands.len(), 4);
        let mut next = 0;
        for b in &bands {
            let (y0, y1) = b.y_range();
            assert_eq!(y0, next, "bands must tile contiguously");
            assert!(y1 > y0);
            next = y1;
        }
        assert_eq!(next, 10);
    }

    #[test]
    fn bands_clamp_and_skip_empty() {
        let mut fb = Framebuffer::new(8, 4, Color::WHITE);
        // Request more bands than rows: every band non-empty, ≤ rows bands.
        let bands = fb.bands_mut(-3, 99, 16);
        assert_eq!(bands.len(), 4);
        // Empty range yields nothing.
        assert!(fb.bands_mut(2, 2, 4).is_empty());
    }

    #[test]
    fn band_drawing_matches_whole_buffer_drawing() {
        // Paint the same scene into one whole buffer and into three
        // bands; the results must be byte-identical.
        let mut whole = Framebuffer::new(40, 30, Color::WHITE);
        fn scene<R: Raster>(t: &mut R) {
            t.fill_rect(Rect::new(2, 2, 30, 26), Color::rgb(200, 10, 10));
            t.draw_line(Point::new(0, 0), Point::new(39, 29), 3, Color::BLACK);
            t.fill_oval(Rect::new(5, 5, 20, 18), Color::rgb(0, 0, 255));
            t.draw_rect(Rect::new(1, 1, 38, 28), Color::BLACK);
            t.fill_polygon(
                &[Point::new(30, 2), Point::new(38, 20), Point::new(22, 25)],
                Color::rgb(0, 128, 0),
            );
            t.fill_rect_op(Rect::new(10, 10, 20, 12), Color::WHITE, RasterOp::Xor);
        }
        scene(&mut whole);
        let mut banded = Framebuffer::new(40, 30, Color::WHITE);
        for mut band in banded.bands_mut(0, 30, 3) {
            scene(&mut band);
        }
        assert_eq!(whole, banded);
    }

    #[test]
    fn band_clip_matches_whole_buffer_clip() {
        let clip = Region::from_rects(vec![Rect::new(3, 3, 10, 8), Rect::new(20, 12, 9, 9)]);
        let mut whole = Framebuffer::new(32, 24, Color::WHITE);
        whole.set_clip(Some(clip.clone()));
        whole.fill_rect(Rect::new(0, 0, 32, 24), Color::BLACK);
        whole.set_clip(None);

        let mut banded = Framebuffer::new(32, 24, Color::WHITE);
        let shared = Arc::new(clip);
        for mut band in banded.bands_mut(0, 24, 5) {
            band.set_clip_shared(Some(shared.clone()));
            band.fill_rect(Rect::new(0, 0, 32, 24), Color::BLACK);
        }
        assert_eq!(whole, banded);
    }
}
