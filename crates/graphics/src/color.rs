//! Color model.
//!
//! 1988 Andrew ran on monochrome bitmapped displays; the toolkit drew in
//! black-on-white with XOR for selection feedback. We keep a small RGB
//! model so the simulated backends can also render shaded UI furniture
//! (scrollbar troughs, chart slices) while preserving the classic
//! constants.

/// A packed RGB color (8 bits per channel, no alpha).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Color(pub u32);

impl Color {
    /// Pure black — the toolkit's foreground.
    pub const BLACK: Color = Color(0x000000);
    /// Pure white — the toolkit's background.
    pub const WHITE: Color = Color(0xFFFFFF);
    /// 25% gray, used for scrollbar troughs and window furniture.
    pub const LIGHT_GRAY: Color = Color(0xC0C0C0);
    /// 50% gray.
    pub const GRAY: Color = Color(0x808080);
    /// 75% gray.
    pub const DARK_GRAY: Color = Color(0x404040);
    /// Saturated red (chart slices).
    pub const RED: Color = Color(0xCC3333);
    /// Saturated green (chart slices).
    pub const GREEN: Color = Color(0x33990A);
    /// Saturated blue (chart slices).
    pub const BLUE: Color = Color(0x3355CC);
    /// Warm yellow (chart slices).
    pub const YELLOW: Color = Color(0xDDAA22);

    /// Builds a color from channels.
    pub const fn rgb(r: u8, g: u8, b: u8) -> Color {
        Color(((r as u32) << 16) | ((g as u32) << 8) | b as u32)
    }

    /// Red channel.
    pub const fn r(self) -> u8 {
        ((self.0 >> 16) & 0xFF) as u8
    }

    /// Green channel.
    pub const fn g(self) -> u8 {
        ((self.0 >> 8) & 0xFF) as u8
    }

    /// Blue channel.
    pub const fn b(self) -> u8 {
        (self.0 & 0xFF) as u8
    }

    /// Rec. 601 luma in `0..=255`.
    pub fn luma(self) -> u8 {
        let y = 0.299 * self.r() as f32 + 0.587 * self.g() as f32 + 0.114 * self.b() as f32;
        y.round().clamp(0.0, 255.0) as u8
    }

    /// Linear blend: `t = 0` is `self`, `t = 255` is `other`.
    pub fn blend(self, other: Color, t: u8) -> Color {
        let lerp = |a: u8, b: u8| -> u8 {
            ((a as u32 * (255 - t as u32) + b as u32 * t as u32) / 255) as u8
        };
        Color::rgb(
            lerp(self.r(), other.r()),
            lerp(self.g(), other.g()),
            lerp(self.b(), other.b()),
        )
    }

    /// Bitwise XOR of channel values — the classic monochrome selection
    /// highlight (`RasterOp::Xor` uses this).
    pub fn xor(self, other: Color) -> Color {
        Color(self.0 ^ other.0)
    }

    /// A categorical palette for chart views, cycling by index.
    pub fn chart(index: usize) -> Color {
        const PALETTE: [Color; 6] = [
            Color::BLUE,
            Color::RED,
            Color::GREEN,
            Color::YELLOW,
            Color::GRAY,
            Color::DARK_GRAY,
        ];
        PALETTE[index % PALETTE.len()]
    }
}

impl Default for Color {
    fn default() -> Self {
        Color::BLACK
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channels_round_trip() {
        let c = Color::rgb(12, 200, 255);
        assert_eq!((c.r(), c.g(), c.b()), (12, 200, 255));
    }

    #[test]
    fn luma_extremes() {
        assert_eq!(Color::BLACK.luma(), 0);
        assert_eq!(Color::WHITE.luma(), 255);
        assert!(Color::GRAY.luma() > 100 && Color::GRAY.luma() < 156);
    }

    #[test]
    fn blend_endpoints() {
        let a = Color::rgb(0, 0, 0);
        let b = Color::rgb(255, 255, 255);
        assert_eq!(a.blend(b, 0), a);
        assert_eq!(a.blend(b, 255), b);
        let mid = a.blend(b, 128);
        assert!(mid.r() > 120 && mid.r() < 136);
    }

    #[test]
    fn xor_is_self_inverse() {
        let a = Color::rgb(10, 20, 30);
        let b = Color::WHITE;
        assert_eq!(a.xor(b).xor(b), a);
    }

    #[test]
    fn chart_palette_cycles() {
        assert_eq!(Color::chart(0), Color::chart(6));
        assert_ne!(Color::chart(0), Color::chart(1));
    }
}
