//! Integer geometry: points, sizes, and rectangles.
//!
//! All toolkit coordinates are `i32` pixels with the origin at the top
//! left and y growing downward, matching both the original ITC window
//! manager and X.11.

use std::fmt;
use std::ops::{Add, AddAssign, Neg, Sub, SubAssign};

/// A point in pixel coordinates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Point {
    /// Horizontal coordinate, growing rightward.
    pub x: i32,
    /// Vertical coordinate, growing downward.
    pub y: i32,
}

impl Point {
    /// The origin, `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0, y: 0 };

    /// Creates a point.
    pub const fn new(x: i32, y: i32) -> Point {
        Point { x, y }
    }

    /// Squared Euclidean distance to `other` (avoids floating point).
    pub fn dist2(self, other: Point) -> i64 {
        let dx = (self.x - other.x) as i64;
        let dy = (self.y - other.y) as i64;
        dx * dx + dy * dy
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Point {
    fn add_assign(&mut self, rhs: Point) {
        *self = *self + rhs;
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Point {
    fn sub_assign(&mut self, rhs: Point) {
        *self = *self - rhs;
    }
}

impl Neg for Point {
    type Output = Point;
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// A width/height pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Size {
    /// Width in pixels.
    pub width: i32,
    /// Height in pixels.
    pub height: i32,
}

impl Size {
    /// The empty size.
    pub const ZERO: Size = Size {
        width: 0,
        height: 0,
    };

    /// Creates a size.
    pub const fn new(width: i32, height: i32) -> Size {
        Size { width, height }
    }

    /// True if either dimension is non-positive.
    pub fn is_empty(self) -> bool {
        self.width <= 0 || self.height <= 0
    }

    /// Component-wise maximum.
    pub fn max(self, other: Size) -> Size {
        Size::new(self.width.max(other.width), self.height.max(other.height))
    }
}

impl fmt::Display for Size {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.width, self.height)
    }
}

/// An axis-aligned rectangle: origin plus extent.
///
/// The rectangle covers pixel columns `x .. x + width` and rows
/// `y .. y + height` (half-open). Rectangles with non-positive extent are
/// *empty* and behave as the identity for [`Rect::union`] and as the
/// absorbing element for [`Rect::intersect`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Rect {
    /// Left edge.
    pub x: i32,
    /// Top edge.
    pub y: i32,
    /// Extent in x.
    pub width: i32,
    /// Extent in y.
    pub height: i32,
}

impl Rect {
    /// The empty rectangle at the origin.
    pub const EMPTY: Rect = Rect {
        x: 0,
        y: 0,
        width: 0,
        height: 0,
    };

    /// Creates a rectangle from origin and extent.
    pub const fn new(x: i32, y: i32, width: i32, height: i32) -> Rect {
        Rect {
            x,
            y,
            width,
            height,
        }
    }

    /// Creates a rectangle from two corner points (any order).
    pub fn from_corners(a: Point, b: Point) -> Rect {
        let x = a.x.min(b.x);
        let y = a.y.min(b.y);
        Rect::new(x, y, (a.x - b.x).abs(), (a.y - b.y).abs())
    }

    /// Creates a rectangle from origin point and size.
    pub fn at(origin: Point, size: Size) -> Rect {
        Rect::new(origin.x, origin.y, size.width, size.height)
    }

    /// The top-left corner.
    pub fn origin(self) -> Point {
        Point::new(self.x, self.y)
    }

    /// The extent as a [`Size`].
    pub fn size(self) -> Size {
        Size::new(self.width, self.height)
    }

    /// One past the right edge.
    pub fn right(self) -> i32 {
        self.x + self.width
    }

    /// One past the bottom edge.
    pub fn bottom(self) -> i32 {
        self.y + self.height
    }

    /// The center point (rounded toward the origin).
    pub fn center(self) -> Point {
        Point::new(self.x + self.width / 2, self.y + self.height / 2)
    }

    /// True if the rectangle has no area.
    pub fn is_empty(self) -> bool {
        self.width <= 0 || self.height <= 0
    }

    /// True if `p` lies inside the (half-open) rectangle.
    pub fn contains(self, p: Point) -> bool {
        p.x >= self.x && p.x < self.right() && p.y >= self.y && p.y < self.bottom()
    }

    /// True if `other` lies entirely inside `self`.
    pub fn contains_rect(self, other: Rect) -> bool {
        if other.is_empty() {
            return true;
        }
        other.x >= self.x
            && other.y >= self.y
            && other.right() <= self.right()
            && other.bottom() <= self.bottom()
    }

    /// True if the two rectangles share any pixel.
    pub fn intersects(self, other: Rect) -> bool {
        !self.intersect(other).is_empty()
    }

    /// The overlap of two rectangles ([`Rect::EMPTY`] if disjoint).
    pub fn intersect(self, other: Rect) -> Rect {
        let x = self.x.max(other.x);
        let y = self.y.max(other.y);
        let r = self.right().min(other.right());
        let b = self.bottom().min(other.bottom());
        if r <= x || b <= y {
            Rect::EMPTY
        } else {
            Rect::new(x, y, r - x, b - y)
        }
    }

    /// The smallest rectangle covering both inputs; empty inputs are
    /// ignored.
    pub fn union(self, other: Rect) -> Rect {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return self;
        }
        let x = self.x.min(other.x);
        let y = self.y.min(other.y);
        let r = self.right().max(other.right());
        let b = self.bottom().max(other.bottom());
        Rect::new(x, y, r - x, b - y)
    }

    /// The rectangle moved by `(dx, dy)`.
    pub fn translate(self, dx: i32, dy: i32) -> Rect {
        Rect::new(self.x + dx, self.y + dy, self.width, self.height)
    }

    /// The rectangle shrunk by `d` on every side (grown if `d` is
    /// negative). Shrinking past empty yields an empty rectangle.
    pub fn inset(self, d: i32) -> Rect {
        Rect::new(
            self.x + d,
            self.y + d,
            self.width - 2 * d,
            self.height - 2 * d,
        )
    }

    /// Area in pixels (0 for empty rectangles).
    pub fn area(self) -> i64 {
        if self.is_empty() {
            0
        } else {
            self.width as i64 * self.height as i64
        }
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}+{}+{}", self.width, self.height, self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_arithmetic() {
        let p = Point::new(3, 4) + Point::new(1, -2);
        assert_eq!(p, Point::new(4, 2));
        assert_eq!(p - Point::new(4, 2), Point::ORIGIN);
        assert_eq!(-p, Point::new(-4, -2));
        assert_eq!(Point::ORIGIN.dist2(Point::new(3, 4)), 25);
    }

    #[test]
    fn rect_contains_is_half_open() {
        let r = Rect::new(10, 10, 5, 5);
        assert!(r.contains(Point::new(10, 10)));
        assert!(r.contains(Point::new(14, 14)));
        assert!(!r.contains(Point::new(15, 10)));
        assert!(!r.contains(Point::new(10, 15)));
    }

    #[test]
    fn intersect_and_union() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 10, 10);
        assert_eq!(a.intersect(b), Rect::new(5, 5, 5, 5));
        assert_eq!(a.union(b), Rect::new(0, 0, 15, 15));
        let disjoint = Rect::new(100, 100, 5, 5);
        assert!(a.intersect(disjoint).is_empty());
        assert!(!a.intersects(disjoint));
    }

    #[test]
    fn empty_rect_identities() {
        let a = Rect::new(2, 3, 7, 9);
        assert_eq!(a.union(Rect::EMPTY), a);
        assert_eq!(Rect::EMPTY.union(a), a);
        assert!(Rect::EMPTY.intersect(a).is_empty());
        assert!(a.contains_rect(Rect::EMPTY));
    }

    #[test]
    fn inset_shrinks_and_grows() {
        let r = Rect::new(0, 0, 10, 10);
        assert_eq!(r.inset(2), Rect::new(2, 2, 6, 6));
        assert_eq!(r.inset(-2), Rect::new(-2, -2, 14, 14));
        assert!(r.inset(6).is_empty());
    }

    #[test]
    fn from_corners_normalizes() {
        let r = Rect::from_corners(Point::new(10, 2), Point::new(4, 8));
        assert_eq!(r, Rect::new(4, 2, 6, 6));
    }

    #[test]
    fn contains_rect_cases() {
        let outer = Rect::new(0, 0, 20, 20);
        assert!(outer.contains_rect(Rect::new(5, 5, 10, 10)));
        assert!(outer.contains_rect(outer));
        assert!(!outer.contains_rect(Rect::new(15, 15, 10, 10)));
    }

    #[test]
    fn area_of_empty_is_zero() {
        assert_eq!(Rect::new(0, 0, -5, 10).area(), 0);
        assert_eq!(Rect::new(0, 0, 4, 5).area(), 20);
    }
}
