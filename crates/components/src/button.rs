//! A push button.
//!
//! Buttons are pure user-interface views (no data object). A press
//! highlights; releasing inside the button dispatches its command string
//! to a target view through the normal `perform` protocol — the same
//! protocol menus use, so anything a menu can invoke a button can too.

use std::any::Any;

use atk_graphics::{Color, FontDesc, Point, Rect, Size};
use atk_wm::{Button, Graphic, MouseAction};

use atk_core::{Update, View, ViewBase, ViewId, World};

/// A labelled push button dispatching a command on click.
#[derive(Clone)]
pub struct ButtonView {
    base: ViewBase,
    label: String,
    command: String,
    target: Option<ViewId>,
    font: FontDesc,
    pressed: bool,
    clicks: u64,
}

impl ButtonView {
    /// Creates a button with a label and the command it dispatches.
    pub fn new(label: &str, command: &str) -> ButtonView {
        ButtonView {
            base: ViewBase::new(),
            label: label.to_string(),
            command: command.to_string(),
            target: None,
            font: FontDesc::default_body(),
            pressed: false,
            clicks: 0,
        }
    }

    /// Sets the view that receives the command.
    pub fn set_target(&mut self, target: ViewId) {
        self.target = Some(target);
    }

    /// Number of completed clicks (instrumentation).
    pub fn clicks(&self) -> u64 {
        self.clicks
    }

    /// The button's label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl View for ButtonView {
    fn class_name(&self) -> &'static str {
        "button"
    }
    fn id(&self) -> ViewId {
        self.base.id
    }
    fn set_id(&mut self, id: ViewId) {
        self.base.id = id;
    }

    fn desired_size(&mut self, _world: &mut World, _budget: i32) -> Size {
        let m = self.font.metrics();
        Size::new(self.font.string_width(&self.label) + 16, m.line_height + 6)
    }

    fn draw(&mut self, world: &mut World, g: &mut dyn Graphic, _update: Update) {
        let bounds = Rect::at(Point::ORIGIN, world.view_bounds(self.base.id).size());
        g.set_foreground(Color::LIGHT_GRAY);
        g.fill_rect(bounds.inset(1));
        g.draw_bezel(bounds, !self.pressed);
        g.set_font(self.font.clone());
        g.set_foreground(Color::BLACK);
        let text_rect = if self.pressed {
            bounds.translate(1, 1)
        } else {
            bounds
        };
        g.draw_string_centered(text_rect, &self.label);
    }

    fn mouse(&mut self, world: &mut World, action: MouseAction, pt: Point) -> bool {
        let bounds = Rect::at(Point::ORIGIN, world.view_bounds(self.base.id).size());
        match action {
            MouseAction::Down(Button::Left) => {
                self.pressed = true;
                world.post_damage_full(self.base.id);
                true
            }
            MouseAction::Up(Button::Left) => {
                let was = self.pressed;
                self.pressed = false;
                world.post_damage_full(self.base.id);
                if was && bounds.contains(pt) {
                    self.clicks += 1;
                    if let Some(target) = self.target {
                        world.post_command(target, &self.command);
                    }
                }
                true
            }
            MouseAction::Drag(Button::Left) => true,
            _ => false,
        }
    }

    fn fork(&self) -> Option<Box<dyn View>> {
        Some(Box::new(self.clone()))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atk_core::ChangeRec;
    use atk_core::DataId;

    struct SinkView {
        base: ViewBase,
        commands: Vec<String>,
    }
    impl SinkView {
        fn new() -> SinkView {
            SinkView {
                base: ViewBase::new(),
                commands: Vec::new(),
            }
        }
    }
    impl View for SinkView {
        fn class_name(&self) -> &'static str {
            "sink"
        }
        fn id(&self) -> ViewId {
            self.base.id
        }
        fn set_id(&mut self, id: ViewId) {
            self.base.id = id;
        }
        fn desired_size(&mut self, _w: &mut World, _b: i32) -> Size {
            Size::ZERO
        }
        fn draw(&mut self, _w: &mut World, _g: &mut dyn Graphic, _u: Update) {}
        fn perform(&mut self, _w: &mut World, command: &str) -> bool {
            self.commands.push(command.to_string());
            true
        }
        fn observed_changed(&mut self, _w: &mut World, _d: DataId, _c: &ChangeRec) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn click_dispatches_command_to_target() {
        let mut world = World::new();
        let sink = world.insert_view(Box::new(SinkView::new()));
        let mut btn = ButtonView::new("Send", "message-send");
        btn.set_target(sink);
        let bid = world.insert_view(Box::new(btn));
        world.set_view_bounds(bid, Rect::new(0, 0, 60, 20));

        world.with_view(bid, |v, w| {
            v.mouse(w, MouseAction::Down(Button::Left), Point::new(5, 5));
            v.mouse(w, MouseAction::Up(Button::Left), Point::new(5, 5));
        });
        world.flush_commands();
        assert_eq!(
            world.view_as::<SinkView>(sink).unwrap().commands,
            vec!["message-send".to_string()]
        );
        assert_eq!(world.view_as::<ButtonView>(bid).unwrap().clicks(), 1);
    }

    #[test]
    fn release_outside_cancels() {
        let mut world = World::new();
        let sink = world.insert_view(Box::new(SinkView::new()));
        let mut btn = ButtonView::new("Send", "go");
        btn.set_target(sink);
        let bid = world.insert_view(Box::new(btn));
        world.set_view_bounds(bid, Rect::new(0, 0, 60, 20));
        world.with_view(bid, |v, w| {
            v.mouse(w, MouseAction::Down(Button::Left), Point::new(5, 5));
            v.mouse(w, MouseAction::Up(Button::Left), Point::new(200, 5));
        });
        assert!(world.view_as::<SinkView>(sink).unwrap().commands.is_empty());
        assert_eq!(world.view_as::<ButtonView>(bid).unwrap().clicks(), 0);
    }
}
