//! The frame: message line, dialog facility, and the draggable divider
//! with its event *overlap band*.
//!
//! The paper's figure 1 shows a frame providing a message line above the
//! application body, and §3 uses the frame twice as the argument for
//! parental authority:
//!
//! * "The frame accepts the mouse event directly if it is close to the
//!   dividing line between its two children (in this case the user is
//!   allowed to adjust the position of the dividing line)."
//! * "In order to allow the user to easily drag that line, the frame
//!   allocates a slightly larger area to accept mouse events. **That area
//!   overlaps the space allocated to the frame's children.** If the
//!   handling of events was dictated by the screen layout, this
//!   interaction would be much more difficult to provide."
//!
//! [`FrameView`] implements exactly that: a ±[`GRAB_BAND`] band around the
//! divider in which the frame consumes mouse events that *physically* lie
//! inside a child. The integration tests drive a click into the band and
//! verify the child never sees it — and that the same click one pixel
//! outside the band reaches the child.
//!
//! The frame also provides the paper's footnote-4 dialog facility: a
//! question posed on the message line whose typed answer is dispatched as
//! a command, with the frame intercepting keystrokes (via `filter_key`,
//! more parental authority) while the dialog is up.

use std::any::Any;

use atk_graphics::{Color, FontDesc, Point, Rect, Size};
use atk_wm::{Button, CursorShape, Graphic, Key, MouseAction};

use atk_core::{MenuItem, Update, View, ViewBase, ViewId, World};

/// Height of the message line in pixels.
pub const MESSAGE_LINE_HEIGHT: i32 = 14;
/// Half-height of the divider's event overlap band.
pub const GRAB_BAND: i32 = 3;

/// A pending dialog: question, and where the answer goes.
#[derive(Clone)]
struct Dialog {
    question: String,
    answer: String,
    target: ViewId,
    command: String,
}

/// The frame view. See the module docs.
#[derive(Clone)]
pub struct FrameView {
    base: ViewBase,
    upper: Option<ViewId>,
    lower: Option<ViewId>,
    /// Fraction of the body height given to the upper child.
    divider_frac: f32,
    dragging_divider: bool,
    message: String,
    dialog: Option<Dialog>,
    font: FontDesc,
    /// Mouse events the frame consumed inside the overlap band
    /// (instrumentation for the E1 experiment).
    pub band_grabs: u64,
}

impl FrameView {
    /// An empty frame.
    pub fn new() -> FrameView {
        FrameView {
            base: ViewBase::new(),
            upper: None,
            lower: None,
            divider_frac: 0.5,
            dragging_divider: false,
            message: String::new(),
            dialog: None,
            font: FontDesc::default_body(),
            band_grabs: 0,
        }
    }

    /// Installs the single body child.
    pub fn set_body(&mut self, world: &mut World, body: ViewId) {
        world.set_view_parent(body, Some(self.base.id));
        self.upper = Some(body);
        self.lower = None;
        self.relayout(world);
    }

    /// Installs two panes separated by the draggable divider.
    pub fn set_panes(&mut self, world: &mut World, upper: ViewId, lower: ViewId) {
        world.set_view_parent(upper, Some(self.base.id));
        world.set_view_parent(lower, Some(self.base.id));
        self.upper = Some(upper);
        self.lower = Some(lower);
        self.relayout(world);
    }

    /// Sets the message line text.
    pub fn set_message(&mut self, world: &mut World, text: &str) {
        self.message = text.to_string();
        world.post_damage(
            self.base.id,
            Rect::new(
                0,
                0,
                world.view_bounds(self.base.id).width,
                MESSAGE_LINE_HEIGHT,
            ),
        );
    }

    /// The message line text.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Poses a question on the message line. When the user finishes the
    /// answer with Return, `target` receives `perform("{command}:{answer}")`.
    pub fn prompt(&mut self, world: &mut World, question: &str, target: ViewId, command: &str) {
        self.dialog = Some(Dialog {
            question: question.to_string(),
            answer: String::new(),
            target,
            command: command.to_string(),
        });
        world.post_damage_full(self.base.id);
    }

    /// True if a dialog is up.
    pub fn dialog_active(&self) -> bool {
        self.dialog.is_some()
    }

    /// Current divider fraction.
    pub fn divider_frac(&self) -> f32 {
        self.divider_frac
    }

    fn body_rect(&self, world: &World) -> Rect {
        let size = world.view_bounds(self.base.id).size();
        Rect::new(
            0,
            MESSAGE_LINE_HEIGHT,
            size.width,
            (size.height - MESSAGE_LINE_HEIGHT).max(0),
        )
    }

    /// Divider y in frame coordinates (only meaningful with two panes).
    pub fn divider_y(&self, world: &World) -> i32 {
        let body = self.body_rect(world);
        body.y + (body.height as f32 * self.divider_frac) as i32
    }

    fn relayout(&mut self, world: &mut World) {
        let body = self.body_rect(world);
        match (self.upper, self.lower) {
            (Some(only), None) => {
                world.set_view_bounds(only, body);
            }
            (Some(upper), Some(lower)) => {
                let dy = self.divider_y(world);
                world.set_view_bounds(upper, Rect::new(body.x, body.y, body.width, dy - body.y));
                world.set_view_bounds(
                    lower,
                    Rect::new(body.x, dy + 1, body.width, body.bottom() - dy - 1),
                );
            }
            _ => {}
        }
    }

    fn in_grab_band(&self, world: &World, pt: Point) -> bool {
        if self.lower.is_none() {
            return false;
        }
        let dy = self.divider_y(world);
        (pt.y - dy).abs() <= GRAB_BAND && self.body_rect(world).contains(pt)
    }
}

impl Default for FrameView {
    fn default() -> Self {
        FrameView::new()
    }
}

impl View for FrameView {
    fn class_name(&self) -> &'static str {
        "frame"
    }
    fn id(&self) -> ViewId {
        self.base.id
    }
    fn set_id(&mut self, id: ViewId) {
        self.base.id = id;
    }
    fn children(&self) -> Vec<ViewId> {
        self.upper.into_iter().chain(self.lower).collect()
    }

    fn desired_size(&mut self, world: &mut World, budget: i32) -> Size {
        let mut s = Size::new(budget, MESSAGE_LINE_HEIGHT);
        if let Some(u) = self.upper {
            let us = world
                .with_view(u, |v, w| v.desired_size(w, budget))
                .unwrap_or(Size::ZERO);
            s.height += us.height;
            s.width = s.width.max(us.width);
        }
        s
    }

    fn layout(&mut self, world: &mut World) {
        self.relayout(world);
    }

    fn draw(&mut self, world: &mut World, g: &mut dyn Graphic, update: Update) {
        let size = world.view_bounds(self.base.id).size();
        // Message line.
        let msg_rect = Rect::new(0, 0, size.width, MESSAGE_LINE_HEIGHT);
        if update.touches(msg_rect) {
            g.set_foreground(Color::WHITE);
            g.fill_rect(msg_rect);
            g.set_foreground(Color::BLACK);
            g.draw_line(
                Point::new(0, MESSAGE_LINE_HEIGHT - 1),
                Point::new(size.width - 1, MESSAGE_LINE_HEIGHT - 1),
            );
            g.set_font(self.font.clone());
            let text = match &self.dialog {
                Some(d) => format!("{} {}", d.question, d.answer),
                None => self.message.clone(),
            };
            g.draw_string(Point::new(3, 2), &text);
        }
        // Children, then the divider painted *over* them (the parent
        // repaints after the children — the ordering §3 motivates).
        if let Some(u) = self.upper {
            world.draw_child(u, g, update);
        }
        if let Some(l) = self.lower {
            world.draw_child(l, g, update);
            let dy = self.divider_y(world);
            g.set_foreground(Color::BLACK);
            g.draw_line(Point::new(0, dy), Point::new(size.width - 1, dy));
        }
    }

    fn mouse(&mut self, world: &mut World, action: MouseAction, pt: Point) -> bool {
        // An in-progress divider drag owns the stream.
        if self.dragging_divider {
            match action {
                MouseAction::Drag(Button::Left) => {
                    let body = self.body_rect(world);
                    if body.height > 2 {
                        let frac = (pt.y - body.y) as f32 / body.height as f32;
                        self.divider_frac = frac.clamp(0.1, 0.9);
                        self.relayout(world);
                        world.post_damage_full(self.base.id);
                    }
                    return true;
                }
                MouseAction::Up(Button::Left) => {
                    self.dragging_divider = false;
                    return true;
                }
                _ => {}
            }
        }
        // The overlap band: the frame takes these even though the point
        // is physically inside a child.
        if self.in_grab_band(world, pt) {
            if let MouseAction::Down(Button::Left) = action {
                self.dragging_divider = true;
                self.band_grabs += 1;
                return true;
            }
            if matches!(action, MouseAction::Movement) {
                return true;
            }
        }
        // Message line clicks are the frame's.
        if pt.y < MESSAGE_LINE_HEIGHT {
            return true;
        }
        for child in [self.upper, self.lower].into_iter().flatten() {
            if world.mouse_to_child(child, action, pt) {
                return true;
            }
        }
        false
    }

    /// Dialog mode intercepts every keystroke — parental authority over
    /// the keyboard.
    fn filter_key(&mut self, world: &mut World, key: Key, _target: ViewId) -> Option<Key> {
        let Some(dialog) = self.dialog.as_mut() else {
            return Some(key);
        };
        match key {
            Key::Char(c) => dialog.answer.push(c),
            Key::Backspace => {
                dialog.answer.pop();
            }
            Key::Return => {
                let d = self.dialog.take().expect("dialog checked above");
                let cmd = format!("{}:{}", d.command, d.answer);
                world.with_view(d.target, |v, w| v.perform(w, &cmd));
            }
            Key::Escape => {
                self.dialog = None;
            }
            _ => {}
        }
        world.post_damage(
            self.base.id,
            Rect::new(
                0,
                0,
                world.view_bounds(self.base.id).width,
                MESSAGE_LINE_HEIGHT,
            ),
        );
        None
    }

    fn menus(&self, _world: &World) -> Vec<MenuItem> {
        vec![
            MenuItem::new("File", "Save", "save-document"),
            MenuItem::new("File", "Quit", "quit"),
        ]
    }

    fn perform(&mut self, world: &mut World, command: &str) -> bool {
        match command {
            "quit" => {
                self.set_message(world, "quit requested");
                true
            }
            _ => false,
        }
    }

    fn cursor_at(&self, world: &World, pt: Point) -> Option<CursorShape> {
        if self.in_grab_band(world, pt) {
            return Some(CursorShape::HorizontalDrag);
        }
        for child in [self.upper, self.lower].into_iter().flatten() {
            let b = world.view_bounds(child);
            if b.contains(pt) {
                return world
                    .view_dyn(child)
                    .and_then(|v| v.cursor_at(world, pt - b.origin()));
            }
        }
        None
    }

    fn fork(&self) -> Option<Box<dyn View>> {
        Some(Box::new(self.clone()))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountView {
        base: ViewBase,
        mouse_events: u64,
        commands: Vec<String>,
    }
    impl CountView {
        fn new() -> CountView {
            CountView {
                base: ViewBase::new(),
                mouse_events: 0,
                commands: Vec::new(),
            }
        }
    }
    impl View for CountView {
        fn class_name(&self) -> &'static str {
            "count"
        }
        fn id(&self) -> ViewId {
            self.base.id
        }
        fn set_id(&mut self, id: ViewId) {
            self.base.id = id;
        }
        fn desired_size(&mut self, _w: &mut World, _b: i32) -> Size {
            Size::new(10, 10)
        }
        fn draw(&mut self, _w: &mut World, _g: &mut dyn Graphic, _u: Update) {}
        fn mouse(&mut self, _w: &mut World, _a: MouseAction, _p: Point) -> bool {
            self.mouse_events += 1;
            true
        }
        fn perform(&mut self, _w: &mut World, command: &str) -> bool {
            self.commands.push(command.to_string());
            true
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn two_pane_frame() -> (World, ViewId, ViewId, ViewId) {
        let mut world = World::new();
        let upper = world.insert_view(Box::new(CountView::new()));
        let lower = world.insert_view(Box::new(CountView::new()));
        let frame = world.insert_view(Box::new(FrameView::new()));
        world.set_view_bounds(frame, Rect::new(0, 0, 200, 214));
        world.with_view(frame, |v, w| {
            v.as_any_mut()
                .downcast_mut::<FrameView>()
                .unwrap()
                .set_panes(w, upper, lower);
        });
        (world, frame, upper, lower)
    }

    #[test]
    fn panes_split_at_divider() {
        let (world, frame, upper, lower) = two_pane_frame();
        let fv = world.view_as::<FrameView>(frame).unwrap();
        let dy = fv.divider_y(&world);
        assert_eq!(dy, MESSAGE_LINE_HEIGHT + 100);
        assert_eq!(world.view_bounds(upper).bottom(), dy);
        assert_eq!(world.view_bounds(lower).y, dy + 1);
    }

    #[test]
    fn overlap_band_steals_events_from_children() {
        let (mut world, frame, upper, lower) = two_pane_frame();
        let dy = world.view_as::<FrameView>(frame).unwrap().divider_y(&world);
        // Click 2px above the divider: physically inside `upper`, but
        // within the grab band — the frame must take it.
        world.with_view(frame, |v, w| {
            v.mouse(w, MouseAction::Down(Button::Left), Point::new(50, dy - 2));
            v.mouse(w, MouseAction::Up(Button::Left), Point::new(50, dy - 2));
        });
        assert_eq!(world.view_as::<CountView>(upper).unwrap().mouse_events, 0);
        assert_eq!(world.view_as::<CountView>(lower).unwrap().mouse_events, 0);
        assert_eq!(world.view_as::<FrameView>(frame).unwrap().band_grabs, 1);
    }

    #[test]
    fn outside_band_reaches_child() {
        let (mut world, frame, upper, _lower) = two_pane_frame();
        let dy = world.view_as::<FrameView>(frame).unwrap().divider_y(&world);
        world.with_view(frame, |v, w| {
            v.mouse(
                w,
                MouseAction::Down(Button::Left),
                Point::new(50, dy - GRAB_BAND - 1),
            );
        });
        assert_eq!(world.view_as::<CountView>(upper).unwrap().mouse_events, 1);
    }

    #[test]
    fn divider_drag_moves_split() {
        let (mut world, frame, upper, _lower) = two_pane_frame();
        let dy = world.view_as::<FrameView>(frame).unwrap().divider_y(&world);
        world.with_view(frame, |v, w| {
            v.mouse(w, MouseAction::Down(Button::Left), Point::new(50, dy));
            v.mouse(w, MouseAction::Drag(Button::Left), Point::new(50, dy + 40));
            v.mouse(w, MouseAction::Up(Button::Left), Point::new(50, dy + 40));
        });
        let new_dy = world.view_as::<FrameView>(frame).unwrap().divider_y(&world);
        assert_eq!(new_dy, dy + 40);
        assert_eq!(world.view_bounds(upper).bottom(), new_dy);
    }

    #[test]
    fn cursor_is_drag_in_band_only() {
        let (world, frame, ..) = two_pane_frame();
        let fv = world.view_dyn(frame).unwrap();
        let dy = world.view_as::<FrameView>(frame).unwrap().divider_y(&world);
        assert_eq!(
            fv.cursor_at(&world, Point::new(10, dy + GRAB_BAND)),
            Some(CursorShape::HorizontalDrag)
        );
        assert_eq!(
            fv.cursor_at(&world, Point::new(10, dy + GRAB_BAND + 2)),
            None
        );
    }

    #[test]
    fn dialog_intercepts_keys_and_dispatches_answer() {
        let (mut world, frame, upper, _) = two_pane_frame();
        world.with_view(frame, |v, w| {
            let f = v.as_any_mut().downcast_mut::<FrameView>().unwrap();
            f.prompt(w, "File name?", upper, "open");
        });
        // Keys are filtered (consumed), accumulating the answer.
        let filtered = world.with_view(frame, |v, w| {
            let mut consumed = true;
            for k in [Key::Char('a'), Key::Char('b'), Key::Return] {
                if v.filter_key(w, k, upper).is_some() {
                    consumed = false;
                }
            }
            consumed
        });
        assert_eq!(filtered, Some(true));
        assert_eq!(
            world.view_as::<CountView>(upper).unwrap().commands,
            vec!["open:ab".to_string()]
        );
        assert!(!world.view_as::<FrameView>(frame).unwrap().dialog_active());
    }

    #[test]
    fn message_line_updates() {
        let (mut world, frame, ..) = two_pane_frame();
        world.with_view(frame, |v, w| {
            v.as_any_mut()
                .downcast_mut::<FrameView>()
                .unwrap()
                .set_message(w, "hello");
        });
        assert_eq!(
            world.view_as::<FrameView>(frame).unwrap().message(),
            "hello"
        );
        assert!(world.has_damage());
    }

    #[test]
    fn frame_contributes_file_menus() {
        let (world, frame, ..) = two_pane_frame();
        let menus = world.view_dyn(frame).unwrap().menus(&world);
        assert!(menus.iter().any(|m| m.label == "Quit"));
    }
}
