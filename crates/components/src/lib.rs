//! Basic user-interface views for the Andrew Toolkit: "the usual set of
//! simple components (menu, scroll bars, etc)" of paper §1, plus the
//! frame with its message line and draggable divider from the paper's
//! figure 1.
//!
//! Every type here is an ordinary [`atk_core::View`]; none has special
//! standing with the toolkit. The [`frame::FrameView`] in particular
//! demonstrates the event-handling claim of §3: it accepts mouse events
//! in an *overlap band* around its divider — space that physically
//! belongs to its children — which is exactly the interaction the paper
//! says a screen-layout-driven dispatcher cannot express cleanly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boxes;
pub mod button;
pub mod frame;
pub mod label;
pub mod list;
pub mod scroll;
pub mod stats;

pub use boxes::{BoxView, Orientation};
pub use button::ButtonView;
pub use frame::FrameView;
pub use label::LabelView;
pub use list::ListView;
pub use scroll::ScrollView;
pub use stats::{StatsData, StatsView};

use atk_class::ModuleSpec;
use atk_core::Catalog;

/// Registers the basic components in a catalog (module `"components"`).
pub fn register(catalog: &mut Catalog) {
    let _ = catalog.add_module(ModuleSpec::new(
        "components",
        38_000,
        &[
            "frame", "scroll", "button", "label", "list", "vbox", "hbox", "stats", "statsv",
        ],
        &[],
    ));
    catalog.register_view("frame", || Box::new(FrameView::new()));
    catalog.register_view("scroll", || Box::new(ScrollView::new()));
    catalog.register_view("button", || Box::new(ButtonView::new("button", "")));
    catalog.register_view("label", || Box::new(LabelView::new("")));
    catalog.register_view("list", || Box::new(ListView::new("select")));
    catalog.register_view("vbox", || Box::new(BoxView::new(Orientation::Vertical)));
    catalog.register_view("hbox", || Box::new(BoxView::new(Orientation::Horizontal)));
    catalog.register_data("stats", || Box::new(StatsData::new()));
    catalog.register_view("statsv", || Box::new(StatsView::new()));
}
