//! Linear layout containers.
//!
//! A [`BoxView`] stacks children vertically or horizontally, giving each
//! either a fixed extent or a weighted share of what remains. The
//! messages application's three-pane window (folders | captions / body)
//! is built from these.

use std::any::Any;

use atk_graphics::{Color, Point, Rect, Size};
use atk_wm::{CursorShape, Graphic, MouseAction};

use atk_core::{MenuItem, Update, View, ViewBase, ViewId, World};

/// Stacking direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// Children stacked top to bottom.
    Vertical,
    /// Children side by side, left to right.
    Horizontal,
}

/// How much space a child gets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Extent {
    /// Exactly this many pixels.
    Fixed(i32),
    /// A weighted share of the leftover space.
    Weight(f32),
}

#[derive(Clone)]
struct Entry {
    view: ViewId,
    extent: Extent,
}

/// A vertical or horizontal stack of child views.
#[derive(Clone)]
pub struct BoxView {
    base: ViewBase,
    orientation: Orientation,
    entries: Vec<Entry>,
    /// Pixel gap drawn between children.
    gap: i32,
}

impl BoxView {
    /// An empty box.
    pub fn new(orientation: Orientation) -> BoxView {
        BoxView {
            base: ViewBase::new(),
            orientation,
            entries: Vec::new(),
            gap: 1,
        }
    }

    /// Adds a child with the given extent policy. The child is re-parented
    /// under this box.
    pub fn add_child(&mut self, world: &mut World, child: ViewId, extent: Extent) {
        world.set_view_parent(child, Some(self.base.id));
        self.entries.push(Entry {
            view: child,
            extent,
        });
    }

    fn slots(&self, total: i32) -> Vec<i32> {
        let gaps = self.gap * (self.entries.len().saturating_sub(1)) as i32;
        let fixed: i32 = self
            .entries
            .iter()
            .map(|e| match e.extent {
                Extent::Fixed(px) => px,
                Extent::Weight(_) => 0,
            })
            .sum();
        let weight_sum: f32 = self
            .entries
            .iter()
            .map(|e| match e.extent {
                Extent::Weight(w) => w,
                Extent::Fixed(_) => 0.0,
            })
            .sum();
        let leftover = (total - fixed - gaps).max(0);
        let mut out = Vec::with_capacity(self.entries.len());
        let mut used = 0;
        let weighted_count = self
            .entries
            .iter()
            .filter(|e| matches!(e.extent, Extent::Weight(_)))
            .count();
        let mut weighted_seen = 0;
        for e in &self.entries {
            let px = match e.extent {
                Extent::Fixed(px) => px,
                Extent::Weight(w) => {
                    weighted_seen += 1;
                    if weighted_seen == weighted_count {
                        // Last weighted child absorbs rounding.
                        leftover - used
                    } else {
                        let px = (leftover as f32 * w / weight_sum) as i32;
                        used += px;
                        px
                    }
                }
            };
            out.push(px.max(0));
        }
        out
    }
}

impl View for BoxView {
    fn class_name(&self) -> &'static str {
        match self.orientation {
            Orientation::Vertical => "vbox",
            Orientation::Horizontal => "hbox",
        }
    }
    fn id(&self) -> ViewId {
        self.base.id
    }
    fn set_id(&mut self, id: ViewId) {
        self.base.id = id;
    }
    fn children(&self) -> Vec<ViewId> {
        self.entries.iter().map(|e| e.view).collect()
    }

    fn desired_size(&mut self, world: &mut World, budget: i32) -> Size {
        let mut along = 0;
        let mut across = 0;
        for e in &self.entries {
            let s = world
                .with_view(e.view, |v, w| v.desired_size(w, budget))
                .unwrap_or(Size::ZERO);
            match self.orientation {
                Orientation::Vertical => {
                    along += s.height;
                    across = across.max(s.width);
                }
                Orientation::Horizontal => {
                    along += s.width;
                    across = across.max(s.height);
                }
            }
        }
        along += self.gap * (self.entries.len().saturating_sub(1)) as i32;
        match self.orientation {
            Orientation::Vertical => Size::new(across, along),
            Orientation::Horizontal => Size::new(along, across),
        }
    }

    fn layout(&mut self, world: &mut World) {
        let size = world.view_bounds(self.base.id).size();
        let total = match self.orientation {
            Orientation::Vertical => size.height,
            Orientation::Horizontal => size.width,
        };
        let slots = self.slots(total);
        let mut pos = 0;
        for (e, px) in self.entries.iter().zip(slots) {
            let r = match self.orientation {
                Orientation::Vertical => Rect::new(0, pos, size.width, px),
                Orientation::Horizontal => Rect::new(pos, 0, px, size.height),
            };
            world.set_view_bounds(e.view, r);
            pos += px + self.gap;
        }
    }

    fn draw(&mut self, world: &mut World, g: &mut dyn Graphic, update: Update) {
        // Separator lines in the gaps.
        let size = world.view_bounds(self.base.id).size();
        g.set_foreground(Color::BLACK);
        for e in &self.entries {
            let b = world.view_bounds(e.view);
            match self.orientation {
                Orientation::Vertical if b.bottom() < size.height => {
                    g.draw_line(
                        Point::new(0, b.bottom()),
                        Point::new(size.width - 1, b.bottom()),
                    );
                }
                Orientation::Horizontal if b.right() < size.width => {
                    g.draw_line(
                        Point::new(b.right(), 0),
                        Point::new(b.right(), size.height - 1),
                    );
                }
                _ => {}
            }
        }
        for e in &self.entries {
            world.draw_child(e.view, g, update);
        }
    }

    fn mouse(&mut self, world: &mut World, action: MouseAction, pt: Point) -> bool {
        for e in &self.entries {
            if world.mouse_to_child(e.view, action, pt) {
                return true;
            }
        }
        false
    }

    fn menus(&self, _world: &World) -> Vec<MenuItem> {
        Vec::new()
    }

    fn cursor_at(&self, world: &World, pt: Point) -> Option<CursorShape> {
        for e in &self.entries {
            let b = world.view_bounds(e.view);
            if b.contains(pt) {
                return world
                    .view_dyn(e.view)
                    .and_then(|v| v.cursor_at(world, pt - b.origin()));
            }
        }
        None
    }

    fn fork(&self) -> Option<Box<dyn View>> {
        Some(Box::new(self.clone()))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabelView;

    fn setup() -> (World, ViewId, ViewId, ViewId) {
        let mut world = World::new();
        let a = world.insert_view(Box::new(LabelView::new("a")));
        let b = world.insert_view(Box::new(LabelView::new("b")));
        let boxv = world.insert_view(Box::new(BoxView::new(Orientation::Vertical)));
        (world, boxv, a, b)
    }

    #[test]
    fn fixed_plus_weight_layout() {
        let (mut world, boxv, a, b) = setup();
        world.with_view(boxv, |v, w| {
            let bx = v.as_any_mut().downcast_mut::<BoxView>().unwrap();
            bx.add_child(w, a, Extent::Fixed(20));
            bx.add_child(w, b, Extent::Weight(1.0));
        });
        world.set_view_bounds(boxv, Rect::new(0, 0, 100, 101));
        assert_eq!(world.view_bounds(a), Rect::new(0, 0, 100, 20));
        // Gap of 1 => b starts at 21 and takes the rest.
        assert_eq!(world.view_bounds(b), Rect::new(0, 21, 100, 80));
    }

    #[test]
    fn weights_split_proportionally() {
        let (mut world, _, a, b) = setup();
        let boxv = world.insert_view(Box::new(BoxView::new(Orientation::Horizontal)));
        world.with_view(boxv, |v, w| {
            let bx = v.as_any_mut().downcast_mut::<BoxView>().unwrap();
            bx.add_child(w, a, Extent::Weight(1.0));
            bx.add_child(w, b, Extent::Weight(3.0));
        });
        world.set_view_bounds(boxv, Rect::new(0, 0, 201, 50));
        let wa = world.view_bounds(a).width;
        let wb = world.view_bounds(b).width;
        assert_eq!(wa + wb + 1, 201);
        assert!((wb as f32 / wa as f32 - 3.0).abs() < 0.2);
    }

    #[test]
    fn children_are_parented() {
        let (mut world, boxv, a, _) = setup();
        world.with_view(boxv, |v, w| {
            let bx = v.as_any_mut().downcast_mut::<BoxView>().unwrap();
            bx.add_child(w, a, Extent::Fixed(10));
        });
        assert_eq!(world.view_parent(a), Some(boxv));
        assert_eq!(world.view_dyn(boxv).unwrap().children(), vec![a]);
    }
}
