//! A live statistics component for the update pipeline.
//!
//! Observability dogfoods the toolkit's own architecture: the numbers
//! live in a data object ([`StatsData`]) and the pixels in a view
//! ([`StatsView`]), connected through the ordinary observer machinery.
//! On a timer, the view refreshes the data object from the world's
//! trace collector; if the rendered summary changed, the data object
//! notifies, the notification flush reaches the view, the view posts
//! damage, and the next update pass repaints it — the same delayed
//! update cycle (paper §2) the numbers describe.

use std::any::Any;
use std::io;
use std::sync::Arc;

use atk_graphics::{Color, FontDesc, Point, Rect, Size};
use atk_trace::{text_summary, Collector};
use atk_wm::Graphic;

use atk_core::{
    ChangeRec, DataId, DataObject, DatastreamReader, DatastreamWriter, DsError, MenuItem,
    ObserverRef, Token, Update, View, ViewBase, ViewId, World,
};

/// Refresh timer token.
const REFRESH: u32 = 11;
/// Default refresh period, ms of virtual time.
const PERIOD_MS: u64 = 500;

/// Data object holding the rendered collector summary, one line per
/// entry. Views observe it like any other data object.
#[derive(Debug, Default, Clone)]
pub struct StatsData {
    lines: Vec<String>,
    refreshes: u64,
}

impl StatsData {
    /// An empty stats object.
    pub fn new() -> StatsData {
        StatsData::default()
    }

    /// The current summary lines.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// How many refreshes actually changed the content.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Re-renders `collector`'s summary into the stats object `me`,
    /// notifying observers only when the text changed.
    pub fn refresh(world: &mut World, me: DataId, collector: &Arc<Collector>) {
        let text = text_summary(&collector.snapshot());
        let lines: Vec<String> = text.lines().map(str::to_string).collect();
        let changed = match world.data_mut::<StatsData>(me) {
            Some(sd) if sd.lines != lines => {
                sd.lines = lines;
                sd.refreshes += 1;
                true
            }
            _ => false,
        };
        if changed {
            world.notify(me, ChangeRec::Full);
        }
    }
}

impl DataObject for StatsData {
    fn class_name(&self) -> &'static str {
        "stats"
    }

    fn write_body(&self, w: &mut DatastreamWriter, _world: &World) -> io::Result<()> {
        for line in &self.lines {
            w.write_line(line)?;
        }
        Ok(())
    }

    fn read_body(
        &mut self,
        r: &mut DatastreamReader<'_>,
        _world: &mut World,
    ) -> Result<(), DsError> {
        self.lines.clear();
        loop {
            match r.next_token()?.ok_or(DsError::UnexpectedEof)? {
                Token::EndData { .. } => return Ok(()),
                Token::Line(l) => self.lines.push(l),
                // Stats snapshots embed nothing; skip strays politely.
                Token::BeginData { .. } => {
                    r.skip_to_matching_end()?;
                }
                Token::ViewRef { .. } => {}
            }
        }
    }

    fn fork(&self) -> Option<Box<dyn DataObject>> {
        Some(Box::new(self.clone()))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A view over a [`StatsData`], refreshed from the world's collector on
/// a virtual timer. Embed it anywhere a view fits.
#[derive(Clone)]
pub struct StatsView {
    base: ViewBase,
    data: Option<DataId>,
    period_ms: u64,
}

impl StatsView {
    /// A detached stats view; call [`StatsView::attach`] after insertion.
    pub fn new() -> StatsView {
        StatsView {
            base: ViewBase::new(),
            data: None,
            period_ms: PERIOD_MS,
        }
    }

    /// Builder: refresh period in virtual milliseconds.
    pub fn with_period_ms(mut self, ms: u64) -> StatsView {
        self.period_ms = ms.max(1);
        self
    }

    /// Binds the view to a stats object and registers it as observer.
    pub fn attach(&mut self, world: &mut World, data: DataId) {
        self.data = Some(data);
        world.add_observer(data, ObserverRef::View(self.base.id));
        world.post_damage_full(self.base.id);
    }

    /// Takes a first sample and starts the periodic refresh timer.
    pub fn start(&mut self, world: &mut World) {
        self.refresh(world);
        world.schedule_timer(self.base.id, self.period_ms, REFRESH);
    }

    /// The observed stats object, if attached.
    pub fn data(&self) -> Option<DataId> {
        self.data
    }

    fn refresh(&mut self, world: &mut World) {
        if let Some(data) = self.data {
            let collector = Arc::clone(world.collector());
            StatsData::refresh(world, data, &collector);
        }
    }
}

impl Default for StatsView {
    fn default() -> Self {
        StatsView::new()
    }
}

impl View for StatsView {
    fn class_name(&self) -> &'static str {
        "statsv"
    }
    fn id(&self) -> ViewId {
        self.base.id
    }
    fn set_id(&mut self, id: ViewId) {
        self.base.id = id;
    }

    fn desired_size(&mut self, world: &mut World, _budget: i32) -> Size {
        let font = FontDesc::new("andy", Default::default(), 10);
        let lines = self
            .data
            .and_then(|d| world.data::<StatsData>(d))
            .map_or(1, |sd| sd.lines().len().max(1));
        Size::new(300, font.metrics().line_height * lines as i32 + 8)
    }

    fn draw(&mut self, world: &mut World, g: &mut dyn Graphic, _update: Update) {
        let size = world.view_bounds(self.base.id).size();
        let font = FontDesc::new("andy", Default::default(), 10);
        let line_h = font.metrics().line_height;
        g.set_font(font);
        g.set_foreground(Color::BLACK);
        let lines: Vec<String> = self
            .data
            .and_then(|d| world.data::<StatsData>(d))
            .map(|sd| sd.lines().to_vec())
            .unwrap_or_else(|| vec!["(no stats attached)".to_string()]);
        let mut y = 4;
        for line in &lines {
            if y > size.height {
                break;
            }
            g.draw_string(Point::new(4, y), line);
            y += line_h;
        }
        g.draw_rect(Rect::at(Point::ORIGIN, size));
    }

    fn observed_changed(&mut self, world: &mut World, _source: DataId, _change: &ChangeRec) {
        world.post_damage_full(self.base.id);
    }

    fn timer(&mut self, world: &mut World, token: u32) {
        if token == REFRESH {
            self.refresh(world);
            world.schedule_timer(self.base.id, self.period_ms, REFRESH);
        }
    }

    fn menus(&self, _world: &World) -> Vec<MenuItem> {
        vec![MenuItem::new("Stats", "Refresh", "stats-refresh")]
    }

    fn perform(&mut self, world: &mut World, command: &str) -> bool {
        if command == "stats-refresh" {
            self.refresh(world);
            return true;
        }
        false
    }

    fn fork(&self) -> Option<Box<dyn View>> {
        Some(Box::new(self.clone()))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atk_core::{document_to_string, read_document};

    fn test_world() -> World {
        let mut world = World::new();
        let collector = Arc::new(Collector::new());
        collector.enable();
        collector.set_manual_clock(0, 1);
        world.set_collector(collector);
        world
    }

    #[test]
    fn refresh_notifies_only_on_change() {
        let mut world = test_world();
        let data = world.insert_data(Box::new(StatsData::new()));
        let collector = Arc::clone(world.collector());
        StatsData::refresh(&mut world, data, &collector);
        assert!(world.has_pending_notifications());
        world.flush_notifications();
        let first = world.data::<StatsData>(data).unwrap().refreshes();
        assert_eq!(first, 1);
        // A second refresh changes the summary (the flush above bumped
        // counters), a third from identical state does not.
        StatsData::refresh(&mut world, data, &collector);
        world.flush_notifications();
        let snap_lines = world.data::<StatsData>(data).unwrap().lines().to_vec();
        StatsData::refresh(&mut world, data, &collector);
        StatsData::refresh(&mut world, data, &collector);
        let sd = world.data::<StatsData>(data).unwrap();
        // Content converges: repeated refreshes with no pipeline
        // activity between them eventually stop changing anything.
        assert!(sd.refreshes() <= 4);
        assert!(!snap_lines.is_empty());
    }

    #[test]
    fn stats_view_observes_and_posts_damage() {
        let mut world = test_world();
        let data = world.insert_data(Box::new(StatsData::new()));
        let view = world.insert_view(Box::new(StatsView::new()));
        world.set_view_bounds(view, Rect::new(0, 0, 300, 120));
        world.with_view(view, |v, w| {
            v.as_any_mut()
                .downcast_mut::<StatsView>()
                .unwrap()
                .attach(w, data);
        });
        // Attach posts initial damage.
        assert!(world.has_damage());
        world.take_damage_region();
        // A data change reaches the view through the observer list.
        world.collector().count("x", 1);
        let collector = Arc::clone(world.collector());
        StatsData::refresh(&mut world, data, &collector);
        world.flush_notifications();
        assert!(world.has_damage());
    }

    #[test]
    fn stats_data_round_trips_through_datastream() {
        let mut world = test_world();
        world
            .catalog
            .register_data("stats", || Box::new(StatsData::new()));
        let data = world.insert_data(Box::new(StatsData::new()));
        let collector = Arc::clone(world.collector());
        world.collector().count("demo.counter", 42);
        StatsData::refresh(&mut world, data, &collector);
        let lines = world.data::<StatsData>(data).unwrap().lines().to_vec();
        assert!(!lines.is_empty());
        let stream = document_to_string(&world, data);
        let mut world2 = World::new();
        world2
            .catalog
            .register_data("stats", || Box::new(StatsData::new()));
        let data2 = read_document(&mut world2, &stream).unwrap();
        assert_eq!(world2.data::<StatsData>(data2).unwrap().lines(), &lines[..]);
    }

    #[test]
    fn timer_refresh_keeps_rescheduling() {
        let mut world = test_world();
        let data = world.insert_data(Box::new(StatsData::new()));
        let view = world.insert_view(Box::new(StatsView::new()));
        world.set_view_bounds(view, Rect::new(0, 0, 300, 120));
        world.with_view(view, |v, w| {
            let sv = v.as_any_mut().downcast_mut::<StatsView>().unwrap();
            sv.attach(w, data);
            sv.start(w);
        });
        for _ in 0..3 {
            for (v, tok) in world.advance_clock(PERIOD_MS) {
                world.with_view(v, |view, w| view.timer(w, tok));
            }
        }
        // Refreshes happened (initial + at least one timer tick changed
        // the summary, since the pipeline counters moved in between).
        assert!(world.data::<StatsData>(data).unwrap().refreshes() >= 1);
    }
}
