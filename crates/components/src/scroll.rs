//! The scrollbar view.
//!
//! Paper §2: "The scroll bar is one such example [of a view with no data
//! object]. It only adjusts the information contained in another view."
//! The coupling to the scrolled view is the minimal
//! [`atk_core::ScrollInfo`] protocol — total extent, visible extent,
//! offset — so a scrollbar can scroll a text view, a table view, or a
//! folder list without knowing which it has.
//!
//! Andrew scrollbars sat on the left edge; so does this one.

use std::any::Any;

use atk_graphics::{Color, Point, Rect, Size};
use atk_wm::{Button, CursorShape, Graphic, MouseAction};

use atk_core::{Update, View, ViewBase, ViewId, World};

/// Width of the scrollbar gutter in pixels.
pub const BAR_WIDTH: i32 = 14;

/// A view pairing a left-edge scrollbar with a scrollable body view.
#[derive(Clone)]
pub struct ScrollView {
    base: ViewBase,
    body: Option<ViewId>,
    dragging: bool,
    drag_grab_offset: i32,
}

impl ScrollView {
    /// An empty scroller; attach the body with [`ScrollView::set_body`].
    pub fn new() -> ScrollView {
        ScrollView {
            base: ViewBase::new(),
            body: None,
            dragging: false,
            drag_grab_offset: 0,
        }
    }

    /// Attaches (and re-parents) the scrolled view.
    pub fn set_body(&mut self, world: &mut World, body: ViewId) {
        world.set_view_parent(body, Some(self.base.id));
        self.body = Some(body);
        self.relayout(world);
    }

    /// The scrolled view.
    pub fn body(&self) -> Option<ViewId> {
        self.body
    }

    fn relayout(&self, world: &mut World) {
        let size = world.view_bounds(self.base.id).size();
        if let Some(body) = self.body {
            world.set_view_bounds(
                body,
                Rect::new(BAR_WIDTH, 0, (size.width - BAR_WIDTH).max(0), size.height),
            );
        }
    }

    fn bar_rect(&self, world: &World) -> Rect {
        let size = world.view_bounds(self.base.id).size();
        Rect::new(0, 0, BAR_WIDTH, size.height)
    }

    /// The thumb ("elevator") rectangle, derived from the body's scroll
    /// info.
    pub fn thumb_rect(&self, world: &World) -> Option<Rect> {
        let body = self.body?;
        let info = world.view_dyn(body)?.scroll_info(world)?;
        let bar = self.bar_rect(world);
        if info.total <= 0 {
            return Some(bar);
        }
        let h = bar.height.max(1);
        let top = (info.offset as i64 * h as i64 / info.total.max(1) as i64) as i32;
        let len = ((info.visible as i64 * h as i64 + info.total as i64 - 1)
            / info.total.max(1) as i64)
            .min(h as i64) as i32;
        Some(Rect::new(1, top.min(h - 1), BAR_WIDTH - 2, len.max(6)))
    }

    fn scroll_body_to(&self, world: &mut World, offset: i32) {
        if let Some(body) = self.body {
            world.with_view(body, |v, w| v.scroll_to(w, offset));
            world.post_damage_full(self.base.id);
        }
    }

    fn offset_for_bar_y(&self, world: &World, y: i32) -> i32 {
        let Some(body) = self.body else { return 0 };
        let Some(info) = world.view_dyn(body).and_then(|v| v.scroll_info(world)) else {
            return 0;
        };
        let h = self.bar_rect(world).height.max(1);
        (y.clamp(0, h) as i64 * info.total as i64 / h as i64) as i32
    }
}

impl Default for ScrollView {
    fn default() -> Self {
        ScrollView::new()
    }
}

impl View for ScrollView {
    fn class_name(&self) -> &'static str {
        "scroll"
    }
    fn id(&self) -> ViewId {
        self.base.id
    }
    fn set_id(&mut self, id: ViewId) {
        self.base.id = id;
    }
    fn children(&self) -> Vec<ViewId> {
        self.body.into_iter().collect()
    }

    fn perform(&mut self, world: &mut World, command: &str) -> bool {
        // A body that scrolled itself (caret tracking, home/end, paging)
        // says so through the deferred command channel; the elevator
        // position is derived from the body's scroll_info at draw time,
        // so it only needs the bar strip repainted.
        if command == "scroll-sync" {
            let bar = self.bar_rect(world);
            world.post_damage(self.base.id, bar);
            return true;
        }
        false
    }

    fn desired_size(&mut self, world: &mut World, budget: i32) -> Size {
        let body = match self.body {
            Some(b) => world
                .with_view(b, |v, w| v.desired_size(w, budget - BAR_WIDTH))
                .unwrap_or(Size::ZERO),
            None => Size::ZERO,
        };
        Size::new(body.width + BAR_WIDTH, body.height)
    }

    fn layout(&mut self, world: &mut World) {
        self.relayout(world);
    }

    fn draw(&mut self, world: &mut World, g: &mut dyn Graphic, update: Update) {
        let bar = self.bar_rect(world);
        if update.touches(bar) {
            g.set_foreground(Color::LIGHT_GRAY);
            g.fill_rect(bar);
            g.set_foreground(Color::BLACK);
            g.draw_line(
                Point::new(bar.right() - 1, 0),
                Point::new(bar.right() - 1, bar.height - 1),
            );
            if let Some(thumb) = self.thumb_rect(world) {
                g.set_foreground(Color::WHITE);
                g.fill_rect(thumb);
                g.set_foreground(Color::BLACK);
                g.draw_rect(thumb);
            }
        }
        if let Some(body) = self.body {
            world.draw_child(body, g, update);
        }
    }

    fn mouse(&mut self, world: &mut World, action: MouseAction, pt: Point) -> bool {
        let bar = self.bar_rect(world);
        // While dragging the thumb, the scrollbar keeps the event stream
        // even outside its rectangle (parental grant to itself).
        if self.dragging {
            match action {
                MouseAction::Drag(Button::Left) => {
                    let off = self.offset_for_bar_y(world, pt.y - self.drag_grab_offset);
                    self.scroll_body_to(world, off);
                    return true;
                }
                MouseAction::Up(Button::Left) => {
                    self.dragging = false;
                    return true;
                }
                _ => {}
            }
        }
        if bar.contains(pt) {
            if let MouseAction::Down(Button::Left) = action {
                let thumb = self.thumb_rect(world).unwrap_or(Rect::EMPTY);
                if thumb.contains(pt) {
                    self.dragging = true;
                    self.drag_grab_offset = pt.y - thumb.y;
                } else if let Some(body) = self.body {
                    // Page up/down by one visible extent.
                    if let Some(info) = world.view_dyn(body).and_then(|v| v.scroll_info(world)) {
                        let page = info.visible.max(1);
                        let target = if pt.y < thumb.y {
                            info.offset - page
                        } else {
                            info.offset + page
                        };
                        let max_off = (info.total - info.visible).max(0);
                        self.scroll_body_to(world, target.clamp(0, max_off));
                    }
                }
            }
            return true;
        }
        if let Some(body) = self.body {
            return world.mouse_to_child(body, action, pt);
        }
        false
    }

    fn cursor_at(&self, world: &World, pt: Point) -> Option<CursorShape> {
        if self.bar_rect(world).contains(pt) {
            return Some(CursorShape::VerticalDrag);
        }
        let body = self.body?;
        let b = world.view_bounds(body);
        if b.contains(pt) {
            world.view_dyn(body)?.cursor_at(world, pt - b.origin())
        } else {
            None
        }
    }

    fn fork(&self) -> Option<Box<dyn View>> {
        Some(Box::new(self.clone()))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atk_core::ScrollInfo;

    /// A fake scrollable body for tests: 1000 units tall, 100 visible.
    struct FakeBody {
        base: ViewBase,
        offset: i32,
    }
    impl FakeBody {
        fn new() -> FakeBody {
            FakeBody {
                base: ViewBase::new(),
                offset: 0,
            }
        }
    }
    impl View for FakeBody {
        fn class_name(&self) -> &'static str {
            "fake"
        }
        fn id(&self) -> ViewId {
            self.base.id
        }
        fn set_id(&mut self, id: ViewId) {
            self.base.id = id;
        }
        fn desired_size(&mut self, _w: &mut World, _b: i32) -> Size {
            Size::new(100, 100)
        }
        fn draw(&mut self, _w: &mut World, _g: &mut dyn Graphic, _u: Update) {}
        fn scroll_info(&self, _w: &World) -> Option<ScrollInfo> {
            Some(ScrollInfo {
                total: 1000,
                visible: 100,
                offset: self.offset,
            })
        }
        fn scroll_to(&mut self, _w: &mut World, offset: i32) {
            self.offset = offset;
        }
        fn mouse(&mut self, _w: &mut World, _a: MouseAction, _p: Point) -> bool {
            true
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn setup() -> (World, ViewId, ViewId) {
        let mut world = World::new();
        let body = world.insert_view(Box::new(FakeBody::new()));
        let scroll = world.insert_view(Box::new(ScrollView::new()));
        world.set_view_bounds(scroll, Rect::new(0, 0, 200, 100));
        world.with_view(scroll, |v, w| {
            v.as_any_mut()
                .downcast_mut::<ScrollView>()
                .unwrap()
                .set_body(w, body);
        });
        (world, scroll, body)
    }

    #[test]
    fn body_occupies_space_right_of_bar() {
        let (world, _scroll, body) = setup();
        assert_eq!(world.view_bounds(body), Rect::new(BAR_WIDTH, 0, 186, 100));
    }

    #[test]
    fn thumb_reflects_scroll_info() {
        let (world, scroll, _body) = setup();
        let sv = world.view_as::<ScrollView>(scroll).unwrap();
        let thumb = sv.thumb_rect(&world).unwrap();
        // 100 visible of 1000 total on a 100px bar => 10px thumb at top.
        assert_eq!(thumb.y, 0);
        assert_eq!(thumb.height, 10);
    }

    #[test]
    fn click_below_thumb_pages_down() {
        let (mut world, scroll, body) = setup();
        world.with_view(scroll, |v, w| {
            v.mouse(w, MouseAction::Down(Button::Left), Point::new(5, 80));
        });
        assert_eq!(world.view_as::<FakeBody>(body).unwrap().offset, 100);
    }

    #[test]
    fn thumb_drag_scrolls_continuously() {
        let (mut world, scroll, body) = setup();
        world.with_view(scroll, |v, w| {
            v.mouse(w, MouseAction::Down(Button::Left), Point::new(5, 2));
            v.mouse(w, MouseAction::Drag(Button::Left), Point::new(5, 52));
            v.mouse(w, MouseAction::Up(Button::Left), Point::new(5, 52));
        });
        assert_eq!(world.view_as::<FakeBody>(body).unwrap().offset, 500);
    }

    #[test]
    fn events_right_of_bar_go_to_body() {
        let (mut world, scroll, _body) = setup();
        let consumed = world.with_view(scroll, |v, w| {
            v.mouse(w, MouseAction::Down(Button::Left), Point::new(100, 50))
        });
        assert_eq!(consumed, Some(true));
    }

    #[test]
    fn cursor_over_bar_is_drag() {
        let (world, scroll, _) = setup();
        let sv = world.view_dyn(scroll).unwrap();
        assert_eq!(
            sv.cursor_at(&world, Point::new(5, 50)),
            Some(CursorShape::VerticalDrag)
        );
    }
}
