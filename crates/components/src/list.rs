//! A selectable list view (folder panes, caption panes, help indices).
//!
//! The messages window of the paper's figure 3 is three list-and-text
//! panes; this view is the list half. Selection is reported through the
//! ordinary `perform` protocol: clicking row *i* dispatches
//! `"{command}:{i}"` to a target view, so the coordinator needs no
//! knowledge of the list's type — the same minimal-protocol style as the
//! scrollbar.

use std::any::Any;

use atk_graphics::{Color, FontDesc, Point, Rect, Size};
use atk_wm::{Button, Graphic, Key, MouseAction};

use atk_core::{ScrollInfo, Update, View, ViewBase, ViewId, World};

/// A scrollable, selectable list of strings.
#[derive(Clone)]
pub struct ListView {
    base: ViewBase,
    items: Vec<String>,
    /// Selected row.
    pub selected: Option<usize>,
    offset: i32,
    font: FontDesc,
    target: Option<ViewId>,
    command: String,
}

impl ListView {
    /// An empty list dispatching `command:<index>` on selection.
    pub fn new(command: &str) -> ListView {
        ListView {
            base: ViewBase::new(),
            items: Vec::new(),
            selected: None,
            offset: 0,
            font: FontDesc::default_body(),
            target: None,
            command: command.to_string(),
        }
    }

    /// Sets the view that receives selection commands.
    pub fn set_target(&mut self, target: ViewId) {
        self.target = Some(target);
    }

    /// Replaces the items.
    pub fn set_items(&mut self, world: &mut World, items: Vec<String>) {
        self.items = items;
        self.selected = None;
        self.offset = 0;
        world.post_damage_full(self.base.id);
    }

    /// The items.
    pub fn items(&self) -> &[String] {
        &self.items
    }

    fn row_height(&self) -> i32 {
        self.font.metrics().line_height + 2
    }

    fn row_at(&self, pt: Point) -> Option<usize> {
        let idx = (pt.y + self.offset) / self.row_height();
        if idx >= 0 && (idx as usize) < self.items.len() {
            Some(idx as usize)
        } else {
            None
        }
    }

    /// Programmatic selection (also dispatches the command).
    pub fn select_index(&mut self, world: &mut World, index: usize) {
        if index >= self.items.len() {
            return;
        }
        self.selected = Some(index);
        world.post_damage_full(self.base.id);
        if let Some(target) = self.target {
            // Deferred: the target is often an ancestor currently on the
            // dispatch stack.
            world.post_command(target, &format!("{}:{}", self.command, index));
        }
    }
}

impl View for ListView {
    fn class_name(&self) -> &'static str {
        "list"
    }
    fn id(&self) -> ViewId {
        self.base.id
    }
    fn set_id(&mut self, id: ViewId) {
        self.base.id = id;
    }

    fn desired_size(&mut self, _world: &mut World, budget: i32) -> Size {
        Size::new(budget.min(200), self.row_height() * self.items.len() as i32)
    }

    fn draw(&mut self, world: &mut World, g: &mut dyn Graphic, update: Update) {
        let size = world.view_bounds(self.base.id).size();
        let rh = self.row_height();
        g.set_font(self.font.clone());
        for (i, item) in self.items.iter().enumerate() {
            let y = i as i32 * rh - self.offset;
            let row = Rect::new(0, y, size.width, rh);
            if y + rh < 0 || y > size.height || !update.touches(row) {
                continue;
            }
            g.set_foreground(Color::BLACK);
            let m = g.font_metrics();
            g.draw_string_baseline(Point::new(4, y + 1 + m.ascent), item);
            if self.selected == Some(i) {
                g.invert_rect(row);
            }
        }
    }

    fn mouse(&mut self, world: &mut World, action: MouseAction, pt: Point) -> bool {
        if let MouseAction::Down(Button::Left) = action {
            if let Some(i) = self.row_at(pt) {
                self.select_index(world, i);
            }
            world.request_focus(self.base.id);
            return true;
        }
        matches!(
            action,
            MouseAction::Up(Button::Left) | MouseAction::Drag(Button::Left)
        )
    }

    fn key(&mut self, world: &mut World, key: Key) -> bool {
        match key {
            Key::Down => {
                let next = self.selected.map(|i| i + 1).unwrap_or(0);
                self.select_index(world, next.min(self.items.len().saturating_sub(1)));
                true
            }
            Key::Up => {
                let next = self.selected.map(|i| i.saturating_sub(1)).unwrap_or(0);
                self.select_index(world, next);
                true
            }
            _ => false,
        }
    }

    fn scroll_info(&self, world: &World) -> Option<ScrollInfo> {
        Some(ScrollInfo {
            total: (self.row_height() * self.items.len() as i32).max(1),
            visible: world.view_bounds(self.base.id).height,
            offset: self.offset,
        })
    }

    fn scroll_to(&mut self, world: &mut World, offset: i32) {
        let total = self.row_height() * self.items.len() as i32;
        let h = world.view_bounds(self.base.id).height;
        self.offset = offset.clamp(0, (total - h).max(0));
        world.post_damage_full(self.base.id);
    }

    fn fork(&self) -> Option<Box<dyn View>> {
        Some(Box::new(self.clone()))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atk_core::ChangeRec;
    use atk_core::DataId;

    struct Recorder {
        base: ViewBase,
        commands: Vec<String>,
    }
    impl View for Recorder {
        fn class_name(&self) -> &'static str {
            "recorder"
        }
        fn id(&self) -> ViewId {
            self.base.id
        }
        fn set_id(&mut self, id: ViewId) {
            self.base.id = id;
        }
        fn desired_size(&mut self, _w: &mut World, _b: i32) -> Size {
            Size::ZERO
        }
        fn draw(&mut self, _w: &mut World, _g: &mut dyn Graphic, _u: Update) {}
        fn perform(&mut self, _w: &mut World, command: &str) -> bool {
            self.commands.push(command.to_string());
            true
        }
        fn observed_changed(&mut self, _w: &mut World, _d: DataId, _c: &ChangeRec) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn setup() -> (World, ViewId, ViewId) {
        let mut world = World::new();
        let rec = world.insert_view(Box::new(Recorder {
            base: ViewBase::new(),
            commands: Vec::new(),
        }));
        let mut list = ListView::new("pick");
        list.set_target(rec);
        let lid = world.insert_view(Box::new(list));
        world.set_view_bounds(lid, Rect::new(0, 0, 120, 100));
        world.with_view(lid, |v, w| {
            v.as_any_mut()
                .downcast_mut::<ListView>()
                .unwrap()
                .set_items(w, vec!["alpha".into(), "beta".into(), "gamma".into()]);
        });
        (world, lid, rec)
    }

    #[test]
    fn click_selects_and_dispatches() {
        let (mut world, lid, rec) = setup();
        let rh = world.view_as::<ListView>(lid).unwrap().row_height();
        world.with_view(lid, |v, w| {
            v.mouse(w, MouseAction::Down(Button::Left), Point::new(10, rh + 1));
        });
        world.flush_commands();
        assert_eq!(world.view_as::<ListView>(lid).unwrap().selected, Some(1));
        assert_eq!(
            world.view_as::<Recorder>(rec).unwrap().commands,
            vec!["pick:1".to_string()]
        );
    }

    #[test]
    fn arrow_keys_move_selection() {
        let (mut world, lid, rec) = setup();
        world.with_view(lid, |v, w| {
            v.key(w, Key::Down);
            v.key(w, Key::Down);
            v.key(w, Key::Up);
        });
        world.flush_commands();
        assert_eq!(world.view_as::<ListView>(lid).unwrap().selected, Some(0));
        assert_eq!(world.view_as::<Recorder>(rec).unwrap().commands.len(), 3);
    }

    #[test]
    fn selection_clamps_at_ends() {
        let (mut world, lid, _) = setup();
        world.with_view(lid, |v, w| {
            for _ in 0..10 {
                v.key(w, Key::Down);
            }
        });
        assert_eq!(world.view_as::<ListView>(lid).unwrap().selected, Some(2));
    }

    #[test]
    fn scroll_protocol_reports_extent() {
        let (mut world, lid, _) = setup();
        world.with_view(lid, |v, w| {
            let lv = v.as_any_mut().downcast_mut::<ListView>().unwrap();
            lv.set_items(w, (0..50).map(|i| format!("row {i}")).collect());
        });
        let info = world.view_dyn(lid).unwrap().scroll_info(&world).unwrap();
        assert!(info.total > info.visible);
        world.with_view(lid, |v, w| v.scroll_to(w, 100));
        let info = world.view_dyn(lid).unwrap().scroll_info(&world).unwrap();
        assert_eq!(info.offset, 100);
    }
}
