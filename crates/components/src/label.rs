//! A static text label.

use std::any::Any;

use atk_graphics::{Color, FontDesc, Point, Rect, Size};
use atk_wm::Graphic;

use atk_core::{Update, View, ViewBase, ViewId, World};

/// A one-line, non-interactive text view.
#[derive(Clone)]
pub struct LabelView {
    base: ViewBase,
    text: String,
    font: FontDesc,
    color: Color,
    centered: bool,
}

impl LabelView {
    /// Creates a label.
    pub fn new(text: &str) -> LabelView {
        LabelView {
            base: ViewBase::new(),
            text: text.to_string(),
            font: FontDesc::default_body(),
            color: Color::BLACK,
            centered: false,
        }
    }

    /// Builder: use a specific font.
    pub fn with_font(mut self, font: FontDesc) -> LabelView {
        self.font = font;
        self
    }

    /// Builder: center the text.
    pub fn centered(mut self) -> LabelView {
        self.centered = true;
        self
    }

    /// The current text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Changes the text and posts damage.
    pub fn set_text(&mut self, world: &mut World, text: &str) {
        if self.text != text {
            self.text = text.to_string();
            world.post_damage_full(self.base.id);
        }
    }
}

impl View for LabelView {
    fn class_name(&self) -> &'static str {
        "label"
    }
    fn id(&self) -> ViewId {
        self.base.id
    }
    fn set_id(&mut self, id: ViewId) {
        self.base.id = id;
    }

    fn desired_size(&mut self, _world: &mut World, _budget: i32) -> Size {
        let m = self.font.metrics();
        Size::new(self.font.string_width(&self.text) + 4, m.line_height)
    }

    fn draw(&mut self, world: &mut World, g: &mut dyn Graphic, _update: Update) {
        let bounds = Rect::at(Point::ORIGIN, world.view_bounds(self.base.id).size());
        g.set_font(self.font.clone());
        g.set_foreground(self.color);
        if self.centered {
            g.draw_string_centered(bounds, &self.text);
        } else {
            let m = g.font_metrics();
            let y = (bounds.height - m.ascent - m.descent) / 2 + m.ascent;
            g.draw_string_baseline(Point::new(2, y), &self.text);
        }
    }

    fn fork(&self) -> Option<Box<dyn View>> {
        Some(Box::new(self.clone()))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atk_graphics::Size;
    use atk_wm::WindowSystem;

    #[test]
    fn label_draws_its_text() {
        let mut world = World::new();
        let label = world.insert_view(Box::new(LabelView::new("Hi")));
        world.set_view_bounds(label, Rect::new(0, 0, 60, 12));
        let mut ws = atk_wm::x11sim::X11Sim::new();
        let mut win = ws.open_window("t", Size::new(60, 12));
        world.with_view(label, |v, w| {
            v.draw(w, win.graphic(), Update::Full);
        });
        let snap = win.snapshot().unwrap();
        assert!(snap.count_pixels(snap.bounds(), Color::BLACK) > 8);
    }

    #[test]
    fn set_text_posts_damage() {
        let mut world = World::new();
        let label = world.insert_view(Box::new(LabelView::new("a")));
        world.set_view_bounds(label, Rect::new(0, 0, 60, 12));
        world.view_as_mut::<LabelView>(label);
        let mut lv = LabelView::new("a");
        lv.set_id(label);
        lv.set_text(&mut world, "b");
        assert!(world.has_damage());
    }

    #[test]
    fn desired_size_tracks_text_width() {
        let mut world = World::new();
        let mut short = LabelView::new("a");
        let mut long = LabelView::new("a much longer label");
        assert!(
            long.desired_size(&mut world, 1000).width > short.desired_size(&mut world, 1000).width
        );
    }
}
