//! The animation component: "simple animations" (paper §1).
//!
//! Figure 5 embeds "an animation showing the building of [Pascal's]
//! triangle" inside a table cell, started by choosing *animate* from the
//! menus. [`AnimData`] is a sequence of frames (each a small display
//! list); [`AnimView`] plays them on the world's **virtual** timer queue,
//! so playback is deterministic under the scripted event driver.

use std::any::Any;
use std::io;

use atk_graphics::{Color, FontDesc, Point, Rect, Size};
use atk_wm::Graphic;

use atk_core::{
    ChangeRec, DataId, DataObject, DatastreamReader, DatastreamWriter, DsError, MenuItem,
    ObserverRef, Token, Update, View, ViewBase, ViewId, World,
};

use crate::drawing::Shape;

/// A frame: a display list of plain shapes (no insets inside frames).
pub type Frame = Vec<Shape>;

/// The animation data object.
///
/// The frame list is behind an `Arc`: template forks share the display
/// lists copy-on-write and only pay for them if they append frames.
#[derive(Clone)]
pub struct AnimData {
    frames: std::sync::Arc<Vec<Frame>>,
    /// Milliseconds between frames.
    pub interval_ms: u64,
    /// Natural display size.
    pub canvas: Size,
}

impl AnimData {
    /// An empty animation.
    pub fn new(width: i32, height: i32, interval_ms: u64) -> AnimData {
        AnimData {
            frames: std::sync::Arc::new(Vec::new()),
            interval_ms,
            canvas: Size::new(width, height),
        }
    }

    /// Builds the paper's figure-5 animation: Pascal's triangle growing a
    /// row per frame.
    pub fn pascal_demo(rows: usize) -> AnimData {
        let mut anim = AnimData::new(120, 16 * rows as i32 + 4, 200);
        let mut triangle: Vec<Vec<u64>> = Vec::new();
        for r in 0..rows {
            let mut row = vec![1u64; r + 1];
            for c in 1..r {
                row[c] = triangle[r - 1][c - 1] + triangle[r - 1][c];
            }
            triangle.push(row);
            // Frame r shows rows 0..=r.
            let mut frame: Frame = Vec::new();
            for (ri, trow) in triangle.iter().enumerate() {
                for (ci, v) in trow.iter().enumerate() {
                    let x = 60 - 8 * ri as i32 + 16 * ci as i32;
                    let y = 2 + 16 * ri as i32;
                    frame.push(Shape::Label {
                        at: Point::new(x, y),
                        text: v.to_string(),
                        size: 10,
                    });
                }
            }
            anim.push_frame(frame);
        }
        anim
    }

    /// Number of frames.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// A frame's display list.
    pub fn frame(&self, i: usize) -> Option<&Frame> {
        self.frames.get(i)
    }

    /// Appends a frame.
    pub fn push_frame(&mut self, frame: Frame) -> ChangeRec {
        std::sync::Arc::make_mut(&mut self.frames).push(frame);
        ChangeRec::Structure
    }
}

impl DataObject for AnimData {
    fn class_name(&self) -> &'static str {
        "animation"
    }

    fn write_body(&self, w: &mut DatastreamWriter, _world: &World) -> io::Result<()> {
        w.write_line(&format!(
            "anim {} {} {}",
            self.canvas.width, self.canvas.height, self.interval_ms
        ))?;
        for frame in self.frames.iter() {
            w.write_line(&format!("frame {}", frame.len()))?;
            for s in frame {
                match s {
                    Shape::Line { a, b, width } => {
                        w.write_line(&format!("line {} {} {} {} {}", a.x, a.y, b.x, b.y, width))?
                    }
                    Shape::Rect { rect, filled } => w.write_line(&format!(
                        "rect {} {} {} {} {}",
                        rect.x, rect.y, rect.width, rect.height, *filled as u8
                    ))?,
                    Shape::Oval { rect, filled } => w.write_line(&format!(
                        "oval {} {} {} {} {}",
                        rect.x, rect.y, rect.width, rect.height, *filled as u8
                    ))?,
                    Shape::Label { at, text, size } => {
                        w.write_line(&format!("label {} {} {} {}", at.x, at.y, size, text))?
                    }
                    other => {
                        // Polylines and insets are not supported inside
                        // animation frames; write a comment-ish no-op.
                        w.write_line(&format!("skip {}", shape_name(other)))?;
                    }
                }
            }
        }
        Ok(())
    }

    fn read_body(
        &mut self,
        r: &mut DatastreamReader<'_>,
        _world: &mut World,
    ) -> Result<(), DsError> {
        let bad = |l: &str| DsError::Malformed(format!("animation body: {l}"));
        let frames = std::sync::Arc::make_mut(&mut self.frames);
        frames.clear();
        loop {
            let tok = r.next_token()?.ok_or(DsError::UnexpectedEof)?;
            match tok {
                Token::EndData { .. } => break,
                Token::Line(line) => {
                    let mut words = line.split_whitespace();
                    let kw = words.next().unwrap_or("");
                    let mut nums = |n: usize| -> Result<Vec<i32>, DsError> {
                        let v: Vec<i32> = words
                            .by_ref()
                            .take(n)
                            .filter_map(|x| x.parse().ok())
                            .collect();
                        if v.len() == n {
                            Ok(v)
                        } else {
                            Err(bad(&line))
                        }
                    };
                    match kw {
                        "anim" => {
                            let v = nums(3)?;
                            self.canvas = Size::new(v[0], v[1]);
                            self.interval_ms = v[2].max(1) as u64;
                        }
                        "frame" => frames.push(Vec::new()),
                        "line" => {
                            let v = nums(5)?;
                            frames
                                .last_mut()
                                .ok_or_else(|| bad(&line))?
                                .push(Shape::Line {
                                    a: Point::new(v[0], v[1]),
                                    b: Point::new(v[2], v[3]),
                                    width: v[4],
                                });
                        }
                        "rect" | "oval" => {
                            let v = nums(5)?;
                            let rect = Rect::new(v[0], v[1], v[2], v[3]);
                            let filled = v[4] != 0;
                            frames
                                .last_mut()
                                .ok_or_else(|| bad(&line))?
                                .push(if kw == "rect" {
                                    Shape::Rect { rect, filled }
                                } else {
                                    Shape::Oval { rect, filled }
                                });
                        }
                        "label" => {
                            let v = nums(3)?;
                            let text = words.collect::<Vec<_>>().join(" ");
                            frames
                                .last_mut()
                                .ok_or_else(|| bad(&line))?
                                .push(Shape::Label {
                                    at: Point::new(v[0], v[1]),
                                    text,
                                    size: v[2].max(6) as u32,
                                });
                        }
                        "skip" => {}
                        _ => return Err(bad(&line)),
                    }
                }
                other => {
                    return Err(DsError::Malformed(format!(
                        "animation body token: {other:?}"
                    )))
                }
            }
        }
        Ok(())
    }

    fn fork(&self) -> Option<Box<dyn DataObject>> {
        Some(Box::new(self.clone()))
    }

    fn shared_payload_bytes(&self) -> u64 {
        self.frames
            .iter()
            .map(|f| (f.len() * std::mem::size_of::<Shape>()) as u64)
            .sum()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn shape_name(s: &Shape) -> &'static str {
    match s {
        Shape::Line { .. } => "line",
        Shape::Rect { .. } => "rect",
        Shape::Oval { .. } => "oval",
        Shape::Polyline { .. } => "poly",
        Shape::Label { .. } => "label",
        Shape::Inset { .. } => "inset",
    }
}

/// Timer token used by the animation view.
const TICK_TOKEN: u32 = 1;

/// The animation view: frame display plus virtual-clock playback.
#[derive(Clone)]
pub struct AnimView {
    base: ViewBase,
    data: Option<DataId>,
    /// Current frame index.
    pub current: usize,
    /// True while playing.
    pub playing: bool,
}

impl AnimView {
    /// An unbound animation view.
    pub fn new() -> AnimView {
        AnimView {
            base: ViewBase::new(),
            data: None,
            current: 0,
            playing: false,
        }
    }

    fn interval(&self, world: &World) -> u64 {
        self.data
            .and_then(|d| world.data::<AnimData>(d))
            .map(|a| a.interval_ms)
            .unwrap_or(200)
    }

    /// Starts playback (the menu's *animate* item).
    pub fn play(&mut self, world: &mut World) {
        if !self.playing {
            self.playing = true;
            let iv = self.interval(world);
            world.schedule_timer(self.base.id, iv, TICK_TOKEN);
        }
    }

    /// Stops playback.
    pub fn stop(&mut self, world: &mut World) {
        self.playing = false;
        world.cancel_timers(self.base.id);
    }
}

impl Default for AnimView {
    fn default() -> Self {
        AnimView::new()
    }
}

impl View for AnimView {
    fn class_name(&self) -> &'static str {
        "animationv"
    }
    fn id(&self) -> ViewId {
        self.base.id
    }
    fn set_id(&mut self, id: ViewId) {
        self.base.id = id;
    }
    fn data_object(&self) -> Option<DataId> {
        self.data
    }

    fn set_data_object(&mut self, world: &mut World, data: DataId) -> bool {
        if let Some(old) = self.data {
            world.remove_observer(old, ObserverRef::View(self.base.id));
        }
        self.data = Some(data);
        world.add_observer(data, ObserverRef::View(self.base.id));
        world.post_damage_full(self.base.id);
        true
    }

    fn desired_size(&mut self, world: &mut World, _budget: i32) -> Size {
        self.data
            .and_then(|d| world.data::<AnimData>(d))
            .map(|a| a.canvas)
            .unwrap_or(Size::new(100, 60))
    }

    fn draw(&mut self, world: &mut World, g: &mut dyn Graphic, _update: Update) {
        let Some(anim) = self.data.and_then(|d| world.data::<AnimData>(d)) else {
            return;
        };
        let frame = anim
            .frame(self.current.min(anim.frame_count().saturating_sub(1)))
            .cloned()
            .unwrap_or_default();
        g.set_foreground(Color::BLACK);
        for s in &frame {
            match s {
                Shape::Line { a, b, width } => {
                    g.set_line_width(*width);
                    g.draw_line(*a, *b);
                    g.set_line_width(1);
                }
                Shape::Rect { rect, filled } => {
                    if *filled {
                        g.fill_rect(*rect);
                    } else {
                        g.draw_rect(*rect);
                    }
                }
                Shape::Oval { rect, filled } => {
                    if *filled {
                        g.fill_oval(*rect);
                    } else {
                        g.draw_oval(*rect);
                    }
                }
                Shape::Label { at, text, size } => {
                    g.set_font(FontDesc::new("andy", Default::default(), *size));
                    g.draw_string(*at, text);
                }
                _ => {}
            }
        }
    }

    fn timer(&mut self, world: &mut World, token: u32) {
        if token != TICK_TOKEN || !self.playing {
            return;
        }
        let count = self
            .data
            .and_then(|d| world.data::<AnimData>(d))
            .map(|a| a.frame_count())
            .unwrap_or(0);
        if count > 0 {
            self.current = (self.current + 1) % count;
            world.post_damage_full(self.base.id);
        }
        let iv = self.interval(world);
        world.schedule_timer(self.base.id, iv, TICK_TOKEN);
    }

    fn perform(&mut self, world: &mut World, command: &str) -> bool {
        match command {
            // The paper: "click into the cell and choose the animate item
            // from the menus."
            "animate" => {
                self.play(world);
                true
            }
            "anim-stop" => {
                self.stop(world);
                true
            }
            "anim-step" => {
                let count = self
                    .data
                    .and_then(|d| world.data::<AnimData>(d))
                    .map(|a| a.frame_count())
                    .unwrap_or(0);
                if count > 0 {
                    self.current = (self.current + 1) % count;
                    world.post_damage_full(self.base.id);
                }
                true
            }
            _ => false,
        }
    }

    fn menus(&self, _world: &World) -> Vec<MenuItem> {
        vec![
            MenuItem::new("Animation", "Animate", "animate"),
            MenuItem::new("Animation", "Stop", "anim-stop"),
            MenuItem::new("Animation", "Step", "anim-step"),
        ]
    }

    fn mouse(&mut self, world: &mut World, action: atk_wm::MouseAction, _pt: Point) -> bool {
        if let atk_wm::MouseAction::Down(atk_wm::Button::Left) = action {
            world.request_focus(self.base.id);
            return true;
        }
        false
    }

    fn observed_changed(&mut self, world: &mut World, _s: DataId, _c: &ChangeRec) {
        world.post_damage_full(self.base.id);
    }

    fn fork(&self) -> Option<Box<dyn View>> {
        Some(Box::new(self.clone()))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pascal_demo_builds_growing_frames() {
        let anim = AnimData::pascal_demo(5);
        assert_eq!(anim.frame_count(), 5);
        // Frame r has 1+2+..+(r+1) labels.
        assert_eq!(anim.frame(0).unwrap().len(), 1);
        assert_eq!(anim.frame(4).unwrap().len(), 15);
        // Last row of last frame carries binomials 1 4 6 4 1.
        let labels: Vec<String> = anim
            .frame(4)
            .unwrap()
            .iter()
            .filter_map(|s| match s {
                Shape::Label { text, .. } => Some(text.clone()),
                _ => None,
            })
            .collect();
        assert!(labels.contains(&"6".to_string()));
    }

    #[test]
    fn playback_advances_on_virtual_timer() {
        let mut world = World::new();
        let data = world.insert_data(Box::new(AnimData::pascal_demo(4)));
        let vid = world.insert_view(Box::new(AnimView::new()));
        world.with_view(vid, |v, w| v.set_data_object(w, data));
        world.set_view_bounds(vid, Rect::new(0, 0, 120, 70));
        // Menu "Animate".
        world.with_view(vid, |v, w| {
            assert!(v.perform(w, "animate"));
        });
        assert!(world.view_as::<AnimView>(vid).unwrap().playing);
        // Two intervals pass (interval is 200ms).
        for _ in 0..2 {
            for (view, token) in world.advance_clock(200) {
                world.with_view(view, |v, w| v.timer(w, token));
            }
        }
        assert_eq!(world.view_as::<AnimView>(vid).unwrap().current, 2);
        // Stop cancels the timer.
        world.with_view(vid, |v, w| {
            assert!(v.perform(w, "anim-stop"));
        });
        assert!(world.advance_clock(1000).is_empty());
    }

    #[test]
    fn step_wraps_around() {
        let mut world = World::new();
        let data = world.insert_data(Box::new(AnimData::pascal_demo(2)));
        let vid = world.insert_view(Box::new(AnimView::new()));
        world.with_view(vid, |v, w| v.set_data_object(w, data));
        world.with_view(vid, |v, w| {
            v.perform(w, "anim-step");
            v.perform(w, "anim-step");
        });
        assert_eq!(world.view_as::<AnimView>(vid).unwrap().current, 0);
    }

    #[test]
    fn serialization_round_trip() {
        let mut world = World::new();
        world
            .catalog
            .register_data("animation", || Box::new(AnimData::new(1, 1, 100)));
        let anim = AnimData::pascal_demo(3);
        let id = world.insert_data(Box::new(anim));
        let doc = atk_core::document_to_string(&world, id);
        assert!(atk_core::audit_stream(&doc).is_empty());
        let mut world2 = World::new();
        world2
            .catalog
            .register_data("animation", || Box::new(AnimData::new(1, 1, 100)));
        let id2 = atk_core::read_document(&mut world2, &doc).unwrap();
        let a2 = world2.data::<AnimData>(id2).unwrap();
        assert_eq!(a2.frame_count(), 3);
        assert_eq!(a2.interval_ms, 200);
        assert_eq!(a2.frame(2).unwrap().len(), 6);
    }
}
