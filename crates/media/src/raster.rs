//! The raster component: 1-bit bitmap images.
//!
//! Rasters are the paper's example of an external representation that
//! cannot be "understandable" text, but can still be *slightly* humane:
//! "the raster format could make sure the bits representing a new row
//! always begin on a new line" (§5). [`RasterData`]'s serialization does
//! exactly that — a header line, then one hex line per pixel row.

use std::any::Any;
use std::io;

use atk_graphics::{Color, Framebuffer, Point, Rect, Size};
use atk_wm::{Button, Graphic, MouseAction};

use atk_core::{
    ChangeRec, DataId, DataObject, DatastreamReader, DatastreamWriter, DsError, MenuItem,
    ObserverRef, Token, Update, View, ViewBase, ViewId, World,
};

/// A 1-bit bitmap.
///
/// The pixel payload lives behind an `Arc` so template forks share it
/// copy-on-write: a forked session pays for the bits only when it first
/// paints into them.
#[derive(Clone)]
pub struct RasterData {
    width: i32,
    height: i32,
    /// Row-major bits, one byte per 8 pixels, MSB first, rows padded to a
    /// byte boundary.
    bits: std::sync::Arc<Vec<u8>>,
}

impl RasterData {
    /// An all-white raster.
    pub fn new(width: i32, height: i32) -> RasterData {
        let width = width.max(0);
        let height = height.max(0);
        let rowbytes = ((width + 7) / 8) as usize;
        RasterData {
            width,
            height,
            bits: std::sync::Arc::new(vec![0; rowbytes * height as usize]),
        }
    }

    /// Builds a raster from a predicate (used by the demo corpus: the
    /// "big cat" of figure 4 is generated, not scanned).
    pub fn from_fn(width: i32, height: i32, f: impl Fn(i32, i32) -> bool) -> RasterData {
        let mut r = RasterData::new(width, height);
        for y in 0..height {
            for x in 0..width {
                if f(x, y) {
                    r.set(x, y, true);
                }
            }
        }
        r
    }

    /// Width in pixels.
    pub fn width(&self) -> i32 {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> i32 {
        self.height
    }

    fn rowbytes(&self) -> usize {
        ((self.width + 7) / 8) as usize
    }

    /// The bit at `(x, y)` (false outside).
    pub fn get(&self, x: i32, y: i32) -> bool {
        if x < 0 || y < 0 || x >= self.width || y >= self.height {
            return false;
        }
        let idx = y as usize * self.rowbytes() + (x / 8) as usize;
        self.bits[idx] & (0x80 >> (x % 8)) != 0
    }

    /// Sets the bit at `(x, y)`.
    pub fn set(&mut self, x: i32, y: i32, on: bool) {
        if x < 0 || y < 0 || x >= self.width || y >= self.height {
            return;
        }
        let rb = self.rowbytes();
        let idx = y as usize * rb + (x / 8) as usize;
        let bits = std::sync::Arc::make_mut(&mut self.bits);
        if on {
            bits[idx] |= 0x80 >> (x % 8);
        } else {
            bits[idx] &= !(0x80 >> (x % 8));
        }
    }

    /// Toggles a pixel, returning a change record.
    pub fn toggle(&mut self, x: i32, y: i32) -> ChangeRec {
        let v = self.get(x, y);
        self.set(x, y, !v);
        ChangeRec::Element {
            index: (y.max(0) as usize) * self.width.max(1) as usize + x.max(0) as usize,
        }
    }

    /// Inverts every pixel.
    pub fn invert(&mut self) -> ChangeRec {
        let rb = self.rowbytes();
        let pad = (rb * 8) as i32 - self.width;
        let height = self.height as usize;
        let bits = std::sync::Arc::make_mut(&mut self.bits);
        for b in bits.iter_mut() {
            *b = !*b;
        }
        // Mask padding bits in the last byte of each row back to zero.
        if pad > 0 {
            let mask = !(((1u16 << pad) - 1) as u8);
            for y in 0..height {
                bits[y * rb + rb - 1] &= mask;
            }
        }
        ChangeRec::Full
    }

    /// Count of set pixels.
    pub fn population(&self) -> usize {
        (0..self.height)
            .flat_map(|y| (0..self.width).map(move |x| (x, y)))
            .filter(|&(x, y)| self.get(x, y))
            .count()
    }

    /// Renders into a framebuffer at 1:1.
    pub fn to_framebuffer(&self) -> Framebuffer {
        let mut fb = Framebuffer::new(self.width, self.height, Color::WHITE);
        for y in 0..self.height {
            for x in 0..self.width {
                if self.get(x, y) {
                    fb.set(x, y, Color::BLACK);
                }
            }
        }
        fb
    }
}

impl DataObject for RasterData {
    fn class_name(&self) -> &'static str {
        "raster"
    }

    fn write_body(&self, w: &mut DatastreamWriter, _world: &World) -> io::Result<()> {
        w.write_line(&format!("raster {} {}", self.width, self.height))?;
        let rb = self.rowbytes();
        for y in 0..self.height as usize {
            // One row per logical line — the paper's §5 suggestion; the
            // writer's 80-column wrapping handles very wide rows.
            let row = &self.bits[y * rb..(y + 1) * rb];
            let hex: String = row.iter().map(|b| format!("{b:02x}")).collect();
            w.write_line(&hex)?;
        }
        Ok(())
    }

    fn read_body(
        &mut self,
        r: &mut DatastreamReader<'_>,
        _world: &mut World,
    ) -> Result<(), DsError> {
        let bad = |l: &str| DsError::Malformed(format!("raster body: {l}"));
        let mut rows_read = 0usize;
        loop {
            let tok = r.next_token()?.ok_or(DsError::UnexpectedEof)?;
            match tok {
                Token::EndData { .. } => break,
                Token::Line(line) => {
                    if let Some(rest) = line.strip_prefix("raster ") {
                        let mut words = rest.split_whitespace();
                        let w: i32 = words
                            .next()
                            .and_then(|x| x.parse().ok())
                            .ok_or_else(|| bad(&line))?;
                        let h: i32 = words
                            .next()
                            .and_then(|x| x.parse().ok())
                            .ok_or_else(|| bad(&line))?;
                        *self = RasterData::new(w, h);
                    } else {
                        // A hex row.
                        if rows_read >= self.height as usize {
                            return Err(bad(&line));
                        }
                        let rb = self.rowbytes();
                        if line.len() != rb * 2 {
                            return Err(bad(&line));
                        }
                        let bits = std::sync::Arc::make_mut(&mut self.bits);
                        for i in 0..rb {
                            let byte = u8::from_str_radix(&line[i * 2..i * 2 + 2], 16)
                                .map_err(|_| bad(&line))?;
                            bits[rows_read * rb + i] = byte;
                        }
                        rows_read += 1;
                    }
                }
                other => return Err(DsError::Malformed(format!("raster body token: {other:?}"))),
            }
        }
        Ok(())
    }

    fn fork(&self) -> Option<Box<dyn DataObject>> {
        Some(Box::new(self.clone()))
    }

    fn shared_payload_bytes(&self) -> u64 {
        self.bits.len() as u64
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The raster view: scaled display and pixel painting.
#[derive(Clone)]
pub struct RasterView {
    base: ViewBase,
    data: Option<DataId>,
    /// Integer magnification.
    pub zoom: i32,
}

impl RasterView {
    /// An unbound raster view at 1:1.
    pub fn new() -> RasterView {
        RasterView {
            base: ViewBase::new(),
            data: None,
            zoom: 1,
        }
    }
}

impl Default for RasterView {
    fn default() -> Self {
        RasterView::new()
    }
}

impl View for RasterView {
    fn class_name(&self) -> &'static str {
        "rasterview"
    }
    fn id(&self) -> ViewId {
        self.base.id
    }
    fn set_id(&mut self, id: ViewId) {
        self.base.id = id;
    }
    fn data_object(&self) -> Option<DataId> {
        self.data
    }

    fn set_data_object(&mut self, world: &mut World, data: DataId) -> bool {
        if let Some(old) = self.data {
            world.remove_observer(old, ObserverRef::View(self.base.id));
        }
        self.data = Some(data);
        world.add_observer(data, ObserverRef::View(self.base.id));
        world.post_damage_full(self.base.id);
        true
    }

    fn desired_size(&mut self, world: &mut World, _budget: i32) -> Size {
        self.data
            .and_then(|d| world.data::<RasterData>(d))
            .map(|r| Size::new(r.width() * self.zoom + 2, r.height() * self.zoom + 2))
            .unwrap_or(Size::new(34, 34))
    }

    fn draw(&mut self, world: &mut World, g: &mut dyn Graphic, _update: Update) {
        let Some(raster) = self.data.and_then(|d| world.data::<RasterData>(d)) else {
            return;
        };
        if self.zoom == 1 {
            let fb = raster.to_framebuffer();
            g.bitblt(&fb, fb.bounds(), Point::new(1, 1));
        } else {
            g.set_foreground(Color::BLACK);
            for y in 0..raster.height() {
                for x in 0..raster.width() {
                    if raster.get(x, y) {
                        g.fill_rect(Rect::new(
                            1 + x * self.zoom,
                            1 + y * self.zoom,
                            self.zoom,
                            self.zoom,
                        ));
                    }
                }
            }
        }
        let size = world.view_bounds(self.base.id).size();
        g.set_foreground(Color::GRAY);
        g.draw_rect(Rect::at(Point::ORIGIN, size));
    }

    fn mouse(&mut self, world: &mut World, action: MouseAction, pt: Point) -> bool {
        let Some(data_id) = self.data else {
            return false;
        };
        match action {
            MouseAction::Down(Button::Left) | MouseAction::Drag(Button::Left) => {
                let x = (pt.x - 1) / self.zoom.max(1);
                let y = (pt.y - 1) / self.zoom.max(1);
                let rec = world
                    .data_mut::<RasterData>(data_id)
                    .map(|r| r.toggle(x, y));
                if let Some(rec) = rec {
                    world.notify(data_id, rec);
                }
                world.request_focus(self.base.id);
                true
            }
            MouseAction::Up(Button::Left) => true,
            _ => false,
        }
    }

    fn perform(&mut self, world: &mut World, command: &str) -> bool {
        let Some(data_id) = self.data else {
            return false;
        };
        match command {
            "raster-invert" => {
                let rec = world.data_mut::<RasterData>(data_id).map(|r| r.invert());
                if let Some(rec) = rec {
                    world.notify(data_id, rec);
                }
                true
            }
            "raster-zoom-in" => {
                self.zoom = (self.zoom + 1).min(8);
                world.post_damage_full(self.base.id);
                true
            }
            "raster-zoom-out" => {
                self.zoom = (self.zoom - 1).max(1);
                world.post_damage_full(self.base.id);
                true
            }
            _ => false,
        }
    }

    fn menus(&self, _world: &World) -> Vec<MenuItem> {
        vec![
            MenuItem::new("Raster", "Invert", "raster-invert"),
            MenuItem::new("Raster", "Zoom In", "raster-zoom-in"),
            MenuItem::new("Raster", "Zoom Out", "raster-zoom-out"),
        ]
    }

    fn observed_changed(&mut self, world: &mut World, _s: DataId, change: &ChangeRec) {
        match change {
            ChangeRec::Element { index } => {
                // Damage just the touched pixel's screen square.
                let w = self
                    .data
                    .and_then(|d| world.data::<RasterData>(d))
                    .map(|r| r.width().max(1))
                    .unwrap_or(1);
                let x = (*index as i32 % w) * self.zoom + 1;
                let y = (*index as i32 / w) * self.zoom + 1;
                world.post_damage(
                    self.base.id,
                    Rect::new(x, y, self.zoom.max(1), self.zoom.max(1)),
                );
            }
            _ => world.post_damage_full(self.base.id),
        }
    }

    fn fork(&self) -> Option<Box<dyn View>> {
        Some(Box::new(self.clone()))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_and_bounds() {
        let mut r = RasterData::new(10, 5);
        r.set(0, 0, true);
        r.set(9, 4, true);
        r.set(100, 100, true); // Silently clipped.
        assert!(r.get(0, 0));
        assert!(r.get(9, 4));
        assert!(!r.get(5, 2));
        assert!(!r.get(-1, 0));
        assert_eq!(r.population(), 2);
    }

    #[test]
    fn toggle_and_invert() {
        let mut r = RasterData::new(9, 3); // Width not a byte multiple.
        r.toggle(4, 1);
        assert!(r.get(4, 1));
        r.toggle(4, 1);
        assert!(!r.get(4, 1));
        r.set(0, 0, true);
        r.invert();
        assert!(!r.get(0, 0));
        assert_eq!(r.population(), 9 * 3 - 1);
        // Padding bits must not leak into population after invert.
    }

    #[test]
    fn from_fn_builds_patterns() {
        let checker = RasterData::from_fn(8, 8, |x, y| (x + y) % 2 == 0);
        assert_eq!(checker.population(), 32);
        assert!(checker.get(0, 0));
        assert!(!checker.get(1, 0));
    }

    #[test]
    fn serialization_one_hex_line_per_row() {
        let mut world = World::new();
        world
            .catalog
            .register_data("raster", || Box::new(RasterData::new(1, 1)));
        let r = RasterData::from_fn(16, 4, |x, y| x == y);
        let id = world.insert_data(Box::new(r));
        let doc = atk_core::document_to_string(&world, id);
        assert!(atk_core::audit_stream(&doc).is_empty());
        // Header + 4 hex rows, each its own line (paper §5).
        let hex_lines: Vec<&str> = doc
            .lines()
            .filter(|l| l.len() == 4 && l.chars().all(|c| c.is_ascii_hexdigit()))
            .collect();
        assert_eq!(hex_lines.len(), 4);

        let mut world2 = World::new();
        world2
            .catalog
            .register_data("raster", || Box::new(RasterData::new(1, 1)));
        let id2 = atk_core::read_document(&mut world2, &doc).unwrap();
        let r2 = world2.data::<RasterData>(id2).unwrap();
        assert_eq!((r2.width(), r2.height()), (16, 4));
        assert!(r2.get(2, 2));
        assert!(!r2.get(3, 2));
    }

    #[test]
    fn wide_rows_survive_line_wrapping() {
        let mut world = World::new();
        world
            .catalog
            .register_data("raster", || Box::new(RasterData::new(1, 1)));
        let r = RasterData::from_fn(400, 3, |x, _| x % 7 == 0);
        let pop = r.population();
        let id = world.insert_data(Box::new(r));
        let doc = atk_core::document_to_string(&world, id);
        // Every physical line obeys the 80-column rule.
        assert!(atk_core::audit_stream(&doc).is_empty());
        let mut world2 = World::new();
        world2
            .catalog
            .register_data("raster", || Box::new(RasterData::new(1, 1)));
        let id2 = atk_core::read_document(&mut world2, &doc).unwrap();
        assert_eq!(world2.data::<RasterData>(id2).unwrap().population(), pop);
    }

    #[test]
    fn view_paints_pixels() {
        let mut world = World::new();
        let data = world.insert_data(Box::new(RasterData::new(8, 8)));
        let mut view = RasterView::new();
        view.zoom = 4;
        let vid = world.insert_view(Box::new(view));
        world.with_view(vid, |v, w| v.set_data_object(w, data));
        world.set_view_bounds(vid, Rect::new(0, 0, 34, 34));
        world.with_view(vid, |v, w| {
            v.mouse(w, MouseAction::Down(Button::Left), Point::new(9, 9));
        });
        // Pixel (2,2) toggled.
        assert!(world.data::<RasterData>(data).unwrap().get(2, 2));
    }
}
