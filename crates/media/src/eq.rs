//! The equation component.
//!
//! The paper's figure 5 embeds "a set of equations which defines the
//! values of [Pascal's] triangle" — e.g. `v sub {i,j} = v sub {i-1,j} +
//! v sub {i,j-1}`. This module implements an eqn(1)-flavoured linear
//! source language, a recursive box-layout engine, and a view that
//! renders the laid-out boxes through the graphics layer.
//!
//! Supported constructs: symbols and numbers, `sub {…}` / `sup {…}`
//! scripts, `frac{…}{…}`, `sqrt{…}`, `sum`/`int` with `from{…}`/`to{…}`
//! limits, and `{…}` grouping.

use std::any::Any;
use std::io;

use atk_graphics::{Color, FontDesc, Point, Size};
use atk_wm::Graphic;

use atk_core::{
    ChangeRec, DataId, DataObject, DatastreamReader, DatastreamWriter, DsError, MenuItem,
    ObserverRef, Token, Update, View, ViewBase, ViewId, World,
};

/// A parsed equation node.
#[derive(Debug, Clone, PartialEq)]
pub enum EqNode {
    /// A symbol, number, or operator rendered as-is.
    Sym(String),
    /// Horizontal sequence.
    Seq(Vec<EqNode>),
    /// Base with subscript and/or superscript.
    Script {
        /// The base expression.
        base: Box<EqNode>,
        /// Subscript, if any.
        sub: Option<Box<EqNode>>,
        /// Superscript, if any.
        sup: Option<Box<EqNode>>,
    },
    /// Fraction.
    Frac(Box<EqNode>, Box<EqNode>),
    /// Square root.
    Sqrt(Box<EqNode>),
    /// Big operator (`sum`, `int`) with optional limits.
    BigOp {
        /// Operator glyph name.
        op: String,
        /// Lower limit.
        from: Option<Box<EqNode>>,
        /// Upper limit.
        to: Option<Box<EqNode>>,
    },
}

/// Parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EqError(pub String);

impl std::fmt::Display for EqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "equation parse error: {}", self.0)
    }
}

impl std::error::Error for EqError {}

fn tokenize(src: &str) -> Vec<String> {
    let mut toks = Vec::new();
    let mut cur = String::new();
    for c in src.chars() {
        match c {
            '{' | '}' => {
                if !cur.is_empty() {
                    toks.push(std::mem::take(&mut cur));
                }
                toks.push(c.to_string());
            }
            c if c.is_whitespace() => {
                if !cur.is_empty() {
                    toks.push(std::mem::take(&mut cur));
                }
            }
            // Operators split words so "i-1" becomes i - 1 but stays
            // renderable; commas separate subscript indices.
            '+' | '-' | '=' | ',' | '(' | ')' | '*' | '/' => {
                if !cur.is_empty() {
                    toks.push(std::mem::take(&mut cur));
                }
                toks.push(c.to_string());
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        toks.push(cur);
    }
    toks
}

struct EqParser {
    toks: Vec<String>,
    pos: usize,
}

impl EqParser {
    fn peek(&self) -> Option<&str> {
        self.toks.get(self.pos).map(String::as_str)
    }

    fn next(&mut self) -> Option<String> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn parse_group(&mut self) -> Result<EqNode, EqError> {
        match self.next().as_deref() {
            Some("{") => {
                let seq = self.parse_seq(true)?;
                match self.next().as_deref() {
                    Some("}") => Ok(seq),
                    other => Err(EqError(format!("expected }}, found {other:?}"))),
                }
            }
            Some(tok) => Ok(EqNode::Sym(tok.to_string())),
            None => Err(EqError("unexpected end".to_string())),
        }
    }

    fn parse_item(&mut self) -> Result<EqNode, EqError> {
        let base = match self.next().as_deref() {
            Some("{") => {
                let seq = self.parse_seq(true)?;
                match self.next().as_deref() {
                    Some("}") => seq,
                    other => return Err(EqError(format!("expected }}, found {other:?}"))),
                }
            }
            Some("frac") => {
                let num = self.parse_group()?;
                let den = self.parse_group()?;
                EqNode::Frac(Box::new(num), Box::new(den))
            }
            Some("sqrt") => EqNode::Sqrt(Box::new(self.parse_group()?)),
            Some(op @ ("sum" | "int" | "prod")) => {
                let op = op.to_string();
                let mut from = None;
                let mut to = None;
                loop {
                    match self.peek() {
                        Some("from") => {
                            self.next();
                            from = Some(Box::new(self.parse_group()?));
                        }
                        Some("to") => {
                            self.next();
                            to = Some(Box::new(self.parse_group()?));
                        }
                        _ => break,
                    }
                }
                EqNode::BigOp { op, from, to }
            }
            Some(tok) => EqNode::Sym(tok.to_string()),
            None => return Err(EqError("unexpected end".to_string())),
        };
        // Trailing scripts.
        let mut sub = None;
        let mut sup = None;
        loop {
            match self.peek() {
                Some("sub") => {
                    self.next();
                    sub = Some(Box::new(self.parse_group()?));
                }
                Some("sup") => {
                    self.next();
                    sup = Some(Box::new(self.parse_group()?));
                }
                _ => break,
            }
        }
        if sub.is_some() || sup.is_some() {
            Ok(EqNode::Script {
                base: Box::new(base),
                sub,
                sup,
            })
        } else {
            Ok(base)
        }
    }

    fn parse_seq(&mut self, in_group: bool) -> Result<EqNode, EqError> {
        let mut items = Vec::new();
        while let Some(tok) = self.peek() {
            if tok == "}" {
                if in_group {
                    break;
                }
                return Err(EqError("unmatched }".to_string()));
            }
            items.push(self.parse_item()?);
        }
        Ok(if items.len() == 1 {
            items.pop().expect("len checked")
        } else {
            EqNode::Seq(items)
        })
    }
}

/// Parses equation source.
pub fn parse_eq(src: &str) -> Result<EqNode, EqError> {
    let mut p = EqParser {
        toks: tokenize(src),
        pos: 0,
    };
    p.parse_seq(false)
}

/// A laid-out box: extent plus baseline offset from the top.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EqBox {
    /// Width in pixels.
    pub width: i32,
    /// Height in pixels.
    pub height: i32,
    /// Baseline offset from the top.
    pub baseline: i32,
}

fn font_for(size: u32) -> FontDesc {
    FontDesc::new("andy", Default::default(), size)
}

/// Computes the layout box of a node at a font size.
pub fn measure(node: &EqNode, size: u32) -> EqBox {
    let font = font_for(size);
    let m = font.metrics();
    match node {
        EqNode::Sym(s) => EqBox {
            width: font.string_width(s) + 2,
            height: m.line_height,
            baseline: m.ascent,
        },
        EqNode::Seq(items) => {
            let mut width = 0;
            let mut above = 0;
            let mut below = 0;
            for it in items {
                let b = measure(it, size);
                width += b.width;
                above = above.max(b.baseline);
                below = below.max(b.height - b.baseline);
            }
            EqBox {
                width,
                height: above + below,
                baseline: above,
            }
        }
        EqNode::Script { base, sub, sup } => {
            let script_size = (size * 7 / 10).max(6);
            let b = measure(base, size);
            let sb = sub.as_ref().map(|n| measure(n, script_size));
            let sp = sup.as_ref().map(|n| measure(n, script_size));
            let script_w = sb
                .map(|x| x.width)
                .unwrap_or(0)
                .max(sp.map(|x| x.width).unwrap_or(0));
            let above = b.baseline + sp.map(|x| x.height - 2).unwrap_or(0).max(0);
            let below = (b.height - b.baseline) + sb.map(|x| x.height - 2).unwrap_or(0).max(0);
            EqBox {
                width: b.width + script_w,
                height: above + below,
                baseline: above,
            }
        }
        EqNode::Frac(num, den) => {
            let n = measure(num, size);
            let d = measure(den, size);
            EqBox {
                width: n.width.max(d.width) + 6,
                height: n.height + d.height + 3,
                baseline: n.height + 1,
            }
        }
        EqNode::Sqrt(inner) => {
            let b = measure(inner, size);
            EqBox {
                width: b.width + 10,
                height: b.height + 3,
                baseline: b.baseline + 3,
            }
        }
        EqNode::BigOp { from, to, .. } => {
            let script_size = (size * 7 / 10).max(6);
            let glyph = EqBox {
                width: font.string_width("Σ").max(10) + 2,
                height: m.line_height + 4,
                baseline: m.ascent + 2,
            };
            let fb = from.as_ref().map(|n| measure(n, script_size));
            let tb = to.as_ref().map(|n| measure(n, script_size));
            let width = glyph
                .width
                .max(fb.map(|x| x.width).unwrap_or(0))
                .max(tb.map(|x| x.width).unwrap_or(0));
            let above = glyph.baseline + tb.map(|x| x.height).unwrap_or(0);
            let below = (glyph.height - glyph.baseline) + fb.map(|x| x.height).unwrap_or(0);
            EqBox {
                width,
                height: above + below,
                baseline: above,
            }
        }
    }
}

/// Renders a node with its top-left at `origin`.
pub fn render(node: &EqNode, g: &mut dyn Graphic, origin: Point, size: u32) {
    let b = measure(node, size);
    render_at_baseline(node, g, Point::new(origin.x, origin.y + b.baseline), size);
}

fn render_at_baseline(node: &EqNode, g: &mut dyn Graphic, pen: Point, size: u32) {
    let font = font_for(size);
    match node {
        EqNode::Sym(s) => {
            g.set_font(font);
            let glyph = match s.as_str() {
                "alpha" => "a",
                "beta" => "B",
                "pi" => "p",
                other => other,
            };
            g.draw_string_baseline(Point::new(pen.x + 1, pen.y), glyph);
        }
        EqNode::Seq(items) => {
            let mut x = pen.x;
            for it in items {
                let b = measure(it, size);
                render_at_baseline(it, g, Point::new(x, pen.y), size);
                x += b.width;
            }
        }
        EqNode::Script { base, sub, sup } => {
            let script_size = (size * 7 / 10).max(6);
            let b = measure(base, size);
            render_at_baseline(base, g, pen, size);
            if let Some(sp) = sup {
                let sb = measure(sp, script_size);
                render_at_baseline(
                    sp,
                    g,
                    Point::new(
                        pen.x + b.width,
                        pen.y - b.baseline + sb.baseline - sb.height + 2,
                    ),
                    script_size,
                );
            }
            if let Some(su) = sub {
                let sb = measure(su, script_size);
                render_at_baseline(
                    su,
                    g,
                    Point::new(
                        pen.x + b.width,
                        pen.y + (b.height - b.baseline) + sb.baseline - 2,
                    ),
                    script_size,
                );
            }
        }
        EqNode::Frac(num, den) => {
            let whole = measure(node, size);
            let n = measure(num, size);
            let d = measure(den, size);
            let top = pen.y - whole.baseline;
            render_at_baseline(
                num,
                g,
                Point::new(pen.x + (whole.width - n.width) / 2, top + n.baseline),
                size,
            );
            g.draw_line(
                Point::new(pen.x + 1, top + n.height + 1),
                Point::new(pen.x + whole.width - 2, top + n.height + 1),
            );
            render_at_baseline(
                den,
                g,
                Point::new(
                    pen.x + (whole.width - d.width) / 2,
                    top + n.height + 3 + d.baseline,
                ),
                size,
            );
        }
        EqNode::Sqrt(inner) => {
            let whole = measure(node, size);
            let b = measure(inner, size);
            let top = pen.y - whole.baseline;
            // Radical: small hook plus overline.
            g.draw_line(
                Point::new(pen.x, top + whole.height - 4),
                Point::new(pen.x + 4, top + whole.height - 1),
            );
            g.draw_line(
                Point::new(pen.x + 4, top + whole.height - 1),
                Point::new(pen.x + 8, top),
            );
            g.draw_line(
                Point::new(pen.x + 8, top),
                Point::new(pen.x + whole.width - 1, top),
            );
            render_at_baseline(inner, g, Point::new(pen.x + 9, top + 3 + b.baseline), size);
        }
        EqNode::BigOp { op, from, to } => {
            let script_size = (size * 7 / 10).max(6);
            let whole = measure(node, size);
            let top = pen.y - whole.baseline;
            let glyph = match op.as_str() {
                "sum" => "E",
                "int" => "S",
                "prod" => "TT",
                other => other,
            };
            let m = font.metrics();
            let ty = to
                .as_ref()
                .map(|t| measure(t, script_size).height)
                .unwrap_or(0);
            if let Some(t) = to {
                let tb = measure(t, script_size);
                render_at_baseline(
                    t,
                    g,
                    Point::new(pen.x + (whole.width - tb.width) / 2, top + tb.baseline),
                    script_size,
                );
            }
            g.set_font(font.clone());
            g.draw_string_baseline(Point::new(pen.x + 2, top + ty + 2 + m.ascent), glyph);
            if let Some(f) = from {
                let fb = measure(f, script_size);
                render_at_baseline(
                    f,
                    g,
                    Point::new(
                        pen.x + (whole.width - fb.width) / 2,
                        top + ty + m.line_height + 4 + fb.baseline,
                    ),
                    script_size,
                );
            }
        }
    }
}

/// The equation data object.
#[derive(Clone)]
pub struct EqData {
    src: String,
    ast: Result<EqNode, EqError>,
    /// Base font size.
    pub size: u32,
}

impl EqData {
    /// An equation from source.
    pub fn from_src(src: &str) -> EqData {
        EqData {
            src: src.to_string(),
            ast: parse_eq(src),
            size: 12,
        }
    }

    /// An empty equation.
    pub fn new() -> EqData {
        EqData::from_src("")
    }

    /// The source text.
    pub fn source(&self) -> &str {
        &self.src
    }

    /// The parsed node (or the parse error).
    pub fn ast(&self) -> Result<&EqNode, &EqError> {
        self.ast.as_ref()
    }

    /// Replaces the source, reparsing. Returns the change record.
    pub fn set_source(&mut self, src: &str) -> ChangeRec {
        self.src = src.to_string();
        self.ast = parse_eq(src);
        ChangeRec::Full
    }

    /// The laid-out extent.
    pub fn extent(&self) -> Size {
        match &self.ast {
            Ok(node) => {
                let b = measure(node, self.size);
                Size::new(b.width + 4, b.height + 4)
            }
            Err(_) => Size::new(90, 14),
        }
    }
}

impl Default for EqData {
    fn default() -> Self {
        EqData::new()
    }
}

impl DataObject for EqData {
    fn class_name(&self) -> &'static str {
        "eq"
    }

    fn write_body(&self, w: &mut DatastreamWriter, _world: &World) -> io::Result<()> {
        w.write_line(&format!("size {}", self.size))?;
        w.write_line(&format!("src {}", self.src))?;
        Ok(())
    }

    fn read_body(
        &mut self,
        r: &mut DatastreamReader<'_>,
        _world: &mut World,
    ) -> Result<(), DsError> {
        loop {
            let tok = r.next_token()?.ok_or(DsError::UnexpectedEof)?;
            match tok {
                Token::EndData { .. } => break,
                Token::Line(line) => {
                    if let Some(rest) = line.strip_prefix("src ") {
                        self.set_source(rest);
                    } else if let Some(rest) = line.strip_prefix("size ") {
                        if let Ok(s) = rest.trim().parse() {
                            self.size = s;
                        }
                    } else if line == "src" {
                        self.set_source("");
                    } else {
                        return Err(DsError::Malformed(format!("eq body: {line}")));
                    }
                }
                other => return Err(DsError::Malformed(format!("eq body token: {other:?}"))),
            }
        }
        Ok(())
    }

    fn fork(&self) -> Option<Box<dyn DataObject>> {
        Some(Box::new(self.clone()))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The equation view: renders the layout; simple in-place source editing.
#[derive(Clone)]
pub struct EqView {
    base: ViewBase,
    data: Option<DataId>,
}

impl EqView {
    /// An unbound equation view.
    pub fn new() -> EqView {
        EqView {
            base: ViewBase::new(),
            data: None,
        }
    }
}

impl Default for EqView {
    fn default() -> Self {
        EqView::new()
    }
}

impl View for EqView {
    fn class_name(&self) -> &'static str {
        "eqv"
    }
    fn id(&self) -> ViewId {
        self.base.id
    }
    fn set_id(&mut self, id: ViewId) {
        self.base.id = id;
    }
    fn data_object(&self) -> Option<DataId> {
        self.data
    }

    fn set_data_object(&mut self, world: &mut World, data: DataId) -> bool {
        if let Some(old) = self.data {
            world.remove_observer(old, ObserverRef::View(self.base.id));
        }
        self.data = Some(data);
        world.add_observer(data, ObserverRef::View(self.base.id));
        world.post_damage_full(self.base.id);
        true
    }

    fn desired_size(&mut self, world: &mut World, _budget: i32) -> Size {
        self.data
            .and_then(|d| world.data::<EqData>(d))
            .map(|e| e.extent())
            .unwrap_or(Size::new(90, 16))
    }

    fn draw(&mut self, world: &mut World, g: &mut dyn Graphic, _update: Update) {
        let Some(eq) = self.data.and_then(|d| world.data::<EqData>(d)) else {
            return;
        };
        g.set_foreground(Color::BLACK);
        match eq.ast() {
            Ok(node) => {
                let node = node.clone();
                let size = eq.size;
                render(&node, g, Point::new(2, 2), size);
            }
            Err(_) => {
                g.set_font(FontDesc::fixed());
                g.draw_string(Point::new(2, 2), &format!("?eq: {}", eq.source()));
            }
        }
    }

    fn perform(&mut self, world: &mut World, command: &str) -> bool {
        if let Some(src) = command.strip_prefix("eq-set:") {
            if let Some(data_id) = self.data {
                let rec = world.data_mut::<EqData>(data_id).map(|e| e.set_source(src));
                if let Some(rec) = rec {
                    world.notify(data_id, rec);
                }
            }
            return true;
        }
        false
    }

    fn menus(&self, _world: &World) -> Vec<MenuItem> {
        vec![MenuItem::new("Equation", "Edit Source", "eq-edit")]
    }

    fn observed_changed(&mut self, world: &mut World, _s: DataId, _c: &ChangeRec) {
        world.post_damage_full(self.base.id);
    }

    fn fork(&self) -> Option<Box<dyn View>> {
        Some(Box::new(self.clone()))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_equations() {
        // Figure 5's defining equations.
        for src in [
            "v sub {0,0} = v sub {i,0} = 0",
            "v sub {1,1} = 1",
            "v sub {i,j} = v sub {i-1,j} + v sub {i,j-1}",
        ] {
            let ast = parse_eq(src).unwrap();
            let b = measure(&ast, 12);
            assert!(b.width > 20 && b.height >= 10, "{src} -> {b:?}");
        }
    }

    #[test]
    fn script_measures_taller_than_base() {
        let plain = measure(&parse_eq("v").unwrap(), 12);
        let scripted = measure(&parse_eq("v sub {i,j}").unwrap(), 12);
        assert!(scripted.height > plain.height);
        assert!(scripted.width > plain.width);
    }

    #[test]
    fn frac_stacks_vertically() {
        let f = measure(&parse_eq("frac{a}{b}").unwrap(), 12);
        let a = measure(&parse_eq("a").unwrap(), 12);
        assert!(f.height > 2 * a.height - 4);
    }

    #[test]
    fn bigop_with_limits() {
        let s = parse_eq("sum from {i=1} to {n} i").unwrap();
        let b = measure(&s, 12);
        assert!(b.height > 20);
    }

    #[test]
    fn unbalanced_braces_error() {
        assert!(parse_eq("a sub {i").is_err());
        assert!(parse_eq("a } b").is_err());
    }

    #[test]
    fn rendering_produces_ink() {
        use atk_wm::WindowSystem;
        let node = parse_eq("v sub {i,j} = frac{a+b}{2} + sqrt{x}").unwrap();
        let b = measure(&node, 12);
        let mut ws = atk_wm::x11sim::X11Sim::new();
        let mut win = ws.open_window("t", Size::new(b.width + 8, b.height + 8));
        render(&node, win.graphic(), Point::new(2, 2), 12);
        let snap = win.snapshot().unwrap();
        assert!(snap.count_pixels(snap.bounds(), Color::BLACK) > 40);
    }

    #[test]
    fn serialization_round_trip() {
        let mut world = World::new();
        world
            .catalog
            .register_data("eq", || Box::new(EqData::new()));
        let eq = EqData::from_src("v sub {i,j} = v sub {i-1,j} + v sub {i,j-1}");
        let id = world.insert_data(Box::new(eq));
        let doc = atk_core::document_to_string(&world, id);
        let mut world2 = World::new();
        world2
            .catalog
            .register_data("eq", || Box::new(EqData::new()));
        let id2 = atk_core::read_document(&mut world2, &doc).unwrap();
        let eq2 = world2.data::<EqData>(id2).unwrap();
        assert_eq!(eq2.source(), "v sub {i,j} = v sub {i-1,j} + v sub {i,j-1}");
        assert!(eq2.ast().is_ok());
    }

    #[test]
    fn set_source_reparses() {
        let mut eq = EqData::from_src("a+b");
        assert!(eq.ast().is_ok());
        eq.set_source("a sub {");
        assert!(eq.ast().is_err());
        eq.set_source("frac{1}{2}");
        assert!(eq.ast().is_ok());
    }
}
