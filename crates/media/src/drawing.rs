//! The drawing component: a display list of shapes, with semantic hit
//! testing and embedded insets.
//!
//! The drawing editor is the paper's star witness for parental authority
//! (§3): with text embedded in a drawing and a line drawn over that text,
//! "only the drawing component could determine whether the user was
//! selecting the line or the underlying text" — which a global dispatcher
//! cannot allow. [`DrawingView::mouse`] makes exactly that determination:
//! it hit-tests its shapes first (a click near the line selects the
//! line), and only then forwards the event into an embedded inset.
//!
//! The paper says the drawing component "will soon support" embedding;
//! this reproduction implements that announced feature
//! ([`Shape::Inset`]).

use std::any::Any;
use std::io;

use atk_graphics::{Color, FontDesc, Point, Rect, Size};
use atk_wm::{Button, CursorShape, Graphic, MouseAction};

use atk_core::{
    ChangeRec, DataId, DataObject, DatastreamReader, DatastreamWriter, DsError, MenuItem,
    ObserverRef, Token, Update, View, ViewBase, ViewId, World,
};

/// One element of the drawing's display list.
#[derive(Debug, Clone, PartialEq)]
pub enum Shape {
    /// A line segment with thickness.
    Line {
        /// Start point.
        a: Point,
        /// End point.
        b: Point,
        /// Pen width.
        width: i32,
    },
    /// A rectangle.
    Rect {
        /// Geometry.
        rect: Rect,
        /// Filled or outlined.
        filled: bool,
    },
    /// An ellipse.
    Oval {
        /// Bounding box.
        rect: Rect,
        /// Filled or outlined.
        filled: bool,
    },
    /// An open polyline.
    Polyline {
        /// Vertices.
        points: Vec<Point>,
    },
    /// A text label.
    Label {
        /// Top-left position.
        at: Point,
        /// The text.
        text: String,
        /// Point size.
        size: u32,
    },
    /// An embedded component (the announced "soon" feature).
    Inset {
        /// Where it sits in the drawing.
        rect: Rect,
        /// The embedded data object.
        data: DataId,
        /// View class displaying it.
        view_class: String,
    },
}

impl Shape {
    /// Bounding rectangle (used for damage and selection handles).
    pub fn bounds(&self) -> Rect {
        match self {
            Shape::Line { a, b, width } => Rect::from_corners(*a, *b).inset(-(width + 1)),
            Shape::Rect { rect, .. } | Shape::Oval { rect, .. } => rect.inset(-1),
            Shape::Polyline { points } => points
                .iter()
                .fold(Rect::EMPTY, |acc, p| acc.union(Rect::new(p.x, p.y, 1, 1)))
                .inset(-1),
            Shape::Label { at, text, size } => {
                let font = FontDesc::new("andy", Default::default(), *size);
                Rect::new(
                    at.x,
                    at.y,
                    font.string_width(text),
                    font.metrics().line_height,
                )
            }
            Shape::Inset { rect, .. } => *rect,
        }
    }

    /// True if `pt` hits this shape within `slop` pixels. Insets are
    /// *not* hit here — the view forwards into them only after no
    /// ordinary shape claims the point.
    pub fn hit(&self, pt: Point, slop: i32) -> bool {
        match self {
            Shape::Line { a, b, width } => seg_dist2(pt, *a, *b) <= ((slop + width) as i64).pow(2),
            Shape::Rect { rect, filled } | Shape::Oval { rect, filled } => {
                if *filled {
                    rect.inset(-slop).contains(pt)
                } else {
                    rect.inset(-slop).contains(pt) && !rect.inset(slop + 1).contains(pt)
                }
            }
            Shape::Polyline { points } => points
                .windows(2)
                .any(|w| seg_dist2(pt, w[0], w[1]) <= (slop as i64 + 1).pow(2)),
            Shape::Label { .. } => self.bounds().inset(-slop).contains(pt),
            Shape::Inset { .. } => false,
        }
    }

    /// The shape moved by `(dx, dy)`.
    pub fn translated(&self, dx: i32, dy: i32) -> Shape {
        let d = Point::new(dx, dy);
        match self {
            Shape::Line { a, b, width } => Shape::Line {
                a: *a + d,
                b: *b + d,
                width: *width,
            },
            Shape::Rect { rect, filled } => Shape::Rect {
                rect: rect.translate(dx, dy),
                filled: *filled,
            },
            Shape::Oval { rect, filled } => Shape::Oval {
                rect: rect.translate(dx, dy),
                filled: *filled,
            },
            Shape::Polyline { points } => Shape::Polyline {
                points: points.iter().map(|p| *p + d).collect(),
            },
            Shape::Label { at, text, size } => Shape::Label {
                at: *at + d,
                text: text.clone(),
                size: *size,
            },
            Shape::Inset {
                rect,
                data,
                view_class,
            } => Shape::Inset {
                rect: rect.translate(dx, dy),
                data: *data,
                view_class: view_class.clone(),
            },
        }
    }
}

/// Squared distance from a point to a segment.
fn seg_dist2(p: Point, a: Point, b: Point) -> i64 {
    let (px, py) = (p.x as f64, p.y as f64);
    let (ax, ay) = (a.x as f64, a.y as f64);
    let (bx, by) = (b.x as f64, b.y as f64);
    let (dx, dy) = (bx - ax, by - ay);
    let len2 = dx * dx + dy * dy;
    let t = if len2 == 0.0 {
        0.0
    } else {
        (((px - ax) * dx + (py - ay) * dy) / len2).clamp(0.0, 1.0)
    };
    let (cx, cy) = (ax + t * dx, ay + t * dy);
    ((px - cx).powi(2) + (py - cy).powi(2)) as i64
}

/// The drawing data object.
#[derive(Clone)]
pub struct DrawingData {
    shapes: Vec<Shape>,
    /// Natural canvas size.
    pub canvas: Size,
}

impl DrawingData {
    /// An empty drawing with the given canvas size.
    pub fn new(width: i32, height: i32) -> DrawingData {
        DrawingData {
            shapes: Vec::new(),
            canvas: Size::new(width, height),
        }
    }

    /// The display list.
    pub fn shapes(&self) -> &[Shape] {
        &self.shapes
    }

    /// Appends a shape, returning its change record.
    pub fn add_shape(&mut self, shape: Shape) -> ChangeRec {
        self.shapes.push(shape);
        ChangeRec::Element {
            index: self.shapes.len() - 1,
        }
    }

    /// Removes a shape.
    pub fn remove_shape(&mut self, index: usize) -> ChangeRec {
        if index < self.shapes.len() {
            self.shapes.remove(index);
        }
        ChangeRec::Structure
    }

    /// Moves a shape by a delta.
    pub fn move_shape(&mut self, index: usize, dx: i32, dy: i32) -> ChangeRec {
        if let Some(s) = self.shapes.get_mut(index) {
            *s = s.translated(dx, dy);
        }
        ChangeRec::Element { index }
    }

    /// The **topmost** shape hit at `pt` (reverse display-list order —
    /// later shapes draw over earlier ones).
    pub fn hit_test(&self, pt: Point, slop: i32) -> Option<usize> {
        (0..self.shapes.len())
            .rev()
            .find(|&i| self.shapes[i].hit(pt, slop))
    }
}

impl DataObject for DrawingData {
    fn class_name(&self) -> &'static str {
        "drawing"
    }

    fn write_body(&self, w: &mut DatastreamWriter, world: &World) -> io::Result<()> {
        w.write_line(&format!(
            "canvas {} {}",
            self.canvas.width, self.canvas.height
        ))?;
        for s in &self.shapes {
            match s {
                Shape::Line { a, b, width } => {
                    w.write_line(&format!("line {} {} {} {} {}", a.x, a.y, b.x, b.y, width))?
                }
                Shape::Rect { rect, filled } => w.write_line(&format!(
                    "rect {} {} {} {} {}",
                    rect.x, rect.y, rect.width, rect.height, *filled as u8
                ))?,
                Shape::Oval { rect, filled } => w.write_line(&format!(
                    "oval {} {} {} {} {}",
                    rect.x, rect.y, rect.width, rect.height, *filled as u8
                ))?,
                Shape::Polyline { points } => {
                    let coords: Vec<String> = points
                        .iter()
                        .flat_map(|p| [p.x.to_string(), p.y.to_string()])
                        .collect();
                    w.write_line(&format!("poly {} {}", points.len(), coords.join(" ")))?;
                }
                Shape::Label { at, text, size } => {
                    w.write_line(&format!("label {} {} {} {}", at.x, at.y, size, text))?
                }
                Shape::Inset {
                    rect,
                    data,
                    view_class,
                } => {
                    let sid = w.write_embedded(world, *data)?;
                    w.write_line(&format!(
                        "inset {} {} {} {}",
                        rect.x, rect.y, rect.width, rect.height
                    ))?;
                    w.write_view_ref(view_class, sid)?;
                }
            }
        }
        Ok(())
    }

    fn read_body(
        &mut self,
        r: &mut DatastreamReader<'_>,
        world: &mut World,
    ) -> Result<(), DsError> {
        let bad = |l: &str| DsError::Malformed(format!("drawing body: {l}"));
        self.shapes.clear();
        let mut pending_inset: Option<Rect> = None;
        loop {
            let tok = r.next_token()?.ok_or(DsError::UnexpectedEof)?;
            match tok {
                Token::EndData { .. } => break,
                Token::BeginData { class, sid } => {
                    r.read_object_body(world, &class, sid)?;
                }
                Token::ViewRef { class, sid } => {
                    let rect = pending_inset.take().ok_or_else(|| bad("stray \\view"))?;
                    let data = r.lookup_sid(sid).ok_or(DsError::DanglingViewRef(sid))?;
                    self.shapes.push(Shape::Inset {
                        rect,
                        data,
                        view_class: class,
                    });
                }
                Token::Line(line) => {
                    let mut words = line.split_whitespace();
                    let kw = words.next().unwrap_or("");
                    let mut nums = |n: usize| -> Result<Vec<i32>, DsError> {
                        let v: Vec<i32> = words
                            .by_ref()
                            .take(n)
                            .filter_map(|x| x.parse().ok())
                            .collect();
                        if v.len() == n {
                            Ok(v)
                        } else {
                            Err(bad(&line))
                        }
                    };
                    match kw {
                        "canvas" => {
                            let v = nums(2)?;
                            self.canvas = Size::new(v[0], v[1]);
                        }
                        "line" => {
                            let v = nums(5)?;
                            self.shapes.push(Shape::Line {
                                a: Point::new(v[0], v[1]),
                                b: Point::new(v[2], v[3]),
                                width: v[4],
                            });
                        }
                        "rect" | "oval" => {
                            let v = nums(5)?;
                            let rect = Rect::new(v[0], v[1], v[2], v[3]);
                            let filled = v[4] != 0;
                            self.shapes.push(if kw == "rect" {
                                Shape::Rect { rect, filled }
                            } else {
                                Shape::Oval { rect, filled }
                            });
                        }
                        "poly" => {
                            let n = nums(1)?[0].max(0) as usize;
                            let v = nums(n * 2)?;
                            let points = v.chunks(2).map(|c| Point::new(c[0], c[1])).collect();
                            self.shapes.push(Shape::Polyline { points });
                        }
                        "label" => {
                            let v = nums(3)?;
                            let text: String = words.collect::<Vec<_>>().join(" ");
                            self.shapes.push(Shape::Label {
                                at: Point::new(v[0], v[1]),
                                text,
                                size: v[2].max(6) as u32,
                            });
                        }
                        "inset" => {
                            let v = nums(4)?;
                            pending_inset = Some(Rect::new(v[0], v[1], v[2], v[3]));
                        }
                        _ => return Err(bad(&line)),
                    }
                }
            }
        }
        Ok(())
    }

    fn embedded(&self) -> Vec<DataId> {
        self.shapes
            .iter()
            .filter_map(|s| match s {
                Shape::Inset { data, .. } => Some(*data),
                _ => None,
            })
            .collect()
    }

    fn fork(&self) -> Option<Box<dyn DataObject>> {
        Some(Box::new(self.clone()))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The drawing view: rendering, semantic hit testing, selection, drag.
#[derive(Clone)]
pub struct DrawingView {
    base: ViewBase,
    data: Option<DataId>,
    /// Selected shape index.
    pub selected: Option<usize>,
    drag_last: Option<Point>,
    /// Inset child views in document (shape) order; order is paint order.
    insets: Vec<(DataId, ViewId)>,
}

impl DrawingView {
    /// An unbound drawing view.
    pub fn new() -> DrawingView {
        DrawingView {
            base: ViewBase::new(),
            data: None,
            selected: None,
            drag_last: None,
            insets: Vec::new(),
        }
    }

    fn inset_view(&self, data: DataId) -> Option<ViewId> {
        self.insets
            .iter()
            .find(|(d, _)| *d == data)
            .map(|(_, v)| *v)
    }

    fn ensure_insets(&mut self, world: &mut World) {
        let Some(data_id) = self.data else { return };
        let insets: Vec<(Rect, DataId, String)> = world
            .data::<DrawingData>(data_id)
            .map(|d| {
                d.shapes()
                    .iter()
                    .filter_map(|s| match s {
                        Shape::Inset {
                            rect,
                            data,
                            view_class,
                        } => Some((*rect, *data, view_class.clone())),
                        _ => None,
                    })
                    .collect()
            })
            .unwrap_or_default();
        // Rebuild in shape order so child order (and therefore paint
        // order) follows the document, not the insertion history.
        let mut fresh: Vec<(DataId, ViewId)> = Vec::with_capacity(insets.len());
        for (rect, data, view_class) in insets {
            let vid = match self.inset_view(data) {
                Some(vid) => Some(vid),
                None => world.new_view(&view_class).ok().inspect(|&vid| {
                    world.set_view_parent(vid, Some(self.base.id));
                    world.with_view(vid, |v, w| v.set_data_object(w, data));
                }),
            };
            if let Some(vid) = vid {
                world.set_view_bounds(vid, rect);
                if !fresh.iter().any(|(_, v)| *v == vid) {
                    fresh.push((data, vid));
                }
            }
        }
        self.insets = fresh;
    }
}

impl Default for DrawingView {
    fn default() -> Self {
        DrawingView::new()
    }
}

impl View for DrawingView {
    fn class_name(&self) -> &'static str {
        "drawingv"
    }
    fn id(&self) -> ViewId {
        self.base.id
    }
    fn set_id(&mut self, id: ViewId) {
        self.base.id = id;
    }
    fn data_object(&self) -> Option<DataId> {
        self.data
    }
    fn children(&self) -> Vec<ViewId> {
        self.insets.iter().map(|(_, v)| *v).collect()
    }

    fn set_data_object(&mut self, world: &mut World, data: DataId) -> bool {
        if let Some(old) = self.data {
            world.remove_observer(old, ObserverRef::View(self.base.id));
        }
        self.data = Some(data);
        world.add_observer(data, ObserverRef::View(self.base.id));
        world.post_damage_full(self.base.id);
        true
    }

    fn desired_size(&mut self, world: &mut World, _budget: i32) -> Size {
        self.data
            .and_then(|d| world.data::<DrawingData>(d))
            .map(|d| d.canvas)
            .unwrap_or(Size::new(120, 80))
    }

    fn layout(&mut self, world: &mut World) {
        self.ensure_insets(world);
    }

    fn draw(&mut self, world: &mut World, g: &mut dyn Graphic, update: Update) {
        self.ensure_insets(world);
        let Some(data_id) = self.data else { return };
        let shapes: Vec<Shape> = match world.data::<DrawingData>(data_id) {
            Some(d) => d.shapes().to_vec(),
            None => return,
        };
        g.set_foreground(Color::BLACK);
        for s in &shapes {
            match s {
                Shape::Line { a, b, width } => {
                    g.set_line_width(*width);
                    g.draw_line(*a, *b);
                    g.set_line_width(1);
                }
                Shape::Rect { rect, filled } => {
                    if *filled {
                        g.fill_rect(*rect);
                    } else {
                        g.draw_rect(*rect);
                    }
                }
                Shape::Oval { rect, filled } => {
                    if *filled {
                        g.fill_oval(*rect);
                    } else {
                        g.draw_oval(*rect);
                    }
                }
                Shape::Polyline { points } => {
                    for w2 in points.windows(2) {
                        g.draw_line(w2[0], w2[1]);
                    }
                }
                Shape::Label { at, text, size } => {
                    g.set_font(FontDesc::new("andy", Default::default(), *size));
                    g.draw_string(*at, text);
                }
                Shape::Inset { .. } => {}
            }
        }
        // Inset children on top of plain shapes, under selection feedback.
        let vids: Vec<ViewId> = self.insets.iter().map(|(_, v)| *v).collect();
        for vid in vids {
            world.draw_child(vid, g, update);
        }
        // Selection handles.
        if let Some(i) = self.selected {
            if let Some(s) = shapes.get(i) {
                let b = s.bounds();
                g.set_foreground(Color::BLACK);
                for corner in [
                    b.origin(),
                    Point::new(b.right(), b.y),
                    Point::new(b.x, b.bottom()),
                    Point::new(b.right(), b.bottom()),
                ] {
                    g.fill_rect(Rect::new(corner.x - 2, corner.y - 2, 4, 4));
                }
            }
        }
    }

    fn mouse(&mut self, world: &mut World, action: MouseAction, pt: Point) -> bool {
        let Some(data_id) = self.data else {
            return false;
        };
        match action {
            MouseAction::Down(Button::Left) => {
                // THE disambiguation (§3): shapes first — clicking near a
                // line over embedded text selects the line...
                let hit = world
                    .data::<DrawingData>(data_id)
                    .and_then(|d| d.hit_test(pt, 3));
                if let Some(i) = hit {
                    self.selected = Some(i);
                    self.drag_last = Some(pt);
                    world.request_focus(self.base.id);
                    world.post_damage_full(self.base.id);
                    return true;
                }
                // ...and only otherwise does the event reach the inset.
                for &(_, vid) in self.insets.iter().rev() {
                    if world.mouse_to_child(vid, action, pt) {
                        return true;
                    }
                }
                self.selected = None;
                world.post_damage_full(self.base.id);
                true
            }
            MouseAction::Drag(Button::Left) => {
                if let (Some(i), Some(last)) = (self.selected, self.drag_last) {
                    let d = pt - last;
                    if d != Point::ORIGIN {
                        let rec = world
                            .data_mut::<DrawingData>(data_id)
                            .map(|dd| dd.move_shape(i, d.x, d.y));
                        if let Some(rec) = rec {
                            world.notify(data_id, rec);
                        }
                        self.drag_last = Some(pt);
                    }
                    return true;
                }
                for &(_, vid) in self.insets.iter().rev() {
                    if world.mouse_to_child(vid, action, pt) {
                        return true;
                    }
                }
                false
            }
            MouseAction::Up(Button::Left) => {
                self.drag_last = None;
                true
            }
            _ => false,
        }
    }

    fn perform(&mut self, world: &mut World, command: &str) -> bool {
        let Some(data_id) = self.data else {
            return false;
        };
        let shape = match command {
            "draw-add-line" => Some(Shape::Line {
                a: Point::new(10, 10),
                b: Point::new(60, 40),
                width: 1,
            }),
            "draw-add-rect" => Some(Shape::Rect {
                rect: Rect::new(20, 20, 40, 30),
                filled: false,
            }),
            "draw-add-oval" => Some(Shape::Oval {
                rect: Rect::new(30, 15, 40, 25),
                filled: false,
            }),
            "draw-delete" => {
                if let Some(i) = self.selected.take() {
                    let rec = world
                        .data_mut::<DrawingData>(data_id)
                        .map(|d| d.remove_shape(i));
                    if let Some(rec) = rec {
                        world.notify(data_id, rec);
                    }
                }
                return true;
            }
            _ => None,
        };
        match shape {
            Some(s) => {
                let rec = world
                    .data_mut::<DrawingData>(data_id)
                    .map(|d| d.add_shape(s));
                if let Some(rec) = rec {
                    world.notify(data_id, rec);
                }
                true
            }
            None => false,
        }
    }

    fn menus(&self, _world: &World) -> Vec<MenuItem> {
        vec![
            MenuItem::new("Draw", "Add Line", "draw-add-line"),
            MenuItem::new("Draw", "Add Rectangle", "draw-add-rect"),
            MenuItem::new("Draw", "Add Oval", "draw-add-oval"),
            MenuItem::new("Draw", "Delete", "draw-delete"),
        ]
    }

    fn cursor_at(&self, _world: &World, _pt: Point) -> Option<CursorShape> {
        Some(CursorShape::Crosshair)
    }

    fn observed_changed(&mut self, world: &mut World, _source: DataId, change: &ChangeRec) {
        match change {
            ChangeRec::Element { index } => {
                let rect = self
                    .data
                    .and_then(|d| world.data::<DrawingData>(d))
                    .and_then(|d| d.shapes().get(*index).map(|s| s.bounds()));
                match rect {
                    Some(r) => world.post_damage(self.base.id, r.inset(-4)),
                    None => world.post_damage_full(self.base.id),
                }
            }
            _ => world.post_damage_full(self.base.id),
        }
    }

    fn fork(&self) -> Option<Box<dyn View>> {
        Some(Box::new(self.clone()))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_testing_prefers_topmost() {
        let mut d = DrawingData::new(200, 100);
        d.add_shape(Shape::Rect {
            rect: Rect::new(10, 10, 100, 60),
            filled: true,
        });
        d.add_shape(Shape::Line {
            a: Point::new(0, 40),
            b: Point::new(200, 40),
            width: 1,
        });
        // On the line: the line (later, topmost) wins.
        assert_eq!(d.hit_test(Point::new(50, 40), 2), Some(1));
        // Inside the rect, away from the line.
        assert_eq!(d.hit_test(Point::new(50, 15), 2), Some(0));
        // Nowhere.
        assert_eq!(d.hit_test(Point::new(199, 99), 2), None);
    }

    #[test]
    fn line_hit_uses_distance_not_bbox() {
        let line = Shape::Line {
            a: Point::new(0, 0),
            b: Point::new(100, 100),
            width: 1,
        };
        assert!(line.hit(Point::new(50, 50), 2));
        // Inside the bounding box but far from the segment.
        assert!(!line.hit(Point::new(90, 10), 2));
    }

    #[test]
    fn outline_rect_hit_is_edge_only() {
        let r = Shape::Rect {
            rect: Rect::new(10, 10, 50, 50),
            filled: false,
        };
        assert!(r.hit(Point::new(10, 30), 2)); // Left edge.
        assert!(!r.hit(Point::new(35, 35), 2)); // Interior.
    }

    #[test]
    fn move_and_delete() {
        let mut d = DrawingData::new(100, 100);
        d.add_shape(Shape::Oval {
            rect: Rect::new(0, 0, 10, 10),
            filled: false,
        });
        d.move_shape(0, 5, 7);
        match &d.shapes()[0] {
            Shape::Oval { rect, .. } => assert_eq!(*rect, Rect::new(5, 7, 10, 10)),
            other => panic!("unexpected {other:?}"),
        }
        d.remove_shape(0);
        assert!(d.shapes().is_empty());
    }

    #[test]
    fn serialization_round_trip() {
        let mut world = World::new();
        world
            .catalog
            .register_data("drawing", || Box::new(DrawingData::new(10, 10)));
        let mut d = DrawingData::new(300, 200);
        d.add_shape(Shape::Line {
            a: Point::new(1, 2),
            b: Point::new(3, 4),
            width: 2,
        });
        d.add_shape(Shape::Polyline {
            points: vec![Point::new(0, 0), Point::new(5, 5), Point::new(10, 0)],
        });
        d.add_shape(Shape::Label {
            at: Point::new(7, 8),
            text: "Dear David,".to_string(),
            size: 12,
        });
        let id = world.insert_data(Box::new(d));
        let doc = atk_core::document_to_string(&world, id);
        assert!(atk_core::audit_stream(&doc).is_empty());

        let mut world2 = World::new();
        world2
            .catalog
            .register_data("drawing", || Box::new(DrawingData::new(10, 10)));
        let id2 = atk_core::read_document(&mut world2, &doc).unwrap();
        let d2 = world2.data::<DrawingData>(id2).unwrap();
        assert_eq!(d2.canvas, Size::new(300, 200));
        assert_eq!(d2.shapes().len(), 3);
        match &d2.shapes()[2] {
            Shape::Label { text, .. } => assert_eq!(text, "Dear David,"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn the_line_over_text_case_resolves_correctly() {
        // Build the paper's scene inside the real view: embedded text
        // with a line over it. A click near the line selects the line; a
        // click in the text (away from the line) reaches the text inset.
        let mut world = World::new();
        world
            .catalog
            .register_data("drawing", || Box::new(DrawingData::new(10, 10)));
        world
            .catalog
            .register_view("drawingv", || Box::new(DrawingView::new()));
        // A trivial stand-in "text" view that records hits.
        struct Probe {
            base: ViewBase,
            hits: u64,
        }
        impl View for Probe {
            fn class_name(&self) -> &'static str {
                "probe"
            }
            fn id(&self) -> ViewId {
                self.base.id
            }
            fn set_id(&mut self, id: ViewId) {
                self.base.id = id;
            }
            fn set_data_object(&mut self, _w: &mut World, _d: DataId) -> bool {
                true
            }
            fn desired_size(&mut self, _w: &mut World, _b: i32) -> Size {
                Size::new(100, 40)
            }
            fn draw(&mut self, _w: &mut World, _g: &mut dyn Graphic, _u: Update) {}
            fn mouse(&mut self, _w: &mut World, _a: MouseAction, _p: Point) -> bool {
                self.hits += 1;
                true
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        world.catalog.register_view("probe", || {
            Box::new(Probe {
                base: ViewBase::new(),
                hits: 0,
            })
        });

        let text_stub = world.insert_data(Box::new(DrawingData::new(1, 1)));
        let mut drawing = DrawingData::new(300, 100);
        drawing.add_shape(Shape::Inset {
            rect: Rect::new(20, 20, 150, 40),
            data: text_stub,
            view_class: "probe".to_string(),
        });
        drawing.add_shape(Shape::Line {
            a: Point::new(0, 40),
            b: Point::new(300, 40),
            width: 1,
        });
        let did = world.insert_data(Box::new(drawing));
        let view = world.new_view("drawingv").unwrap();
        world.with_view(view, |v, w| v.set_data_object(w, did));
        world.set_view_bounds(view, Rect::new(0, 0, 300, 100));

        // Click ON the line, inside the text's rectangle.
        world.with_view(view, |v, w| {
            v.mouse(w, MouseAction::Down(Button::Left), Point::new(80, 41));
            v.mouse(w, MouseAction::Up(Button::Left), Point::new(80, 41));
        });
        assert_eq!(
            world.view_as::<DrawingView>(view).unwrap().selected,
            Some(1)
        );
        let probe_id = world.view_dyn(view).unwrap().children()[0];
        assert_eq!(world.view_as::<Probe>(probe_id).unwrap().hits, 0);

        // Click in the text, away from the line: the inset gets it.
        world.with_view(view, |v, w| {
            v.mouse(w, MouseAction::Down(Button::Left), Point::new(80, 25));
        });
        assert_eq!(world.view_as::<Probe>(probe_id).unwrap().hits, 1);
    }

    #[test]
    fn drag_moves_selected_shape() {
        let mut world = World::new();
        world
            .catalog
            .register_data("drawing", || Box::new(DrawingData::new(10, 10)));
        let mut d = DrawingData::new(100, 100);
        d.add_shape(Shape::Rect {
            rect: Rect::new(10, 10, 20, 20),
            filled: true,
        });
        let did = world.insert_data(Box::new(d));
        let view = world.insert_view(Box::new(DrawingView::new()));
        world.with_view(view, |v, w| v.set_data_object(w, did));
        world.set_view_bounds(view, Rect::new(0, 0, 100, 100));
        world.with_view(view, |v, w| {
            v.mouse(w, MouseAction::Down(Button::Left), Point::new(15, 15));
            v.mouse(w, MouseAction::Drag(Button::Left), Point::new(25, 20));
            v.mouse(w, MouseAction::Up(Button::Left), Point::new(25, 20));
        });
        match &world.data::<DrawingData>(did).unwrap().shapes()[0] {
            Shape::Rect { rect, .. } => assert_eq!(*rect, Rect::new(20, 15, 20, 20)),
            other => panic!("unexpected {other:?}"),
        }
    }
}
