//! # atk-media — drawings, equations, rasters, and animations
//!
//! The remaining editable components of paper §1: "Some of the components
//! included in the toolkit are multi-font text, tables, spreadsheets,
//! **drawings, equations, rasters, and simple animations**."
//!
//! * [`drawing`] — display-list vector graphics with semantic hit testing
//!   (the line-over-text disambiguation of §3) and embedded insets (the
//!   feature §1 announces as coming "soon");
//! * [`eq`] — an eqn-flavoured equation language with box layout (figure
//!   5's Pascal's-Triangle equations);
//! * [`raster`] — 1-bit bitmaps with the §5-suggested one-hex-line-per-row
//!   external representation;
//! * [`anim`] — frame-list animations played on the deterministic virtual
//!   timer (figure 5's "animation showing the building of the triangle").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anim;
pub mod drawing;
pub mod eq;
pub mod raster;

pub use anim::{AnimData, AnimView, Frame};
pub use drawing::{DrawingData, DrawingView, Shape};
pub use eq::{measure, parse_eq, render, EqBox, EqData, EqError, EqNode, EqView};
pub use raster::{RasterData, RasterView};

use atk_class::ModuleSpec;
use atk_core::Catalog;

/// Registers the media components (modules `"drawing"`, `"eq"`,
/// `"raster"`, `"animation"`).
pub fn register(catalog: &mut Catalog) {
    let _ = catalog.add_module(ModuleSpec::new(
        "drawing",
        64_000,
        &["drawing", "drawingv"],
        &["components"],
    ));
    let _ = catalog.add_module(ModuleSpec::new("eq", 30_000, &["eq", "eqv"], &[]));
    let _ = catalog.add_module(ModuleSpec::new(
        "raster",
        28_000,
        &["raster", "rasterview"],
        &[],
    ));
    let _ = catalog.add_module(ModuleSpec::new(
        "animation",
        22_000,
        &["animation", "animationv"],
        &["drawing"],
    ));
    catalog.register_data("drawing", || Box::new(DrawingData::new(200, 120)));
    catalog.register_view("drawingv", || Box::new(DrawingView::new()));
    catalog.set_default_view("drawing", "drawingv");
    catalog.register_data("eq", || Box::new(EqData::new()));
    catalog.register_view("eqv", || Box::new(EqView::new()));
    catalog.set_default_view("eq", "eqv");
    catalog.register_data("raster", || Box::new(RasterData::new(32, 32)));
    catalog.register_view("rasterview", || Box::new(RasterView::new()));
    catalog.set_default_view("raster", "rasterview");
    catalog.register_data("animation", || Box::new(AnimData::new(100, 60, 200)));
    catalog.register_view("animationv", || Box::new(AnimView::new()));
    catalog.set_default_view("animation", "animationv");
}
