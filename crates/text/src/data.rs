//! The text data object: characters, styles, and embedded-object anchors.
//!
//! "The text data object contains the actual characters, style
//! information and pointers to embedded data objects. It also provides
//! ways to alter the data, such as inserting characters and deleting
//! characters." (paper §2)
//!
//! Mutators return a [`ChangeRec`]; the caller passes it to
//! [`World::notify`] so every view of this data object (there may be
//! many, in many windows) learns exactly what changed — the delayed
//! update protocol.

use std::any::Any;
use std::io;

use atk_core::{
    ChangeRec, DataId, DataObject, DatastreamReader, DatastreamWriter, DsError, Token, World,
};

use crate::buffer::{GapBuffer, Gravity, MarkTable};
use crate::style::{Style, StyleId, StyleRuns, StyleTable};

/// An embedded object's position in the text.
#[derive(Debug, Clone)]
pub struct Anchor {
    mark: crate::buffer::MarkId,
    /// The embedded data object.
    pub data: DataId,
    /// The view class that displays it (the `\view{class,…}` of §5).
    pub view_class: String,
}

/// The multi-font, multi-media text data object.
#[derive(Clone)]
pub struct TextData {
    buffer: GapBuffer,
    runs: StyleRuns,
    /// The interned style table.
    pub styles: StyleTable,
    marks: MarkTable,
    anchors: Vec<Anchor>,
}

impl TextData {
    /// An empty text.
    pub fn new() -> TextData {
        TextData {
            buffer: GapBuffer::new(),
            runs: StyleRuns::new(0),
            styles: StyleTable::new(),
            marks: MarkTable::new(),
            anchors: Vec::new(),
        }
    }

    /// A text initialized with body-styled content.
    #[allow(clippy::should_implement_trait)] // infallible, unlike FromStr
    pub fn from_str(s: &str) -> TextData {
        let mut t = TextData::new();
        t.insert(0, s);
        t
    }

    /// Character count.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// The character at `pos`.
    pub fn char_at(&self, pos: usize) -> Option<char> {
        self.buffer.char_at(pos)
    }

    /// The contents of `start..end`.
    pub fn slice(&self, start: usize, end: usize) -> String {
        self.buffer.slice(start, end)
    }

    /// The whole text.
    pub fn text(&self) -> String {
        self.buffer.to_string()
    }

    /// Inserts `text` at `pos`. Returns the change record to publish.
    pub fn insert(&mut self, pos: usize, text: &str) -> ChangeRec {
        let pos = pos.min(self.len());
        let n = self.buffer.insert(pos, text);
        self.runs.adjust_insert(pos, n);
        self.marks.adjust_insert(pos, n);
        ChangeRec::Text {
            pos,
            inserted: n,
            deleted: 0,
        }
    }

    /// Deletes `count` chars at `pos`. Returns the change record.
    pub fn delete(&mut self, pos: usize, count: usize) -> ChangeRec {
        let pos = pos.min(self.len());
        let n = self.buffer.delete(pos, count);
        self.runs.adjust_delete(pos, n);
        self.marks.adjust_delete(pos, n);
        // Anchors whose mark collapsed into the deletion are orphaned but
        // retained (the data object survives; the view skips it). Real
        // ATK deleted the object with the region; we keep the simpler
        // rule and drop anchors only when their position vanished.
        self.anchors.retain(|a| self.marks.pos(a.mark).is_some());
        ChangeRec::Text {
            pos,
            inserted: 0,
            deleted: n,
        }
    }

    /// Applies `style` to `start..end`. Returns the change record.
    pub fn apply_style(&mut self, start: usize, end: usize, style: Style) -> ChangeRec {
        let id = self.styles.intern(style);
        self.runs.apply(start, end.min(self.len()), id);
        ChangeRec::Text {
            pos: start,
            inserted: end.min(self.len()).saturating_sub(start),
            deleted: end.min(self.len()).saturating_sub(start),
        }
    }

    /// The style id at `pos`.
    pub fn style_at(&self, pos: usize) -> StyleId {
        self.runs.style_at(pos)
    }

    /// The style value at `pos`.
    pub fn style_value_at(&self, pos: usize) -> &Style {
        self.styles.get(self.runs.style_at(pos))
    }

    /// Style runs intersecting `start..end` as `(start, len, style)`.
    pub fn runs_in(&self, start: usize, end: usize) -> Vec<(usize, usize, StyleId)> {
        self.runs.runs_in(start, end)
    }

    /// Embeds `data` at `pos`, displayed by `view_class`. Returns the
    /// change record. This is the generic inclusion mechanism of §1: the
    /// text object needs no knowledge of what it embeds.
    pub fn add_embedded(&mut self, pos: usize, data: DataId, view_class: &str) -> ChangeRec {
        let pos = pos.min(self.len());
        // The anchor occupies one character position: an object
        // replacement character keeps every position calculation uniform.
        self.buffer.insert(pos, "\u{FFFC}");
        self.runs.adjust_insert(pos, 1);
        self.marks.adjust_insert(pos, 1);
        let mark = self.marks.create(pos, Gravity::Left);
        self.anchors.push(Anchor {
            mark,
            data,
            view_class: view_class.to_string(),
        });
        ChangeRec::Text {
            pos,
            inserted: 1,
            deleted: 0,
        }
    }

    /// Anchors with their current positions, sorted by position.
    pub fn anchors(&self) -> Vec<(usize, DataId, String)> {
        let mut v: Vec<(usize, DataId, String)> = self
            .anchors
            .iter()
            .filter_map(|a| {
                self.marks
                    .pos(a.mark)
                    .map(|p| (p, a.data, a.view_class.clone()))
            })
            .collect();
        v.sort_by_key(|(p, ..)| *p);
        v
    }

    /// The anchor at exactly `pos`, if any.
    pub fn anchor_at(&self, pos: usize) -> Option<(DataId, String)> {
        self.anchors.iter().find_map(|a| {
            (self.marks.pos(a.mark) == Some(pos)).then(|| (a.data, a.view_class.clone()))
        })
    }

    /// Line start before `pos`.
    pub fn line_start(&self, pos: usize) -> usize {
        self.buffer.line_start(pos)
    }

    /// Line end (position of `\n` or end) after `pos`.
    pub fn line_end(&self, pos: usize) -> usize {
        self.buffer.line_end(pos)
    }

    /// Start of the word containing or preceding `pos`.
    pub fn word_start(&self, pos: usize) -> usize {
        let mut i = pos.min(self.len());
        while i > 0 {
            match self.buffer.char_at(i - 1) {
                Some(c) if c.is_alphanumeric() => i -= 1,
                _ => break,
            }
        }
        i
    }

    /// End of the word containing `pos`.
    pub fn word_end(&self, pos: usize) -> usize {
        let mut i = pos.min(self.len());
        while i < self.len() {
            match self.buffer.char_at(i) {
                Some(c) if c.is_alphanumeric() => i += 1,
                _ => break,
            }
        }
        i
    }
}

impl Default for TextData {
    fn default() -> Self {
        TextData::new()
    }
}

fn flags_str(s: &Style) -> String {
    format!(
        "{}{}{}",
        if s.bold { 'b' } else { '-' },
        if s.italic { 'i' } else { '-' },
        if s.underline { 'u' } else { '-' }
    )
}

impl DataObject for TextData {
    fn class_name(&self) -> &'static str {
        "text"
    }

    fn write_body(&self, w: &mut DatastreamWriter, world: &World) -> io::Result<()> {
        // Styles and runs.
        w.write_line(&format!("styles {}", self.styles.len()))?;
        for (_, s) in self.styles.iter() {
            w.write_line(&format!(
                "style {} {} {} {}",
                s.family,
                s.size,
                flags_str(s),
                s.indent
            ))?;
        }
        let raw = self.runs.raw_runs();
        w.write_line(&format!("runs {}", raw.len()))?;
        for (len, id) in raw {
            w.write_line(&format!("run {len} {id}"))?;
        }
        // Embedded children, then their anchor placements.
        for (pos, data, view_class) in self.anchors() {
            let sid = w.write_embedded(world, data)?;
            w.write_line(&format!("anchor {pos}"))?;
            w.write_view_ref(&view_class, sid)?;
        }
        // The characters.
        let text = self.text();
        let lines: Vec<&str> = text.split('\n').collect();
        w.write_line(&format!("text {}", lines.len()))?;
        for line in lines {
            w.write_line(line)?;
        }
        Ok(())
    }

    fn read_body(
        &mut self,
        r: &mut DatastreamReader<'_>,
        world: &mut World,
    ) -> Result<(), DsError> {
        let mut styles: Vec<Style> = Vec::new();
        let mut raw_runs: Vec<(usize, StyleId)> = Vec::new();
        let mut pending_anchor: Option<usize> = None;
        let mut anchors: Vec<(usize, DataId, String)> = Vec::new();
        let mut text = String::new();
        let bad = |l: &str| DsError::Malformed(format!("text body: {l}"));

        loop {
            let tok = r.next_token()?.ok_or(DsError::UnexpectedEof)?;
            match tok {
                Token::EndData { .. } => break,
                Token::BeginData { class, sid } => {
                    r.read_object_body(world, &class, sid)?;
                }
                Token::ViewRef { class, sid } => {
                    let pos = pending_anchor.take().ok_or_else(|| bad("stray \\view"))?;
                    let data = r.lookup_sid(sid).ok_or(DsError::DanglingViewRef(sid))?;
                    anchors.push((pos, data, class));
                }
                Token::Line(line) => {
                    let mut words = line.split_whitespace();
                    match words.next() {
                        Some("styles") => {}
                        Some("style") => {
                            let family = words.next().ok_or_else(|| bad(&line))?;
                            let size: u32 = words
                                .next()
                                .and_then(|x| x.parse().ok())
                                .ok_or_else(|| bad(&line))?;
                            let flags = words.next().ok_or_else(|| bad(&line))?;
                            let indent: i32 = words
                                .next()
                                .and_then(|x| x.parse().ok())
                                .ok_or_else(|| bad(&line))?;
                            styles.push(Style {
                                family: family.to_string(),
                                size,
                                bold: flags.contains('b'),
                                italic: flags.contains('i'),
                                underline: flags.contains('u'),
                                indent,
                            });
                        }
                        Some("runs") => {}
                        Some("run") => {
                            let len: usize = words
                                .next()
                                .and_then(|x| x.parse().ok())
                                .ok_or_else(|| bad(&line))?;
                            let id: StyleId = words
                                .next()
                                .and_then(|x| x.parse().ok())
                                .ok_or_else(|| bad(&line))?;
                            raw_runs.push((len, id));
                        }
                        Some("anchor") => {
                            let pos: usize = words
                                .next()
                                .and_then(|x| x.parse().ok())
                                .ok_or_else(|| bad(&line))?;
                            pending_anchor = Some(pos);
                        }
                        Some("text") => {
                            let n: usize = words
                                .next()
                                .and_then(|x| x.parse().ok())
                                .ok_or_else(|| bad(&line))?;
                            let mut parts = Vec::with_capacity(n);
                            for _ in 0..n {
                                match r.next_token()?.ok_or(DsError::UnexpectedEof)? {
                                    Token::Line(l) => parts.push(l),
                                    other => {
                                        return Err(bad(&format!(
                                            "expected content line, got {other:?}"
                                        )))
                                    }
                                }
                            }
                            text = parts.join("\n");
                        }
                        _ => return Err(bad(&line)),
                    }
                }
            }
        }

        // Assemble.
        self.buffer = GapBuffer::from_str(&text);
        self.styles = StyleTable::new();
        let id_map: Vec<StyleId> = styles.into_iter().map(|s| self.styles.intern(s)).collect();
        let mapped: Vec<(usize, StyleId)> = raw_runs
            .into_iter()
            .map(|(len, id)| (len, id_map.get(id).copied().unwrap_or(0)))
            .collect();
        self.runs = StyleRuns::from_raw(mapped, self.buffer.len())
            .map_err(|e| DsError::Malformed(format!("text runs: {e}")))?;
        self.marks = MarkTable::new();
        self.anchors.clear();
        for (pos, data, view_class) in anchors {
            let mark = self.marks.create(pos.min(self.buffer.len()), Gravity::Left);
            self.anchors.push(Anchor {
                mark,
                data,
                view_class,
            });
        }
        Ok(())
    }

    fn embedded(&self) -> Vec<DataId> {
        self.anchors.iter().map(|a| a.data).collect()
    }

    fn fork(&self) -> Option<Box<dyn DataObject>> {
        Some(Box::new(self.clone()))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atk_core::UnknownObject;

    #[test]
    fn insert_delete_round_trip() {
        let mut t = TextData::from_str("hello world");
        let rec = t.insert(5, ",");
        assert_eq!(
            rec,
            ChangeRec::Text {
                pos: 5,
                inserted: 1,
                deleted: 0
            }
        );
        assert_eq!(t.text(), "hello, world");
        t.delete(0, 7);
        assert_eq!(t.text(), "world");
    }

    #[test]
    fn styles_survive_edits() {
        let mut t = TextData::from_str("bold and plain");
        t.apply_style(0, 4, Style::body().bolded());
        assert!(t.style_value_at(0).bold);
        assert!(!t.style_value_at(5).bold);
        t.insert(0, ">> ");
        assert!(t.style_value_at(3).bold);
    }

    #[test]
    fn anchors_ride_edits() {
        let mut world = World::new();
        let table = world.insert_data(Box::new(UnknownObject::new("table")));
        let mut t = TextData::from_str("before after");
        t.add_embedded(6, table, "spread");
        assert_eq!(t.anchors()[0].0, 6);
        t.insert(0, "xxx ");
        assert_eq!(t.anchors()[0].0, 10);
        t.delete(0, 4);
        assert_eq!(t.anchors()[0].0, 6);
        assert_eq!(t.anchor_at(6), Some((table, "spread".to_string())));
    }

    #[test]
    fn anchor_occupies_one_position() {
        let mut world = World::new();
        let d = world.insert_data(Box::new(UnknownObject::new("x")));
        let mut t = TextData::from_str("ab");
        t.add_embedded(1, d, "v");
        assert_eq!(t.len(), 3);
        assert_eq!(t.char_at(1), Some('\u{FFFC}'));
    }

    #[test]
    fn deleting_anchor_char_drops_anchor() {
        let mut world = World::new();
        let d = world.insert_data(Box::new(UnknownObject::new("x")));
        let mut t = TextData::from_str("ab");
        t.add_embedded(1, d, "v");
        t.delete(1, 1);
        // The anchor's mark collapsed to position 1, which still exists;
        // our rule keeps the anchor only if its mark position survives.
        // Deleting everything orphans it.
        t.delete(0, 10);
        assert!(t.anchors().iter().all(|(p, ..)| *p == 0));
    }

    #[test]
    fn word_boundaries() {
        let t = TextData::from_str("the quick brown");
        assert_eq!(t.word_start(5), 4);
        assert_eq!(t.word_end(5), 9);
        assert_eq!(t.word_start(0), 0);
        assert_eq!(t.word_end(15), 15);
    }

    #[test]
    fn plain_serialization_round_trip() {
        let mut world = World::new();
        world
            .catalog
            .register_data("text", || Box::new(TextData::new()));
        let mut t = TextData::from_str("line one\nline two");
        t.apply_style(0, 4, Style::body().bolded());
        let id = world.insert_data(Box::new(t));
        let doc = atk_core::document_to_string(&world, id);
        assert!(doc.starts_with("\\begindata{text,1}"));
        assert!(atk_core::audit_stream(&doc).is_empty());

        let mut world2 = World::new();
        world2
            .catalog
            .register_data("text", || Box::new(TextData::new()));
        let id2 = atk_core::read_document(&mut world2, &doc).unwrap();
        let t2 = world2.data::<TextData>(id2).unwrap();
        assert_eq!(t2.text(), "line one\nline two");
        assert!(t2.style_value_at(0).bold);
        assert!(!t2.style_value_at(4).bold);
    }

    #[test]
    fn nested_serialization_matches_paper_shape() {
        let mut world = World::new();
        world
            .catalog
            .register_data("text", || Box::new(TextData::new()));
        let inner = world.insert_data(Box::new(TextData::from_str("the table data")));
        let mut outer = TextData::from_str("text before after");
        outer.add_embedded(12, inner, "textview");
        let oid = world.insert_data(Box::new(outer));
        let doc = atk_core::document_to_string(&world, oid);
        // Paper §5 shape: nested begindata, then \view at the placement.
        assert!(doc.contains("\\begindata{text,2}"));
        assert!(doc.contains("\\enddata{text,2}"));
        assert!(doc.contains("\\view{textview,2}"));

        let mut world2 = World::new();
        world2
            .catalog
            .register_data("text", || Box::new(TextData::new()));
        let rid = atk_core::read_document(&mut world2, &doc).unwrap();
        let outer2 = world2.data::<TextData>(rid).unwrap();
        let anchors = outer2.anchors();
        assert_eq!(anchors.len(), 1);
        assert_eq!(anchors[0].0, 12);
        let inner2 = world2.data::<TextData>(anchors[0].1).unwrap();
        assert_eq!(inner2.text(), "the table data");
    }

    #[test]
    fn unknown_embedded_object_round_trips() {
        // A "music" component with no module: preserved verbatim.
        let doc = "\\begindata{text,1}\nstyles 1\nstyle andy 12 --- 0\nruns 1\nrun 7 0\n\\begindata{music,2}\nnotes c d e\nscore 42\n\\enddata{music,2}\nanchor 3\n\\view{musicview,2}\ntext 1\nabc\u{FFFC}def\n\\enddata{text,1}\n";
        // The anchor char in the content: rebuild the doc with the
        // escaped form the writer would produce.
        let mut world = World::new();
        world
            .catalog
            .register_data("text", || Box::new(TextData::new()));
        let id = atk_core::read_document(&mut world, doc).unwrap();
        let t = world.data::<TextData>(id).unwrap();
        let anchors = t.anchors();
        assert_eq!(anchors.len(), 1);
        let u = world.data::<UnknownObject>(anchors[0].1).unwrap();
        assert_eq!(u.original_class, "music");
        assert_eq!(*u.raw_lines, vec!["notes c d e", "score 42"]);
        // Writing back preserves the music object.
        let out = atk_core::document_to_string(&world, id);
        assert!(out.contains("\\begindata{music,"));
        assert!(out.contains("notes c d e"));
    }
}
