//! The text buffer: a gap buffer of characters plus sticky marks.
//!
//! The text data object "contains the actual characters" (paper §2); the
//! classic editor-substrate choice for cheap localized edits is a gap
//! buffer, which this is. *Marks* are positions that ride along with
//! edits (carets, selection ends, embedded-object anchors): an insertion
//! before a mark shifts it right, a deletion spanning it collapses it to
//! the deletion point.

/// A gap buffer of `char`s.
///
/// Positions are character indices in `0..=len()`. All operations clamp
/// rather than panic on out-of-range positions — editor code paths are
/// full of boundary races and the 1988 toolkit's buffer was similarly
/// forgiving.
#[derive(Debug, Clone)]
pub struct GapBuffer {
    buf: Vec<char>,
    gap_start: usize,
    gap_len: usize,
}

impl GapBuffer {
    /// An empty buffer.
    pub fn new() -> GapBuffer {
        GapBuffer::with_capacity(64)
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> GapBuffer {
        GapBuffer {
            buf: vec!['\0'; cap.max(16)],
            gap_start: 0,
            gap_len: cap.max(16),
        }
    }

    /// A buffer initialized from text.
    #[allow(clippy::should_implement_trait)] // infallible, unlike FromStr
    pub fn from_str(s: &str) -> GapBuffer {
        let mut b = GapBuffer::with_capacity(s.chars().count() + 64);
        b.insert(0, s);
        b
    }

    /// Number of characters.
    pub fn len(&self) -> usize {
        self.buf.len() - self.gap_len
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn index(&self, pos: usize) -> usize {
        if pos < self.gap_start {
            pos
        } else {
            pos + self.gap_len
        }
    }

    /// The character at `pos`, if in range.
    pub fn char_at(&self, pos: usize) -> Option<char> {
        if pos < self.len() {
            Some(self.buf[self.index(pos)])
        } else {
            None
        }
    }

    fn move_gap(&mut self, pos: usize) {
        let pos = pos.min(self.len());
        if pos == self.gap_start {
            return;
        }
        if pos < self.gap_start {
            // Shift the span [pos, gap_start) right past the gap.
            self.buf
                .copy_within(pos..self.gap_start, pos + self.gap_len);
        } else {
            // Shift the span [gap_start+gap_len, pos+gap_len) left.
            self.buf.copy_within(
                self.gap_start + self.gap_len..pos + self.gap_len,
                self.gap_start,
            );
        }
        self.gap_start = pos;
    }

    fn ensure_gap(&mut self, need: usize) {
        if self.gap_len >= need {
            return;
        }
        let grow = (self.buf.len().max(32)).max(need * 2);
        let old_len = self.buf.len();
        self.buf.resize(old_len + grow, '\0');
        // Move the tail (after the gap) to the end of the new allocation.
        let tail_start = self.gap_start + self.gap_len;
        let new_tail_start = self.buf.len() - (old_len - tail_start);
        self.buf.copy_within(tail_start..old_len, new_tail_start);
        self.gap_len += grow;
    }

    /// Inserts `text` at `pos` (clamped to the end). Returns the number
    /// of characters inserted.
    pub fn insert(&mut self, pos: usize, text: &str) -> usize {
        let pos = pos.min(self.len());
        let count = text.chars().count();
        self.ensure_gap(count);
        self.move_gap(pos);
        for c in text.chars() {
            self.buf[self.gap_start] = c;
            self.gap_start += 1;
            self.gap_len -= 1;
        }
        count
    }

    /// Deletes up to `count` characters at `pos`. Returns how many were
    /// actually deleted.
    pub fn delete(&mut self, pos: usize, count: usize) -> usize {
        let pos = pos.min(self.len());
        let count = count.min(self.len() - pos);
        self.move_gap(pos);
        self.gap_len += count;
        count
    }

    /// The characters in `start..end` as a `String` (clamped).
    pub fn slice(&self, start: usize, end: usize) -> String {
        let end = end.min(self.len());
        let start = start.min(end);
        (start..end).filter_map(|i| self.char_at(i)).collect()
    }

    /// Iterates characters from `pos` to the end.
    pub fn chars_from(&self, pos: usize) -> impl Iterator<Item = char> + '_ {
        (pos..self.len()).filter_map(move |i| self.char_at(i))
    }

    /// Position of the next `'\n'` at or after `pos`, or `len()`.
    pub fn line_end(&self, pos: usize) -> usize {
        let mut i = pos;
        while i < self.len() {
            if self.char_at(i) == Some('\n') {
                return i;
            }
            i += 1;
        }
        self.len()
    }

    /// Position just after the previous `'\n'` before `pos`, or 0.
    pub fn line_start(&self, pos: usize) -> usize {
        let mut i = pos.min(self.len());
        while i > 0 {
            if self.char_at(i - 1) == Some('\n') {
                return i;
            }
            i -= 1;
        }
        0
    }
}

impl Default for GapBuffer {
    fn default() -> Self {
        GapBuffer::new()
    }
}

/// The whole contents (also provides `.to_string()`).
impl std::fmt::Display for GapBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.slice(0, self.len()))
    }
}

/// Identifier of a mark in a [`MarkTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MarkId(u32);

/// Which way a mark leans when text is inserted exactly at it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gravity {
    /// Stays put (insertion at the mark lands after it).
    Left,
    /// Moves with the insertion (insertion at the mark lands before it).
    Right,
}

#[derive(Debug, Clone)]
struct Mark {
    id: MarkId,
    pos: usize,
    gravity: Gravity,
}

/// Positions that follow edits: carets, selections, embedded-object
/// anchors.
#[derive(Debug, Clone, Default)]
pub struct MarkTable {
    marks: Vec<Mark>,
    next: u32,
}

impl MarkTable {
    /// An empty table.
    pub fn new() -> MarkTable {
        MarkTable::default()
    }

    /// Creates a mark at `pos`.
    pub fn create(&mut self, pos: usize, gravity: Gravity) -> MarkId {
        let id = MarkId(self.next);
        self.next += 1;
        self.marks.push(Mark { id, pos, gravity });
        id
    }

    /// Removes a mark.
    pub fn remove(&mut self, id: MarkId) {
        self.marks.retain(|m| m.id != id);
    }

    /// A mark's current position.
    pub fn pos(&self, id: MarkId) -> Option<usize> {
        self.marks.iter().find(|m| m.id == id).map(|m| m.pos)
    }

    /// Moves a mark explicitly.
    pub fn set_pos(&mut self, id: MarkId, pos: usize) {
        if let Some(m) = self.marks.iter_mut().find(|m| m.id == id) {
            m.pos = pos;
        }
    }

    /// Adjusts all marks for an insertion of `count` chars at `pos`.
    pub fn adjust_insert(&mut self, pos: usize, count: usize) {
        for m in &mut self.marks {
            if m.pos > pos || (m.pos == pos && m.gravity == Gravity::Right) {
                m.pos += count;
            }
        }
    }

    /// Adjusts all marks for a deletion of `count` chars at `pos`.
    pub fn adjust_delete(&mut self, pos: usize, count: usize) {
        for m in &mut self.marks {
            if m.pos > pos + count {
                m.pos -= count;
            } else if m.pos > pos {
                m.pos = pos;
            }
        }
    }

    /// Number of marks.
    pub fn len(&self) -> usize {
        self.marks.len()
    }

    /// True if no marks exist.
    pub fn is_empty(&self) -> bool {
        self.marks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_read_back() {
        let mut b = GapBuffer::new();
        b.insert(0, "hello");
        b.insert(5, " world");
        assert_eq!(b.to_string(), "hello world");
        assert_eq!(b.len(), 11);
        assert_eq!(b.char_at(4), Some('o'));
        assert_eq!(b.char_at(11), None);
    }

    #[test]
    fn insert_in_middle_moves_gap() {
        let mut b = GapBuffer::from_str("held");
        b.insert(3, " wor");
        assert_eq!(b.to_string(), "hel word");
        b.insert(0, ">>");
        assert_eq!(b.to_string(), ">>hel word");
    }

    #[test]
    fn delete_ranges() {
        let mut b = GapBuffer::from_str("abcdefgh");
        assert_eq!(b.delete(2, 3), 3);
        assert_eq!(b.to_string(), "abfgh");
        // Deleting past the end clamps.
        assert_eq!(b.delete(3, 100), 2);
        assert_eq!(b.to_string(), "abf");
        assert_eq!(b.delete(99, 1), 0);
    }

    #[test]
    fn interleaved_edits_match_string_oracle() {
        let mut b = GapBuffer::new();
        let mut oracle = String::new();
        let ops: &[(usize, &str, usize)] = &[
            (0, "the quick", 0),
            (4, "very ", 0),
            (0, "", 3),
            (8, " brown", 2),
        ];
        for &(pos, ins, del) in ops {
            let pos = pos.min(oracle.chars().count());
            let del = del.min(oracle.chars().count() - pos);
            let mut chars: Vec<char> = oracle.chars().collect();
            chars.splice(pos..pos + del, ins.chars());
            oracle = chars.into_iter().collect();
            b.delete(pos, del);
            b.insert(pos, ins);
        }
        assert_eq!(b.to_string(), oracle);
    }

    #[test]
    fn slice_and_lines() {
        let b = GapBuffer::from_str("one\ntwo\nthree");
        assert_eq!(b.slice(4, 7), "two");
        assert_eq!(b.line_end(0), 3);
        assert_eq!(b.line_start(5), 4);
        assert_eq!(b.line_end(4), 7);
        assert_eq!(b.line_start(0), 0);
        assert_eq!(b.line_end(8), 13);
    }

    #[test]
    fn growth_preserves_content() {
        let mut b = GapBuffer::with_capacity(4);
        for i in 0..200 {
            b.insert(b.len() / 2, &format!("{}", i % 10));
        }
        assert_eq!(b.len(), 200);
    }

    #[test]
    fn unicode_chars_are_single_positions() {
        let mut b = GapBuffer::from_str("café");
        assert_eq!(b.len(), 4);
        assert_eq!(b.char_at(3), Some('é'));
        b.insert(4, "→");
        assert_eq!(b.to_string(), "café→");
    }

    #[test]
    fn marks_follow_insertions() {
        let mut t = MarkTable::new();
        let before = t.create(3, Gravity::Left);
        let at_l = t.create(5, Gravity::Left);
        let at_r = t.create(5, Gravity::Right);
        let after = t.create(8, Gravity::Left);
        t.adjust_insert(5, 2);
        assert_eq!(t.pos(before), Some(3));
        assert_eq!(t.pos(at_l), Some(5));
        assert_eq!(t.pos(at_r), Some(7));
        assert_eq!(t.pos(after), Some(10));
    }

    #[test]
    fn marks_collapse_into_deletions() {
        let mut t = MarkTable::new();
        let inside = t.create(5, Gravity::Left);
        let after = t.create(10, Gravity::Left);
        t.adjust_delete(3, 4);
        assert_eq!(t.pos(inside), Some(3));
        assert_eq!(t.pos(after), Some(6));
    }

    #[test]
    fn mark_removal() {
        let mut t = MarkTable::new();
        let m = t.create(0, Gravity::Left);
        assert_eq!(t.len(), 1);
        t.remove(m);
        assert!(t.is_empty());
        assert_eq!(t.pos(m), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Insert(usize, String),
        Delete(usize, usize),
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        // Positions beyond the live length exercise the clamp paths;
        // jumping between low and high positions drags the gap both
        // directions through `move_gap`'s two `copy_within` arms, and the
        // long-string variant overflows the gap so `ensure_gap`'s
        // grow-and-move-tail path runs mid-sequence.
        prop_oneof![
            (0usize..200, "[a-z \\n]{0,12}").prop_map(|(p, s)| Op::Insert(p, s)),
            (0usize..200, "[a-z]{30,60}").prop_map(|(p, s)| Op::Insert(p, s)),
            (0usize..200, Just("é→∑\u{1F600}".to_string())).prop_map(|(p, s)| Op::Insert(p, s)),
            (0usize..200, 0usize..25).prop_map(|(p, n)| Op::Delete(p, n)),
        ]
    }

    proptest! {
        #[test]
        fn gap_buffer_matches_vec_oracle(ops in proptest::collection::vec(arb_op(), 0..40)) {
            // Tiny capacity so growth happens under the test, not before.
            let mut b = GapBuffer::with_capacity(1);
            let mut oracle: Vec<char> = Vec::new();
            for op in ops {
                match op {
                    Op::Insert(pos, s) => {
                        let n = b.insert(pos, &s);
                        prop_assert_eq!(n, s.chars().count());
                        let pos = pos.min(oracle.len());
                        let cs: Vec<char> = s.chars().collect();
                        oracle.splice(pos..pos, cs);
                    }
                    Op::Delete(pos, n) => {
                        let deleted = b.delete(pos, n);
                        let pos = pos.min(oracle.len());
                        let n = n.min(oracle.len() - pos);
                        prop_assert_eq!(deleted, n);
                        oracle.splice(pos..pos + n, std::iter::empty());
                    }
                }
                prop_assert_eq!(b.len(), oracle.len());
            }
            // Full-content and random-access agreement: `char_at` reads
            // across the gap wherever the last edit left it.
            let expect: String = oracle.iter().collect();
            prop_assert_eq!(b.to_string(), expect);
            for (i, &c) in oracle.iter().enumerate() {
                prop_assert_eq!(b.char_at(i), Some(c));
            }
            prop_assert_eq!(b.char_at(oracle.len()), None);
        }
    }
}
